//! A tiny hand-rolled binary codec for on-disk snapshots.
//!
//! Warm snapshots (DESIGN.md §3.13) persist across process restarts
//! the same way cached traces do (`REDCACHE_TRACE_CACHE_DIR`): a magic
//! tag, a format version, a config fingerprint, and a checksummed
//! payload. The payload encoding is deliberately primitive — fixed
//! little-endian integers, length-prefixed sequences, one byte per
//! option/enum tag — because the only requirements are determinism
//! (identical state encodes to identical bytes) and fail-closed
//! decoding (any corruption yields an error, never a mangled value;
//! callers regenerate).
//!
//! Implement [`Wire`] for a plain struct with [`crate::wire_struct!`]
//! and for a fieldless enum with [`crate::wire_enum!`]; both expand to
//! field-by-field `put`/`get` calls.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::Hash;

/// Decode failure: the bytes do not describe a valid value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireError(pub &'static str);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Cursor over an encoded buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `buf` with the cursor at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed — decoders check this at
    /// the end so trailing garbage is rejected, not ignored.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError("unexpected end of input"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

/// A value with a deterministic binary encoding.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `out`.
    fn put(&self, out: &mut Vec<u8>);
    /// Decodes one value from `r`, consuming exactly its bytes.
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

macro_rules! wire_int {
    ($($ty:ty),+) => {
        $(impl Wire for $ty {
            fn put(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
                let n = std::mem::size_of::<$ty>();
                let b = r.take(n)?;
                Ok(<$ty>::from_le_bytes(b.try_into().expect("take returned n bytes")))
            }
        })+
    };
}

wire_int!(u8, u16, u32, u64, i64);

impl Wire for bool {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::get(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError("invalid bool")),
        }
    }
}

impl Wire for usize {
    fn put(&self, out: &mut Vec<u8>) {
        (*self as u64).put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        usize::try_from(u64::get(r)?).map_err(|_| WireError("usize overflow"))
    }
}

impl Wire for f64 {
    fn put(&self, out: &mut Vec<u8>) {
        self.to_bits().put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::get(r)?))
    }
}

/// Reads a sequence length and rejects lengths that cannot possibly
/// fit in the remaining bytes (every element encodes to ≥ 1 byte), so
/// corrupt headers fail instead of attempting huge allocations.
fn get_len(r: &mut Reader<'_>) -> Result<usize, WireError> {
    let len = usize::get(r)?;
    if len > r.remaining() {
        return Err(WireError("sequence length exceeds input"));
    }
    Ok(len)
}

impl<T: Wire> Wire for Vec<T> {
    fn put(&self, out: &mut Vec<u8>) {
        self.len().put(out);
        for item in self {
            item.put(out);
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = get_len(r)?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::get(r)?);
        }
        Ok(v)
    }
}

impl<T: Wire> Wire for VecDeque<T> {
    fn put(&self, out: &mut Vec<u8>) {
        self.len().put(out);
        for item in self {
            item.put(out);
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = get_len(r)?;
        let mut v = VecDeque::with_capacity(len);
        for _ in 0..len {
            v.push_back(T::get(r)?);
        }
        Ok(v)
    }
}

impl<T: Wire> Wire for Box<T> {
    fn put(&self, out: &mut Vec<u8>) {
        (**self).put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Box::new(T::get(r)?))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.put(out);
            }
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::get(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::get(r)?)),
            _ => Err(WireError("invalid option tag")),
        }
    }
}

impl<T: Wire + Default + Copy, const N: usize> Wire for [T; N] {
    fn put(&self, out: &mut Vec<u8>) {
        for item in self {
            item.put(out);
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut a = [T::default(); N];
        for slot in a.iter_mut() {
            *slot = T::get(r)?;
        }
        Ok(a)
    }
}

// Hash maps encode sorted by key so identical contents always produce
// identical bytes regardless of insertion history — the property the
// byte-identical snapshot-cache tests pin.
impl<K, V> Wire for HashMap<K, V>
where
    K: Wire + Ord + Eq + Hash,
    V: Wire,
{
    fn put(&self, out: &mut Vec<u8>) {
        let mut keys: Vec<&K> = self.keys().collect();
        keys.sort();
        self.len().put(out);
        for k in keys {
            k.put(out);
            self[k].put(out);
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = get_len(r)?;
        let mut m = HashMap::with_capacity(len);
        for _ in 0..len {
            let k = K::get(r)?;
            let v = V::get(r)?;
            if m.insert(k, v).is_some() {
                return Err(WireError("duplicate map key"));
            }
        }
        Ok(m)
    }
}

/// Implements [`Wire`] for a struct by encoding the listed fields in
/// order. Usable on structs with private fields from their own module.
#[macro_export]
macro_rules! wire_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::wire::Wire for $ty {
            fn put(&self, out: &mut Vec<u8>) {
                $($crate::wire::Wire::put(&self.$field, out);)+
            }
            fn get(
                r: &mut $crate::wire::Reader<'_>,
            ) -> Result<Self, $crate::wire::WireError> {
                Ok(Self { $($field: $crate::wire::Wire::get(r)?),+ })
            }
        }
    };
}

/// Implements [`Wire`] for a fieldless enum as a one-byte tag.
#[macro_export]
macro_rules! wire_enum {
    ($ty:ty { $($variant:path = $tag:literal),+ $(,)? }) => {
        impl $crate::wire::Wire for $ty {
            fn put(&self, out: &mut Vec<u8>) {
                let tag: u8 = match self { $($variant => $tag,)+ };
                $crate::wire::Wire::put(&tag, out);
            }
            fn get(
                r: &mut $crate::wire::Reader<'_>,
            ) -> Result<Self, $crate::wire::WireError> {
                match <u8 as $crate::wire::Wire>::get(r)? {
                    $($tag => Ok($variant),)+
                    _ => Err($crate::wire::WireError("invalid enum tag")),
                }
            }
        }
    };
}

/// FNV-1a 64-bit hash — the same cheap fingerprint the trace cache
/// uses for file names, reused here for payload checksums and config
/// fingerprints.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wraps an encoded payload in the on-disk envelope:
/// `magic | version | key | payload_len | payload | fnv1a(payload)`.
pub fn encode_file(magic: &[u8; 4], version: u32, key: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 32);
    out.extend_from_slice(magic);
    version.put(&mut out);
    key.put(&mut out);
    payload.len().put(&mut out);
    out.extend_from_slice(payload);
    fnv1a(payload).put(&mut out);
    out
}

/// Validates the envelope produced by [`encode_file`] — magic, version,
/// key, length, and checksum — and returns the payload slice. `None`
/// means the file is stale, truncated, or corrupt: regenerate it.
pub fn decode_file<'a>(
    bytes: &'a [u8],
    magic: &[u8; 4],
    version: u32,
    key: u64,
) -> Option<&'a [u8]> {
    let mut r = Reader::new(bytes);
    if r.take(4).ok()? != magic {
        return None;
    }
    if u32::get(&mut r).ok()? != version || u64::get(&mut r).ok()? != key {
        return None;
    }
    let len = usize::get(&mut r).ok()?;
    if r.remaining() != len + 8 {
        return None;
    }
    let payload = r.take(len).ok()?;
    let sum = u64::get(&mut r).ok()?;
    (fnv1a(payload) == sum).then_some(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.put(&mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(T::get(&mut r).expect("decodes"), v);
        assert!(r.is_empty(), "decode must consume every byte");
    }

    #[test]
    fn primitives_round_trip() {
        roundtrip(0u8);
        roundtrip(u8::MAX);
        roundtrip(0xbeefu16);
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(3.25f64);
        roundtrip(f64::NEG_INFINITY);
    }

    #[test]
    fn sequences_round_trip() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(VecDeque::from([9u32, 8, 7]));
        roundtrip(Some(7u64));
        roundtrip(Option::<u64>::None);
        roundtrip([1u64, 2, 3, 4]);
        roundtrip(HashMap::from([(1u64, 10u64), (2, 20)]));
    }

    #[test]
    fn map_encoding_is_insertion_order_independent() {
        let mut a = HashMap::new();
        a.insert(5u64, 50u64);
        a.insert(1, 10);
        a.insert(9, 90);
        let mut b = HashMap::new();
        b.insert(9u64, 90u64);
        b.insert(5, 50);
        b.insert(1, 10);
        let (mut ba, mut bb) = (Vec::new(), Vec::new());
        a.put(&mut ba);
        b.put(&mut bb);
        assert_eq!(ba, bb);
    }

    #[test]
    fn corrupt_input_fails_closed() {
        let mut buf = Vec::new();
        vec![1u64, 2, 3].put(&mut buf);
        // Truncation.
        let mut r = Reader::new(&buf[..buf.len() - 1]);
        assert!(Vec::<u64>::get(&mut r).is_err());
        // Absurd length header.
        let mut huge = Vec::new();
        u64::MAX.put(&mut huge);
        let mut r = Reader::new(&huge);
        assert!(Vec::<u64>::get(&mut r).is_err());
        // Bad bool / option / enum tags.
        let mut r = Reader::new(&[7]);
        assert!(bool::get(&mut r).is_err());
        let mut r = Reader::new(&[9]);
        assert!(Option::<u64>::get(&mut r).is_err());
    }

    #[test]
    fn file_envelope_validates_everything() {
        let payload = b"snapshot payload".to_vec();
        let f = encode_file(b"RCSN", 1, 0xabcd, &payload);
        assert_eq!(
            decode_file(&f, b"RCSN", 1, 0xabcd),
            Some(payload.as_slice())
        );
        // Wrong magic, version, or key.
        assert!(decode_file(&f, b"XXXX", 1, 0xabcd).is_none());
        assert!(decode_file(&f, b"RCSN", 2, 0xabcd).is_none());
        assert!(decode_file(&f, b"RCSN", 1, 0x1234).is_none());
        // Truncated and bit-flipped payloads.
        assert!(decode_file(&f[..f.len() - 1], b"RCSN", 1, 0xabcd).is_none());
        let mut flipped = f.clone();
        flipped[20] ^= 1;
        assert!(decode_file(&flipped, b"RCSN", 1, 0xabcd).is_none());
        // Empty and garbage files.
        assert!(decode_file(&[], b"RCSN", 1, 0xabcd).is_none());
        assert!(decode_file(&[0x55; 64], b"RCSN", 1, 0xabcd).is_none());
    }

    #[test]
    fn macros_cover_structs_and_enums() {
        #[derive(Debug, PartialEq)]
        struct Demo {
            a: u64,
            b: Option<u32>,
            c: Vec<bool>,
        }
        wire_struct!(Demo { a, b, c });
        #[derive(Debug, PartialEq)]
        enum Tag {
            X,
            Y,
        }
        wire_enum!(Tag { Tag::X = 0, Tag::Y = 1 });
        roundtrip(Demo {
            a: 7,
            b: Some(9),
            c: vec![true, false],
        });
        roundtrip(Tag::X);
        roundtrip(Tag::Y);
    }
}
