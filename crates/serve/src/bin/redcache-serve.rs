//! `redcache-serve` — thin CLI client for `redcache-served`.
//!
//! ```text
//! redcache-serve [--addr HOST:PORT] submit [--workload W] [--policy P]
//!                [--preset NAME] [--seed N] [--budget N] [--shrink N]
//!                [--threads N] [--epoch-cycles N] [--alpha N] [--gamma N]
//!                [--hold-ms N] [--wait]
//! redcache-serve [--addr HOST:PORT] sweep [submit flags]
//!                [--alphas 1,2,4] [--gammas 8,16] [--policies redcache,alloy]
//!                [--wait]
//! redcache-serve [--addr HOST:PORT] status <id> | report <id>
//!                | timeseries <id> | cancel <id> | wait <id>
//!                | list | metrics | health | shutdown
//! ```

use redcache_serve::client::HttpResult;
use redcache_serve::{Client, JobRequest, JobView, SweepRequest, SweepView};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: redcache-serve [--addr HOST:PORT] COMMAND\n\
         commands:\n\
         \x20 submit [--workload W] [--policy P] [--preset NAME] [--seed N]\n\
         \x20        [--budget N] [--shrink N] [--threads N] [--epoch-cycles N]\n\
         \x20        [--alpha N] [--gamma N]\n\
         \x20        [--hold-ms N] [--wait]     submit a job (prints its JobView)\n\
         \x20 sweep  [submit flags] [--alphas A,B,..] [--gammas A,B,..]\n\
         \x20        [--policies P,Q,..] [--wait] fan one grid into deduped jobs\n\
         \x20 status <id>                       one job's status\n\
         \x20 report <id>                       the versioned result envelope\n\
         \x20 timeseries <id>                   epoch series as JSON Lines\n\
         \x20 wait <id>                         block until the job is terminal\n\
         \x20 cancel <id>                       cancel a queued job\n\
         \x20 list                              all jobs\n\
         \x20 metrics                           Prometheus text\n\
         \x20 health                            liveness + drain state\n\
         \x20 shutdown                          begin graceful drain"
    );
    std::process::exit(2)
}

/// Prints the response body and exits non-zero on HTTP errors.
fn finish(res: HttpResult) -> ! {
    println!("{}", res.text().trim_end());
    std::process::exit(if res.status < 400 { 0 } else { 1 })
}

fn id_arg(it: &mut impl Iterator<Item = String>) -> u64 {
    it.next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| usage())
}

/// Parsed job-template flags shared by `submit` and `sweep`, plus the
/// sweep's own axis flags.
struct Parsed {
    job: JobRequest,
    alphas: Vec<u32>,
    gammas: Vec<u32>,
    policies: Vec<String>,
    wait: bool,
}

fn parse_list<T: std::str::FromStr>(spec: &str) -> Vec<T> {
    spec.split(',')
        .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
        .collect()
}

fn parse_job_flags(mut it: impl Iterator<Item = String>) -> Parsed {
    let mut p = Parsed {
        job: JobRequest {
            workload: "hist".into(),
            ..JobRequest::default()
        },
        alphas: Vec::new(),
        gammas: Vec::new(),
        policies: Vec::new(),
        wait: false,
    };
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--workload" | "-w" => p.job.workload = val(),
            "--policy" | "-p" => p.job.policy = Some(val()),
            "--preset" => p.job.preset = Some(val()),
            "--seed" => p.job.seed = Some(val().parse().unwrap_or_else(|_| usage())),
            "--budget" | "-b" => p.job.budget = Some(val().parse().unwrap_or_else(|_| usage())),
            "--shrink" | "-s" => p.job.shrink = Some(val().parse().unwrap_or_else(|_| usage())),
            "--threads" => p.job.threads = Some(val().parse().unwrap_or_else(|_| usage())),
            "--epoch-cycles" => {
                p.job.epoch_cycles = Some(val().parse().unwrap_or_else(|_| usage()));
            }
            "--alpha" => p.job.alpha = Some(val().parse().unwrap_or_else(|_| usage())),
            "--gamma" => p.job.gamma = Some(val().parse().unwrap_or_else(|_| usage())),
            "--hold-ms" => p.job.hold_ms = Some(val().parse().unwrap_or_else(|_| usage())),
            "--alphas" => p.alphas = parse_list(&val()),
            "--gammas" => p.gammas = parse_list(&val()),
            "--policies" => p.policies = parse_list(&val()),
            "--wait" => p.wait = true,
            _ => usage(),
        }
    }
    p
}

fn submit(client: &Client, it: impl Iterator<Item = String>) -> ! {
    let p = parse_job_flags(it);
    if !(p.alphas.is_empty() && p.gammas.is_empty() && p.policies.is_empty()) {
        eprintln!("--alphas/--gammas/--policies are sweep flags; use `sweep`");
        usage();
    }
    let res = client.submit(&p.job).unwrap_or_else(die);
    if res.status != 202 || !p.wait {
        finish(res);
    }
    let view: JobView = res.json().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1)
    });
    let done = client
        .wait(view.id, Duration::from_secs(600))
        .unwrap_or_else(die);
    println!(
        "{}",
        serde_json::to_string_pretty(&done).expect("view serializes")
    );
    std::process::exit(0)
}

fn sweep(client: &Client, it: impl Iterator<Item = String>) -> ! {
    let p = parse_job_flags(it);
    let req = SweepRequest {
        base: p.job,
        alphas: p.alphas,
        gammas: p.gammas,
        policies: p.policies,
    };
    let res = client.submit_sweep(&req).unwrap_or_else(die);
    if res.status != 202 || !p.wait {
        finish(res);
    }
    let view: SweepView = res.json().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1)
    });
    let done = client
        .wait_sweep(view.id, Duration::from_secs(3600))
        .unwrap_or_else(die);
    println!(
        "{}",
        serde_json::to_string_pretty(&done).expect("view serializes")
    );
    std::process::exit(0)
}

fn die<T>(e: std::io::Error) -> T {
    eprintln!("error: {e}");
    std::process::exit(1)
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut it = std::env::args().skip(1).peekable();
    if it.peek().map(String::as_str) == Some("--addr") {
        it.next();
        addr = it.next().unwrap_or_else(|| usage());
    }
    let client = Client::new(addr);
    let Some(cmd) = it.next() else { usage() };
    match cmd.as_str() {
        "submit" => submit(&client, it),
        "sweep" => sweep(&client, it),
        "status" => finish(client.job(id_arg(&mut it)).unwrap_or_else(die)),
        "report" => finish(client.report(id_arg(&mut it)).unwrap_or_else(die)),
        "timeseries" => finish(client.timeseries(id_arg(&mut it)).unwrap_or_else(die)),
        "cancel" => finish(client.cancel(id_arg(&mut it)).unwrap_or_else(die)),
        "wait" => {
            let view = client
                .wait(id_arg(&mut it), Duration::from_secs(600))
                .unwrap_or_else(die);
            println!(
                "{}",
                serde_json::to_string_pretty(&view).expect("view serializes")
            );
        }
        "list" => finish(client.jobs().unwrap_or_else(die)),
        "metrics" => finish(client.metrics().unwrap_or_else(die)),
        "health" => finish(client.healthz().unwrap_or_else(die)),
        "shutdown" => finish(client.shutdown().unwrap_or_else(die)),
        "--help" | "-h" => usage(),
        _ => usage(),
    }
}
