//! SPLASH-2 **LU** — blocked dense LU factorisation.
//!
//! Block-major storage with the canonical SPLASH-2 structure: factor the
//! diagonal block, solve the perimeter blocks of row and column `k`,
//! then update the full trailing submatrix. Pivot-column and pivot-row
//! blocks are reused once per trailing block — the narrow reuse band
//! Fig. 3 shows for LU — and every trailing block's final touch in a
//! step is a store.

use crate::common::{elem, GenConfig, Layout, ThreadTraces, TraceBuilder};
use redcache_types::PhysAddr;

const ELEM: u64 = 8;
const BLK: usize = 32;

struct Blocked {
    base: PhysAddr,
    nb: usize,
}

impl Blocked {
    fn block(&self, bi: usize, bj: usize) -> PhysAddr {
        let blk_bytes = (BLK * BLK) as u64 * ELEM;
        PhysAddr::new(self.base.raw() + ((bi * self.nb + bj) as u64) * blk_bytes)
    }
}

fn touch_block(b: &mut TraceBuilder, t: usize, base: PhysAddr, write: bool, gap: u32) {
    let lines = (BLK * BLK) as u64 * ELEM / 64;
    for l in 0..lines {
        b.load(t, elem(base, l * 8, ELEM), gap);
        if write {
            b.store(t, elem(base, l * 8, ELEM), 1);
        }
    }
}

pub(crate) fn generate(cfg: &GenConfig) -> ThreadTraces {
    let n = cfg.dim(768);
    let nb = (n / BLK).max(2);
    let mut layout = Layout::new();
    let a = Blocked {
        base: layout.alloc((nb * nb * BLK * BLK) as u64 * ELEM),
        nb,
    };
    let mut b = TraceBuilder::new(cfg);
    let threads = cfg.threads;

    for k in 0..nb {
        touch_block(&mut b, k % threads, a.block(k, k), true, 14);
        // Perimeter solves.
        for i in k + 1..nb {
            let t = i % threads;
            touch_block(&mut b, t, a.block(k, k), false, 8);
            touch_block(&mut b, t, a.block(i, k), true, 6);
            touch_block(&mut b, t, a.block(k, i), true, 6);
        }
        // Interior update: A(i,j) -= A(i,k) * A(k,j).
        for i in k + 1..nb {
            let t = i % threads;
            if !b.has_budget(t) {
                continue;
            }
            for j in k + 1..nb {
                touch_block(&mut b, t, a.block(i, k), false, 9);
                touch_block(&mut b, t, a.block(k, j), false, 2);
                touch_block(&mut b, t, a.block(i, j), true, 2);
            }
        }
        if b.exhausted() {
            break;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_cpu::TraceStats;

    #[test]
    fn deterministic() {
        let cfg = GenConfig::tiny();
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn narrow_reuse_band() {
        let cfg = GenConfig::tiny();
        let flat: Vec<_> = generate(&cfg).into_iter().flatten().collect();
        let s = TraceStats::from_trace(&flat);
        let reuse = s.accesses as f64 / s.footprint_lines as f64;
        assert!(
            reuse > 3.0,
            "pivot blocks are reused per trailing block: {reuse}"
        );
    }
}
