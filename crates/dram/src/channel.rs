//! Per-channel state: transaction queue, bank/rank arrays, data bus.

use crate::bank::{Bank, Rank};
use crate::system::{TxnId, TxnKind};
use crate::topology::DramLoc;
use redcache_types::Cycle;

/// An in-flight transaction within a channel queue.
#[derive(Debug, Clone)]
pub(crate) struct Txn {
    pub id: TxnId,
    pub kind: TxnKind,
    pub loc: DramLoc,
    /// Column bursts still to issue (multi-burst for >64 B blocks).
    pub bursts_left: u32,
    /// Caller-supplied tag returned with the completion.
    pub meta: u64,
    pub enqueued_at: Cycle,
    /// Completion time of the last issued burst (valid when
    /// `bursts_left == 0`).
    pub data_done_at: Cycle,
}

/// One DRAM channel: its queue, ranks/banks, and shared data bus.
#[derive(Debug)]
pub(crate) struct Channel {
    pub ranks: Vec<Rank>,
    /// `banks[rank][bank]`.
    pub banks: Vec<Vec<Bank>>,
    /// Pending transactions in arrival order.
    pub queue: Vec<Txn>,
    /// Cycle at which the data bus becomes free.
    pub bus_free_at: Cycle,
    /// Issue time of the last column command (channel-level tCCD guard).
    pub last_col_cmd: Option<Cycle>,
    /// Kind of the last column command, for turnaround stats.
    pub last_col_kind: Option<TxnKind>,
    /// Write transactions still queued (for the write-drain watermark).
    pub pending_writes: usize,
    /// Currently batching writes (virtual-write-queue hysteresis).
    pub write_drain_mode: bool,
}

impl Channel {
    pub(crate) fn new(ranks: usize, banks: usize, first_refresh_stagger: Cycle) -> Self {
        Self {
            // Stagger initial refreshes across ranks so they do not all
            // fire in the same cycle (as real controllers do).
            ranks: (0..ranks)
                .map(|r| Rank::new(first_refresh_stagger * (r as Cycle + 1)))
                .collect(),
            banks: (0..ranks)
                .map(|_| (0..banks).map(|_| Bank::new()).collect())
                .collect(),
            queue: Vec::new(),
            bus_free_at: 0,
            last_col_cmd: None,
            last_col_kind: None,
            pending_writes: 0,
            write_drain_mode: false,
        }
    }

    pub(crate) fn bank(&self, loc: &DramLoc) -> &Bank {
        &self.banks[loc.rank][loc.bank]
    }

    pub(crate) fn bank_mut(&mut self, loc: &DramLoc) -> &mut Bank {
        &mut self.banks[loc.rank][loc.bank]
    }

    /// True when another queued transaction (other than `except`) targets
    /// the same bank row that is currently open — used to avoid closing
    /// rows that still have row-hit work pending. Scans the same bounded
    /// window the scheduler sees.
    pub(crate) fn row_has_pending_hits(&self, loc: &DramLoc, except: TxnId) -> bool {
        let open = self.bank(loc).open_row;
        match open {
            None => false,
            Some(row) => self.queue.iter().take(32).any(|t| {
                t.id != except && t.bursts_left > 0 && t.loc.same_bank(loc) && t.loc.row == row
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A nonzero channel index: a `Channel` never inspects its own index,
    /// so matching helpers (`same_bank`, `row_has_pending_hits`) must
    /// work for any attributed channel, not just 0.
    fn loc(rank: usize, bank: usize, row: u64) -> DramLoc {
        DramLoc {
            channel: 3,
            rank,
            bank,
            row,
            col: 0,
        }
    }

    #[test]
    fn refresh_staggering_differs_across_ranks() {
        let ch = Channel::new(4, 2, 100);
        assert_eq!(ch.ranks[0].next_refresh, 100);
        assert_eq!(ch.ranks[3].next_refresh, 400);
    }

    #[test]
    fn row_hit_detection_scans_queue() {
        let mut ch = Channel::new(1, 1, 1000);
        ch.banks[0][0].open_row = Some(5);
        ch.queue.push(Txn {
            id: TxnId(1),
            kind: TxnKind::Read,
            loc: loc(0, 0, 5),
            bursts_left: 1,
            meta: 0,
            enqueued_at: 0,
            data_done_at: 0,
        });
        assert!(ch.row_has_pending_hits(&loc(0, 0, 5), TxnId(9)));
        assert!(!ch.row_has_pending_hits(&loc(0, 0, 5), TxnId(1)));
        ch.banks[0][0].open_row = Some(7);
        assert!(!ch.row_has_pending_hits(&loc(0, 0, 7), TxnId(9)));
    }
}
