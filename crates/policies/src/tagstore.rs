//! The direct-mapped tag-and-data (TAD) store of the HBM cache.
//!
//! Following Alloy [2], the HBM is organised as a direct-mapped cache
//! whose tag travels with the data in the otherwise-unused ECC bits
//! (§IV.A, [32]) — so one WideIO burst carries tag + data, and RedCache's
//! extra r-count byte rides along at no transfer cost (§III.A.2).
//!
//! The store is *functional*: besides the tag it keeps per-64 B-line
//! payload versions (up to 4 sub-lines for the 256 B granularity sweep)
//! so controllers can return provably fresh data.

use redcache_types::{LineAddr, SatCounter};
use serde::{Deserialize, Serialize};

/// The paper's block classification (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockClass {
    /// Low reuse: not worth caching (bypass to DDR).
    L,
    /// High reuse, high bandwidth share: cache in HBM.
    H,
    /// High reuse, low bandwidth share: cacheable, first eviction victim.
    X,
}

/// Classifies a block by its reuse count against the α/γ thresholds,
/// weighted by the bandwidth share of its homo-reuse group.
pub fn classify(reuse: u32, bandwidth_share: f64, alpha: u32, gamma: u32) -> BlockClass {
    if reuse < alpha {
        BlockClass::L
    } else if reuse >= gamma && bandwidth_share < 0.05 {
        BlockClass::X
    } else {
        BlockClass::H
    }
}

/// One resident DRAM-cache block.
#[derive(Debug, Clone)]
pub struct TagEntry {
    /// Block index (line address divided by lines-per-block).
    pub block: u64,
    /// Dirty flag.
    pub dirty: bool,
    /// Per-64 B sub-line payload versions.
    pub versions: [u64; 4],
    /// RedCache's r-count (reuse count since fill, §III.A.2).
    pub r_count: SatCounter,
}

/// The direct-mapped TAD array.
#[derive(Debug)]
pub struct TagStore {
    sets: Vec<Option<TagEntry>>,
    lines_per_block: u64,
    occupancy: usize,
}

impl TagStore {
    /// Builds a tag store with `sets` direct-mapped sets, each holding
    /// one block of `lines_per_block` 64 B lines.
    ///
    /// # Panics
    ///
    /// Panics if `sets == 0` or `lines_per_block` is not 1, 2 or 4.
    pub fn new(sets: usize, lines_per_block: u64) -> Self {
        assert!(sets > 0, "need at least one set");
        assert!(
            [1, 2, 4].contains(&lines_per_block),
            "lines_per_block must be 1, 2 or 4"
        );
        Self {
            sets: vec![None; sets],
            lines_per_block,
            occupancy: 0,
        }
    }

    /// Number of sets.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn sets(&self) -> usize {
        self.sets.len()
    }

    /// 64 B lines per cache block.
    pub fn lines_per_block(&self) -> u64 {
        self.lines_per_block
    }

    /// Block index containing `line`.
    pub fn block_of(&self, line: LineAddr) -> u64 {
        line.raw() / self.lines_per_block
    }

    /// Set index of the block containing `line`.
    pub fn set_of(&self, line: LineAddr) -> usize {
        (self.block_of(line) % self.sets.len() as u64) as usize
    }

    /// Sub-line slot of `line` within its block.
    pub fn subline_of(&self, line: LineAddr) -> usize {
        (line.raw() % self.lines_per_block) as usize
    }

    /// Resident entry of the set that `line` maps to (hit or victim).
    pub fn entry(&self, line: LineAddr) -> Option<&TagEntry> {
        self.sets[self.set_of(line)].as_ref()
    }

    /// Mutable resident entry of `line`'s set.
    pub fn entry_mut(&mut self, line: LineAddr) -> Option<&mut TagEntry> {
        let s = self.set_of(line);
        self.sets[s].as_mut()
    }

    /// True when the block containing `line` is resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        let b = self.block_of(line);
        matches!(self.entry(line), Some(e) if e.block == b)
    }

    /// Installs the block containing `line`, displacing the set's
    /// previous occupant, which is returned.
    pub fn install(&mut self, line: LineAddr, versions: [u64; 4], dirty: bool) -> Option<TagEntry> {
        let b = self.block_of(line);
        let s = self.set_of(line);
        let old = self.sets[s].take();
        if old.is_none() {
            self.occupancy += 1;
        }
        self.sets[s] = Some(TagEntry {
            block: b,
            dirty,
            versions,
            r_count: SatCounter::u8_zero(),
        });
        old
    }

    /// Removes the block containing `line` (exact match only).
    pub fn invalidate(&mut self, line: LineAddr) -> Option<TagEntry> {
        let b = self.block_of(line);
        let s = self.set_of(line);
        if matches!(&self.sets[s], Some(e) if e.block == b) {
            self.occupancy -= 1;
            return self.sets[s].take();
        }
        None
    }

    /// Resident block count.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// First 64 B line of block `block`.
    pub fn block_first_line(&self, block: u64) -> LineAddr {
        LineAddr::new(block * self.lines_per_block)
    }

    /// The HBM-internal physical address of `line`'s set (one block per
    /// set, blocks laid out contiguously).
    pub fn hbm_addr(&self, line: LineAddr, block_bytes: usize) -> redcache_types::PhysAddr {
        redcache_types::PhysAddr::new(self.set_of(line) as u64 * block_bytes as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_and_hit() {
        let mut t = TagStore::new(16, 1);
        let l = LineAddr::new(5);
        assert!(!t.contains(l));
        assert!(t.install(l, [7, 0, 0, 0], false).is_none());
        assert!(t.contains(l));
        assert_eq!(t.entry(l).unwrap().versions[0], 7);
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn conflicting_blocks_evict() {
        let mut t = TagStore::new(16, 1);
        let a = LineAddr::new(5);
        let b = LineAddr::new(5 + 16); // same set
        t.install(a, [1, 0, 0, 0], true);
        let old = t.install(b, [2, 0, 0, 0], false).expect("victim");
        assert_eq!(old.block, 5);
        assert!(old.dirty);
        assert!(t.contains(b));
        assert!(!t.contains(a));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn multi_line_blocks_share_entries() {
        let t2 = {
            let mut t = TagStore::new(8, 2);
            t.install(LineAddr::new(4), [1, 2, 0, 0], false);
            t
        };
        // Lines 4 and 5 are in block 2.
        assert!(t2.contains(LineAddr::new(4)));
        assert!(t2.contains(LineAddr::new(5)));
        assert!(!t2.contains(LineAddr::new(6)));
        assert_eq!(t2.subline_of(LineAddr::new(5)), 1);
    }

    #[test]
    fn invalidate_requires_exact_block() {
        let mut t = TagStore::new(16, 1);
        t.install(LineAddr::new(5), [1, 0, 0, 0], false);
        assert!(t.invalidate(LineAddr::new(5 + 16)).is_none()); // same set, other block
        assert!(t.invalidate(LineAddr::new(5)).is_some());
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn hbm_addresses_are_unique_per_set() {
        let t = TagStore::new(64, 1);
        let a = t.hbm_addr(LineAddr::new(3), 64);
        let b = t.hbm_addr(LineAddr::new(3 + 64), 64);
        assert_eq!(a, b, "same set, same address");
        let c = t.hbm_addr(LineAddr::new(4), 64);
        assert_ne!(a, c);
    }

    #[test]
    fn classify_matches_figure4() {
        // Low reuse -> L regardless of bandwidth.
        assert_eq!(classify(1, 0.5, 4, 20), BlockClass::L);
        // High reuse carrying the bandwidth bulk -> H.
        assert_eq!(classify(10, 0.4, 4, 20), BlockClass::H);
        // Very high reuse but negligible bandwidth -> X.
        assert_eq!(classify(30, 0.01, 4, 20), BlockClass::X);
    }

    #[test]
    #[should_panic(expected = "lines_per_block")]
    fn bad_lines_per_block_panics() {
        let _ = TagStore::new(4, 3);
    }
}
