//! `redcache-served` — the long-running simulation daemon.
//!
//! ```text
//! redcache-served [--addr 127.0.0.1:7878] [--workers N] [--queue N]
//!                 [--spool DIR] [--engine epoll|threaded]
//!                 [--max-conns N] [--event-threads N]
//! ```
//!
//! `--workers` defaults to the shared bench pool bound
//! (`REDCACHE_JOBS` / `available_parallelism`). `--engine` picks the
//! connection front end (default: the epoll event loop on unix;
//! `REDCACHE_SERVE_ENGINE` overrides the default), `--max-conns` the
//! admitted-connection ceiling beyond which accepts get `503`, and
//! `--event-threads` the number of event loops. Shut down with
//! SIGTERM, ctrl-c, or `POST /shutdown`: the daemon drains queued and
//! running jobs — persisting each result to the spool when one is
//! configured — before exiting.

use redcache_serve::{signals, ServeOptions, Server};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: redcache-served [--addr HOST:PORT] [--workers N] [--queue N] [--spool DIR] \
         [--engine epoll|threaded] [--max-conns N] [--event-threads N]"
    );
    std::process::exit(2)
}

fn parse_args() -> ServeOptions {
    let mut opts = ServeOptions::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" | "-a" => opts.addr = val(),
            "--workers" | "-w" => opts.workers = val().parse().unwrap_or_else(|_| usage()),
            "--queue" | "-q" => opts.queue_capacity = val().parse().unwrap_or_else(|_| usage()),
            "--spool" => opts.spool = Some(PathBuf::from(val())),
            "--engine" | "-e" => opts.engine = val().parse().unwrap_or_else(|_| usage()),
            "--max-conns" => opts.max_connections = val().parse().unwrap_or_else(|_| usage()),
            "--event-threads" => opts.event_threads = val().parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if opts.workers == 0
        || opts.queue_capacity == 0
        || opts.max_connections == 0
        || opts.event_threads == 0
    {
        usage();
    }
    opts
}

fn main() {
    let opts = parse_args();
    signals::install();
    let server = match Server::bind(&opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", opts.addr);
            std::process::exit(1);
        }
    };
    println!(
        "redcache-served listening on http://{} ({} engine, {} workers, queue {}, max {} conns{})",
        server.local_addr(),
        opts.engine,
        opts.workers,
        opts.queue_capacity,
        opts.max_connections,
        match &opts.spool {
            Some(dir) => format!(", spool {}", dir.display()),
            None => String::new(),
        }
    );
    match server.run() {
        Ok(()) => println!("redcache-served drained and stopped"),
        Err(e) => {
            eprintln!("error: accept loop failed: {e}");
            std::process::exit(1);
        }
    }
}
