//! Multi-tenant interleaving suite (DESIGN.md §3.15).
//!
//! A woven trace is an ordinary trace: the same deterministic pipeline,
//! the same warm-fork contract, the same reports — plus per-tenant
//! attribution that must reconcile exactly with the machine-wide
//! counters, because both are incremented at the same choke points.

use redcache::{PolicyKind, RedVariant, SimConfig, Simulator, TenantSchedule};
use redcache_workloads::{multitenant, GenConfig, SharedTraces, Workload};

fn woven(sched: &TenantSchedule) -> SharedTraces {
    let gen = GenConfig::tiny();
    let tenants: Vec<_> = [Workload::Kvz, Workload::Hist]
        .iter()
        .map(|w| w.generate(&gen))
        .collect();
    multitenant::weave(&tenants, sched).into()
}

fn tenant_extra(r: &redcache::RunReport, key: &str) -> f64 {
    r.extras
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("extra {key} missing"))
        .1
}

#[test]
fn tenant_attribution_reconciles_with_machine_counters() {
    let sched = TenantSchedule::round_robin(2);
    let cfg = SimConfig::quick(PolicyKind::Red(RedVariant::Full))
        .to_builder()
        .tenancy(Some(sched))
        .build()
        .unwrap();
    let traces = woven(&sched);
    let a = Simulator::new(cfg).run(traces.clone());
    let b = Simulator::new(cfg).run(traces);
    assert_eq!(a, b, "woven runs must be deterministic");

    // Every below-L3 request belongs to exactly one tenant region, so
    // the per-tenant counters partition the machine-wide ones.
    let reads: f64 = (0..2).map(|i| tenant_extra(&a, &format!("tenant{i}_mem_reads"))).sum();
    let wbs: f64 = (0..2)
        .map(|i| tenant_extra(&a, &format!("tenant{i}_mem_writebacks")))
        .sum();
    assert_eq!(reads as u64, a.mem_reads, "tenant reads must partition mem_reads");
    assert_eq!(
        wbs as u64, a.mem_writebacks,
        "tenant writebacks must partition mem_writebacks"
    );
    for i in 0..2 {
        let accesses = tenant_extra(&a, &format!("tenant{i}_accesses"));
        let hits = tenant_extra(&a, &format!("tenant{i}_hits"));
        assert!(accesses > 0.0, "tenant {i} starved");
        assert!(hits <= accesses, "tenant {i} hits exceed accesses");
    }
}

#[test]
fn warm_forked_woven_runs_match_scratch() {
    let sched = TenantSchedule::ratio(&[3, 1]).unwrap();
    let traces = woven(&sched);
    for kind in [PolicyKind::Alloy, PolicyKind::Red(RedVariant::Full)] {
        let cfg = SimConfig::quick(kind)
            .to_builder()
            .tenancy(Some(sched))
            .build()
            .unwrap();
        let snap = Simulator::new(cfg).warm(traces.clone());
        let forked = Simulator::new(cfg).resume(&snap);
        let scratch = Simulator::new(cfg).run(traces.clone());
        assert_eq!(forked, scratch, "{kind}: woven fork diverged from scratch");
    }
}

#[test]
fn tenancy_is_purely_observational() {
    // Same woven trace, attribution on vs off: the simulated machine
    // must be identical — only the tenant extras may differ.
    let sched = TenantSchedule::round_robin(2);
    let traces = woven(&sched);
    let base = SimConfig::quick(PolicyKind::Alloy);
    let off = Simulator::new(base).run(traces.clone());
    let on = Simulator::new(base.to_builder().tenancy(Some(sched)).build().unwrap())
        .run(traces);
    assert_eq!(on.cycles, off.cycles);
    assert_eq!(on.instructions, off.instructions);
    assert_eq!(on.mem_reads, off.mem_reads);
    assert_eq!(on.mem_writebacks, off.mem_writebacks);
    assert_eq!(on.ctl, off.ctl);
    assert_eq!((on.l1, on.l2, on.l3), (off.l1, off.l2, off.l3));
    assert_eq!(on.hbm, off.hbm);
    assert_eq!(on.ddr, off.ddr);
    let strip = |r: &redcache::RunReport| -> Vec<(String, f64)> {
        r.extras
            .iter()
            .filter(|(k, _)| !k.starts_with("tenant"))
            .cloned()
            .collect()
    };
    assert_eq!(strip(&on), strip(&off));
}

#[test]
fn epoch_series_carries_per_tenant_deltas_that_sum_to_totals() {
    let sched = TenantSchedule::round_robin(2);
    let cfg = SimConfig::quick(PolicyKind::Red(RedVariant::Full))
        .to_builder()
        .tenancy(Some(sched))
        .epoch_cycles(Some(25_000))
        .build()
        .unwrap();
    let r = Simulator::new(cfg).run(woven(&sched));
    let ts = r.timeseries.as_ref().expect("recording was on");
    assert!(!ts.epochs.is_empty());
    for e in &ts.epochs {
        assert_eq!(e.tenants.len(), 2, "epoch {} lost a tenant row", e.index);
    }
    // Post-warmup deltas accumulate to exactly the end-of-run totals:
    // the recorder re-baselines at the same instant the cumulative
    // counters reset.
    let we = ts.warmup_epoch.expect("warmup reset seen") as usize;
    for i in 0..2 {
        let summed: u64 = ts.epochs[we..].iter().map(|e| e.tenants[i].mem_reads).sum();
        assert_eq!(
            summed as f64,
            tenant_extra(&r, &format!("tenant{i}_mem_reads")),
            "tenant {i} epoch deltas disagree with the report total"
        );
    }
}
