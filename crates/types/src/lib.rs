//! Shared primitive types for the RedCache reproduction.
//!
//! This crate defines the vocabulary used by every other crate in the
//! workspace: physical addresses and their cache-line / page views,
//! memory requests as they travel between the cache hierarchy and the
//! DRAM-cache controller, and small statistics utilities (saturating
//! counters, histograms, exponential moving averages).
//!
//! # Example
//!
//! ```
//! use redcache_types::{PhysAddr, BLOCK_BYTES, PAGE_BYTES};
//!
//! let a = PhysAddr::new(0x1_2345);
//! let line = a.line(BLOCK_BYTES);
//! let page = a.page();
//! assert_eq!(line.base(BLOCK_BYTES).raw() % BLOCK_BYTES as u64, 0);
//! assert_eq!(page.base().raw() % PAGE_BYTES as u64, 0);
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod config;
pub mod jobs;
pub mod req;
pub mod snapshot;
pub mod stats;
pub mod tenancy;
pub mod wire;

pub use addr::{LineAddr, PageId, PhysAddr, BLOCK_BYTES, PAGE_BYTES};
pub use config::ConfigError;
pub use tenancy::{TenantSchedule, TenantStats, MAX_TENANTS};
pub use req::{AccessKind, CoreId, MemOp, MemRequest, ReqId};
pub use snapshot::{Restorable, Snapshot};
pub use stats::{Counter, EwmAverage, Histogram, SatCounter};

/// Simulation time, measured in CPU cycles (3.2 GHz in the paper's
/// Table I). All DRAM timing parameters are expressed in this unit.
pub type Cycle = u64;
