//! **Table II** — the workload suite, with the measured properties of
//! each generator (accesses, footprint, store fraction, mean reuse).
//! The paper's 11 Table II applications print first; the registry's
//! server-class scenarios (beyond the paper) follow in their own
//! section.

use redcache_bench::experiment_gen_config;
use redcache_cpu::TraceStats;
use redcache_workloads::registry::paper_workloads;
use redcache_workloads::{GenConfig, Workload};

fn row(w: Workload, gen: &GenConfig) {
    let info = w.info();
    let flat: Vec<_> = w.generate(gen).into_iter().flatten().collect();
    let s = TraceStats::from_trace(&flat);
    println!(
        "{:<6} {:<24} {:<9} {:<22} {:>9} {:>8}MB {:>6.1}% {:>7.1}",
        info.label,
        info.name,
        info.suite,
        info.input,
        s.accesses,
        s.footprint_bytes() >> 20,
        s.store_fraction() * 100.0,
        s.accesses as f64 / s.footprint_lines as f64,
    );
}

fn main() {
    let gen = experiment_gen_config();
    println!("== Table II: workloads and data sets ==\n");
    println!(
        "{:<6} {:<24} {:<9} {:<22} {:>9} {:>10} {:>7} {:>7}",
        "label", "benchmark", "suite", "paper input", "accesses", "footprint", "stores", "reuse"
    );
    let paper = paper_workloads();
    for &w in &paper {
        row(w, &gen);
    }
    println!("\n-- beyond the paper: server-class scenarios --\n");
    for &w in Workload::ALL.iter().filter(|w| !paper.contains(w)) {
        row(w, &gen);
    }
    println!("\n(accesses/footprints are the scaled-preset values; see DESIGN.md section 1)");
}
