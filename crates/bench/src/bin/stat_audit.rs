//! **Timing-audit sweep** — runs the evaluation policies with the
//! runtime [`redcache_dram::TimingAuditor`] attached to both DRAM
//! systems and reports what the auditor saw: commands validated,
//! violations (must be zero), command-level row-hit rates and data-bus
//! occupancy per interface. This is the observability companion to the
//! offline property tests: the same Table I rules, checked live inside
//! full-system runs.

use redcache::{PolicyKind, RedVariant, RunReport, SimConfig};
use redcache_bench::{assert_clean, experiment_gen_config, run_suite, save_json};
use redcache_workloads::Workload;

fn audit_row(r: &RunReport) -> (u64, u64, f64, f64) {
    let mut cmds = 0;
    let mut violations = 0;
    let mut hbm_hit = f64::NAN;
    let mut ddr_hit = f64::NAN;
    if let Some(a) = &r.hbm_audit {
        cmds += a.cmds_audited;
        violations += a.violations;
        hbm_hit = a.total_histogram().row_hit_rate();
    }
    if let Some(a) = &r.ddr_audit {
        cmds += a.cmds_audited;
        violations += a.violations;
        ddr_hit = a.total_histogram().row_hit_rate();
    }
    (cmds, violations, hbm_hit, ddr_hit)
}

fn main() {
    let gen = experiment_gen_config();
    let policies = [
        PolicyKind::NoHbm,
        PolicyKind::Alloy,
        PolicyKind::Bear,
        PolicyKind::Red(RedVariant::Full),
    ];
    let reports = run_suite(
        &Workload::ALL,
        &policies,
        |k| {
            let mut c = SimConfig::scaled(k);
            c.audit_timing = true;
            c
        },
        &gen,
    );

    println!("\n== Runtime timing audit (all commands, both DRAM interfaces) ==\n");
    println!(
        "{:>5} {:>8} {:>12} {:>10} {:>12} {:>12}",
        "wl", "policy", "cmds", "violations", "hbm rowhit", "ddr rowhit"
    );
    let mut out = Vec::new();
    let mut total_cmds = 0u64;
    let mut total_violations = 0u64;
    for row in &reports {
        assert_clean(row);
        for r in row {
            let (cmds, violations, hbm_hit, ddr_hit) = audit_row(r);
            assert!(cmds > 0, "{} audited no commands", r.policy);
            total_cmds += cmds;
            total_violations += violations;
            let pct = |v: f64| {
                if v.is_nan() {
                    "-".to_string()
                } else {
                    format!("{:.1}%", v * 100.0)
                }
            };
            println!(
                "{:>5} {:>8} {:>12} {:>10} {:>12} {:>12}",
                r.workload.as_deref().unwrap_or("?"),
                r.policy.to_string(),
                cmds,
                violations,
                pct(hbm_hit),
                pct(ddr_hit),
            );
            out.push((
                r.workload.clone(),
                r.policy.to_string(),
                r.hbm_audit.clone(),
                r.ddr_audit.clone(),
            ));
        }
    }
    println!("\ntotal commands audited: {total_cmds}");
    println!("total violations:       {total_violations}");
    assert_eq!(
        total_violations, 0,
        "timing violations in a full-system run"
    );
    save_json("stat_audit", &out);
}
