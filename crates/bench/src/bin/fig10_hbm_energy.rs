//! **Figure 10** — HBM (DRAM-cache) energy of every architecture,
//! normalised to the Alloy cache.
//!
//! Paper: RedCache improves HBM-cache energy by 42 % over Alloy and
//! 37 % over Bear, and beats even Red-InSitu (which computes inside the
//! DRAM dies).

use redcache::metrics::geomean;
use redcache_bench::{eval_matrix, print_table, save_json};

fn main() {
    let (workloads, policies, reports) = eval_matrix();
    let alloy_idx = policies
        .iter()
        .position(|p| p.to_string() == "Alloy")
        .expect("Alloy baseline");
    let cols: Vec<String> = policies.iter().map(|p| p.to_string()).collect();

    let mut rows = Vec::new();
    let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for (wi, w) in workloads.iter().enumerate() {
        let base = &reports[wi][alloy_idx];
        let vals: Vec<f64> = reports[wi]
            .iter()
            .map(|r| r.hbm_energy_normalized_to(base))
            .collect();
        for (pi, v) in vals.iter().enumerate() {
            per_policy[pi].push(*v);
        }
        rows.push((w.info().label.to_string(), vals));
    }
    rows.push((
        "MEAN".to_string(),
        per_policy.iter().map(|v| geomean(v)).collect(),
    ));

    print_table(
        "Fig. 10: HBM cache energy normalised to Alloy (lower is better)",
        "workload",
        &cols,
        &rows,
    );
    save_json("fig10_hbm_energy", &rows);

    let mean_of = |name: &str| {
        let i = policies.iter().position(|p| p.to_string() == name).unwrap();
        geomean(&per_policy[i])
    };
    println!("\npaper:    RedCache 0.58x Alloy HBM energy, and below Red-InSitu");
    println!(
        "measured: RedCache {:.2}x Alloy, Bear {:.2}x Alloy, Red-InSitu {:.2}x Alloy",
        mean_of("RedCache"),
        mean_of("Bear"),
        mean_of("Red-InSitu"),
    );
}
