//! Runtime timing audit: incremental validation of the issued command
//! stream against the Table I constraint set.
//!
//! The [`TimingAuditor`] is the always-available counterpart of the
//! test-only replay checker in `tests/timing_properties.rs`. It consumes
//! every [`IssuedCmd`] as the scheduler emits it and re-verifies each
//! constraint from scratch, using its own shadow copy of the device
//! state — so a bookkeeping bug in the scheduler cannot hide itself from
//! the audit, and any simulation (not just the proptests) can run with
//! the audit enabled.
//!
//! Design constraints:
//!
//! * **Allocation-free on the hot path.** All shadow state (per-bank,
//!   per-rank, per-channel) is preallocated from the topology when the
//!   auditor is constructed; [`TimingAuditor::observe`] performs no heap
//!   allocation, so enabling the audit never perturbs allocator-sensitive
//!   measurements and disabling it costs exactly one `Option` check.
//! * **Record, don't panic.** Violations are counted per rule and the
//!   first offending command is kept with the deadline it missed; the
//!   simulation keeps running so a long run reports *all* the damage.
//! * **Observability as a side effect.** Because the auditor already sees
//!   every command, it also maintains per-channel command histograms
//!   (ACT/PRE/RD/WR/REF), data-bus busy time, and a command-level
//!   row-hit rate — the numbers Fig. 2-style bandwidth analyses need.

use crate::system::{IssuedCmd, IssuedKind};
use crate::timing::TimingParams;
use crate::topology::Topology;
use redcache_types::Cycle;
use serde::{Deserialize, Serialize};

/// The timing rules the auditor enforces, used to label violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimingRule {
    /// Command not aligned to the DRAM command clock.
    ClockAlign,
    /// Illegal bank state transition (ACT to an open bank, PRE or column
    /// command to a closed bank, or a location outside the topology).
    BankState,
    /// ACT→ACT, same bank.
    Trc,
    /// PRE→ACT, same bank.
    Trp,
    /// ACT→PRE minimum row-open time.
    Tras,
    /// ACT→column command.
    Trcd,
    /// Read→PRE.
    Trtp,
    /// End of write data→PRE (write recovery).
    Twr,
    /// ACT→ACT, different banks of the same rank.
    Trrd,
    /// More than four ACTs per rank inside the tFAW window.
    Tfaw,
    /// End of write data→read command, same rank.
    Twtr,
    /// Column→column command on the same channel.
    Tccd,
    /// Two data bursts overlapping on the channel data bus.
    BusOverlap,
    /// REF issued to a rank with open banks or one already refreshing.
    RefreshState,
    /// Command issued into a rank's tRFC refresh window.
    RefreshBlock,
}

/// All rules, in a fixed order (indexes the per-rule counters).
pub const ALL_RULES: [TimingRule; 15] = [
    TimingRule::ClockAlign,
    TimingRule::BankState,
    TimingRule::Trc,
    TimingRule::Trp,
    TimingRule::Tras,
    TimingRule::Trcd,
    TimingRule::Trtp,
    TimingRule::Twr,
    TimingRule::Trrd,
    TimingRule::Tfaw,
    TimingRule::Twtr,
    TimingRule::Tccd,
    TimingRule::BusOverlap,
    TimingRule::RefreshState,
    TimingRule::RefreshBlock,
];

const RULE_COUNT: usize = ALL_RULES.len();

fn rule_index(rule: TimingRule) -> usize {
    ALL_RULES
        .iter()
        .position(|&r| r == rule)
        .expect("rule in ALL_RULES")
}

/// One recorded timing violation: which rule, which command, and the
/// earliest cycle at which the command would have been legal (0 for pure
/// state violations with no deadline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViolationRecord {
    /// The violated rule.
    pub rule: TimingRule,
    /// The offending command.
    pub cmd: IssuedCmd,
    /// Earliest legal issue cycle (the deadline the command jumped).
    pub deadline: Cycle,
}

/// Per-channel command counts and bus occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CmdHistogram {
    /// Row activations.
    pub acts: u64,
    /// Precharges (demand and refresh-forced).
    pub pres: u64,
    /// Column reads.
    pub reads: u64,
    /// Column writes.
    pub writes: u64,
    /// Per-rank refreshes.
    pub refreshes: u64,
    /// Cycles the channel data bus carried data (tBL per column command).
    pub bus_busy_cycles: u64,
}

impl CmdHistogram {
    /// Column commands observed on this channel.
    pub fn col_cmds(&self) -> u64 {
        self.reads + self.writes
    }

    /// Row-hit rate at command level: the fraction of column commands
    /// that reused an already-open row (clamped to 0 when multi-burst
    /// accounting makes ACTs outnumber columns).
    pub fn row_hit_rate(&self) -> f64 {
        let cols = self.col_cmds();
        if cols == 0 {
            0.0
        } else {
            1.0 - (self.acts.min(cols) as f64 / cols as f64)
        }
    }
}

/// Snapshot of everything the auditor has observed.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AuditStats {
    /// Commands observed.
    pub cmds_audited: u64,
    /// Total violations (a command can break more than one rule).
    pub violations: u64,
    /// Violation counts, indexed like [`ALL_RULES`].
    pub rule_counts: [u64; RULE_COUNT],
    /// The first violation observed, in full detail.
    pub first_violation: Option<ViolationRecord>,
    /// Per-channel command histograms.
    pub per_channel: Vec<CmdHistogram>,
    /// Cycle of the last observed command (for bus-busy fractions).
    pub last_cycle: Cycle,
}

impl AuditStats {
    /// Violation count for one rule.
    pub fn rule_count(&self, rule: TimingRule) -> u64 {
        self.rule_counts[rule_index(rule)]
    }

    /// Aggregate histogram over all channels.
    pub fn total_histogram(&self) -> CmdHistogram {
        let mut t = CmdHistogram::default();
        for h in &self.per_channel {
            t.acts += h.acts;
            t.pres += h.pres;
            t.reads += h.reads;
            t.writes += h.writes;
            t.refreshes += h.refreshes;
            t.bus_busy_cycles += h.bus_busy_cycles;
        }
        t
    }

    /// Fraction of time `channel`'s data bus carried data, over the span
    /// from cycle 0 to the last observed command.
    pub fn bus_busy_fraction(&self, channel: usize) -> f64 {
        if self.last_cycle == 0 || channel >= self.per_channel.len() {
            0.0
        } else {
            self.per_channel[channel].bus_busy_cycles as f64 / self.last_cycle as f64
        }
    }

    /// True when no command broke any rule.
    pub fn clean(&self) -> bool {
        self.violations == 0
    }
}

/// Shadow timing state of one bank.
#[derive(Debug, Clone, Copy, Default)]
struct BankShadow {
    open: bool,
    last_act: Option<Cycle>,
    last_pre: Option<Cycle>,
    last_rd: Option<Cycle>,
    last_wr_data_end: Option<Cycle>,
}

/// Shadow timing state of one rank. The tFAW window needs only the last
/// four ACT times, kept in a fixed ring so observation never allocates.
#[derive(Debug, Clone, Copy, Default)]
struct RankShadow {
    acts: [Cycle; 4],
    act_count: u64,
    wr_data_end: Option<Cycle>,
    refreshing_until: Cycle,
}

impl RankShadow {
    fn last_act(&self) -> Option<Cycle> {
        if self.act_count == 0 {
            None
        } else {
            Some(self.acts[((self.act_count - 1) % 4) as usize])
        }
    }

    /// The ACT that would fall out of the window if one more issued now:
    /// with four or more past ACTs, the fourth-most-recent one.
    fn faw_anchor(&self) -> Option<Cycle> {
        if self.act_count < 4 {
            None
        } else {
            Some(self.acts[(self.act_count % 4) as usize])
        }
    }

    fn push_act(&mut self, now: Cycle) {
        self.acts[(self.act_count % 4) as usize] = now;
        self.act_count += 1;
    }
}

/// Shadow state of one channel.
#[derive(Debug, Clone, Copy, Default)]
struct ChanShadow {
    last_col: Option<Cycle>,
    bus_free_at: Cycle,
}

/// Incremental Table I timing validator over an issued-command stream.
///
/// Feed commands in issue order with [`TimingAuditor::observe`]; read the
/// verdict with [`TimingAuditor::stats`]. State updates are applied even
/// for violating commands so one bug does not cascade into spurious
/// reports against every later command.
#[derive(Debug, Clone)]
pub struct TimingAuditor {
    t: TimingParams,
    ranks_per_channel: usize,
    banks_per_rank: usize,
    banks: Vec<BankShadow>,
    ranks: Vec<RankShadow>,
    chans: Vec<ChanShadow>,
    stats: AuditStats,
}

impl TimingAuditor {
    /// Builds an auditor sized for `topology` under `timing`. All shadow
    /// state is allocated here, once.
    pub fn new(topology: &Topology, timing: TimingParams) -> Self {
        let nch = topology.channels;
        let nr = topology.ranks;
        let nb = topology.banks;
        Self {
            t: timing,
            ranks_per_channel: nr,
            banks_per_rank: nb,
            banks: vec![BankShadow::default(); nch * nr * nb],
            ranks: vec![RankShadow::default(); nch * nr],
            chans: vec![ChanShadow::default(); nch],
            stats: AuditStats {
                per_channel: vec![CmdHistogram::default(); nch],
                ..Default::default()
            },
        }
    }

    /// Everything observed so far.
    pub fn stats(&self) -> &AuditStats {
        &self.stats
    }

    /// Zeroes the counters (warmup boundary). Shadow timing state is
    /// preserved so constraints keep holding across the reset.
    pub fn reset_stats(&mut self) {
        let nch = self.chans.len();
        self.stats = AuditStats {
            per_channel: vec![CmdHistogram::default(); nch],
            ..Default::default()
        };
    }

    fn violate(&mut self, rule: TimingRule, cmd: &IssuedCmd, deadline: Cycle) {
        self.stats.violations += 1;
        self.stats.rule_counts[rule_index(rule)] += 1;
        if self.stats.first_violation.is_none() {
            self.stats.first_violation = Some(ViolationRecord {
                rule,
                cmd: *cmd,
                deadline,
            });
        }
    }

    /// Validates one command and folds it into the shadow state.
    pub fn observe(&mut self, cmd: &IssuedCmd) {
        self.stats.cmds_audited += 1;
        let now = cmd.cycle;
        self.stats.last_cycle = self.stats.last_cycle.max(now);
        let t = self.t;
        if !now.is_multiple_of(t.cmd_clock_divisor) {
            self.violate(TimingRule::ClockAlign, cmd, now + 1);
        }
        let loc = cmd.loc;
        if loc.channel >= self.chans.len()
            || loc.rank >= self.ranks_per_channel
            || loc.bank >= self.banks_per_rank
        {
            self.violate(TimingRule::BankState, cmd, 0);
            return;
        }
        let rank_idx = loc.channel * self.ranks_per_channel + loc.rank;
        let bank_idx = rank_idx * self.banks_per_rank + loc.bank;

        {
            let hist = &mut self.stats.per_channel[loc.channel];
            match cmd.kind {
                IssuedKind::Activate => hist.acts += 1,
                IssuedKind::Precharge => hist.pres += 1,
                IssuedKind::Read => {
                    hist.reads += 1;
                    hist.bus_busy_cycles += t.t_bl;
                }
                IssuedKind::Write => {
                    hist.writes += 1;
                    hist.bus_busy_cycles += t.t_bl;
                }
                IssuedKind::Refresh => hist.refreshes += 1,
            }
        }

        // No command other than the refresh itself may target a rank
        // inside its tRFC window. The refresh-forced precharges are not
        // exempt: they issue in the same slot as REF but *before* it in
        // stream order, so the window is not yet set when they arrive.
        let ref_until = self.ranks[rank_idx].refreshing_until;
        if cmd.kind != IssuedKind::Refresh && now < ref_until {
            self.violate(TimingRule::RefreshBlock, cmd, ref_until);
        }

        match cmd.kind {
            IssuedKind::Activate => {
                let b = self.banks[bank_idx];
                if b.open {
                    self.violate(TimingRule::BankState, cmd, 0);
                }
                if let Some(a) = b.last_act {
                    if now < a + t.t_rc {
                        self.violate(TimingRule::Trc, cmd, a + t.t_rc);
                    }
                }
                if let Some(p) = b.last_pre {
                    if now < p + t.t_rp {
                        self.violate(TimingRule::Trp, cmd, p + t.t_rp);
                    }
                }
                let r = self.ranks[rank_idx];
                if let Some(prev) = r.last_act() {
                    if now < prev + t.t_rrd {
                        self.violate(TimingRule::Trrd, cmd, prev + t.t_rrd);
                    }
                }
                if let Some(anchor) = r.faw_anchor() {
                    if now < anchor + t.t_faw {
                        self.violate(TimingRule::Tfaw, cmd, anchor + t.t_faw);
                    }
                }
                self.ranks[rank_idx].push_act(now);
                let b = &mut self.banks[bank_idx];
                b.open = true;
                b.last_act = Some(now);
            }
            IssuedKind::Precharge => {
                let b = self.banks[bank_idx];
                if !b.open {
                    self.violate(TimingRule::BankState, cmd, 0);
                }
                if let Some(a) = b.last_act {
                    if now < a + t.t_ras {
                        self.violate(TimingRule::Tras, cmd, a + t.t_ras);
                    }
                }
                if let Some(r) = b.last_rd {
                    if now < r + t.t_rtp {
                        self.violate(TimingRule::Trtp, cmd, r + t.t_rtp);
                    }
                }
                if let Some(w) = b.last_wr_data_end {
                    if now < w + t.t_wr {
                        self.violate(TimingRule::Twr, cmd, w + t.t_wr);
                    }
                }
                let b = &mut self.banks[bank_idx];
                b.open = false;
                b.last_pre = Some(now);
            }
            IssuedKind::Read | IssuedKind::Write => {
                let b = self.banks[bank_idx];
                if !b.open {
                    self.violate(TimingRule::BankState, cmd, 0);
                }
                if let Some(a) = b.last_act {
                    if now < a + t.t_rcd {
                        self.violate(TimingRule::Trcd, cmd, a + t.t_rcd);
                    }
                }
                if let Some(last) = self.chans[loc.channel].last_col {
                    if now < last + t.t_ccd {
                        self.violate(TimingRule::Tccd, cmd, last + t.t_ccd);
                    }
                }
                self.chans[loc.channel].last_col = Some(now);
                let (start, end) = match cmd.kind {
                    IssuedKind::Read => (now + t.t_cas, now + t.t_cas + t.t_bl),
                    _ => (now + t.t_cwd, now + t.t_cwd + t.t_bl),
                };
                let free = self.chans[loc.channel].bus_free_at;
                if start < free {
                    self.violate(
                        TimingRule::BusOverlap,
                        cmd,
                        free.saturating_sub(start) + now,
                    );
                }
                self.chans[loc.channel].bus_free_at = end;
                match cmd.kind {
                    IssuedKind::Read => {
                        if let Some(wend) = self.ranks[rank_idx].wr_data_end {
                            if now < wend + t.t_wtr {
                                self.violate(TimingRule::Twtr, cmd, wend + t.t_wtr);
                            }
                        }
                        self.banks[bank_idx].last_rd = Some(now);
                    }
                    _ => {
                        self.banks[bank_idx].last_wr_data_end = Some(end);
                        self.ranks[rank_idx].wr_data_end = Some(end);
                    }
                }
            }
            IssuedKind::Refresh => {
                if now < ref_until {
                    self.violate(TimingRule::RefreshState, cmd, ref_until);
                }
                let base = rank_idx * self.banks_per_rank;
                let any_open = self.banks[base..base + self.banks_per_rank]
                    .iter()
                    .any(|b| b.open);
                if any_open {
                    self.violate(TimingRule::RefreshState, cmd, 0);
                }
                self.ranks[rank_idx].refreshing_until = now + t.t_rfc;
            }
        }
    }
}

// Snapshot encoding (DESIGN.md §3.13). The auditor serialises its
// timing parameters and topology dimensions along with the shadow
// state, so a decoded auditor is self-contained and keeps enforcing
// the same constraint set it was enforcing at capture.
redcache_types::wire_enum!(TimingRule {
    TimingRule::ClockAlign = 0,
    TimingRule::BankState = 1,
    TimingRule::Trc = 2,
    TimingRule::Trp = 3,
    TimingRule::Tras = 4,
    TimingRule::Trcd = 5,
    TimingRule::Trtp = 6,
    TimingRule::Twr = 7,
    TimingRule::Trrd = 8,
    TimingRule::Tfaw = 9,
    TimingRule::Twtr = 10,
    TimingRule::Tccd = 11,
    TimingRule::BusOverlap = 12,
    TimingRule::RefreshState = 13,
    TimingRule::RefreshBlock = 14,
});
redcache_types::wire_struct!(ViolationRecord {
    rule,
    cmd,
    deadline,
});
redcache_types::wire_struct!(CmdHistogram {
    acts,
    pres,
    reads,
    writes,
    refreshes,
    bus_busy_cycles,
});
redcache_types::wire_struct!(AuditStats {
    cmds_audited,
    violations,
    rule_counts,
    first_violation,
    per_channel,
    last_cycle,
});
redcache_types::wire_struct!(BankShadow {
    open,
    last_act,
    last_pre,
    last_rd,
    last_wr_data_end,
});
redcache_types::wire_struct!(RankShadow {
    acts,
    act_count,
    wr_data_end,
    refreshing_until,
});
redcache_types::wire_struct!(ChanShadow {
    last_col,
    bus_free_at,
});
redcache_types::wire_struct!(TimingAuditor {
    t,
    ranks_per_channel,
    banks_per_rank,
    banks,
    ranks,
    chans,
    stats,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::DramLoc;

    fn topo() -> Topology {
        Topology {
            channels: 2,
            ranks: 2,
            banks: 4,
            rows: 64,
            row_bytes: 1024,
            bytes_per_burst: 64,
        }
    }

    fn t() -> TimingParams {
        TimingParams::ddr4_table1()
    }

    fn cmd(kind: IssuedKind, channel: usize, rank: usize, bank: usize, cycle: Cycle) -> IssuedCmd {
        IssuedCmd {
            kind,
            loc: DramLoc {
                channel,
                rank,
                bank,
                row: 1,
                col: 0,
            },
            cycle,
        }
    }

    #[test]
    fn legal_open_read_close_sequence_is_clean() {
        let timing = t();
        let div = timing.cmd_clock_divisor;
        let align = |c: Cycle| c.next_multiple_of(div);
        let mut a = TimingAuditor::new(&topo(), timing);
        a.observe(&cmd(IssuedKind::Activate, 0, 0, 0, 0));
        a.observe(&cmd(IssuedKind::Read, 0, 0, 0, align(timing.t_rcd)));
        let pre_at = align((timing.t_rcd + timing.t_rtp).max(timing.t_ras));
        a.observe(&cmd(IssuedKind::Precharge, 0, 0, 0, pre_at));
        a.observe(&cmd(
            IssuedKind::Activate,
            0,
            0,
            0,
            align((pre_at + timing.t_rp).max(timing.t_rc)),
        ));
        assert!(
            a.stats().clean(),
            "violations: {:?}",
            a.stats().first_violation
        );
        assert_eq!(a.stats().cmds_audited, 4);
        assert_eq!(a.stats().per_channel[0].acts, 2);
        assert_eq!(a.stats().per_channel[0].reads, 1);
    }

    #[test]
    fn trcd_violation_is_caught_with_deadline() {
        let timing = t();
        let mut a = TimingAuditor::new(&topo(), timing);
        a.observe(&cmd(IssuedKind::Activate, 0, 0, 0, 0));
        a.observe(&cmd(IssuedKind::Read, 0, 0, 0, 2)); // far before tRCD
        assert_eq!(a.stats().rule_count(TimingRule::Trcd), 1);
        let v = a.stats().first_violation.expect("violation recorded");
        assert_eq!(v.rule, TimingRule::Trcd);
        assert_eq!(v.deadline, timing.t_rcd);
    }

    #[test]
    fn act_to_open_bank_is_bank_state_violation() {
        let mut a = TimingAuditor::new(&topo(), t());
        a.observe(&cmd(IssuedKind::Activate, 0, 0, 0, 0));
        a.observe(&cmd(IssuedKind::Activate, 0, 0, 0, 400));
        assert!(a.stats().rule_count(TimingRule::BankState) >= 1);
    }

    #[test]
    fn off_clock_command_is_flagged() {
        let mut a = TimingAuditor::new(&topo(), t());
        a.observe(&cmd(IssuedKind::Activate, 0, 0, 0, 1));
        assert_eq!(a.stats().rule_count(TimingRule::ClockAlign), 1);
    }

    #[test]
    fn out_of_range_location_is_flagged_not_panicking() {
        let mut a = TimingAuditor::new(&topo(), t());
        a.observe(&cmd(IssuedKind::Activate, 7, 0, 0, 0));
        assert_eq!(a.stats().rule_count(TimingRule::BankState), 1);
    }

    #[test]
    fn faw_window_allows_four_blocks_fifth() {
        let timing = t();
        let mut a = TimingAuditor::new(&topo(), timing);
        // Four ACTs spaced exactly tRRD apart: legal.
        for i in 0..4 {
            a.observe(&cmd(
                IssuedKind::Activate,
                0,
                0,
                i,
                i as Cycle * timing.t_rrd,
            ));
        }
        assert!(a.stats().clean());
        // A fifth inside the window of the first: tFAW violation. Use a
        // second row on bank 0? bank 0 is open — use a different rank's
        // bank to keep bank-state clean... same rank is required, so
        // reuse is impossible without PRE; accept the BankState pairing
        // by checking the tFAW count alone.
        a.observe(&cmd(IssuedKind::Activate, 0, 0, 0, 4 * timing.t_rrd));
        assert_eq!(a.stats().rule_count(TimingRule::Tfaw), 1);
    }

    #[test]
    fn refresh_blocks_rank_until_trfc() {
        let timing = t();
        let mut a = TimingAuditor::new(&topo(), timing);
        a.observe(&cmd(IssuedKind::Refresh, 0, 0, 0, 0));
        assert!(a.stats().clean());
        a.observe(&cmd(IssuedKind::Activate, 0, 0, 0, timing.t_rfc - 2));
        assert_eq!(a.stats().rule_count(TimingRule::RefreshBlock), 1);
        // The other rank is unaffected.
        a.observe(&cmd(IssuedKind::Activate, 0, 1, 0, timing.t_rfc - 2));
        assert_eq!(a.stats().rule_count(TimingRule::RefreshBlock), 1);
    }

    #[test]
    fn refresh_with_open_bank_is_refresh_state_violation() {
        let mut a = TimingAuditor::new(&topo(), t());
        a.observe(&cmd(IssuedKind::Activate, 0, 0, 0, 0));
        a.observe(&cmd(IssuedKind::Refresh, 0, 0, 0, 400));
        assert_eq!(a.stats().rule_count(TimingRule::RefreshState), 1);
    }

    #[test]
    fn histogram_and_bus_fraction_accumulate() {
        let timing = t();
        let mut a = TimingAuditor::new(&topo(), timing);
        a.observe(&cmd(IssuedKind::Activate, 1, 0, 0, 0));
        a.observe(&cmd(IssuedKind::Write, 1, 0, 0, timing.t_rcd));
        let h = a.stats().per_channel[1];
        assert_eq!(h.acts, 1);
        assert_eq!(h.writes, 1);
        assert_eq!(h.bus_busy_cycles, timing.t_bl);
        assert!(a.stats().bus_busy_fraction(1) > 0.0);
        assert_eq!(a.stats().bus_busy_fraction(0), 0.0);
        assert_eq!(a.stats().total_histogram().col_cmds(), 1);
    }

    #[test]
    fn reset_stats_preserves_shadow_state() {
        let timing = t();
        let mut a = TimingAuditor::new(&topo(), timing);
        a.observe(&cmd(IssuedKind::Activate, 0, 0, 0, 0));
        a.reset_stats();
        assert_eq!(a.stats().cmds_audited, 0);
        // The bank is still open in the shadow: a second ACT violates.
        a.observe(&cmd(IssuedKind::Activate, 0, 0, 0, 400));
        assert!(a.stats().rule_count(TimingRule::BankState) >= 1);
    }

    #[test]
    fn row_hit_rate_from_histogram() {
        let h = CmdHistogram {
            acts: 3,
            reads: 6,
            writes: 4,
            ..Default::default()
        };
        assert!((h.row_hit_rate() - 0.7).abs() < 1e-12);
        assert_eq!(CmdHistogram::default().row_hit_rate(), 0.0);
    }
}
