//! Deterministic multi-tenant interleaving (DESIGN.md §3.15).
//!
//! [`weave`] merges up to [`MAX_TENANTS`] independently generated
//! scenario traces into one trace set that exercises a single shared
//! DRAM cache. Per thread, the tenants' access streams are drained
//! slot by slot under a [`TenantSchedule`] — round-robin or weighted —
//! and every access is re-based into its tenant's address region
//! ([`redcache_types::tenancy::TENANT_REGION_SHIFT`]) so the simulator
//! can attribute traffic back to tenants by address alone.
//!
//! The weave is a pure function of its inputs: same tenant traces and
//! schedule, same output — which keeps multi-tenant runs bit-identical
//! across scratch and warm-fork paths just like single-tenant ones.

use crate::common::ThreadTraces;
use redcache_cpu::Access;
use redcache_types::tenancy::{tag_addr, TenantSchedule, MAX_TENANTS};
use redcache_types::PhysAddr;

/// Interleaves one trace set per tenant into a single trace set.
///
/// Thread `t` of the result is the slot-scheduled merge of thread `t`
/// of every tenant: slot `k` takes the next access from
/// `sched.tenant_of_slot(k)`, with that tenant's addresses re-based
/// into region `tenant << TENANT_REGION_SHIFT`. A tenant whose stream
/// for the thread is exhausted forfeits its slots (the others keep
/// draining), so the result length is the sum of the inputs' lengths.
///
/// Thread counts may differ between tenants; the result has the
/// maximum, with absent streams treated as empty.
///
/// # Panics
///
/// Panics if `tenants` is empty, exceeds [`MAX_TENANTS`], or does not
/// match `sched.tenants` — the caller validates the schedule first.
pub fn weave(tenants: &[ThreadTraces], sched: &TenantSchedule) -> ThreadTraces {
    assert!(
        !tenants.is_empty() && tenants.len() <= MAX_TENANTS,
        "weave takes 1..={MAX_TENANTS} tenant trace sets"
    );
    assert_eq!(
        tenants.len(),
        sched.tenants as usize,
        "schedule names {} tenants but {} trace sets given",
        sched.tenants,
        tenants.len()
    );
    let threads = tenants.iter().map(|t| t.len()).max().unwrap_or(0);
    let mut out: ThreadTraces = Vec::with_capacity(threads);
    for t in 0..threads {
        let streams: Vec<&[Access]> = tenants
            .iter()
            .map(|traces| traces.get(t).map(Vec::as_slice).unwrap_or(&[]))
            .collect();
        out.push(weave_thread(&streams, sched));
    }
    out
}

/// Slot-schedules one thread's streams into a single tagged stream.
fn weave_thread(streams: &[&[Access]], sched: &TenantSchedule) -> Vec<Access> {
    let total: usize = streams.iter().map(|s| s.len()).sum();
    let mut merged = Vec::with_capacity(total);
    let mut cursor = vec![0usize; streams.len()];
    let mut slot: u64 = 0;
    while merged.len() < total {
        let tenant = sched.tenant_of_slot(slot);
        slot += 1;
        let i = cursor[tenant];
        if i >= streams[tenant].len() {
            // Exhausted tenants forfeit their slots; the round keeps
            // turning so the remaining ratio is preserved.
            continue;
        }
        cursor[tenant] = i + 1;
        let a = streams[tenant][i];
        merged.push(Access {
            addr: PhysAddr::new(tag_addr(tenant, a.addr.raw())),
            ..a
        });
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::GenConfig;
    use crate::suite::Workload;
    use redcache_types::tenancy::tenant_of_addr;

    fn two_tenants() -> Vec<ThreadTraces> {
        let cfg = GenConfig::tiny();
        vec![
            Workload::Kvz.generate(&cfg),
            Workload::Hist.generate(&cfg),
        ]
    }

    #[test]
    fn weave_is_deterministic_and_lossless() {
        let tenants = two_tenants();
        let sched = TenantSchedule::round_robin(2);
        let a = weave(&tenants, &sched);
        let b = weave(&tenants, &sched);
        assert_eq!(a, b);
        for t in 0..a.len() {
            let want: usize = tenants.iter().map(|tr| tr[t].len()).sum();
            assert_eq!(a[t].len(), want, "thread {t} dropped accesses");
        }
    }

    #[test]
    fn addresses_carry_their_tenant_region() {
        let tenants = two_tenants();
        let sched = TenantSchedule::round_robin(2);
        let woven = weave(&tenants, &sched);
        for trace in &woven {
            for acc in trace {
                assert!(tenant_of_addr(acc.addr.raw()) < 2);
            }
        }
        // Both tenants actually appear, and per-thread counts match the
        // source streams exactly (region tags are a bijection).
        let t0: usize = woven
            .iter()
            .flatten()
            .filter(|a| tenant_of_addr(a.addr.raw()) == 0)
            .count();
        let t1: usize = woven
            .iter()
            .flatten()
            .filter(|a| tenant_of_addr(a.addr.raw()) == 1)
            .count();
        assert_eq!(t0, tenants[0].iter().map(Vec::len).sum::<usize>());
        assert_eq!(t1, tenants[1].iter().map(Vec::len).sum::<usize>());
    }

    #[test]
    fn ratio_schedule_front_loads_the_heavy_tenant() {
        let tenants = two_tenants();
        let sched = TenantSchedule::ratio(&[3, 1]).unwrap();
        let woven = weave(&tenants, &sched);
        // In the first full rounds of thread 0, tenant 0 owns 3 of
        // every 4 slots.
        let head: Vec<usize> = woven[0]
            .iter()
            .take(8)
            .map(|a| tenant_of_addr(a.addr.raw()))
            .collect();
        assert_eq!(head, [0, 0, 0, 1, 0, 0, 0, 1]);
    }

    #[test]
    fn exhausted_tenants_forfeit_slots() {
        let cfg = GenConfig::tiny();
        let long = Workload::Hist.generate(&cfg);
        // A much shorter stream: take a prefix of another workload.
        let short: ThreadTraces = Workload::Kvz
            .generate(&cfg)
            .into_iter()
            .map(|t| t.into_iter().take(5).collect())
            .collect();
        let sched = TenantSchedule::round_robin(2);
        let woven = weave(&[short.clone(), long.clone()], &sched);
        for t in 0..woven.len() {
            assert_eq!(woven[t].len(), short[t].len() + long[t].len());
            // The tail is pure tenant 1 once tenant 0 runs dry.
            let tail = &woven[t][woven[t].len().saturating_sub(3)..];
            assert!(tail.iter().all(|a| tenant_of_addr(a.addr.raw()) == 1));
        }
    }

    #[test]
    fn single_tenant_weave_is_identity() {
        let cfg = GenConfig::tiny();
        let traces = Workload::Is.generate(&cfg);
        let woven = weave(std::slice::from_ref(&traces), &TenantSchedule::round_robin(1));
        assert_eq!(woven, traces);
    }
}
