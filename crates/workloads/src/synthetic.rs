//! Parametric synthetic workload for calibration, unit tests, and the
//! Fig. 4 classification demonstration.
//!
//! Generates a reference stream over three explicit block populations —
//! the paper's L, H and X classes (§III, Fig. 4):
//!
//! * **L** — a large streaming region touched `l_reuse` times,
//! * **H** — a hot region with `h_reuse` touches (the bandwidth bulk),
//! * **X** — a small region with very high reuse but little total
//!   bandwidth (it mostly hits in SRAM).

use crate::common::{elem, GenConfig, Layout, ThreadTraces, TraceBuilder};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic three-class stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Lines in the streaming (L) region.
    pub l_lines: u64,
    /// Touches per L line (1 = pure stream).
    pub l_reuse: u32,
    /// Lines in the hot (H) region.
    pub h_lines: u64,
    /// Touches per H line.
    pub h_reuse: u32,
    /// Lines in the tiny very-hot (X) region.
    pub x_lines: u64,
    /// Touches per X line.
    pub x_reuse: u32,
    /// Fraction of touches that are stores, in percent.
    pub store_pct: u8,
    /// Whether the final touch of each H line is forced to be a store
    /// (the §II.C last-write pattern).
    pub last_write: bool,
}

impl SyntheticSpec {
    /// A representative mixed workload: 3/4 streaming, hot quarter.
    pub fn mixed() -> Self {
        Self {
            l_lines: 96 << 10,
            l_reuse: 1,
            h_lines: 24 << 10,
            h_reuse: 24,
            x_lines: 256,
            x_reuse: 200,
            store_pct: 30,
            last_write: true,
        }
    }
}

/// Generates the synthetic stream.
pub fn generate(spec: &SyntheticSpec, cfg: &GenConfig) -> ThreadTraces {
    let mut layout = Layout::new();
    let l = layout.alloc(spec.l_lines * 64);
    let h = layout.alloc(spec.h_lines * 64);
    let x = layout.alloc(spec.x_lines * 64);
    let mut b = TraceBuilder::new(cfg);
    let threads = cfg.threads as u64;
    let mut rng = cfg.rng(0x517);

    for t in 0..threads {
        let tt = t as usize;
        // Interleave: stream L once per reuse round while cycling H/X.
        let l_chunk = (spec.l_lines / threads).max(1);
        let h_chunk = (spec.h_lines / threads).max(1);
        let x_chunk = (spec.x_lines / threads).max(1);
        let (l_lo, h_lo, x_lo) = (t * l_chunk, t * h_chunk, t * x_chunk);
        let emit = |b: &mut TraceBuilder, base, line, store: bool| {
            if store {
                b.store(tt, elem(base, line, 64), 2);
            } else {
                b.load(tt, elem(base, line, 64), 2);
            }
        };
        'outer: for round in 0..spec.h_reuse.max(1) {
            // H region pass.
            for i in 0..h_chunk {
                let store = if spec.last_write && round + 1 == spec.h_reuse {
                    true
                } else {
                    rng.gen_range(0..100) < spec.store_pct as u32
                };
                emit(&mut b, h, h_lo + i, store);
                // X lines are interspersed with high frequency.
                if i % (h_chunk / spec.x_reuse.max(1) as u64).max(1) == 0 {
                    emit(&mut b, x, x_lo + i % x_chunk, false);
                }
                if !b.has_budget(tt) {
                    break 'outer;
                }
            }
            // L region slice for this round.
            if round < spec.l_reuse {
                for i in 0..l_chunk {
                    let store = rng.gen_range(0..100) < spec.store_pct as u32;
                    emit(&mut b, l, l_lo + i, store);
                    if !b.has_budget(tt) {
                        break 'outer;
                    }
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_types::BLOCK_BYTES;
    use std::collections::HashMap;

    #[test]
    fn three_classes_have_expected_reuse_ordering() {
        let spec = SyntheticSpec {
            l_lines: 4096,
            l_reuse: 1,
            h_lines: 512,
            h_reuse: 16,
            x_lines: 16,
            x_reuse: 100,
            store_pct: 20,
            last_write: true,
        };
        let mut cfg = GenConfig::tiny();
        cfg.budget_per_thread = 50_000;
        let flat: Vec<_> = generate(&spec, &cfg).into_iter().flatten().collect();
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for a in &flat {
            *counts.entry(a.addr.line(BLOCK_BYTES).raw()).or_default() += 1;
        }
        // L lines live below h base; compute mean reuse per region.
        let l_end = 4096u64;
        let h_end = l_end + 512;
        let mean = |lo: u64, hi: u64| {
            let (mut s, mut n) = (0u64, 0u64);
            for (&line, &c) in &counts {
                if line >= lo && line < hi {
                    s += c;
                    n += 1;
                }
            }
            if n == 0 {
                0.0
            } else {
                s as f64 / n as f64
            }
        };
        let l_mean = mean(0, l_end);
        let h_mean = mean(l_end, h_end);
        let x_mean = mean(h_end, h_end + 16);
        assert!(
            h_mean > 2.0 * l_mean,
            "H ({h_mean}) must out-reuse L ({l_mean})"
        );
        assert!(x_mean > h_mean, "X ({x_mean}) must out-reuse H ({h_mean})");
    }

    #[test]
    fn deterministic() {
        let spec = SyntheticSpec::mixed();
        let cfg = GenConfig::tiny();
        assert_eq!(generate(&spec, &cfg), generate(&spec, &cfg));
    }
}
