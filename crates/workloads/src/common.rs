//! Shared generator infrastructure: sizing, address layout, and the
//! per-thread trace builder.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use redcache_cpu::Access;
use redcache_types::{MemOp, PhysAddr, PAGE_BYTES};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Per-thread traces: `traces[t]` is thread `t`'s reference stream.
pub type ThreadTraces = Vec<Vec<Access>>;

/// Per-thread traces behind reference counting: one generated trace set
/// can feed any number of concurrent simulations without cloning a
/// single access record. Cloning a `SharedTraces` is `threads` atomic
/// increments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SharedTraces(Vec<Arc<[Access]>>);

impl SharedTraces {
    /// Number of per-thread streams.
    pub fn threads(&self) -> usize {
        self.0.len()
    }

    /// True when no thread has a stream.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Total accesses across all threads.
    pub fn total_accesses(&self) -> u64 {
        self.0.iter().map(|t| t.len() as u64).sum()
    }

    /// The per-thread streams.
    pub fn streams(&self) -> &[Arc<[Access]>] {
        &self.0
    }

    /// Stable 64-bit identity of the trace *content* (FNV-1a over every
    /// access of every thread), independent of how the traces were
    /// produced. Warm-snapshot files are keyed on this (DESIGN.md
    /// §3.13), mirroring how the RCTR trace cache keys on
    /// [`crate::trace_io::cache_key`]: a snapshot is only ever restored
    /// into a simulation replaying byte-identical streams.
    pub fn content_key(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(self.0.len() as u64);
        for stream in &self.0 {
            mix(stream.len() as u64);
            for a in stream.iter() {
                mix(a.op.is_store() as u64);
                mix(a.addr.raw());
                mix(a.gap as u64);
            }
        }
        h
    }
}

// Traces are immutable inputs: their "state" is the (reference-counted)
// streams themselves, so snapshotting costs `threads` atomic increments
// and restoring re-points the shared streams.
impl redcache_types::Snapshot for SharedTraces {
    type State = SharedTraces;

    fn snapshot(&self) -> SharedTraces {
        self.clone()
    }
}

impl redcache_types::Restorable for SharedTraces {
    fn restore(&mut self, state: &SharedTraces) {
        *self = state.clone();
    }
}

impl From<ThreadTraces> for SharedTraces {
    fn from(traces: ThreadTraces) -> Self {
        Self(traces.into_iter().map(Arc::from).collect())
    }
}

impl From<Vec<Arc<[Access]>>> for SharedTraces {
    fn from(streams: Vec<Arc<[Access]>>) -> Self {
        Self(streams)
    }
}

impl IntoIterator for SharedTraces {
    type Item = Arc<[Access]>;
    type IntoIter = std::vec::IntoIter<Arc<[Access]>>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

/// Generator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenConfig {
    /// Worker threads (one per simulated core; 16 in the paper).
    pub threads: usize,
    /// Linear size divisor: 1 = the "scaled" evaluation preset of
    /// DESIGN.md §1 (footprints of tens of MB); larger values shrink
    /// every array for fast tests.
    pub shrink: usize,
    /// Per-thread access budget; generation stops once every thread has
    /// emitted this many references.
    pub budget_per_thread: usize,
    /// RNG seed, so traces are fully deterministic.
    pub seed: u64,
}

impl GenConfig {
    /// The evaluation preset: 16 threads, full scaled footprints,
    /// ~100 k references per thread.
    pub fn scaled() -> Self {
        Self {
            threads: 16,
            shrink: 1,
            budget_per_thread: 250_000,
            seed: 0x5EED_CAFE,
        }
    }

    /// A fast preset for unit tests: 4 threads, heavily shrunk arrays.
    pub fn tiny() -> Self {
        Self {
            threads: 4,
            shrink: 8,
            budget_per_thread: 3_000,
            seed: 0x5EED_CAFE,
        }
    }

    /// Deterministic RNG for (workload, thread) pairs.
    pub fn rng(&self, salt: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Divides a linear dimension by the shrink factor (minimum 4).
    pub fn dim(&self, full: usize) -> usize {
        (full / self.shrink).max(4)
    }

    /// Divides an element count by the shrink factor (minimum 64).
    pub fn count(&self, full: usize) -> usize {
        (full / self.shrink).max(64)
    }
}

/// A bump allocator laying out each workload's arrays in the physical
/// address space, page-aligned.
#[derive(Debug, Default)]
pub struct Layout {
    next: u64,
}

impl Layout {
    /// Creates a layout starting at address zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates `bytes`, rounded up to whole 4 KB pages, and returns
    /// the base address.
    pub fn alloc(&mut self, bytes: u64) -> PhysAddr {
        let base = self.next;
        let pages = bytes.div_ceil(PAGE_BYTES as u64).max(1);
        self.next += pages * PAGE_BYTES as u64;
        PhysAddr::new(base)
    }

    /// Total bytes allocated (footprint upper bound).
    pub fn used(&self) -> u64 {
        self.next
    }
}

/// A per-thread trace builder that enforces the access budget.
#[derive(Debug)]
pub struct TraceBuilder {
    traces: ThreadTraces,
    budget: usize,
}

impl TraceBuilder {
    /// Creates builders for `cfg.threads` threads.
    pub fn new(cfg: &GenConfig) -> Self {
        Self {
            traces: (0..cfg.threads)
                .map(|_| Vec::with_capacity(cfg.budget_per_thread))
                .collect(),
            budget: cfg.budget_per_thread,
        }
    }

    /// True when thread `t` may still emit references.
    pub fn has_budget(&self, t: usize) -> bool {
        self.traces[t].len() < self.budget
    }

    /// True when every thread's budget is exhausted.
    pub fn exhausted(&self) -> bool {
        self.traces.iter().all(|t| t.len() >= self.budget)
    }

    /// Emits a load by thread `t` (silently dropped past the budget).
    pub fn load(&mut self, t: usize, addr: PhysAddr, gap: u32) {
        if self.has_budget(t) {
            self.traces[t].push(Access {
                op: MemOp::Load,
                addr,
                gap,
            });
        }
    }

    /// Emits a store by thread `t`.
    pub fn store(&mut self, t: usize, addr: PhysAddr, gap: u32) {
        if self.has_budget(t) {
            self.traces[t].push(Access {
                op: MemOp::Store,
                addr,
                gap,
            });
        }
    }

    /// Finishes generation.
    pub fn build(self) -> ThreadTraces {
        self.traces
    }
}

/// Index helper: byte address of element `i` in an array of `elem` -byte
/// elements based at `base`.
pub fn elem(base: PhysAddr, i: u64, elem_bytes: u64) -> PhysAddr {
    PhysAddr::new(base.raw() + i * elem_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_page_aligned_and_disjoint() {
        let mut l = Layout::new();
        let a = l.alloc(100);
        let b = l.alloc(5000);
        let c = l.alloc(1);
        assert_eq!(a.raw() % PAGE_BYTES as u64, 0);
        assert_eq!(b.raw(), 4096);
        assert_eq!(c.raw(), 4096 + 8192);
        assert_eq!(l.used(), 4096 + 8192 + 4096);
    }

    #[test]
    fn builder_enforces_budget() {
        let cfg = GenConfig {
            threads: 2,
            shrink: 8,
            budget_per_thread: 3,
            seed: 1,
        };
        let mut b = TraceBuilder::new(&cfg);
        for i in 0..10 {
            b.load(0, PhysAddr::new(i * 64), 1);
        }
        assert!(!b.has_budget(0));
        assert!(b.has_budget(1));
        b.store(1, PhysAddr::new(0), 0);
        assert!(!b.exhausted());
        let t = b.build();
        assert_eq!(t[0].len(), 3);
        assert_eq!(t[1].len(), 1);
    }

    #[test]
    fn config_shrink_floors() {
        let cfg = GenConfig::tiny();
        assert_eq!(cfg.dim(16), 4);
        assert!(cfg.count(100_000) >= 64);
    }

    #[test]
    fn rng_is_deterministic_per_salt() {
        use rand::Rng;
        let cfg = GenConfig::scaled();
        let a: u64 = cfg.rng(1).gen();
        let b: u64 = cfg.rng(1).gen();
        let c: u64 = cfg.rng(2).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn elem_addressing() {
        let base = PhysAddr::new(4096);
        assert_eq!(elem(base, 3, 8).raw(), 4096 + 24);
    }
}
