//! SPLASH-2 **FFT** — 1D complex FFT (1,048,576-point-shaped), six-step
//! algorithm.
//!
//! The data is viewed as a √N×√N matrix: blocked transpose, per-row
//! FFTs (log2 stages of butterflies), twiddle scaling, and a final
//! transpose. Transposes produce strided low-locality traffic; row FFTs
//! revisit each row log2(√N) times. Rows are partitioned across threads.

use crate::common::{elem, GenConfig, Layout, ThreadTraces, TraceBuilder};
use redcache_types::PhysAddr;

const ELEM: u64 = 16; // complex<f64>

fn transpose(b: &mut TraceBuilder, src: PhysAddr, dst: PhysAddr, m: usize, threads: usize) {
    const TB: usize = 8; // transpose tile
    let tiles = m / TB;
    for ti in 0..tiles {
        let t = ti % threads;
        if !b.has_budget(t) {
            continue;
        }
        for tj in 0..tiles {
            for i in 0..TB {
                for j in 0..TB {
                    let r = (ti * TB + i) as u64;
                    let c = (tj * TB + j) as u64;
                    b.load(t, elem(src, r * m as u64 + c, ELEM), 2);
                    b.store(t, elem(dst, c * m as u64 + r, ELEM), 1);
                }
            }
        }
    }
}

fn row_ffts(b: &mut TraceBuilder, base: PhysAddr, m: usize, threads: usize) {
    let stages = m.trailing_zeros().max(1);
    for row in 0..m {
        let t = row % threads;
        if !b.has_budget(t) {
            continue;
        }
        let rbase = elem(base, (row * m) as u64, ELEM);
        for _s in 0..stages {
            let mut i = 0u64;
            while i + 1 < m as u64 {
                b.load(t, elem(rbase, i, ELEM), 7);
                b.load(t, elem(rbase, i + 1, ELEM), 2);
                b.store(t, elem(rbase, i, ELEM), 3);
                b.store(t, elem(rbase, i + 1, ELEM), 2);
                i += 2;
            }
        }
    }
}

pub(crate) fn generate(cfg: &GenConfig) -> ThreadTraces {
    // √N, kept a power of two and a multiple of the transpose tile.
    let m = cfg.count(256).next_power_of_two();
    let n = (m * m) as u64;
    let mut layout = Layout::new();
    let data = layout.alloc(n * ELEM);
    let scratch = layout.alloc(n * ELEM);
    let mut b = TraceBuilder::new(cfg);
    let threads = cfg.threads;

    transpose(&mut b, data, scratch, m, threads);
    row_ffts(&mut b, scratch, m, threads);
    transpose(&mut b, scratch, data, m, threads);
    row_ffts(&mut b, data, m, threads);
    transpose(&mut b, data, scratch, m, threads);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_cpu::TraceStats;

    #[test]
    fn deterministic() {
        let cfg = GenConfig::tiny();
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn butterfly_stages_drive_reuse() {
        let cfg = GenConfig::tiny();
        let flat: Vec<_> = generate(&cfg).into_iter().flatten().collect();
        let s = TraceStats::from_trace(&flat);
        let reuse = s.accesses as f64 / s.footprint_lines as f64;
        assert!(reuse > 3.0, "log2 stages revisit every row: {reuse}");
        assert!(s.store_fraction() > 0.3);
    }
}
