//! The tag-and-data (TAD) store of the HBM cache, generic over a
//! set-level [`ReplacementPolicy`] (DESIGN.md §3.14).
//!
//! Following Alloy [2], the HBM is organised as a cache whose tag
//! travels with the data in the otherwise-unused ECC bits (§IV.A,
//! [32]) — so one WideIO burst carries tag + data, and RedCache's extra
//! r-count byte rides along at no transfer cost (§III.A.2). The paper's
//! controllers use the direct-mapped organisation
//! (`TagStore<DirectMapped>`, the default, bit-exact with the
//! pre-trait store — pinned by `tests/tagstore_lockstep.rs`); the FBR
//! policy runs the same store set-associatively over [`Lfu`] frequency
//! state.
//!
//! The store is *functional*: besides the tag it keeps per-64 B-line
//! payload versions (up to 4 sub-lines for the 256 B granularity sweep)
//! so controllers can return provably fresh data.

use redcache_cache::{DirectMapped, ReplacementPolicy};
use redcache_types::{LineAddr, SatCounter};
use serde::{Deserialize, Serialize};

#[cfg(doc)]
use redcache_cache::Lfu;

/// The paper's block classification (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockClass {
    /// Low reuse: not worth caching (bypass to DDR).
    L,
    /// High reuse, high bandwidth share: cache in HBM.
    H,
    /// High reuse, low bandwidth share: cacheable, first eviction victim.
    X,
}

/// Classifies a block by its reuse count against the α/γ thresholds,
/// weighted by the bandwidth share of its homo-reuse group.
pub fn classify(reuse: u32, bandwidth_share: f64, alpha: u32, gamma: u32) -> BlockClass {
    if reuse < alpha {
        BlockClass::L
    } else if reuse >= gamma && bandwidth_share < 0.05 {
        BlockClass::X
    } else {
        BlockClass::H
    }
}

/// One resident DRAM-cache block.
#[derive(Debug, Clone)]
pub struct TagEntry {
    /// Block index (line address divided by lines-per-block).
    pub block: u64,
    /// Dirty flag.
    pub dirty: bool,
    /// Per-64 B sub-line payload versions.
    pub versions: [u64; 4],
    /// RedCache's r-count (reuse count since fill, §III.A.2).
    pub r_count: SatCounter,
}

/// The TAD array: `sets × assoc` frames, victim selection delegated to
/// `P`. The default (`assoc = 1`, [`DirectMapped`]) reproduces the
/// paper's direct-mapped organisation exactly.
#[derive(Debug)]
pub struct TagStore<P: ReplacementPolicy = DirectMapped> {
    ways: Vec<Option<TagEntry>>, // sets * assoc, row-major by set
    sets: usize,
    assoc: usize,
    lines_per_block: u64,
    occupancy: usize,
    policy: P,
}

impl<P: ReplacementPolicy> TagStore<P> {
    /// Builds a direct-mapped tag store with `sets` sets, each holding
    /// one block of `lines_per_block` 64 B lines.
    ///
    /// # Panics
    ///
    /// Panics if `sets == 0` or `lines_per_block` is not 1, 2 or 4.
    pub fn new(sets: usize, lines_per_block: u64) -> Self {
        Self::with_assoc(sets, 1, lines_per_block)
    }

    /// Builds a set-associative tag store: `sets` sets of `assoc`
    /// block frames each.
    ///
    /// # Panics
    ///
    /// Panics if `sets == 0`, `assoc == 0`, or `lines_per_block` is not
    /// 1, 2 or 4.
    pub fn with_assoc(sets: usize, assoc: usize, lines_per_block: u64) -> Self {
        assert!(sets > 0, "need at least one set");
        assert!(assoc > 0, "need at least one way");
        assert!(
            [1, 2, 4].contains(&lines_per_block),
            "lines_per_block must be 1, 2 or 4"
        );
        Self {
            ways: vec![None; sets * assoc],
            sets,
            assoc,
            lines_per_block,
            occupancy: 0,
            policy: P::new(sets, assoc),
        }
    }

    /// Number of sets.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Block frames per set.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// 64 B lines per cache block.
    pub fn lines_per_block(&self) -> u64 {
        self.lines_per_block
    }

    /// Block index containing `line`.
    pub fn block_of(&self, line: LineAddr) -> u64 {
        line.raw() / self.lines_per_block
    }

    /// Set index of the block containing `line`.
    pub fn set_of(&self, line: LineAddr) -> usize {
        (self.block_of(line) % self.sets as u64) as usize
    }

    /// Sub-line slot of `line` within its block.
    pub fn subline_of(&self, line: LineAddr) -> usize {
        (line.raw() % self.lines_per_block) as usize
    }

    /// Way (within its set) holding `line`'s block, if resident.
    fn way_of(&self, line: LineAddr) -> Option<usize> {
        let b = self.block_of(line);
        let base = self.set_of(line) * self.assoc;
        (0..self.assoc).find(|&w| matches!(&self.ways[base + w], Some(e) if e.block == b))
    }

    /// First free frame of `set`, if any.
    fn free_way(&self, set: usize) -> Option<usize> {
        let base = set * self.assoc;
        (0..self.assoc).find(|&w| self.ways[base + w].is_none())
    }

    /// The resident entry holding `line`'s block.
    pub fn entry(&self, line: LineAddr) -> Option<&TagEntry> {
        let w = self.way_of(line)?;
        self.ways[self.set_of(line) * self.assoc + w].as_ref()
    }

    /// Mutable resident entry holding `line`'s block.
    pub fn entry_mut(&mut self, line: LineAddr) -> Option<&mut TagEntry> {
        let w = self.way_of(line)?;
        let s = self.set_of(line);
        self.ways[s * self.assoc + w].as_mut()
    }

    /// True when the block containing `line` is resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.way_of(line).is_some()
    }

    /// Way (within its set) currently holding `line`'s block, if
    /// resident. Associative controllers use this right after
    /// [`Self::install`] to address per-way policy state.
    pub fn resident_way(&self, line: LineAddr) -> Option<usize> {
        self.way_of(line)
    }

    /// Notifies the replacement policy of a reference to `line`'s
    /// resident block (no-op when absent).
    pub fn touch(&mut self, line: LineAddr) {
        if let Some(w) = self.way_of(line) {
            let s = self.set_of(line);
            self.policy.touch(s, w);
        }
    }

    /// True when `line`'s set still has a free frame (an install would
    /// not displace anything).
    pub fn has_free_way(&self, line: LineAddr) -> bool {
        self.free_way(self.set_of(line)).is_some()
    }

    /// The entry the policy would displace to make room for `line`:
    /// `None` while the set still has a free frame (or when the victim
    /// frame would be the block's own — i.e. `line` is resident).
    pub fn victim_entry(&self, line: LineAddr) -> Option<&TagEntry> {
        if self.contains(line) {
            return None;
        }
        let s = self.set_of(line);
        if self.free_way(s).is_some() {
            return None;
        }
        self.ways[s * self.assoc + self.policy.victim(s)].as_ref()
    }

    /// The replacement policy's current ordering state.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable replacement-policy state (FBR seeds fill frequencies
    /// through this).
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Installs the block containing `line`, displacing the policy's
    /// victim if the set is full; any displaced occupant is returned.
    /// Re-installing a resident block replaces it in place (resetting
    /// its r-count) and returns the previous entry.
    pub fn install(&mut self, line: LineAddr, versions: [u64; 4], dirty: bool) -> Option<TagEntry> {
        let b = self.block_of(line);
        let s = self.set_of(line);
        let fresh = TagEntry {
            block: b,
            dirty,
            versions,
            r_count: SatCounter::u8_zero(),
        };
        if let Some(w) = self.way_of(line) {
            let old = self.ways[s * self.assoc + w].replace(fresh);
            self.policy.evict(s, w);
            self.policy.fill(s, w);
            return old;
        }
        if let Some(w) = self.free_way(s) {
            self.ways[s * self.assoc + w] = Some(fresh);
            self.occupancy += 1;
            self.policy.fill(s, w);
            return None;
        }
        let w = self.policy.victim(s);
        debug_assert!(w < self.assoc, "policy victim out of range");
        let old = self.ways[s * self.assoc + w].replace(fresh);
        self.policy.evict(s, w);
        self.policy.fill(s, w);
        old
    }

    /// Removes the block containing `line` (exact match only).
    pub fn invalidate(&mut self, line: LineAddr) -> Option<TagEntry> {
        let w = self.way_of(line)?;
        let s = self.set_of(line);
        self.occupancy -= 1;
        self.policy.evict(s, w);
        self.ways[s * self.assoc + w].take()
    }

    /// Resident block count.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// First 64 B line of block `block`.
    pub fn block_first_line(&self, block: u64) -> LineAddr {
        LineAddr::new(block * self.lines_per_block)
    }

    /// The HBM-internal physical address of the frame holding `line`
    /// (frames laid out contiguously, one block each). For absent lines
    /// this is the set's first frame — with `assoc = 1` that is exactly
    /// the pre-trait "one block per set" address; associative
    /// controllers compute fill addresses *after* `install`, when the
    /// resident way is known.
    pub fn hbm_addr(&self, line: LineAddr, block_bytes: usize) -> redcache_types::PhysAddr {
        let frame = self.set_of(line) * self.assoc + self.way_of(line).unwrap_or(0);
        redcache_types::PhysAddr::new(frame as u64 * block_bytes as u64)
    }
}

/// The pre-trait direct-mapped tag store, verbatim — a frozen oracle
/// for the lockstep suite in `tests/tagstore_lockstep.rs`. Not part of
/// the supported API.
#[doc(hidden)]
#[derive(Debug)]
pub struct ReferenceTagStore {
    sets: Vec<Option<TagEntry>>,
    lines_per_block: u64,
    occupancy: usize,
}

#[doc(hidden)]
impl ReferenceTagStore {
    pub fn new(sets: usize, lines_per_block: u64) -> Self {
        assert!(sets > 0, "need at least one set");
        assert!(
            [1, 2, 4].contains(&lines_per_block),
            "lines_per_block must be 1, 2 or 4"
        );
        Self {
            sets: vec![None; sets],
            lines_per_block,
            occupancy: 0,
        }
    }

    pub fn block_of(&self, line: LineAddr) -> u64 {
        line.raw() / self.lines_per_block
    }

    pub fn set_of(&self, line: LineAddr) -> usize {
        (self.block_of(line) % self.sets.len() as u64) as usize
    }

    pub fn entry(&self, line: LineAddr) -> Option<&TagEntry> {
        self.sets[self.set_of(line)].as_ref()
    }

    pub fn contains(&self, line: LineAddr) -> bool {
        let b = self.block_of(line);
        matches!(self.entry(line), Some(e) if e.block == b)
    }

    pub fn install(&mut self, line: LineAddr, versions: [u64; 4], dirty: bool) -> Option<TagEntry> {
        let b = self.block_of(line);
        let s = self.set_of(line);
        let old = self.sets[s].take();
        if old.is_none() {
            self.occupancy += 1;
        }
        self.sets[s] = Some(TagEntry {
            block: b,
            dirty,
            versions,
            r_count: SatCounter::u8_zero(),
        });
        old
    }

    pub fn invalidate(&mut self, line: LineAddr) -> Option<TagEntry> {
        let b = self.block_of(line);
        let s = self.set_of(line);
        if matches!(&self.sets[s], Some(e) if e.block == b) {
            self.occupancy -= 1;
            return self.sets[s].take();
        }
        None
    }

    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    pub fn hbm_addr(&self, line: LineAddr, block_bytes: usize) -> redcache_types::PhysAddr {
        redcache_types::PhysAddr::new(self.set_of(line) as u64 * block_bytes as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_cache::Lfu;

    #[test]
    fn install_and_hit() {
        let mut t: TagStore = TagStore::new(16, 1);
        let l = LineAddr::new(5);
        assert!(!t.contains(l));
        assert!(t.install(l, [7, 0, 0, 0], false).is_none());
        assert!(t.contains(l));
        assert_eq!(t.entry(l).unwrap().versions[0], 7);
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn conflicting_blocks_evict() {
        let mut t: TagStore = TagStore::new(16, 1);
        let a = LineAddr::new(5);
        let b = LineAddr::new(5 + 16); // same set
        t.install(a, [1, 0, 0, 0], true);
        let old = t.install(b, [2, 0, 0, 0], false).expect("victim");
        assert_eq!(old.block, 5);
        assert!(old.dirty);
        assert!(t.contains(b));
        assert!(!t.contains(a));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn multi_line_blocks_share_entries() {
        let t2 = {
            let mut t: TagStore = TagStore::new(8, 2);
            t.install(LineAddr::new(4), [1, 2, 0, 0], false);
            t
        };
        // Lines 4 and 5 are in block 2.
        assert!(t2.contains(LineAddr::new(4)));
        assert!(t2.contains(LineAddr::new(5)));
        assert!(!t2.contains(LineAddr::new(6)));
        assert_eq!(t2.subline_of(LineAddr::new(5)), 1);
    }

    #[test]
    fn invalidate_requires_exact_block() {
        let mut t: TagStore = TagStore::new(16, 1);
        t.install(LineAddr::new(5), [1, 0, 0, 0], false);
        assert!(t.invalidate(LineAddr::new(5 + 16)).is_none()); // same set, other block
        assert!(t.invalidate(LineAddr::new(5)).is_some());
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn hbm_addresses_are_unique_per_set() {
        let t: TagStore = TagStore::new(64, 1);
        let a = t.hbm_addr(LineAddr::new(3), 64);
        let b = t.hbm_addr(LineAddr::new(3 + 64), 64);
        assert_eq!(a, b, "same set, same address");
        let c = t.hbm_addr(LineAddr::new(4), 64);
        assert_ne!(a, c);
    }

    #[test]
    fn associative_sets_hold_conflicting_blocks() {
        // 4 sets × 2 ways over LFU: two conflicting blocks coexist and
        // the third displaces the colder one.
        let mut t: TagStore<Lfu> = TagStore::with_assoc(4, 2, 1);
        let a = LineAddr::new(1);
        let b = LineAddr::new(1 + 4); // same set
        let c = LineAddr::new(1 + 8); // same set
        assert!(t.install(a, [1, 0, 0, 0], false).is_none());
        assert!(t.install(b, [2, 0, 0, 0], false).is_none());
        assert!(t.contains(a) && t.contains(b));
        assert_eq!(t.occupancy(), 2);
        t.touch(a); // block a becomes the hot one
        let victim = t.victim_entry(c).expect("set full");
        assert_eq!(victim.block, t.block_of(b));
        let old = t.install(c, [3, 0, 0, 0], false).expect("displacement");
        assert_eq!(old.block, t.block_of(b));
        assert!(t.contains(a) && t.contains(c) && !t.contains(b));
    }

    #[test]
    fn associative_hbm_addresses_follow_the_resident_way() {
        let mut t: TagStore<Lfu> = TagStore::with_assoc(4, 2, 1);
        let a = LineAddr::new(1);
        let b = LineAddr::new(1 + 4);
        t.install(a, [0; 4], false);
        t.install(b, [0; 4], false);
        let pa = t.hbm_addr(a, 64);
        let pb = t.hbm_addr(b, 64);
        assert_ne!(pa, pb, "co-resident blocks occupy distinct frames");
    }

    #[test]
    fn classify_matches_figure4() {
        // Low reuse -> L regardless of bandwidth.
        assert_eq!(classify(1, 0.5, 4, 20), BlockClass::L);
        // High reuse carrying the bandwidth bulk -> H.
        assert_eq!(classify(10, 0.4, 4, 20), BlockClass::H);
        // Very high reuse but negligible bandwidth -> X.
        assert_eq!(classify(30, 0.01, 4, 20), BlockClass::X);
    }

    #[test]
    #[should_panic(expected = "lines_per_block")]
    fn bad_lines_per_block_panics() {
        let _: TagStore = TagStore::new(4, 3);
    }
}
