//! Reference linear-scan scheduler kernel.
//!
//! This module preserves the original brute-force FR-FCFS kernel — a
//! flat `Vec` transaction queue rescanned in full every slot, O(n)
//! `Vec::remove` retirement, and a per-candidate `row_has_pending_hits`
//! rescan — exactly as it behaved before the indexed kernel (DESIGN.md
//! §3.8) replaced it. It exists for one purpose: **differential
//! testing**. The property suite in `tests/indexed_vs_reference.rs`
//! drives random enqueue/issue/retire sequences through both kernels
//! and asserts identical command picks, issue cycles, horizons and
//! statistics at every slot.
//!
//! The implementation is deliberately simple rather than fast; do not
//! use it for experiments. It is `#[doc(hidden)]` because it is a test
//! oracle, not part of the supported API surface.

#![doc(hidden)]

use crate::bank::{Bank, Rank};
use crate::config::DramConfig;
use crate::stats::DramStats;
use crate::system::{Completion, IssuedCmd, IssuedKind, TxnId, TxnKind};
use crate::timing::TimingParams;
use crate::topology::{decode, DramLoc};
use redcache_types::{Cycle, PhysAddr};

/// Transactions visible to the scheduler per slot (see
/// `scheduler::SCHED_WINDOW`; the constant is duplicated here so the
/// oracle stays frozen even if the indexed kernel's window changes —
/// the differential suite would then fail loudly instead of silently
/// comparing different machines).
const SCHED_WINDOW: usize = 32;
const WRITE_DRAIN_HIGH: usize = 12;
const WRITE_DRAIN_LOW: usize = 2;

/// An in-flight transaction within a reference channel queue (the
/// original array-of-structs layout).
#[derive(Debug, Clone)]
struct Txn {
    id: TxnId,
    kind: TxnKind,
    loc: DramLoc,
    bursts_left: u32,
    meta: u64,
    enqueued_at: Cycle,
    data_done_at: Cycle,
}

/// One DRAM channel of the reference model.
#[derive(Debug)]
struct Channel {
    ranks: Vec<Rank>,
    banks: Vec<Vec<Bank>>,
    queue: Vec<Txn>,
    bus_free_at: Cycle,
    last_col_cmd: Option<Cycle>,
    pending_writes: usize,
    write_drain_mode: bool,
}

impl Channel {
    fn new(ranks: usize, banks: usize, first_refresh_stagger: Cycle) -> Self {
        Self {
            ranks: (0..ranks)
                .map(|r| Rank::new(first_refresh_stagger * (r as Cycle + 1)))
                .collect(),
            banks: (0..ranks)
                .map(|_| (0..banks).map(|_| Bank::new()).collect())
                .collect(),
            queue: Vec::new(),
            bus_free_at: 0,
            last_col_cmd: None,
            pending_writes: 0,
            write_drain_mode: false,
        }
    }

    fn bank(&self, loc: &DramLoc) -> &Bank {
        &self.banks[loc.rank][loc.bank]
    }

    fn bank_mut(&mut self, loc: &DramLoc) -> &mut Bank {
        &mut self.banks[loc.rank][loc.bank]
    }

    fn row_has_pending_hits(&self, loc: &DramLoc, except: TxnId) -> bool {
        let open = self.bank(loc).open_row;
        match open {
            None => false,
            Some(row) => self.queue.iter().take(SCHED_WINDOW).any(|t| {
                t.id != except && t.bursts_left > 0 && t.loc.same_bank(loc) && t.loc.row == row
            }),
        }
    }
}

fn rank_refresh_due(rank: &Rank, now: Cycle) -> bool {
    now >= rank.next_refresh && !rank.is_refreshing(now)
}

fn burst_total_hint(txn: &Txn) -> u32 {
    if txn.data_done_at > 0 && txn.bursts_left > 0 {
        txn.bursts_left + 1
    } else {
        txn.bursts_left
    }
}

fn service_refresh(
    ch: &mut Channel,
    chan_idx: usize,
    t: &TimingParams,
    now: Cycle,
    stats: &mut DramStats,
    issued: &mut Vec<IssuedCmd>,
) {
    for r in 0..ch.ranks.len() {
        if !rank_refresh_due(&ch.ranks[r], now) {
            continue;
        }
        let quiescent = ch.banks[r].iter().all(|b| b.ready_pre <= now)
            && !ch
                .queue
                .iter()
                .any(|txn| txn.loc.rank == r && txn.bursts_left < burst_total_hint(txn));
        if !quiescent {
            continue;
        }
        let mut closed = 0;
        for (bi, b) in ch.banks[r].iter_mut().enumerate() {
            if let Some(row) = b.open_row.take() {
                closed += 1;
                issued.push(IssuedCmd {
                    kind: IssuedKind::Precharge,
                    loc: DramLoc {
                        channel: chan_idx,
                        rank: r,
                        bank: bi,
                        row,
                        col: 0,
                    },
                    cycle: now,
                });
            }
        }
        issued.push(IssuedCmd {
            kind: IssuedKind::Refresh,
            loc: DramLoc {
                channel: chan_idx,
                rank: r,
                bank: 0,
                row: 0,
                col: 0,
            },
            cycle: now,
        });
        let until = now + t.t_rfc;
        for b in ch.banks[r].iter_mut() {
            b.ready_act = b.ready_act.max(until);
            b.ready_col = b.ready_col.max(until);
            b.ready_pre = b.ready_pre.max(until);
        }
        let rank = &mut ch.ranks[r];
        rank.refreshing_until = until;
        rank.next_refresh += t.t_refi;
        stats.energy.refreshes += 1;
        stats.energy.pres += closed;
    }
}

fn col_cmd_legal(ch: &Channel, t: &TimingParams, txn: &Txn, now: Cycle) -> bool {
    let bank = ch.bank(&txn.loc);
    if bank.open_row != Some(txn.loc.row) || now < bank.ready_col {
        return false;
    }
    if let Some(last) = ch.last_col_cmd {
        if now < last + t.t_ccd {
            return false;
        }
    }
    let rank = &ch.ranks[txn.loc.rank];
    if rank.is_refreshing(now) {
        return false;
    }
    match txn.kind {
        TxnKind::Read => {
            if now < rank.ready_read {
                return false;
            }
            now + t.t_cas >= ch.bus_free_at
        }
        TxnKind::Write => now + t.t_cwd >= ch.bus_free_at,
    }
}

fn issue_col_cmd(
    ch: &mut Channel,
    t: &TimingParams,
    idx: usize,
    now: Cycle,
    bytes_per_burst: usize,
    stats: &mut DramStats,
) -> IssuedCmd {
    let (kind, loc) = {
        let txn = &ch.queue[idx];
        (txn.kind, txn.loc)
    };
    let (data_start, issued_kind) = match kind {
        TxnKind::Read => (now + t.t_cas, IssuedKind::Read),
        TxnKind::Write => (now + t.t_cwd, IssuedKind::Write),
    };
    let data_end = data_start + t.t_bl;
    ch.bus_free_at = data_end;
    ch.last_col_cmd = Some(now);
    {
        let bank = ch.bank_mut(&loc);
        match kind {
            TxnKind::Read => bank.ready_pre = bank.ready_pre.max(now + t.t_rtp),
            TxnKind::Write => bank.ready_pre = bank.ready_pre.max(data_end + t.t_wr),
        }
    }
    if kind == TxnKind::Write {
        let rank = &mut ch.ranks[loc.rank];
        rank.ready_read = rank.ready_read.max(data_end + t.t_wtr);
    }
    match kind {
        TxnKind::Read => {
            stats.energy.rd_bursts += 1;
            stats.bytes_read += bytes_per_burst as u64;
        }
        TxnKind::Write => {
            stats.energy.wr_bursts += 1;
            stats.bytes_written += bytes_per_burst as u64;
        }
    }
    stats.col_cmds += 1;
    stats.bus_busy_cycles += t.t_bl;
    let txn = &mut ch.queue[idx];
    txn.bursts_left -= 1;
    txn.data_done_at = data_end;
    IssuedCmd {
        kind: issued_kind,
        loc,
        cycle: now,
    }
}

fn act_legal(ch: &mut Channel, t: &TimingParams, txn_loc: &DramLoc, now: Cycle) -> bool {
    let rank_idx = txn_loc.rank;
    if ch.ranks[rank_idx].is_refreshing(now) || now < ch.ranks[rank_idx].ready_act {
        return false;
    }
    if !ch.ranks[rank_idx].faw_allows_act(now, t.t_faw) {
        return false;
    }
    let bank = ch.bank(txn_loc);
    bank.open_row.is_none() && now >= bank.ready_act
}

fn issue_act(
    ch: &mut Channel,
    t: &TimingParams,
    loc: &DramLoc,
    now: Cycle,
    stats: &mut DramStats,
) -> IssuedCmd {
    {
        let bank = ch.bank_mut(loc);
        bank.open_row = Some(loc.row);
        bank.ready_col = now + t.t_rcd;
        bank.ready_pre = now + t.t_ras;
        bank.ready_act = now + t.t_rc;
    }
    let rank = &mut ch.ranks[loc.rank];
    rank.ready_act = rank.ready_act.max(now + t.t_rrd);
    rank.act_times.push_back(now);
    stats.energy.acts += 1;
    stats.demand_acts += 1;
    IssuedCmd {
        kind: IssuedKind::Activate,
        loc: *loc,
        cycle: now,
    }
}

fn issue_pre(
    ch: &mut Channel,
    t: &TimingParams,
    loc: &DramLoc,
    now: Cycle,
    stats: &mut DramStats,
) -> IssuedCmd {
    {
        let bank = ch.bank_mut(loc);
        bank.open_row = None;
        bank.ready_act = bank.ready_act.max(now + t.t_rp);
    }
    stats.energy.pres += 1;
    IssuedCmd {
        kind: IssuedKind::Precharge,
        loc: *loc,
        cycle: now,
    }
}

fn schedule_slot(
    ch: &mut Channel,
    chan_idx: usize,
    t: &TimingParams,
    now: Cycle,
    bytes_per_burst: usize,
    stats: &mut DramStats,
    issued: &mut Vec<IssuedCmd>,
) -> Option<IssuedKind> {
    service_refresh(ch, chan_idx, t, now, stats, issued);

    if ch.pending_writes >= WRITE_DRAIN_HIGH {
        ch.write_drain_mode = true;
    } else if ch.pending_writes <= WRITE_DRAIN_LOW {
        ch.write_drain_mode = false;
    }
    let window = ch.queue.len().min(SCHED_WINDOW);

    let mut read_idx = None;
    let mut write_idx = None;
    for (i, txn) in ch.queue.iter().take(SCHED_WINDOW).enumerate() {
        if txn.bursts_left == 0 {
            continue;
        }
        let slot = match txn.kind {
            TxnKind::Read => &mut read_idx,
            TxnKind::Write => &mut write_idx,
        };
        if slot.is_none() && col_cmd_legal(ch, t, txn, now) {
            *slot = Some(i);
        }
        if read_idx.is_some() && write_idx.is_some() {
            break;
        }
    }
    let pick = if ch.write_drain_mode {
        write_idx.or(read_idx)
    } else {
        read_idx.or(write_idx)
    };
    if let Some(i) = pick {
        let cmd = issue_col_cmd(ch, t, i, now, bytes_per_burst, stats);
        issued.push(cmd);
        return Some(cmd.kind);
    }

    for i in 0..window {
        let (loc, id, bursts_left) = {
            let txn = &ch.queue[i];
            (txn.loc, txn.id, txn.bursts_left)
        };
        if bursts_left == 0 {
            continue;
        }
        let open = ch.bank(&loc).open_row;
        match open {
            None => {
                if act_legal(ch, t, &loc, now) {
                    let cmd = issue_act(ch, t, &loc, now, stats);
                    issued.push(cmd);
                    return Some(cmd.kind);
                }
            }
            Some(row) if row != loc.row => {
                let has_hits = ch.row_has_pending_hits(&loc, id);
                let bank = ch.bank(&loc);
                if !has_hits && now >= bank.ready_pre {
                    let cmd = issue_pre(ch, t, &loc, now, stats);
                    issued.push(cmd);
                    return Some(cmd.kind);
                }
            }
            Some(_) => {}
        }
    }
    None
}

fn faw_earliest(rank: &Rank, t_faw: Cycle, now: Cycle) -> Cycle {
    let valid = rank.act_times.iter().filter(|&&x| x + t_faw > now).count();
    if valid < 4 {
        0
    } else {
        rank.act_times[rank.act_times.len() - 4] + t_faw
    }
}

fn channel_next_event(ch: &Channel, t: &TimingParams, refresh_enabled: bool, now: Cycle) -> Cycle {
    let latched = if ch.pending_writes >= WRITE_DRAIN_HIGH {
        true
    } else if ch.pending_writes <= WRITE_DRAIN_LOW {
        false
    } else {
        ch.write_drain_mode
    };
    if latched != ch.write_drain_mode {
        return now;
    }
    let banks_per_rank = ch.banks.first().map_or(0, Vec::len);
    let mut hit_bits = [0u64; 4];
    for txn in ch.queue.iter().take(SCHED_WINDOW) {
        if txn.bursts_left == 0 {
            continue;
        }
        if ch.bank(&txn.loc).open_row == Some(txn.loc.row) {
            let idx = txn.loc.rank * banks_per_rank + txn.loc.bank;
            if idx < 256 {
                hit_bits[idx / 64] |= 1 << (idx % 64);
            }
        }
    }
    let mut earliest = Cycle::MAX;
    if refresh_enabled {
        for (r, rank) in ch.ranks.iter().enumerate() {
            let c = if rank_refresh_due(rank, now) {
                ch.banks[r].iter().map(|b| b.ready_pre).max().unwrap_or(now)
            } else {
                rank.next_refresh
            };
            earliest = earliest.min(c);
            if earliest <= now {
                return now;
            }
        }
    }
    for txn in ch.queue.iter().take(SCHED_WINDOW) {
        if txn.bursts_left == 0 {
            continue;
        }
        let bank = ch.bank(&txn.loc);
        let rank = &ch.ranks[txn.loc.rank];
        let c = match bank.open_row {
            Some(row) if row == txn.loc.row => {
                let mut c = bank.ready_col.max(rank.refreshing_until);
                if let Some(last) = ch.last_col_cmd {
                    c = c.max(last + t.t_ccd);
                }
                match txn.kind {
                    TxnKind::Read => c
                        .max(rank.ready_read)
                        .max(ch.bus_free_at.saturating_sub(t.t_cas)),
                    TxnKind::Write => c.max(ch.bus_free_at.saturating_sub(t.t_cwd)),
                }
            }
            None => bank
                .ready_act
                .max(rank.ready_act)
                .max(rank.refreshing_until)
                .max(faw_earliest(rank, t.t_faw, now)),
            Some(_) => {
                let idx = txn.loc.rank * banks_per_rank + txn.loc.bank;
                let pending_hit = if idx < 256 {
                    hit_bits[idx / 64] & (1 << (idx % 64)) != 0
                } else {
                    ch.row_has_pending_hits(&txn.loc, txn.id)
                };
                if pending_hit {
                    continue;
                }
                bank.ready_pre
            }
        };
        earliest = earliest.min(c);
        if earliest <= now {
            return now;
        }
    }
    earliest
}

/// A complete DRAM system driven by the reference kernel. Mirrors the
/// observable surface of [`crate::DramSystem`] that the differential
/// suite needs: enqueue, tick, slot accounting back-fill, horizon
/// queries, completions, issued commands, statistics.
#[derive(Debug)]
pub struct ReferenceSystem {
    cfg: DramConfig,
    channels: Vec<Channel>,
    completions: Vec<Completion>,
    issued_cmds: Vec<IssuedCmd>,
    stats: DramStats,
    next_txn: u64,
    pending: usize,
    next_slot: Cycle,
}

impl ReferenceSystem {
    /// Builds a reference system from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DramConfig::validate`].
    pub fn new(cfg: DramConfig) -> Self {
        cfg.validate().expect("invalid DRAM configuration");
        let stagger = if cfg.refresh_enabled {
            cfg.timing.t_refi / (cfg.topology.ranks as Cycle + 1)
        } else {
            Cycle::MAX / 4
        };
        let channels = (0..cfg.topology.channels)
            .map(|_| Channel::new(cfg.topology.ranks, cfg.topology.banks, stagger))
            .collect();
        Self {
            cfg,
            channels,
            completions: Vec::new(),
            issued_cmds: Vec::new(),
            stats: DramStats::default(),
            next_txn: 0,
            pending: 0,
            next_slot: 0,
        }
    }

    /// Enqueues a transaction (same contract as
    /// [`crate::DramSystem::enqueue`]).
    pub fn enqueue(
        &mut self,
        addr: PhysAddr,
        kind: TxnKind,
        meta: u64,
        bursts: u32,
        now: Cycle,
    ) -> TxnId {
        assert!(bursts > 0, "a transaction needs at least one burst");
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        let loc = decode(&self.cfg.topology, self.cfg.mapping, addr);
        if kind == TxnKind::Write {
            self.channels[loc.channel].pending_writes += 1;
        }
        self.channels[loc.channel].queue.push(Txn {
            id,
            kind,
            loc,
            bursts_left: bursts,
            meta,
            enqueued_at: now,
            data_done_at: 0,
        });
        self.stats.txns_enqueued += 1;
        self.pending += 1;
        id
    }

    /// Transactions not yet completed.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Back-fills slot accounting exactly like
    /// [`crate::DramSystem::sync_to`].
    pub fn sync_to(&mut self, now: Cycle) {
        if now <= self.next_slot {
            return;
        }
        let d = self.cfg.timing.cmd_clock_divisor;
        let skipped = (now - self.next_slot).div_ceil(d);
        self.stats.slot_samples += skipped;
        if self.channels.iter().all(|c| c.queue.is_empty()) {
            self.stats.empty_slot_samples += skipped;
        }
        let occ: u64 = self
            .channels
            .iter()
            .map(|c| c.queue.len().min(SCHED_WINDOW) as u64)
            .sum();
        self.stats.window_occupancy_sum += skipped * occ;
        self.next_slot += skipped * d;
    }

    /// The scheduling horizon (same contract as
    /// [`crate::DramSystem::next_event`]).
    pub fn next_event(&self, now: Cycle) -> Cycle {
        let d = self.cfg.timing.cmd_clock_divisor;
        let next_slot_after_now = (now / d + 1) * d;
        let mut earliest = Cycle::MAX;
        for ch in &self.channels {
            let c = channel_next_event(ch, &self.cfg.timing, self.cfg.refresh_enabled, now);
            earliest = earliest.min(c);
            if earliest <= now {
                return next_slot_after_now;
            }
        }
        if earliest == Cycle::MAX {
            Cycle::MAX
        } else {
            earliest
                .checked_next_multiple_of(d)
                .unwrap_or(Cycle::MAX)
                .max(next_slot_after_now)
        }
    }

    /// Advances to CPU cycle `now` (work on command-clock edges only).
    pub fn tick(&mut self, now: Cycle) {
        self.sync_to(now);
        if !now.is_multiple_of(self.cfg.timing.cmd_clock_divisor) {
            return;
        }
        let mut all_empty = true;
        let mut occ: u64 = 0;
        for ci in 0..self.channels.len() {
            let ch = &mut self.channels[ci];
            occ += ch.queue.len().min(SCHED_WINDOW) as u64;
            if !ch.queue.is_empty() {
                all_empty = false;
            }
            let outcome = schedule_slot(
                ch,
                ci,
                &self.cfg.timing,
                now,
                self.cfg.topology.bytes_per_burst,
                &mut self.stats,
                &mut self.issued_cmds,
            );
            if matches!(outcome, Some(IssuedKind::Read) | Some(IssuedKind::Write)) {
                if let Some(i) = ch.queue.iter().position(|t| t.bursts_left == 0) {
                    let t = ch.queue.remove(i);
                    if t.kind == TxnKind::Write {
                        ch.pending_writes -= 1;
                    }
                    self.completions.push(Completion {
                        txn: t.id,
                        meta: t.meta,
                        done_at: t.data_done_at,
                        kind: t.kind,
                    });
                    self.stats.txns_completed += 1;
                    self.stats.latency_sum += t.data_done_at.saturating_sub(t.enqueued_at);
                    self.pending -= 1;
                }
            }
        }
        self.stats.slot_samples += 1;
        self.stats.window_occupancy_sum += occ;
        if all_empty {
            self.stats.empty_slot_samples += 1;
        }
        self.next_slot = now + self.cfg.timing.cmd_clock_divisor;
    }

    /// Removes and returns all completions accumulated so far.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Removes and returns the commands issued since the last call.
    pub fn take_issued_cmds(&mut self) -> Vec<IssuedCmd> {
        std::mem::take(&mut self.issued_cmds)
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }
}
