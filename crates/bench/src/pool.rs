//! Bounded worker-pool helpers shared by the run-matrix harness and
//! the serving daemon (`redcache-serve`).
//!
//! Every parallel section in the workspace sizes itself through
//! [`max_workers`]: the machine's logical CPU count, overridable with
//! the `REDCACHE_JOBS` environment variable (useful both to throttle a
//! shared box and to force single-threaded execution when bisecting).
//! [`par_map_indexed`] is the bounded fork-join primitive built on it —
//! a fixed shard-per-worker scatter over `std::thread::scope`, so large
//! run matrices never spawn more OS threads than the cap no matter how
//! many cells they have.

/// Maximum worker threads for a parallel section: the `REDCACHE_JOBS`
/// environment variable when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`] (falling back to 4 if the
/// platform cannot report it).
///
/// The policy itself lives in [`redcache_types::jobs`] so the DRAM
/// model's per-channel stepping pool can share it; this re-export keeps
/// the historical `bench::pool::max_workers` call sites working.
pub fn max_workers() -> usize {
    redcache_types::jobs::max_workers()
}

/// Applies `f` to every index in `0..n` across at most `workers` OS
/// threads and returns the results in index order.
///
/// Indices are dealt round-robin into one shard per worker, each worker
/// owning disjoint `&mut` result slots — no locks, no channels. The
/// call blocks until every index is done; a panicking `f` is re-raised
/// after the scope joins.
///
/// # Panics
///
/// Propagates any panic from `f`.
pub fn par_map_indexed<R, F>(n: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.clamp(1, n.max(1));
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut shards: Vec<Vec<(usize, &mut Option<R>)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, slot) in results.iter_mut().enumerate() {
        shards[i % workers].push((i, slot));
    }
    let f = &f;
    std::thread::scope(|s| {
        for shard in shards {
            s.spawn(move || {
                for (i, slot) in shard {
                    *slot = Some(f(i));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order_with_any_worker_count() {
        for workers in [1, 2, 3, 16] {
            let out = par_map_indexed(10, workers, |i| i * i);
            assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(par_map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, 4, |i| i + 41), vec![41]);
    }

    #[test]
    fn worker_cap_is_positive() {
        assert!(max_workers() >= 1);
    }

    #[test]
    fn actually_runs_concurrently_but_bounded() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        par_map_indexed(8, 2, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(5));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "pool oversubscribed");
    }
}
