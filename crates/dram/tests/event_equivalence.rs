//! Property tests for the event-driven DRAM horizon.
//!
//! [`DramSystem::next_event`] promises a *safe lower bound*: between a
//! processed cycle and the horizon it returns, the system can neither
//! issue a command nor start a refresh, so a driver that jumps straight
//! to the horizon must observe exactly what a cycle-by-cycle driver
//! observes — same completions at the same cycles, same statistics
//! (including the slot accounting that `sync_to` back-fills).

use proptest::prelude::*;
use redcache_dram::{Completion, DramConfig, DramStats, DramSystem, Topology, TxnKind};
use redcache_types::{Cycle, PhysAddr};

const INJECT_PERIOD: Cycle = 8;

fn small_config(wideio: bool) -> DramConfig {
    let base = if wideio {
        DramConfig::wideio_scaled(16 << 20)
    } else {
        DramConfig::ddr4_scaled(64 << 20)
    };
    base.to_builder()
        .refresh_enabled(true)
        .audit(true)
        .build()
        .expect("preset-derived config validates")
}

fn multi_channel_config() -> DramConfig {
    small_config(false)
        .to_builder()
        .topology(Topology::from_capacity(4, 2, 8, 8192, 64, 64 << 20))
        .build()
        .expect("multi-channel topology validates")
}

struct RunOutput {
    completions: Vec<Completion>,
    stats: DramStats,
    audit_violations: u64,
    end: Cycle,
}

/// Cycle-by-cycle reference: ticks every single cycle.
fn run_cycle_accurate(cfg: DramConfig, txns: &[(u64, bool, u8)]) -> RunOutput {
    let capacity = cfg.topology.capacity_bytes();
    let mut d = DramSystem::new(cfg);
    let mut now: Cycle = 0;
    let mut it = txns.iter();
    let mut next = it.next();
    while next.is_some() || d.pending() > 0 {
        if now % INJECT_PERIOD == 0 {
            if let Some(&(addr, is_write, bursts)) = next {
                let kind = if is_write {
                    TxnKind::Write
                } else {
                    TxnKind::Read
                };
                let b = (bursts % 4) as u32 + 1;
                d.enqueue(PhysAddr::new(addr % capacity), kind, now, b, now);
                next = it.next();
            }
        }
        d.tick(now);
        now += 1;
        assert!(now < 50_000_000, "scheduler deadlock");
    }
    RunOutput {
        completions: d.drain_completions(),
        audit_violations: d.audit_stats().map(|a| a.violations).unwrap_or(0),
        stats: *d.stats(),
        end: now,
    }
}

/// Event-driven driver: after each processed cycle, jumps to the
/// earlier of the system's horizon and the next injection cycle.
/// Returns the per-jump horizons too, so properties about them can be
/// checked by the caller.
fn run_event_driven(cfg: DramConfig, txns: &[(u64, bool, u8)]) -> (RunOutput, Vec<(Cycle, Cycle)>) {
    let capacity = cfg.topology.capacity_bytes();
    let mut d = DramSystem::new(cfg);
    let mut horizons = Vec::new();
    let mut now: Cycle = 0;
    let mut it = txns.iter();
    let mut next = it.next();
    let mut end = 0;
    while next.is_some() || d.pending() > 0 {
        if now % INJECT_PERIOD == 0 {
            if let Some(&(addr, is_write, bursts)) = next {
                let kind = if is_write {
                    TxnKind::Write
                } else {
                    TxnKind::Read
                };
                let b = (bursts % 4) as u32 + 1;
                // The documented contract: catch slot accounting up
                // *before* the enqueue mutates queue emptiness.
                d.sync_to(now);
                d.enqueue(PhysAddr::new(addr % capacity), kind, now, b, now);
                next = it.next();
            }
        }
        d.tick(now);
        end = now + 1;
        let horizon = d.next_event(now);
        horizons.push((now, horizon));
        let mut target = horizon;
        if next.is_some() {
            let inject = (now / INJECT_PERIOD + 1) * INJECT_PERIOD;
            target = target.min(inject);
        }
        now = if target == Cycle::MAX || target <= now + 1 {
            now + 1
        } else {
            target
        };
        assert!(now < 50_000_000, "scheduler deadlock");
    }
    (
        RunOutput {
            completions: d.drain_completions(),
            audit_violations: d.audit_stats().map(|a| a.violations).unwrap_or(0),
            stats: *d.stats(),
            end,
        },
        horizons,
    )
}

fn check_equivalence(cfg: DramConfig, txns: &[(u64, bool, u8)]) {
    let base = run_cycle_accurate(cfg, txns);
    let (fast, horizons) = run_event_driven(cfg, txns);

    // The horizon is strictly in the future.
    for &(at, h) in &horizons {
        assert!(h > at, "next_event({at}) = {h} is not in the future");
    }

    // Identical completion streams: same transactions, same data-done
    // cycles, same order. In particular nothing completes earlier than
    // the cycle-accurate baseline.
    assert_eq!(
        fast.completions, base.completions,
        "completion streams diverged"
    );
    // Identical statistics — commands, energy events, slot accounting.
    assert_eq!(fast.stats, base.stats, "statistics diverged");
    assert_eq!(base.audit_violations, 0);
    assert_eq!(fast.audit_violations, 0);
    // Both drivers process the cycle the last transaction completes
    // on, so their last processed cycles coincide.
    assert_eq!(fast.end, base.end, "last processed cycle diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn ddr4_event_driven_walk_is_exact(
        txns in prop::collection::vec((any::<u64>(), any::<bool>(), any::<u8>()), 1..100)
    ) {
        check_equivalence(small_config(false), &txns);
    }

    #[test]
    fn wideio_event_driven_walk_is_exact(
        txns in prop::collection::vec((any::<u64>(), any::<bool>(), any::<u8>()), 1..100)
    ) {
        check_equivalence(small_config(true), &txns);
    }

    #[test]
    fn hot_row_event_driven_walk_is_exact(
        rows in prop::collection::vec(0u64..4, 1..150),
        writes in prop::collection::vec(any::<bool>(), 1..150)
    ) {
        let txns: Vec<(u64, bool, u8)> = rows
            .iter()
            .zip(writes.iter().cycle())
            .map(|(&r, &w)| (r * 1024 * 1024, w, 0))
            .collect();
        check_equivalence(small_config(false), &txns);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn multi_channel_event_driven_walk_is_exact(
        txns in prop::collection::vec((any::<u64>(), any::<bool>(), any::<u8>()), 1..100)
    ) {
        check_equivalence(multi_channel_config(), &txns);
    }
}

/// Long idle stretches: with an empty queue the horizon must land on
/// refresh edges only, and the slot accounting back-fill must agree
/// with ticking through the idle span cycle by cycle.
#[test]
fn idle_refresh_horizon_is_exact() {
    let txns: Vec<(u64, bool, u8)> = (0..6).map(|i| (i * 4096, i % 2 == 0, 1)).collect();
    check_equivalence(small_config(false), &txns);

    // Pure idle from cycle 0: both drivers see only refreshes.
    let cfg = small_config(false);
    let mut a = DramSystem::new(cfg);
    let mut b = DramSystem::new(cfg);
    for now in 0..200_000 {
        a.tick(now);
    }
    a.sync_to(200_000);
    let mut now: Cycle = 0;
    while now < 200_000 {
        b.tick(now);
        let h = b.next_event(now);
        assert!(h > now);
        now = h.min(200_000).max(now + 1);
    }
    b.sync_to(200_000);
    assert_eq!(a.stats(), b.stats(), "idle refresh statistics diverged");
}
