//! Per-epoch timeline for one (workload, policy) pair.
//!
//! Runs a single simulation with the epoch recorder enabled and writes
//! the resulting time series as JSON Lines — one flat object per epoch
//! with HBM/DDR bandwidth, cache hit rate, the live RedCache α/γ
//! thresholds, RCU queue depth, scheduler-window occupancy and
//! write-drain state — ready for plotting the within-run dynamics the
//! end-of-run aggregates hide.
//!
//! ```text
//! timeline [--workload ft] [--policy redcache] [--epoch 100000]
//!          [--out results/timeline_FT_RedCache.jsonl] [--csv path.csv]
//! ```
//!
//! `REDCACHE_BUDGET` / `REDCACHE_SHRINK` shrink the workload as for the
//! other experiment binaries.

use redcache::prelude::*;
use redcache_bench::experiment_gen_config;
use std::io::Write as _;

fn parse_workload(s: &str) -> Option<Workload> {
    Workload::ALL
        .into_iter()
        .find(|w| w.info().label.eq_ignore_ascii_case(s))
}

fn parse_policy(s: &str) -> Option<PolicyKind> {
    s.parse().ok()
}

struct Args {
    workload: Workload,
    policy: PolicyKind,
    epoch: Cycle,
    out: Option<String>,
    csv: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: timeline [--workload <label>] [--policy <name>] [--epoch <cycles>] \
         [--out <path.jsonl>] [--csv <path.csv>]\n\
         workloads: {}\n\
         policies: {}",
        Workload::ALL
            .map(|w| w.info().label.to_ascii_lowercase())
            .join(" "),
        redcache_policies::registry::known_names().join(" ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: Workload::Ft,
        policy: PolicyKind::Red(RedVariant::Full),
        epoch: 100_000,
        out: None,
        csv: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--workload" | "-w" => {
                let v = value();
                args.workload = parse_workload(&v).unwrap_or_else(|| {
                    eprintln!("unknown workload {v:?}");
                    usage()
                });
            }
            "--policy" | "-p" => {
                let v = value();
                args.policy = parse_policy(&v).unwrap_or_else(|| {
                    eprintln!("unknown policy {v:?}");
                    usage()
                });
            }
            "--epoch" | "-e" => {
                let v = value();
                args.epoch = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad --epoch value {v:?}");
                    usage()
                });
            }
            "--out" | "-o" => args.out = Some(value()),
            "--csv" => args.csv = Some(value()),
            _ => usage(),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let cfg = SimConfig::builder(args.policy)
        .epoch_cycles(Some(args.epoch))
        .build()
        .expect("preset-derived config validates");
    let gen = experiment_gen_config();
    eprintln!(
        "simulating {} under {} (epoch stride {} cycles)…",
        args.workload.info().label,
        args.policy,
        args.epoch
    );
    let report = run_workload(cfg, args.workload, &gen);
    assert_eq!(report.shadow_violations, 0, "run served stale data");
    let ts = report
        .timeseries
        .as_ref()
        .expect("epoch_cycles was set, so the report carries a series");

    let out = args.out.unwrap_or_else(|| {
        let _ = std::fs::create_dir_all("results");
        format!(
            "results/timeline_{}_{}.jsonl",
            report.workload.as_deref().unwrap_or("run"),
            args.policy
        )
    });
    let mut f = std::io::BufWriter::new(std::fs::File::create(&out).expect("create output file"));
    ts.write_jsonl(&mut f).expect("write JSONL");
    f.flush().expect("flush output file");
    eprintln!("(saved {out})");
    if let Some(csv) = &args.csv {
        let mut f = std::io::BufWriter::new(std::fs::File::create(csv).expect("create CSV file"));
        ts.write_csv(&mut f).expect("write CSV");
        f.flush().expect("flush CSV file");
        eprintln!("(saved {csv})");
    }

    // Compact summary: the run's trajectory at a glance.
    let post: Vec<&EpochSample> = ts
        .epochs
        .iter()
        .skip(ts.warmup_epoch.unwrap_or(0) as usize)
        .collect();
    println!(
        "{} epochs ({} post-warmup) of {} cycles each; run ended at cycle {}",
        ts.epochs.len(),
        post.len(),
        ts.epoch_cycles,
        ts.epochs.last().map(|e| e.end).unwrap_or(0)
    );
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>9} {:>7} {:>7} {:>9}",
        "epoch", "cycles", "hbm GB/s", "ddr GB/s", "hit rate", "alpha", "gamma", "rcu depth"
    );
    let stride = (post.len() / 10).max(1);
    for e in post.iter().step_by(stride) {
        println!(
            "{:>8} {:>12} {:>10.3} {:>10.3} {:>9.3} {:>7.3} {:>7.3} {:>9}",
            e.index,
            e.cycles(),
            e.hbm_gbps(),
            e.ddr_gbps(),
            e.hit_rate(),
            e.gauges.alpha,
            e.gauges.gamma,
            e.gauges.rcu_depth
        );
    }
    println!(
        "aggregate: hit rate {:.3}, mean read latency {:.1} cycles, IPC {:.3}",
        report.hbm_hit_rate(),
        report.ctl.mean_read_latency(),
        report.ipc()
    );
}
