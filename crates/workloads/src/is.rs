//! NAS **IS** — integer (counting) sort.
//!
//! Three phases per the NAS kernel: (1) key counting — a sequential
//! sweep over the key array with random-indexed increments into a large
//! bucket array; (2) a prefix-sum over the buckets; (3) the rank/permute
//! pass scattering keys into the output array. Keys stream (low reuse),
//! buckets are hot (high reuse) — a classic L-type/H-type mix.

use crate::common::{elem, GenConfig, Layout, ThreadTraces, TraceBuilder};
use rand::Rng;

pub(crate) fn generate(cfg: &GenConfig) -> ThreadTraces {
    let n_keys = cfg.count(1 << 20) as u64;
    let n_buckets = cfg.count(1 << 17) as u64;
    let mut layout = Layout::new();
    let keys = layout.alloc(n_keys * 4);
    let buckets = layout.alloc(n_buckets * 4);
    let output = layout.alloc(n_keys * 4);
    let mut b = TraceBuilder::new(cfg);
    let threads = cfg.threads as u64;
    let chunk = n_keys / threads;

    // Deterministic per-key "value" without materialising the array.
    let key_val = |rng_base: u64, i: u64| -> u64 {
        let mut x = rng_base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 29;
        x % n_buckets
    };
    let seed: u64 = cfg.rng(0x15).gen();

    // Phase 1: counting.
    for t in 0..threads {
        let (lo, hi) = (t * chunk, ((t + 1) * chunk).min(n_keys));
        for i in lo..hi {
            let tt = t as usize;
            let k = key_val(seed, i);
            b.load(tt, elem(keys, i, 4), 2);
            b.load(tt, elem(buckets, k, 4), 1);
            b.store(tt, elem(buckets, k, 4), 1);
            if !b.has_budget(tt) {
                break;
            }
        }
    }
    // Phase 2: prefix sum (parallel over bucket ranges).
    let bchunk = n_buckets / threads;
    for t in 0..threads {
        let (lo, hi) = (t * bchunk, ((t + 1) * bchunk).min(n_buckets));
        for i in lo..hi {
            let tt = t as usize;
            b.load(tt, elem(buckets, i, 4), 1);
            b.store(tt, elem(buckets, i, 4), 1);
            if !b.has_budget(tt) {
                break;
            }
        }
    }
    // Phase 3: rank and permute (scatter).
    for t in 0..threads {
        let (lo, hi) = (t * chunk, ((t + 1) * chunk).min(n_keys));
        for i in lo..hi {
            let tt = t as usize;
            let k = key_val(seed, i);
            b.load(tt, elem(keys, i, 4), 2);
            b.load(tt, elem(buckets, k, 4), 1);
            // Scatter position approximated by the bucket-proportional
            // slot (the true rank), which lands uniformly in output.
            let pos = k * n_keys / n_buckets + (i % (n_keys / n_buckets).max(1));
            b.store(tt, elem(output, pos.min(n_keys - 1), 4), 1);
            if !b.has_budget(tt) {
                break;
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_cpu::TraceStats;
    use redcache_types::BLOCK_BYTES;

    #[test]
    fn deterministic() {
        let cfg = GenConfig::tiny();
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn buckets_are_hot_keys_are_streamed() {
        let cfg = GenConfig::tiny();
        let flat: Vec<_> = generate(&cfg).into_iter().flatten().collect();
        let s = TraceStats::from_trace(&flat);
        // Mean reuse per line must exceed a pure stream's ~1 (the hot
        // buckets are revisited).
        let reuse = s.accesses as f64 / s.footprint_lines as f64;
        assert!(reuse > 2.0, "mean line reuse {reuse}");
        assert!(s.footprint_bytes() > 4 * BLOCK_BYTES as u64);
    }
}
