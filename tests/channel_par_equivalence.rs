//! Golden equivalence test for per-channel parallel stepping.
//!
//! `DramSystem::tick` can fan each channel's command slot out to a
//! worker pool (DESIGN.md §3.11). The claim is *exactness*: channels
//! are independent within one processed-command slot, per-channel
//! statistics are commutative sums, and the merge walks channels in
//! index order — so every observable quantity must be bit-identical to
//! the serial walk. This suite pins that claim the same way
//! `skip_equivalence.rs` pins the time-skip: whole
//! [`redcache::RunReport`]s compared with `==` across the evaluation
//! matrix.
//!
//! The parallel path is selected per-run via `SimConfig::channel_par`
//! (the switch `REDCACHE_CHANNEL_PAR=1` maps onto); the literal
//! `REDCACHE_JOBS=1` vs `N` environment contract is exercised in a
//! subprocess test because mutating the environment in a threaded
//! harness is racy.

use redcache::{PolicyKind, RedVariant, RunReport, SimConfig, Simulator};
use redcache_workloads::{GenConfig, Workload};

fn run(kind: PolicyKind, w: Workload, gen: &GenConfig, par: bool) -> RunReport {
    let cfg = SimConfig::quick(kind)
        .to_builder()
        .channel_par(par)
        .build()
        .expect("preset-derived config validates");
    Simulator::new(cfg).run(w.generate(gen))
}

fn figure_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Alloy,
        PolicyKind::Bear,
        PolicyKind::Red(RedVariant::Alpha),
        PolicyKind::Red(RedVariant::Gamma),
        PolicyKind::Red(RedVariant::Basic),
        PolicyKind::Red(RedVariant::InSitu),
        PolicyKind::Red(RedVariant::Full),
        PolicyKind::Fbr,
    ]
}

#[test]
fn channel_par_is_exact_across_the_evaluation_matrix() {
    // All 14 suite workloads × the figure architectures, each run twice.
    let gen = GenConfig::tiny();
    for w in Workload::ALL {
        for kind in figure_policies() {
            let par = run(kind, w, &gen, true);
            let ser = run(kind, w, &gen, false);
            assert_eq!(
                par, ser,
                "{kind} on {w}: parallel channel stepping diverged from the serial walk"
            );
        }
    }
}

#[test]
fn channel_par_is_exact_for_baseline_topologies() {
    // No-HBM and IDEAL exercise the single-sided controller horizons;
    // the DDR side still has multiple channels to fan out.
    let gen = GenConfig::tiny();
    for kind in [PolicyKind::NoHbm, PolicyKind::Ideal] {
        for w in [Workload::Is, Workload::Hist, Workload::Ocn] {
            let par = run(kind, w, &gen, true);
            let ser = run(kind, w, &gen, false);
            assert_eq!(par, ser, "{kind} on {w}");
        }
    }
}

#[test]
fn channel_par_is_exact_with_audit_and_epoch_recording() {
    // The pinned case from the issue: timing audit and the epoch
    // recorder attached while channels step in parallel. The auditor
    // observes the *merged* command stream; identical audit payloads
    // mean the parallel walk issued the same commands at the same
    // cycles in the same order. The timeseries riding along pins the
    // recorder too.
    let gen = GenConfig::tiny();
    for kind in [PolicyKind::Alloy, PolicyKind::Red(RedVariant::Full)] {
        for w in [Workload::Is, Workload::Ft] {
            let mk = |par: bool| {
                let cfg = SimConfig::quick(kind)
                    .to_builder()
                    .channel_par(par)
                    .audit_timing(true)
                    .epoch_cycles(Some(25_000))
                    .build()
                    .expect("preset-derived config validates");
                Simulator::new(cfg).run(w.generate(&gen))
            };
            let par = mk(true);
            let ser = mk(false);
            assert_eq!(par, ser, "{kind} on {w} with audit + recording");
            let audit = par.ddr_audit.as_ref().expect("audit attached");
            assert!(audit.clean(), "timing violations under parallel stepping");
            assert!(audit.cmds_audited > 0);
            let ts = par.timeseries.as_ref().expect("recording was on");
            assert!(!ts.epochs.is_empty());
        }
    }
}

#[test]
fn channel_par_is_exact_without_time_skip() {
    // The two throughput features compose: cycle-by-cycle walk with
    // parallel channel stepping vs. the fully serial reference.
    let gen = GenConfig::tiny();
    for kind in [PolicyKind::Bear, PolicyKind::Red(RedVariant::Full)] {
        let w = Workload::Hist;
        let mk = |par: bool| {
            let cfg = SimConfig::quick(kind)
                .to_builder()
                .time_skip(false)
                .channel_par(par)
                .build()
                .expect("preset-derived config validates");
            Simulator::new(cfg).run(w.generate(&gen))
        };
        assert_eq!(mk(true), mk(false), "{kind} on {w} without time skip");
    }
}

#[test]
fn channel_par_env_var_maps_onto_the_config_switch() {
    // REDCACHE_CHANNEL_PAR is read once per Simulator::new; we can't
    // mutate the environment safely in a threaded test harness, so pin
    // the config switch the variable maps onto (same convention as
    // REDCACHE_NO_SKIP in skip_equivalence.rs).
    let gen = GenConfig::tiny();
    let ser = run(PolicyKind::Alloy, Workload::Lreg, &gen, false);
    let par = run(PolicyKind::Alloy, Workload::Lreg, &gen, true);
    assert_eq!(par, ser);
}

/// The literal environment contract, end to end: `REDCACHE_JOBS=1`
/// (explicit pin → strictly serial stepping) and `REDCACHE_JOBS=4`
/// (four lanes) must print bit-identical JSON reports when
/// `REDCACHE_CHANNEL_PAR=1`. Runs `redcache-sim` as a subprocess so
/// the environment is per-run, not per-harness.
#[test]
fn redcache_jobs_one_vs_n_is_exact_via_subprocess() {
    let run_with_jobs = |jobs: &str| -> Option<String> {
        let out = std::process::Command::new(env!("CARGO"))
            .args([
                "run",
                "--quiet",
                "-p",
                "redcache",
                "--bin",
                "redcache-sim",
                "--",
                "--preset",
                "quick",
                "--workload",
                "HIST",
                "--policy",
                "redcache",
                "--budget",
                "2000",
                "--json",
            ])
            .env("REDCACHE_CHANNEL_PAR", "1")
            .env("REDCACHE_JOBS", jobs)
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .ok()?;
        if !out.status.success() {
            eprintln!(
                "redcache-sim exited with {}: {}",
                out.status,
                String::from_utf8_lossy(&out.stderr)
            );
            return None;
        }
        String::from_utf8(out.stdout).ok()
    };
    // Soft-skip only if the subprocess could not be spawned at all
    // (e.g. cargo unavailable inside a sandboxed runner) — never on a
    // mismatch.
    let (Some(serial), Some(parallel)) = (run_with_jobs("1"), run_with_jobs("4")) else {
        eprintln!("skipping: could not run redcache-sim via cargo in this environment");
        return;
    };
    assert_eq!(
        serial, parallel,
        "REDCACHE_JOBS=1 and REDCACHE_JOBS=4 reports diverged under REDCACHE_CHANNEL_PAR=1"
    );
}
