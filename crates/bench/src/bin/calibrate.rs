use redcache::sim::run_workload;
use redcache::{PolicyKind, RedVariant, SimConfig};
use redcache_workloads::{GenConfig, Workload};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let budget: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let wl: Option<String> = args.get(2).cloned();
    let mut gen = GenConfig::scaled();
    gen.budget_per_thread = budget;
    let kinds = [
        PolicyKind::Alloy,
        PolicyKind::NoHbm,
        PolicyKind::Ideal,
        PolicyKind::Bear,
        PolicyKind::Red(RedVariant::Alpha),
        PolicyKind::Red(RedVariant::Gamma),
        PolicyKind::Red(RedVariant::Basic),
        PolicyKind::Red(RedVariant::InSitu),
        PolicyKind::Red(RedVariant::Full),
    ];
    let workloads: Vec<Workload> = match wl.as_deref() {
        Some(l) => Workload::ALL
            .iter()
            .copied()
            .filter(|w| w.info().label.eq_ignore_ascii_case(l))
            .collect(),
        None => vec![Workload::Hist, Workload::Rdx, Workload::Ocn, Workload::Lu],
    };
    for w in workloads {
        let mut alloy_cycles = 1u64;
        let mut alloy_hbm = 1.0f64;
        let mut alloy_sys = 1.0f64;
        for k in kinds {
            let t0 = Instant::now();
            let r = run_workload(SimConfig::scaled(k), w, &gen);
            if matches!(k, PolicyKind::Alloy) {
                alloy_cycles = r.cycles;
                alloy_hbm = r.energy.hbm.total_j();
                alloy_sys = r.energy.total_j();
            }
            let ddr_busy = r.ddr.bus_busy_cycles as f64 / (r.cycles as f64 * 2.0);
            let hbm_busy = r
                .hbm
                .map(|h| h.bus_busy_cycles as f64 / (r.cycles as f64 * 4.0))
                .unwrap_or(0.0);
            let ex: String = r
                .extras
                .iter()
                .filter(|(k, _)| {
                    [
                        "alpha",
                        "gamma",
                        "rcu_cheap_fraction",
                        "bear_bypass_epoch_fraction",
                    ]
                    .contains(&k.as_str())
                })
                .map(|(k, v)| format!("{k}={v:.2}"))
                .collect::<Vec<_>>()
                .join(" ");
            println!(
                "{:5} {:11} cyc={:>10} norm={:.3} hit={:.3} rdlat={:>5.0} ddrbusy={:.2} hbmbusy={:.2} inval={:>7} byp={:>7} hbmE={:.3} sysE={:.3} {} viol={} wall={:.1}s",
                w.to_string(), k.to_string(), r.cycles,
                r.cycles as f64 / alloy_cycles as f64,
                r.hbm_hit_rate(),
                r.ctl.mean_read_latency(),
                ddr_busy, hbm_busy,
                r.ctl.gamma_invalidations,
                r.ctl.hbm_bypasses,
                r.energy.hbm.total_j() / alloy_hbm,
                r.energy.total_j() / alloy_sys,
                ex,
                r.shadow_violations,
                t0.elapsed().as_secs_f64()
            );
        }
        println!();
    }
}
