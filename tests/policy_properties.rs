//! Property-based integration tests: random request mixes through every
//! controller, with the shadow-memory oracle as the ground truth.

use proptest::prelude::*;
use redcache::{PolicyKind, RedVariant, SimConfig};
use redcache_policies::{build_controller, CompletedReq};
use redcache_types::{AccessKind, CoreId, Cycle, LineAddr, MemRequest, ReqId};
use std::collections::HashMap;

fn drive_to_empty(
    ctl: &mut Box<dyn redcache_policies::DramCacheController>,
    now: &mut Cycle,
) -> Vec<CompletedReq> {
    let mut done = Vec::new();
    while ctl.pending() > 0 {
        ctl.tick(*now, &mut done);
        *now += 1;
        assert!(*now < 50_000_000, "controller deadlock");
    }
    ctl.tick(*now, &mut done);
    done
}

fn policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::NoHbm,
        PolicyKind::Ideal,
        PolicyKind::Alloy,
        PolicyKind::Bear,
        PolicyKind::Red(RedVariant::Full),
        PolicyKind::Red(RedVariant::Basic),
        PolicyKind::Fbr,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sequential consistency at the controller boundary: any interleaved
    /// mix of reads and writebacks, submitted one at a time, always
    /// returns the latest written version.
    #[test]
    fn controllers_never_serve_stale_data(
        ops in prop::collection::vec((0u64..96, any::<bool>()), 1..120)
    ) {
        for kind in policies() {
            let cfg = SimConfig::quick(kind).policy;
            let mut ctl = build_controller(&cfg);
            let mut shadow: HashMap<u64, u64> = HashMap::new();
            let mut now: Cycle = 0;
            let mut version = 0u64;
            for (i, &(slot, is_write)) in ops.iter().enumerate() {
                let line = LineAddr::new(slot * 13);
                if is_write {
                    version += 1;
                    shadow.insert(line.raw(), version);
                    ctl.submit(
                        MemRequest::writeback(ReqId(i as u64), line, CoreId(0), now, version),
                        now,
                    );
                    drive_to_empty(&mut ctl, &mut now);
                } else {
                    ctl.submit(MemRequest::read(ReqId(i as u64), line, CoreId(0), now), now);
                    let done = drive_to_empty(&mut ctl, &mut now);
                    let read = done
                        .iter()
                        .find(|d| d.kind == AccessKind::Read && d.id == ReqId(i as u64))
                        .expect("read completion");
                    let expect = shadow.get(&line.raw()).copied().unwrap_or(0);
                    prop_assert_eq!(
                        read.data_version, expect,
                        "{} returned stale data for line {} (op {})", kind, slot, i
                    );
                }
            }
        }
    }

    /// Pipelined submission: many requests in flight at once still all
    /// complete, exactly once each.
    #[test]
    fn pipelined_requests_complete_exactly_once(
        ops in prop::collection::vec((0u64..64, any::<bool>()), 1..150)
    ) {
        for kind in policies() {
            let cfg = SimConfig::quick(kind).policy;
            let mut ctl = build_controller(&cfg);
            let mut now: Cycle = 0;
            let mut done = Vec::new();
            for (i, &(slot, is_write)) in ops.iter().enumerate() {
                let line = LineAddr::new(slot * 7);
                let req = if is_write {
                    MemRequest::writeback(ReqId(i as u64), line, CoreId(0), now, i as u64 + 1)
                } else {
                    MemRequest::read(ReqId(i as u64), line, CoreId(0), now)
                };
                ctl.submit(req, now);
                // A few ticks between submissions keeps dozens in flight.
                for _ in 0..3 {
                    ctl.tick(now, &mut done);
                    now += 1;
                }
            }
            while ctl.pending() > 0 {
                ctl.tick(now, &mut done);
                now += 1;
                prop_assert!(now < 50_000_000, "{} deadlocked", kind);
            }
            let mut ids: Vec<u64> = done.iter().map(|d| d.id.0).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), ops.len(), "{}: completions lost or duplicated", kind);
        }
    }
}
