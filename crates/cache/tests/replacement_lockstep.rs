//! Differential and snapshot suites for the replacement-policy trait
//! (DESIGN.md §3.14).
//!
//! Two claims are pinned here:
//!
//! 1. **Bit-exactness of the refactor.** `SetAssocCache<TrueLru>` (the
//!    default) must be observably identical to the pre-trait kernel
//!    preserved verbatim in `redcache_cache::reference` — same hits,
//!    versions, eviction records and statistics on arbitrary op
//!    streams. The golden equivalence suites pin whole simulations;
//!    this proptest pins the kernel itself with much denser coverage.
//!
//! 2. **Snapshot round-trips of per-set replacement state.** For every
//!    shipped policy, a mid-stream wire round-trip (encode → decode →
//!    byte-identical re-encode) must be undetectable from the
//!    continuation — the warm-fork obligation.

use proptest::prelude::*;
use redcache_cache::reference::ReferenceCache;
use redcache_cache::{CacheGeometry, Lfu, Lru, ReplacementPolicy, SetAssocCache, Slru, TrueLru};
use redcache_types::wire::{Reader, Wire};
use redcache_types::LineAddr;

/// One scripted step over a small line universe.
#[derive(Debug, Clone, Copy)]
enum Op {
    Access(u64, Option<u64>),
    Fill(u64, u64, bool),
    Invalidate(u64),
    Probe(u64),
}

fn op_strategy(lines: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..lines, proptest::option::of(1u64..1000)).prop_map(|(l, w)| Op::Access(l, w)),
        (0..lines, 1u64..1000, any::<bool>()).prop_map(|(l, v, d)| Op::Fill(l, v, d)),
        (0..lines).prop_map(Op::Invalidate),
        (0..lines).prop_map(Op::Probe),
    ]
}

fn geometries() -> Vec<CacheGeometry> {
    vec![
        CacheGeometry::new(256, 2, 64),  // 2 sets × 2 ways
        CacheGeometry::new(512, 4, 64),  // 2 sets × 4 ways
        CacheGeometry::new(2048, 8, 64), // 4 sets × 8 ways
    ]
}

/// Applies one op to a trait-based cache, folding everything observable
/// into a comparable string.
fn step<P: ReplacementPolicy>(c: &mut SetAssocCache<P>, op: Op) -> String {
    match op {
        Op::Access(l, w) => format!("{:?}", c.access(LineAddr::new(l), w)),
        Op::Fill(l, v, d) => format!("{:?}", c.fill(LineAddr::new(l), v, d)),
        Op::Invalidate(l) => format!("{:?}", c.invalidate(LineAddr::new(l))),
        Op::Probe(l) => format!("{:?}", c.probe(LineAddr::new(l))),
    }
}

fn step_ref(c: &mut ReferenceCache, op: Op) -> String {
    match op {
        Op::Access(l, w) => format!("{:?}", c.access(LineAddr::new(l), w)),
        Op::Fill(l, v, d) => format!("{:?}", c.fill(LineAddr::new(l), v, d)),
        Op::Invalidate(l) => format!("{:?}", c.invalidate(LineAddr::new(l))),
        Op::Probe(l) => format!("{:?}", c.probe(LineAddr::new(l))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The trait-based default kernel matches the frozen pre-refactor
    /// kernel step for step on arbitrary streams.
    #[test]
    fn true_lru_matches_the_reference_kernel(
        ops in proptest::collection::vec(op_strategy(24), 1..200),
        geom_idx in 0usize..3,
    ) {
        let geom = geometries()[geom_idx];
        let mut new_kernel: SetAssocCache = SetAssocCache::new(geom);
        let mut old_kernel = ReferenceCache::new(geom);
        for (i, &op) in ops.iter().enumerate() {
            let a = step(&mut new_kernel, op);
            let b = step_ref(&mut old_kernel, op);
            prop_assert_eq!(&a, &b, "step {} diverged on {:?}", i, op);
        }
        prop_assert_eq!(new_kernel.stats(), old_kernel.stats());
        prop_assert_eq!(new_kernel.occupancy(), old_kernel.occupancy());
    }
}

/// Drives ops, snapshots mid-stream via the wire codec, and requires the
/// decoded copy (a) to re-encode byte-identically and (b) to continue in
/// lockstep with the original.
fn assert_policy_forkable<P: ReplacementPolicy>(geom: CacheGeometry, ops: &[Op], cut: usize) {
    let mut orig: SetAssocCache<P> = SetAssocCache::new(geom);
    for &op in &ops[..cut] {
        step(&mut orig, op);
    }

    let mut bytes = Vec::new();
    orig.put(&mut bytes);
    let mut r = Reader::new(&bytes);
    let mut wired = SetAssocCache::<P>::get(&mut r).expect("cache state decodes");
    assert!(r.is_empty(), "decode must consume the whole payload");
    let mut re = Vec::new();
    wired.put(&mut re);
    assert_eq!(
        bytes,
        re,
        "{}: snapshot encoding must be deterministic",
        P::NAME
    );

    for (i, &op) in ops[cut..].iter().enumerate() {
        let a = step(&mut orig, op);
        let b = step(&mut wired, op);
        assert_eq!(
            a,
            b,
            "{}: step {} diverged after restore on {:?}",
            P::NAME,
            i,
            op
        );
    }
    assert_eq!(orig.stats(), wired.stats());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every shipped policy's per-set state survives a wire round-trip
    /// at an arbitrary stream position.
    #[test]
    fn replacement_state_snapshots_in_lockstep(
        ops in proptest::collection::vec(op_strategy(24), 2..120),
        geom_idx in 0usize..3,
        cut in 0.0f64..1.0,
    ) {
        let geom = geometries()[geom_idx];
        let at = ((ops.len() as f64) * cut) as usize;
        assert_policy_forkable::<TrueLru>(geom, &ops, at);
        assert_policy_forkable::<Lru>(geom, &ops, at);
        assert_policy_forkable::<Lfu>(geom, &ops, at);
        assert_policy_forkable::<Slru>(geom, &ops, at);
    }
}

#[test]
fn conflict_heavy_stream_round_trips_for_every_policy() {
    // A deterministic stream dense in evictions, invalidations and
    // re-fills over few sets, snapshotted right after a replacement.
    let geom = CacheGeometry::new(256, 2, 64); // 2 sets × 2 ways
    let ops: Vec<Op> = (0..60u64)
        .map(|i| match i % 4 {
            0 => Op::Fill(i % 10, i + 1, i % 3 == 0),
            1 => Op::Access(i % 7, if i % 5 == 0 { Some(i) } else { None }),
            2 => Op::Invalidate(i % 9),
            _ => Op::Probe(i % 10),
        })
        .collect();
    for cut in [0, 13, 37, 60] {
        assert_policy_forkable::<TrueLru>(geom, &ops, cut);
        assert_policy_forkable::<Lru>(geom, &ops, cut);
        assert_policy_forkable::<Lfu>(geom, &ops, cut);
        assert_policy_forkable::<Slru>(geom, &ops, cut);
    }
}
