//! Multi-tenant interleaving vocabulary (DESIGN.md §3.15).
//!
//! A [`TenantSchedule`] describes how up to [`MAX_TENANTS`] scenario
//! streams share one DRAM cache: a repeating round of slots, each slot
//! owned by one tenant (round-robin is the all-ones special case).
//! The schedule lives in `SimConfig` (it is `Copy` and
//! serde-defaulted, like every other simulation knob) and is consumed
//! twice with one definition: the workload weaver interleaves tenant
//! streams slot by slot, and the simulator attributes per-tenant
//! statistics by address region.
//!
//! Tenant attribution is positional in the *address space*, not the
//! stream: the weaver re-bases tenant `i`'s addresses into region `i`
//! ([`TENANT_REGION_SHIFT`]), so any component holding an address can
//! recover its tenant without carrying side-band metadata — through
//! cache hierarchies, writeback paths, and warm snapshots alike.

use serde::{Deserialize, Serialize};

/// Maximum tenants a schedule can name (the fixed-size array keeps
/// `SimConfig` `Copy`).
pub const MAX_TENANTS: usize = 4;

/// Log2 of the tenant region size: tenant `i`'s addresses live at
/// `i << 40` (1 TB apart — far above any generated footprint, far
/// below the u64 ceiling).
pub const TENANT_REGION_SHIFT: u32 = 40;

/// Returns the tenant region an address falls in (0 for single-tenant
/// traces, whose addresses never leave region 0).
pub const fn tenant_of_addr(raw: u64) -> usize {
    ((raw >> TENANT_REGION_SHIFT) as usize) & (MAX_TENANTS - 1)
}

/// Re-bases a raw address into `tenant`'s region.
pub const fn tag_addr(tenant: usize, raw: u64) -> u64 {
    raw | ((tenant as u64) << TENANT_REGION_SHIFT)
}

/// A deterministic slot schedule over N tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TenantSchedule {
    /// Active tenants (1..=[`MAX_TENANTS`]).
    pub tenants: u8,
    /// Consecutive slots tenant `i` owns per round (a ratio schedule;
    /// all ones is round-robin). Entries past `tenants` are ignored
    /// and must be zero.
    pub slots: [u8; MAX_TENANTS],
}

impl TenantSchedule {
    /// Round-robin over `n` tenants.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or exceeds [`MAX_TENANTS`].
    pub fn round_robin(n: usize) -> Self {
        assert!(n >= 1 && n <= MAX_TENANTS, "tenants must be 1..={MAX_TENANTS}");
        let mut slots = [0u8; MAX_TENANTS];
        slots[..n].fill(1);
        Self {
            tenants: n as u8,
            slots,
        }
    }

    /// Ratio schedule: tenant `i` owns `ratio[i]` consecutive slots per
    /// round.
    ///
    /// # Errors
    ///
    /// Rejects empty/oversized ratios and zero entries.
    pub fn ratio(ratio: &[u8]) -> Result<Self, crate::ConfigError> {
        if ratio.is_empty() || ratio.len() > MAX_TENANTS {
            return Err(crate::ConfigError::new(format!(
                "tenant count must be 1..={MAX_TENANTS}, got {}",
                ratio.len()
            )));
        }
        let mut slots = [0u8; MAX_TENANTS];
        slots[..ratio.len()].copy_from_slice(ratio);
        let s = Self {
            tenants: ratio.len() as u8,
            slots,
        };
        s.validate()?;
        Ok(s)
    }

    /// Checks internal consistency (used by `SimConfig::validate`).
    ///
    /// # Errors
    ///
    /// Rejects zero/oversized tenant counts, zero slot ratios, and
    /// nonzero entries past the tenant count.
    pub fn validate(&self) -> Result<(), crate::ConfigError> {
        let n = self.tenants as usize;
        if n == 0 || n > MAX_TENANTS {
            return Err(crate::ConfigError::new(format!(
                "tenants must be 1..={MAX_TENANTS}, got {n}"
            )));
        }
        if self.slots[..n].iter().any(|&s| s == 0) {
            return Err(crate::ConfigError::new(
                "every active tenant needs at least one slot per round",
            ));
        }
        if self.slots[n..].iter().any(|&s| s != 0) {
            return Err(crate::ConfigError::new(
                "slot entries past the tenant count must be zero",
            ));
        }
        Ok(())
    }

    /// Slots per round.
    pub fn round_len(&self) -> u64 {
        self.slots[..self.tenants as usize]
            .iter()
            .map(|&s| s as u64)
            .sum()
    }

    /// The tenant owning global slot `k` — the single definition both
    /// the weaver and any positional consumer share.
    pub fn tenant_of_slot(&self, k: u64) -> usize {
        let mut r = k % self.round_len();
        for (i, &s) in self.slots[..self.tenants as usize].iter().enumerate() {
            if r < s as u64 {
                return i;
            }
            r -= s as u64;
        }
        unreachable!("slot index inside round")
    }
}

/// Per-tenant traffic counters, sampled by the epoch recorder and
/// totalled into `RunReport` extras. "Hits" are SRAM-hierarchy hits
/// (the access never reached the DRAM tier); memory reads/writebacks
/// are the below-L3 traffic the DRAM cache actually sees from this
/// tenant, attributed by address region — including writebacks, whose
/// evicted line names its owner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Accesses committed by the tenant's stream slots.
    pub accesses: u64,
    /// Stores among those accesses.
    pub stores: u64,
    /// Accesses answered inside the SRAM hierarchy.
    pub hits: u64,
    /// Below-L3 read requests attributed to this tenant's region.
    pub mem_reads: u64,
    /// Below-L3 writebacks of lines in this tenant's region.
    pub mem_writebacks: u64,
}

crate::wire_struct!(TenantStats {
    accesses,
    stores,
    hits,
    mem_reads,
    mem_writebacks,
});

impl TenantStats {
    /// Counter-wise difference from `base` (epoch delta).
    pub fn delta_since(&self, base: &Self) -> Self {
        Self {
            accesses: self.accesses.saturating_sub(base.accesses),
            stores: self.stores.saturating_sub(base.stores),
            hits: self.hits.saturating_sub(base.hits),
            mem_reads: self.mem_reads.saturating_sub(base.mem_reads),
            mem_writebacks: self.mem_writebacks.saturating_sub(base.mem_writebacks),
        }
    }

    /// SRAM-hierarchy hit rate of this tenant's accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_and_ratio_weights() {
        let rr = TenantSchedule::round_robin(3);
        assert_eq!(rr.round_len(), 3);
        let owners: Vec<usize> = (0..6).map(|k| rr.tenant_of_slot(k)).collect();
        assert_eq!(owners, [0, 1, 2, 0, 1, 2]);

        let w = TenantSchedule::ratio(&[2, 1]).unwrap();
        assert_eq!(w.round_len(), 3);
        let owners: Vec<usize> = (0..6).map(|k| w.tenant_of_slot(k)).collect();
        assert_eq!(owners, [0, 0, 1, 0, 0, 1]);
    }

    #[test]
    fn schedules_validate() {
        assert!(TenantSchedule::ratio(&[]).is_err());
        assert!(TenantSchedule::ratio(&[1, 0]).is_err());
        assert!(TenantSchedule::ratio(&[1, 1, 1, 1, 1]).is_err());
        assert!(TenantSchedule::ratio(&[3, 1, 2]).is_ok());
        let mut bad = TenantSchedule::round_robin(2);
        bad.slots[3] = 1;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn address_regions_round_trip() {
        for t in 0..MAX_TENANTS {
            let a = tag_addr(t, 0xAB_CDEF);
            assert_eq!(tenant_of_addr(a), t);
            assert_eq!(a & ((1 << TENANT_REGION_SHIFT) - 1), 0xAB_CDEF);
        }
        assert_eq!(tenant_of_addr(0), 0);
    }

    #[test]
    fn stats_delta_and_hit_rate() {
        let a = TenantStats {
            accesses: 10,
            stores: 2,
            hits: 8,
            mem_reads: 2,
            mem_writebacks: 1,
        };
        let d = a.delta_since(&TenantStats {
            accesses: 4,
            stores: 1,
            hits: 3,
            mem_reads: 1,
            mem_writebacks: 0,
        });
        assert_eq!(d.accesses, 6);
        assert_eq!(d.hits, 5);
        assert!((a.hit_rate() - 0.8).abs() < 1e-12);
        assert_eq!(TenantStats::default().hit_rate(), 0.0);
    }
}
