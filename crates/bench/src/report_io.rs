//! Unified results export: every artifact the experiment binaries
//! persist goes through this module, wrapped in a versioned envelope.
//!
//! The envelope names the payload (`schema`) and stamps it with
//! [`SCHEMA_VERSION`], so downstream tooling can reject files written
//! by an incompatible harness instead of mis-parsing them. Writers are
//! best-effort: experiments always print their tables to stdout, and a
//! failed write is a warning, never a crash.

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::path::Path;

/// Version stamped into every saved artifact. Bump on any breaking
/// change to a payload layout.
pub const SCHEMA_VERSION: u32 = 1;

/// The envelope wrapped around every saved payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Saved<T> {
    /// Payload name, e.g. `"eval_matrix"`.
    pub schema: String,
    /// Harness schema version at write time.
    pub schema_version: u32,
    /// The payload itself.
    pub data: T,
}

#[derive(Serialize)]
struct SavedRef<'a, T> {
    schema: &'a str,
    schema_version: u32,
    data: &'a T,
}

/// Writes `value` as pretty JSON to `path`, wrapped in the
/// [`Saved`] envelope under the given `schema` name. Best-effort.
pub fn write_json_at<T: Serialize>(path: &Path, schema: &str, value: &T) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() && std::fs::create_dir_all(dir).is_err() {
            return;
        }
    }
    let envelope = SavedRef {
        schema,
        schema_version: SCHEMA_VERSION,
        data: value,
    };
    match serde_json::to_string_pretty(&envelope) {
        Ok(s) => {
            if let Err(e) = std::fs::write(path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("(saved {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {schema}: {e}"),
    }
}

/// Writes `value` to `results/{name}.json` under schema name `name`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    write_json_at(
        &Path::new("results").join(format!("{name}.json")),
        name,
        value,
    );
}

/// Writes `value` as pretty JSON to `path` *without* the envelope —
/// for artifacts whose payload already carries `schema` /
/// `schema_version` fields at its top level because downstream tooling
/// addresses that layout directly (e.g. `BENCH_speed.json`).
pub fn write_json_raw<T: Serialize>(path: &Path, name: &str, value: &T) {
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("(saved {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Writes an already-rendered JSON payload to `path`, wrapped in the
/// [`Saved`] envelope under the given `schema` name — the serde-free
/// sibling of [`write_json_at`] for writers (like `redcache-bomber`)
/// that assemble their JSON by hand. `data_json` must be a valid JSON
/// value; it is embedded verbatim, indented to match the envelope.
/// Best-effort, like the other writers.
pub fn write_raw_envelope(path: &Path, schema: &str, data_json: &str) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() && std::fs::create_dir_all(dir).is_err() {
            return;
        }
    }
    // Match serde_json::to_string_pretty's 2-space indentation so the
    // artifact is indistinguishable from an enveloped serde write.
    let data = data_json.trim().replace('\n', "\n  ");
    let out = format!(
        "{{\n  \"schema\": \"{schema}\",\n  \"schema_version\": {SCHEMA_VERSION},\n  \"data\": {data}\n}}"
    );
    match std::fs::write(path, out) {
        Ok(()) => eprintln!("(saved {})", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Writes `items` as JSON Lines (one compact object per line) to
/// `path`. Best-effort, like the JSON writers.
pub fn write_jsonl<T: Serialize>(path: &Path, items: &[T]) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() && std::fs::create_dir_all(dir).is_err() {
            return;
        }
    }
    let write_all = || -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        for item in items {
            let line = serde_json::to_string(item)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            writeln!(f, "{line}")?;
        }
        f.flush()
    };
    match write_all() {
        Ok(()) => eprintln!("(saved {})", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Why a saved artifact failed to load — the information
/// [`read_json`]'s `Option` erases. The `redcache-serve` result cache
/// needs the distinction: a [`ReadError::Missing`] entry is simply not
/// cached yet, while a [`ReadError::Corrupt`] one must be evicted from
/// disk before it shadows a good result forever.
#[derive(Debug)]
pub enum ReadError {
    /// The file does not exist.
    Missing,
    /// The file exists but could not be read.
    Io(std::io::Error),
    /// The file was read but parses neither as a [`Saved`] envelope nor
    /// as a bare legacy payload.
    Corrupt(serde_json::Error),
    /// A well-formed envelope written by an incompatible harness.
    Version {
        /// The `schema_version` found in the file.
        found: u32,
    },
}

impl ReadError {
    /// True for on-disk damage worth evicting (as opposed to a merely
    /// absent or version-skewed entry).
    pub fn is_corrupt(&self) -> bool {
        matches!(self, ReadError::Corrupt(_))
    }
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Missing => write!(f, "file not found"),
            ReadError::Io(e) => write!(f, "read failed: {e}"),
            ReadError::Corrupt(e) => write!(f, "unparseable payload: {e}"),
            ReadError::Version { found } => {
                write!(f, "schema_version {found} (want {SCHEMA_VERSION})")
            }
        }
    }
}

impl std::error::Error for ReadError {}

/// Reads a payload saved by [`write_json`]/[`write_json_at`],
/// unwrapping the envelope and checking the version. Files written by
/// pre-envelope harnesses (a bare payload) still load, so existing
/// caches survive the format change.
///
/// # Errors
///
/// Returns [`ReadError::Missing`] for an absent file, [`ReadError::Io`]
/// for any other filesystem failure, [`ReadError::Version`] for an
/// envelope from an incompatible harness, and [`ReadError::Corrupt`]
/// when the contents parse as neither an envelope nor a legacy bare
/// payload.
pub fn try_read_json<T: DeserializeOwned>(path: &Path) -> Result<T, ReadError> {
    let s = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(ReadError::Missing),
        Err(e) => return Err(ReadError::Io(e)),
    };
    match serde_json::from_str::<Saved<T>>(&s) {
        Ok(saved) if saved.schema_version == SCHEMA_VERSION => Ok(saved.data),
        Ok(saved) => Err(ReadError::Version {
            found: saved.schema_version,
        }),
        // Not an envelope: try the pre-envelope bare layout before
        // declaring the file corrupt.
        Err(_) => serde_json::from_str::<T>(&s).map_err(ReadError::Corrupt),
    }
}

/// [`try_read_json`] with the error collapsed to `None` (legacy
/// convenience wrapper — the figure binaries treat every miss the
/// same). A version mismatch still warns on stderr.
pub fn read_json<T: DeserializeOwned>(path: &Path) -> Option<T> {
    match try_read_json(path) {
        Ok(v) => Some(v),
        Err(ReadError::Version { found }) => {
            eprintln!(
                "warning: {} has schema_version {found} (want {SCHEMA_VERSION}); ignoring it",
                path.display(),
            );
            None
        }
        Err(_) => None,
    }
}

/// FNV-1a over a byte slice — the workspace's stable content hash
/// (deliberately not `std::hash::Hash`: keys must survive compiler and
/// std upgrades, they name files on disk and cache entries across
/// daemon restarts).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Stable 64-bit content key for any serializable value: FNV-1a over
/// its compact JSON encoding. Field order is the struct's definition
/// order, so the key is deterministic for a given schema — bump
/// [`SCHEMA_VERSION`] when a keyed layout changes. This is how the
/// `redcache-serve` daemon addresses its single-flight result cache:
/// `json_key(&(workload, gen_config, sim_config))`.
///
/// # Panics
///
/// Panics if `value` fails to serialize (keyed configs are plain data
/// and always serialize).
pub fn json_key<T: Serialize>(value: &T) -> u64 {
    fnv1a(&serde_json::to_vec(value).expect("keyed value serializes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_envelope() {
        let dir = std::env::temp_dir().join("redcache_report_io_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("probe.json");
        write_json_at(&path, "probe", &vec![1u64, 2, 3]);
        let back: Vec<u64> = read_json(&path).expect("saved payload loads");
        assert_eq!(back, [1, 2, 3]);
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.contains("\"schema\": \"probe\""));
        assert!(s.contains("\"schema_version\": 1"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn try_read_distinguishes_missing_corrupt_and_version_skew() {
        let dir = std::env::temp_dir().join("redcache_report_io_test_err");
        let _ = std::fs::create_dir_all(&dir);

        let missing = dir.join("nope.json");
        let _ = std::fs::remove_file(&missing);
        assert!(matches!(
            try_read_json::<Vec<u64>>(&missing),
            Err(ReadError::Missing)
        ));

        let corrupt = dir.join("corrupt.json");
        std::fs::write(&corrupt, "{not json at all").unwrap();
        let err = try_read_json::<Vec<u64>>(&corrupt).unwrap_err();
        assert!(err.is_corrupt(), "got {err}");
        assert!(read_json::<Vec<u64>>(&corrupt).is_none());

        // Parseable JSON of the wrong shape is corrupt too.
        std::fs::write(&corrupt, "{\"some\": \"object\"}").unwrap();
        assert!(try_read_json::<Vec<u64>>(&corrupt)
            .unwrap_err()
            .is_corrupt());

        let skewed = dir.join("skewed.json");
        std::fs::write(
            &skewed,
            "{\"schema\": \"x\", \"schema_version\": 999, \"data\": [1]}",
        )
        .unwrap();
        assert!(matches!(
            try_read_json::<Vec<u64>>(&skewed),
            Err(ReadError::Version { found: 999 })
        ));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_are_stable_and_content_addressed() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        let a = json_key(&("HIST", 1u64, 2u64));
        let b = json_key(&("HIST", 1u64, 2u64));
        let c = json_key(&("HIST", 1u64, 3u64));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn raw_envelope_round_trips_through_the_standard_reader() {
        let dir = std::env::temp_dir().join("redcache_report_io_test_raw");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("raw.json");
        write_raw_envelope(&path, "bench_serve", "[7,\n  8,\n  9]");
        let back: Vec<u64> = read_json(&path).expect("raw envelope loads");
        assert_eq!(back, [7, 8, 9]);
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.contains("\"schema\": \"bench_serve\""));
        assert!(s.contains("\"schema_version\": 1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reads_legacy_bare_payloads() {
        let dir = std::env::temp_dir().join("redcache_report_io_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("legacy.json");
        std::fs::write(&path, "[4, 5]").unwrap();
        let back: Vec<u64> = read_json(&path).expect("bare payload loads");
        assert_eq!(back, [4, 5]);
        let _ = std::fs::remove_file(&path);
    }
}
