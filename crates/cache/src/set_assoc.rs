//! A generic set-associative, write-back cache with pluggable
//! replacement (default: true-LRU, bit-exact with the pre-trait
//! kernel preserved in [`crate::reference`]).

use crate::geometry::CacheGeometry;
use crate::replacement::{ReplacementPolicy, TrueLru};
use redcache_types::wire::{Reader, Wire, WireError};
use redcache_types::LineAddr;
use serde::{Deserialize, Serialize};

/// A line evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Evicted {
    /// The displaced line.
    pub line: LineAddr,
    /// Whether it held modified data.
    pub dirty: bool,
    /// Version stamp of its payload.
    pub version: u64,
}

/// Result of a lookup-with-allocate operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the line was present.
    pub hit: bool,
    /// Payload version observed on a hit (undefined on miss: 0).
    pub version: u64,
}

/// Hit/miss/traffic statistics for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups performed.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Fills performed.
    pub fills: u64,
    /// Evictions of valid lines.
    pub evictions: u64,
    /// Evictions of dirty lines.
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Hit rate over all accesses (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Element-wise accumulation, the inverse of [`CacheStats::delta`].
    pub fn add(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.fills += other.fills;
        self.evictions += other.evictions;
        self.dirty_evictions += other.dirty_evictions;
    }

    /// Field-wise difference `self - prev`: the activity between two
    /// snapshots of one cache's monotonically growing counters, itself
    /// a valid `CacheStats` for the interval (the epoch recorder's
    /// per-epoch series come from exactly this).
    pub fn delta(&self, prev: &CacheStats) -> CacheStats {
        CacheStats {
            accesses: self.accesses.saturating_sub(prev.accesses),
            hits: self.hits.saturating_sub(prev.hits),
            fills: self.fills.saturating_sub(prev.fills),
            evictions: self.evictions.saturating_sub(prev.evictions),
            dirty_evictions: self.dirty_evictions.saturating_sub(prev.dirty_evictions),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    valid: bool,
    line: LineAddr,
    dirty: bool,
    version: u64,
}

/// A set-associative cache storing line addresses, dirty bits and data
/// versions, with victim selection delegated to a [`ReplacementPolicy`]
/// (DESIGN.md §3.14). Lookup is O(associativity); the ordering cost is
/// whatever the policy's hooks cost (O(1) for the shipped list-based
/// policies, O(associativity) victim scan for [`TrueLru`]).
#[derive(Debug, Clone)]
pub struct SetAssocCache<P: ReplacementPolicy = TrueLru> {
    geometry: CacheGeometry,
    ways: Vec<Way>, // sets * ways, row-major by set
    stats: CacheStats,
    policy: P,
}

impl<P: ReplacementPolicy> SetAssocCache<P> {
    /// Creates an empty cache of the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        Self {
            geometry,
            ways: vec![Way::default(); geometry.sets() * geometry.ways],
            stats: CacheStats::default(),
            policy: P::new(geometry.sets(), geometry.ways),
        }
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Zeroes the statistics, leaving contents intact (warmup boundary).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The replacement policy's current ordering state.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Looks up `line`; on a hit, notifies the replacement policy,
    /// optionally marks dirty and overwrites the stored version (for
    /// stores).
    pub fn access(&mut self, line: LineAddr, write: Option<u64>) -> AccessResult {
        self.stats.accesses += 1;
        let set = self.geometry.set_of(line.raw());
        let base = set * self.geometry.ways;
        for rel in 0..self.geometry.ways {
            let w = &mut self.ways[base + rel];
            if w.valid && w.line == line {
                if let Some(v) = write {
                    w.dirty = true;
                    w.version = v;
                }
                let version = w.version;
                self.policy.touch(set, rel);
                self.stats.hits += 1;
                return AccessResult { hit: true, version };
            }
        }
        AccessResult {
            hit: false,
            version: 0,
        }
    }

    /// Checks presence without disturbing replacement state or stats.
    pub fn probe(&self, line: LineAddr) -> Option<u64> {
        let set = self.geometry.set_of(line.raw());
        let base = set * self.geometry.ways;
        self.ways[base..base + self.geometry.ways]
            .iter()
            .find(|w| w.valid && w.line == line)
            .map(|w| w.version)
    }

    /// Inserts `line` (after a miss), evicting the policy's victim if
    /// the set is full. `dirty` marks the fill as modified
    /// (writeback-allocate).
    ///
    /// Filling a line that is already present updates it in place
    /// (counting as a touch) and returns `None`.
    pub fn fill(&mut self, line: LineAddr, version: u64, dirty: bool) -> Option<Evicted> {
        self.stats.fills += 1;
        let set = self.geometry.set_of(line.raw());
        let base = set * self.geometry.ways;
        // Already present: update in place.
        for rel in 0..self.geometry.ways {
            let w = &mut self.ways[base + rel];
            if w.valid && w.line == line {
                w.version = version;
                w.dirty = w.dirty || dirty;
                self.policy.touch(set, rel);
                return None;
            }
        }
        // Free way?
        for rel in 0..self.geometry.ways {
            if !self.ways[base + rel].valid {
                self.ways[base + rel] = Way {
                    valid: true,
                    line,
                    dirty,
                    version,
                };
                self.policy.fill(set, rel);
                return None;
            }
        }
        // Full set: displace the policy's victim.
        let rel = self.policy.victim(set);
        debug_assert!(rel < self.geometry.ways, "policy victim out of range");
        let v = self.ways[base + rel];
        self.ways[base + rel] = Way {
            valid: true,
            line,
            dirty,
            version,
        };
        self.policy.evict(set, rel);
        self.policy.fill(set, rel);
        self.stats.evictions += 1;
        if v.dirty {
            self.stats.dirty_evictions += 1;
        }
        Some(Evicted {
            line: v.line,
            dirty: v.dirty,
            version: v.version,
        })
    }

    /// Removes `line` if present, returning its eviction record.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Evicted> {
        let set = self.geometry.set_of(line.raw());
        let base = set * self.geometry.ways;
        for rel in 0..self.geometry.ways {
            let w = &mut self.ways[base + rel];
            if w.valid && w.line == line {
                w.valid = false;
                let ev = Evicted {
                    line: w.line,
                    dirty: w.dirty,
                    version: w.version,
                };
                self.policy.evict(set, rel);
                return Some(ev);
            }
        }
        None
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    /// Iterates over all resident lines (for audits).
    pub fn resident_lines(&self) -> impl Iterator<Item = (LineAddr, bool, u64)> + '_ {
        self.ways
            .iter()
            .filter(|w| w.valid)
            .map(|w| (w.line, w.dirty, w.version))
    }
}

redcache_types::wire_struct!(Way {
    valid,
    line,
    dirty,
    version,
});
redcache_types::wire_struct!(CacheStats {
    accesses,
    hits,
    fills,
    evictions,
    dirty_evictions,
});

// Hand-written because `wire_struct!` cannot name a generic type; the
// field order matches declaration order like the macro's expansion.
impl<P: ReplacementPolicy> Wire for SetAssocCache<P> {
    fn put(&self, out: &mut Vec<u8>) {
        self.geometry.put(out);
        self.ways.put(out);
        self.stats.put(out);
        self.policy.put(out);
    }

    fn get(r: &mut Reader) -> Result<Self, WireError> {
        Ok(Self {
            geometry: Wire::get(r)?,
            ways: Wire::get(r)?,
            stats: Wire::get(r)?,
            policy: Wire::get(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::{Lfu, Slru};

    fn tiny() -> SetAssocCache {
        // 2 sets × 2 ways of 64 B lines.
        SetAssocCache::new(CacheGeometry::new(256, 2, 64))
    }

    fn line(i: u64) -> LineAddr {
        LineAddr::new(i)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert!(!c.access(line(0), None).hit);
        assert!(c.fill(line(0), 7, false).is_none());
        let r = c.access(line(0), None);
        assert!(r.hit);
        assert_eq!(r.version, 7);
        assert_eq!(c.stats().hit_rate(), 0.5);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 2, 4 map to set 0 (even line indices).
        c.fill(line(0), 1, false);
        c.fill(line(2), 2, false);
        c.access(line(0), None); // make line 0 MRU
        let ev = c.fill(line(4), 3, false).expect("set full");
        assert_eq!(ev.line, line(2));
        assert!(c.probe(line(0)).is_some());
        assert!(c.probe(line(2)).is_none());
    }

    #[test]
    fn store_marks_dirty_and_updates_version() {
        let mut c = tiny();
        c.fill(line(0), 1, false);
        c.access(line(0), Some(9));
        c.fill(line(2), 2, false);
        // Line 0 (stored at tick 2) is older than line 2 (filled at
        // tick 3), so it is the victim — and must carry its dirty store.
        let ev = c.fill(line(4), 3, false).unwrap();
        assert_eq!(ev.line, line(0));
        assert!(ev.dirty);
        assert_eq!(ev.version, 9);
    }

    #[test]
    fn writeback_allocate_fill_is_dirty() {
        let mut c = tiny();
        c.fill(line(0), 5, true);
        let ev = c.invalidate(line(0)).unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn fill_of_present_line_updates_in_place() {
        let mut c = tiny();
        c.fill(line(0), 1, false);
        assert!(c.fill(line(0), 8, false).is_none());
        assert_eq!(c.probe(line(0)), Some(8));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn probe_does_not_change_lru() {
        let mut c = tiny();
        c.fill(line(0), 1, false);
        c.fill(line(2), 2, false);
        let _ = c.probe(line(0)); // must NOT refresh line 0
        let ev = c.fill(line(4), 3, false).unwrap();
        assert_eq!(ev.line, line(0));
    }

    #[test]
    fn invalidate_missing_line_is_none() {
        let mut c = tiny();
        assert!(c.invalidate(line(3)).is_none());
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = tiny();
        c.fill(line(0), 1, false); // set 0
        c.fill(line(1), 2, false); // set 1
        c.fill(line(2), 3, false); // set 0
        c.fill(line(3), 4, false); // set 1
        assert_eq!(c.occupancy(), 4);
        assert!(c.fill(line(4), 5, false).is_some()); // set 0 overflows
        assert!(c.probe(line(1)).is_some());
        assert!(c.probe(line(3)).is_some());
    }

    #[test]
    fn lfu_cache_keeps_the_hot_line() {
        // 1 set × 2 ways; line 0 is hit repeatedly, line 2 never — a
        // conflicting fill must displace the cold line even though it
        // is the more recent arrival.
        let mut c: SetAssocCache<Lfu> = SetAssocCache::new(CacheGeometry::new(128, 2, 64));
        c.fill(line(0), 1, false);
        c.access(line(0), None);
        c.access(line(0), None);
        c.fill(line(1), 2, false);
        let ev = c.fill(line(2), 3, false).expect("set full");
        assert_eq!(ev.line, line(1));
        assert!(c.probe(line(0)).is_some());
    }

    #[test]
    fn slru_cache_protects_reused_lines_from_scans() {
        // 1 set × 4 ways, protected capacity 2. Reused lines 0 and 1
        // survive a scan of one-shot fills.
        let mut c: SetAssocCache<Slru> = SetAssocCache::new(CacheGeometry::new(256, 4, 64));
        for i in 0..4 {
            c.fill(line(i), i, false);
        }
        c.access(line(0), None);
        c.access(line(1), None);
        for i in 4..10 {
            let ev = c.fill(line(i), i, false).expect("set full");
            assert!(
                ev.line != line(0) && ev.line != line(1),
                "scan displaced a protected line"
            );
        }
        assert!(c.probe(line(0)).is_some());
        assert!(c.probe(line(1)).is_some());
    }
}
