//! Snapshot/restore round-trips for the out-of-order core model
//! (DESIGN.md §3.13).
//!
//! Strategy mirrors the DRAM and cache suites: drive a core against a
//! scripted memory to an arbitrary mid-trace cycle (with loads parked
//! in flight), capture its state, install it into a freshly built core
//! both directly and through the wire codec, then continue original
//! and restored copies in lockstep and require identical observable
//! behaviour — the same poll decisions, tokens, completion times, and
//! counters. The scripted memory's outstanding completions are carried
//! across the cut and replayed identically into every copy.

use proptest::prelude::*;
use redcache_cpu::{Access, Core, CoreConfig, CoreState, LoadToken, Poll};
use redcache_types::wire::{Reader, Wire};
use redcache_types::{Cycle, MemOp, PhysAddr, Restorable, Snapshot};
use std::sync::Arc;

/// Outstanding scripted-memory completions: `(due cycle, token)`.
type Pending = Vec<(Cycle, LoadToken)>;

/// Deterministic per-access "memory behaviour" hash.
fn mix(x: u64) -> u64 {
    let mut h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 29;
    h.wrapping_mul(0xBF58_476D_1CE4_E5B9)
}

/// Drives `core` from cycle `from` to `to` against the scripted
/// memory, returning an observable log plus the still-pending
/// completions at `to`.
fn drive(core: &mut Core, from: Cycle, to: Cycle, mut pending: Pending) -> (Vec<String>, Pending) {
    let mut log = Vec::new();
    for now in from..to {
        pending.retain(|&(due, tok)| {
            if due == now {
                core.complete_load(tok, now);
                false
            } else {
                true
            }
        });
        // Issue until the core has nothing more for this cycle (the
        // simulator loop does the same); the cap guards the log size.
        for _ in 0..8 {
            match core.poll(now) {
                Poll::Finished(at) => {
                    log.push(format!("fin@{at}"));
                    break;
                }
                Poll::NotYet(at) => {
                    log.push(format!("notyet@{at}"));
                    break;
                }
                Poll::WaitingMem => {
                    log.push("wait".into());
                    break;
                }
                Poll::Ready(a) => {
                    let h = mix(a.addr.raw() ^ now);
                    match (a.op, h % 3) {
                        (_, 0) => core.commit_hit(now, 3 + (h >> 8) % 37),
                        (MemOp::Load, _) => {
                            let tok = core.commit_load_miss(now);
                            pending.push((now + 50 + (h >> 16) % 97, tok));
                            log.push(format!("miss:{tok:?}"));
                        }
                        (MemOp::Store, _) => core.commit_store_miss(now),
                    }
                }
            }
        }
    }
    log.push(format!(
        "loads={} stores={} instr={} stall={}",
        core.loads_issued(),
        core.stores_issued(),
        core.instructions_dispatched(),
        core.mem_stall_cycles()
    ));
    (log, pending)
}

/// Runs the script, snapshots at `snap_at`, and checks that the
/// original, a directly restored copy, and a wire round-tripped copy
/// agree over the remaining cycles.
fn assert_forkable(cfg: CoreConfig, trace: Arc<[Access]>, snap_at: Cycle, tail: Cycle) {
    let mut orig = Core::new(cfg, trace.clone());
    let (_, pending) = drive(&mut orig, 0, snap_at, Vec::new());
    let state = orig.snapshot();

    // Direct restore.
    let mut forked = Core::new(cfg, trace.clone());
    forked.restore(&state);

    // Wire round-trip restore: encode, decode, byte-identical re-encode.
    let mut bytes = Vec::new();
    state.put(&mut bytes);
    let mut r = Reader::new(&bytes);
    let decoded = CoreState::get(&mut r).expect("state decodes");
    assert!(r.is_empty(), "decode must consume the whole payload");
    let mut re = Vec::new();
    decoded.put(&mut re);
    assert_eq!(bytes, re, "snapshot encoding must be deterministic");
    let mut wired = Core::new(cfg, trace);
    wired.restore(&decoded);

    let end = snap_at + tail;
    let (a, pa) = drive(&mut orig, snap_at, end, pending.clone());
    let (b, pb) = drive(&mut forked, snap_at, end, pending.clone());
    let (c, pc) = drive(&mut wired, snap_at, end, pending);
    assert_eq!(a, b, "forked copy diverged from the original");
    assert_eq!(a, c, "wire round-tripped copy diverged from the original");
    assert_eq!(pa, pb);
    assert_eq!(pa, pc);
}

fn trace_of(seed: &[(u32, u64, bool)]) -> Arc<[Access]> {
    seed.iter()
        .map(|&(gap, addr, store)| Access {
            op: if store { MemOp::Store } else { MemOp::Load },
            addr: PhysAddr::new(addr * 64),
            gap,
        })
        .collect::<Vec<_>>()
        .into()
}

#[test]
fn mid_flight_loads_survive_the_snapshot() {
    // A load-dense, low-gap trace keeps the ROB and the load budget
    // busy at the cut.
    let seed: Vec<(u32, u64, bool)> = (0..200u64).map(|i| (1u32, i * 7, i % 5 == 0)).collect();
    assert_forkable(CoreConfig::table1(), trace_of(&seed), 73, 8_000);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary traces, arbitrary snapshot cycle: the fork must be
    /// undetectable from the observable behaviour.
    #[test]
    fn random_traces_snapshot_in_lockstep(
        seed in proptest::collection::vec(
            (0u32..8, 0u64..0x4000, any::<bool>()),
            1..120,
        ),
        snap_at in 1u64..400,
    ) {
        assert_forkable(CoreConfig::table1(), trace_of(&seed), snap_at, 6_000);
    }
}
