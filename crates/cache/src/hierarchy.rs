//! The three-level cache hierarchy of Table I.
//!
//! Private L1D and L2 per core, shared L3, all write-back /
//! write-allocate with LRU. The hierarchy is *functionally* modelled:
//! lookups and fills update state immediately, and latency is reported
//! to the caller (the CPU model) as a number of cycles to charge.
//!
//! Coherence simplification (see DESIGN.md): private caches are not kept
//! coherent across cores. The evaluated workloads partition their data,
//! and the study's subject — traffic below the L3 — is unaffected; the
//! shadow-memory checker therefore validates versions *below* the L3
//! only.

use crate::geometry::CacheGeometry;
use crate::mshr::{Mshr, MshrOutcome};
use crate::set_assoc::{CacheStats, Evicted, SetAssocCache};
use redcache_types::{ConfigError, CoreId, Cycle, LineAddr, MemOp};
use serde::{Deserialize, Serialize};

/// The cache level that served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheLevel {
    /// Private first level.
    L1,
    /// Private second level.
    L2,
    /// Shared third level.
    L3,
}

/// Configuration of the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Number of cores (private L1/L2 instances).
    pub cores: usize,
    /// L1 data-cache geometry.
    pub l1: CacheGeometry,
    /// L2 geometry.
    pub l2: CacheGeometry,
    /// Shared L3 geometry.
    pub l3: CacheGeometry,
    /// L1 hit latency (CPU cycles).
    pub l1_latency: Cycle,
    /// Additional latency for an L2 hit.
    pub l2_latency: Cycle,
    /// Additional latency for an L3 hit.
    pub l3_latency: Cycle,
    /// MSHR entries at the L3↔memory boundary.
    pub mshr_entries: usize,
}

impl HierarchyConfig {
    /// The full Table I hierarchy for `cores` cores (16 in the paper).
    pub fn table1(cores: usize) -> Self {
        Self {
            cores,
            l1: CacheGeometry::l1d_table1(),
            l2: CacheGeometry::l2_table1(),
            l3: CacheGeometry::l3_table1(),
            l1_latency: 4,
            l2_latency: 12,
            l3_latency: 38,
            mshr_entries: 64,
        }
    }

    /// The scaled preset: same organisation, smaller caches (512 KB L3)
    /// so scaled workload footprints keep the paper's footprint ≫ L3
    /// regime (DESIGN.md §1).
    pub fn scaled(cores: usize) -> Self {
        let mut c = Self::table1(cores);
        c.l1 = CacheGeometry::new(16 << 10, 4, 64);
        c.l2 = CacheGeometry::new(64 << 10, 8, 64);
        c.l3 = CacheGeometry::new(512 << 10, 8, 64);
        c
    }

    /// Starts a validated builder seeded from the Table I hierarchy for
    /// `cores` cores. Use [`HierarchyConfig::to_builder`] to start from
    /// another preset.
    pub fn builder(cores: usize) -> HierarchyConfigBuilder {
        Self::table1(cores).to_builder()
    }

    /// Turns this configuration into a builder for deriving a variant
    /// with validation re-run on `build`.
    pub fn to_builder(self) -> HierarchyConfigBuilder {
        HierarchyConfigBuilder { cfg: self }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found (zero cores/MSHRs, mixed
    /// line sizes across levels, or a level smaller than the one above).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 {
            return Err(ConfigError::new("need at least one core"));
        }
        if self.mshr_entries == 0 {
            return Err(ConfigError::new("mshr_entries must be nonzero"));
        }
        if self.l1.block_bytes != self.l2.block_bytes || self.l2.block_bytes != self.l3.block_bytes
        {
            return Err(ConfigError::new(format!(
                "line size must match across levels ({}/{}/{})",
                self.l1.block_bytes, self.l2.block_bytes, self.l3.block_bytes
            )));
        }
        if self.l2.size_bytes < self.l1.size_bytes {
            return Err(ConfigError::new("L2 must be at least as large as L1"));
        }
        Ok(())
    }
}

/// Builder for [`HierarchyConfig`]: the validated construction path for
/// tests and binaries that tweak individual fields of a preset.
#[derive(Debug, Clone, Copy)]
pub struct HierarchyConfigBuilder {
    cfg: HierarchyConfig,
}

impl HierarchyConfigBuilder {
    /// Sets the core count (private L1/L2 instances).
    pub fn cores(mut self, cores: usize) -> Self {
        self.cfg.cores = cores;
        self
    }

    /// Replaces the L1 geometry.
    pub fn l1(mut self, g: CacheGeometry) -> Self {
        self.cfg.l1 = g;
        self
    }

    /// Replaces the L2 geometry.
    pub fn l2(mut self, g: CacheGeometry) -> Self {
        self.cfg.l2 = g;
        self
    }

    /// Replaces the shared-L3 geometry.
    pub fn l3(mut self, g: CacheGeometry) -> Self {
        self.cfg.l3 = g;
        self
    }

    /// Sets the per-level hit latencies (L1, additional L2, additional
    /// L3) in one call — the three always travel together.
    pub fn latencies(mut self, l1: Cycle, l2: Cycle, l3: Cycle) -> Self {
        self.cfg.l1_latency = l1;
        self.cfg.l2_latency = l2;
        self.cfg.l3_latency = l3;
        self
    }

    /// Sets the L3↔memory MSHR entry count.
    pub fn mshr_entries(mut self, n: usize) -> Self {
        self.cfg.mshr_entries = n;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// See [`HierarchyConfig::validate`].
    pub fn build(self) -> Result<HierarchyConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Result of a CPU access into the hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Level that hit, or `None` for an L3 miss that must go to memory.
    pub hit_level: Option<CacheLevel>,
    /// Cycles to charge for the lookup path (on a miss: the full
    /// tag-check path down to and including the L3).
    pub latency: Cycle,
    /// MSHR outcome when `hit_level` is `None`.
    pub mshr: Option<MshrOutcome>,
    /// Version observed on a hit (for loads).
    pub version: u64,
    /// Dirty L3 evictions that must be written back to memory.
    pub writebacks: Vec<Evicted>,
}

impl AccessOutcome {
    /// True when the caller must issue a memory read for this access.
    pub fn mem_read_needed(&self) -> bool {
        matches!(self.mshr, Some(MshrOutcome::Allocated))
    }

    /// True when the access could not even allocate an MSHR and must be
    /// retried.
    pub fn must_retry(&self) -> bool {
        matches!(self.mshr, Some(MshrOutcome::Full))
    }
}

/// Result of completing a memory read into the hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FillResult {
    /// Waiter tokens registered on the line's MSHR entry.
    pub waiters: Vec<u64>,
    /// Dirty L3 evictions displaced by the fill.
    pub writebacks: Vec<Evicted>,
}

/// The L1/L2/L3 hierarchy.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    l3: SetAssocCache,
    mshr: Mshr,
}

impl Hierarchy {
    /// Builds an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cores == 0`.
    pub fn new(cfg: HierarchyConfig) -> Self {
        assert!(cfg.cores > 0, "need at least one core");
        Self {
            cfg,
            l1: (0..cfg.cores).map(|_| SetAssocCache::new(cfg.l1)).collect(),
            l2: (0..cfg.cores).map(|_| SetAssocCache::new(cfg.l2)).collect(),
            l3: SetAssocCache::new(cfg.l3),
            mshr: Mshr::new(cfg.mshr_entries),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Inserts `ev` (an eviction from the private L2) into the L3,
    /// returning any dirty line the insertion displaces.
    fn l2_evict_into_l3(&mut self, ev: Evicted, writebacks: &mut Vec<Evicted>) {
        if !ev.dirty {
            return; // clean private evictions are dropped
        }
        if let Some(out) = self.l3.fill(ev.line, ev.version, true) {
            if out.dirty {
                writebacks.push(out);
            }
        }
    }

    /// Inserts an L1 eviction into the core's L2, cascading into L3.
    fn l1_evict_into_l2(&mut self, core: usize, ev: Evicted, writebacks: &mut Vec<Evicted>) {
        if !ev.dirty {
            return;
        }
        if let Some(out) = self.l2[core].fill(ev.line, ev.version, true) {
            self.l2_evict_into_l3(out, writebacks);
        }
    }

    /// Fills `line` into a core's private levels (after an L3 hit or a
    /// memory fill), applying an optional store.
    fn fill_private_levels(
        &mut self,
        core: usize,
        line: LineAddr,
        version: u64,
        store: Option<u64>,
        writebacks: &mut Vec<Evicted>,
    ) {
        let (v, dirty) = match store {
            Some(sv) => (sv, true),
            None => (version, false),
        };
        if let Some(ev) = self.l2[core].fill(line, version, false) {
            self.l2_evict_into_l3(ev, writebacks);
        }
        if let Some(ev) = self.l1[core].fill(line, v, dirty) {
            self.l1_evict_into_l2(core, ev, writebacks);
        }
        // When the store went into L1 only, leave L2 with the clean copy:
        // the dirty L1 line will write it back on eviction.
    }

    /// Performs one CPU access.
    ///
    /// `store_version` is the new payload version when `op` is a store.
    /// `waiter` is an opaque token returned by [`Hierarchy::complete_fill`]
    /// when the miss resolves.
    pub fn access(
        &mut self,
        core: CoreId,
        line: LineAddr,
        op: MemOp,
        store_version: u64,
        waiter: u64,
    ) -> AccessOutcome {
        let c = core.0 as usize;
        assert!(c < self.cfg.cores, "core out of range");
        let write = if op.is_store() {
            Some(store_version)
        } else {
            None
        };
        let mut writebacks = Vec::new();

        // L1.
        let r1 = self.l1[c].access(line, write);
        if r1.hit {
            return AccessOutcome {
                hit_level: Some(CacheLevel::L1),
                latency: self.cfg.l1_latency,
                mshr: None,
                version: r1.version,
                writebacks,
            };
        }
        // L2 (loads refresh LRU; stores are resolved in L1 after fill).
        let r2 = self.l2[c].access(line, None);
        if r2.hit {
            let (v, dirty) = match write {
                Some(sv) => (sv, true),
                None => (r2.version, false),
            };
            if let Some(ev) = self.l1[c].fill(line, v, dirty) {
                self.l1_evict_into_l2(c, ev, &mut writebacks);
            }
            return AccessOutcome {
                hit_level: Some(CacheLevel::L2),
                latency: self.cfg.l1_latency + self.cfg.l2_latency,
                mshr: None,
                version: r2.version,
                writebacks,
            };
        }
        // L3.
        let r3 = self.l3.access(line, None);
        let lookup_latency = self.cfg.l1_latency + self.cfg.l2_latency + self.cfg.l3_latency;
        if r3.hit {
            self.fill_private_levels(c, line, r3.version, write, &mut writebacks);
            return AccessOutcome {
                hit_level: Some(CacheLevel::L3),
                latency: lookup_latency,
                mshr: None,
                version: r3.version,
                writebacks,
            };
        }
        // Miss below L3: register in the MSHR file.
        let mshr = self.mshr.register(line, waiter);
        AccessOutcome {
            hit_level: None,
            latency: lookup_latency,
            mshr: Some(mshr),
            version: 0,
            writebacks,
        }
    }

    /// Completes a memory read of `line` carrying payload `version`:
    /// fills the L3 and releases the MSHR waiters. The caller then calls
    /// [`Hierarchy::fill_waiter`] for each waiter to populate that
    /// core's private levels.
    pub fn complete_fill(&mut self, line: LineAddr, version: u64) -> FillResult {
        let waiters = self.mshr.complete(line);
        let mut writebacks = Vec::new();
        if let Some(ev) = self.l3.fill(line, version, false) {
            if ev.dirty {
                writebacks.push(ev);
            }
        }
        FillResult {
            waiters,
            writebacks,
        }
    }

    /// Populates `core`'s private levels after [`Hierarchy::complete_fill`],
    /// applying the waiter's store if it was one.
    pub fn fill_waiter(
        &mut self,
        core: CoreId,
        line: LineAddr,
        version: u64,
        store_version: Option<u64>,
    ) -> Vec<Evicted> {
        let mut writebacks = Vec::new();
        self.fill_private_levels(
            core.0 as usize,
            line,
            version,
            store_version,
            &mut writebacks,
        );
        writebacks
    }

    /// Outstanding distinct MSHR lines.
    pub fn mshr_len(&self) -> usize {
        self.mshr.len()
    }

    /// Collects every dirty line still resident anywhere in the
    /// hierarchy — the writebacks a program issues when it terminates.
    /// Each line appears once, with its newest version (stamps are
    /// monotonic, so the maximum is the latest store). The lines are
    /// left in place but marked clean.
    pub fn drain_dirty(&mut self) -> Vec<Evicted> {
        let mut newest: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut visit = |cache: &SetAssocCache| {
            for (line, dirty, version) in cache.resident_lines() {
                if dirty {
                    let e = newest.entry(line.raw()).or_insert(version);
                    *e = (*e).max(version);
                }
            }
        };
        for c in &self.l1 {
            visit(c);
        }
        for c in &self.l2 {
            visit(c);
        }
        visit(&self.l3);
        // Mark clean: re-fill in place with dirty=false is wrong (fill
        // ORs dirty); invalidate + fill would disturb LRU. Since the
        // drain models program termination, leaving the dirty bits set
        // is harmless for profiling; only emit the writeback records.
        newest
            .into_iter()
            .map(|(line, version)| Evicted {
                line: LineAddr::new(line),
                dirty: true,
                version,
            })
            .collect()
    }

    /// Zeroes all cache statistics, leaving contents intact (warmup
    /// boundary).
    pub fn reset_stats(&mut self) {
        for c in &mut self.l1 {
            c.reset_stats();
        }
        for c in &mut self.l2 {
            c.reset_stats();
        }
        self.l3.reset_stats();
    }

    /// Aggregated stats: (per-core L1, per-core L2, shared L3).
    pub fn stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        let sum = |cs: &[SetAssocCache]| {
            let mut acc = CacheStats::default();
            for c in cs {
                let s = c.stats();
                acc.accesses += s.accesses;
                acc.hits += s.hits;
                acc.fills += s.fills;
                acc.evictions += s.evictions;
                acc.dirty_evictions += s.dirty_evictions;
            }
            acc
        };
        (sum(&self.l1), sum(&self.l2), *self.l3.stats())
    }
}

// Snapshot support (DESIGN.md §3.13): SRAM state is plain data, so the
// captured state is simply a deep copy of the hierarchy itself —
// contents, LRU ticks, MSHR entries and statistics all travel.
impl redcache_types::Snapshot for Hierarchy {
    type State = Hierarchy;

    fn snapshot(&self) -> Hierarchy {
        self.clone()
    }
}

impl redcache_types::Restorable for Hierarchy {
    fn restore(&mut self, state: &Hierarchy) {
        *self = state.clone();
    }
}

redcache_types::wire_struct!(HierarchyConfig {
    cores,
    l1,
    l2,
    l3,
    l1_latency,
    l2_latency,
    l3_latency,
    mshr_entries,
});
redcache_types::wire_struct!(Hierarchy {
    cfg,
    l1,
    l2,
    l3,
    mshr,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> HierarchyConfig {
        HierarchyConfig {
            cores: 2,
            l1: CacheGeometry::new(256, 2, 64),  // 4 lines
            l2: CacheGeometry::new(512, 2, 64),  // 8 lines
            l3: CacheGeometry::new(1024, 2, 64), // 16 lines
            l1_latency: 4,
            l2_latency: 12,
            l3_latency: 38,
            mshr_entries: 4,
        }
    }

    fn line(i: u64) -> LineAddr {
        LineAddr::new(i)
    }

    #[test]
    fn cold_miss_reaches_memory_then_hits_l1() {
        let mut h = Hierarchy::new(tiny_cfg());
        let out = h.access(CoreId(0), line(1), MemOp::Load, 0, 77);
        assert!(out.mem_read_needed());
        assert_eq!(out.latency, 4 + 12 + 38);
        let fr = h.complete_fill(line(1), 5);
        assert_eq!(fr.waiters, vec![77]);
        h.fill_waiter(CoreId(0), line(1), 5, None);
        let out2 = h.access(CoreId(0), line(1), MemOp::Load, 0, 0);
        assert_eq!(out2.hit_level, Some(CacheLevel::L1));
        assert_eq!(out2.version, 5);
    }

    #[test]
    fn second_miss_to_same_line_merges() {
        let mut h = Hierarchy::new(tiny_cfg());
        let a = h.access(CoreId(0), line(1), MemOp::Load, 0, 1);
        let b = h.access(CoreId(1), line(1), MemOp::Load, 0, 2);
        assert!(a.mem_read_needed());
        assert!(!b.mem_read_needed());
        assert_eq!(b.mshr, Some(MshrOutcome::Merged));
        let fr = h.complete_fill(line(1), 9);
        assert_eq!(fr.waiters, vec![1, 2]);
    }

    #[test]
    fn store_miss_applies_after_fill() {
        let mut h = Hierarchy::new(tiny_cfg());
        let out = h.access(CoreId(0), line(3), MemOp::Store, 42, 7);
        assert!(out.mem_read_needed());
        h.complete_fill(line(3), 1);
        h.fill_waiter(CoreId(0), line(3), 1, Some(42));
        let r = h.access(CoreId(0), line(3), MemOp::Load, 0, 0);
        assert_eq!(r.version, 42, "store version must be visible");
    }

    #[test]
    fn dirty_data_survives_l1_eviction_to_l2() {
        let mut h = Hierarchy::new(tiny_cfg());
        // Fill line 0, store to it, then displace it from L1 set 0 by
        // touching lines 2 and 4 (all even lines map to L1 set 0).
        for (i, v) in [(0u64, 10u64), (2, 0), (4, 0)] {
            let out = h.access(
                CoreId(0),
                line(i),
                if v > 0 { MemOp::Store } else { MemOp::Load },
                v,
                i,
            );
            if out.mem_read_needed() {
                h.complete_fill(line(i), 1);
                h.fill_waiter(CoreId(0), line(i), 1, (v > 0).then_some(v));
            }
        }
        // Line 0 must now hit in L2 with the stored version.
        let r = h.access(CoreId(0), line(0), MemOp::Load, 0, 0);
        assert!(r.hit_level == Some(CacheLevel::L2) || r.hit_level == Some(CacheLevel::L1));
        assert_eq!(r.version, 10);
    }

    #[test]
    fn mshr_full_reports_retry() {
        let mut h = Hierarchy::new(tiny_cfg());
        for i in 0..4 {
            assert!(h
                .access(CoreId(0), line(100 + i), MemOp::Load, 0, i)
                .mem_read_needed());
        }
        let out = h.access(CoreId(0), line(200), MemOp::Load, 0, 9);
        assert!(out.must_retry());
    }

    #[test]
    fn l3_hit_serves_other_core() {
        let mut h = Hierarchy::new(tiny_cfg());
        let out = h.access(CoreId(0), line(1), MemOp::Load, 0, 1);
        assert!(out.mem_read_needed());
        h.complete_fill(line(1), 3);
        h.fill_waiter(CoreId(0), line(1), 3, None);
        // Core 1 misses privately but hits in shared L3.
        let r = h.access(CoreId(1), line(1), MemOp::Load, 0, 2);
        assert_eq!(r.hit_level, Some(CacheLevel::L3));
        assert_eq!(r.version, 3);
    }

    #[test]
    fn capacity_pressure_generates_memory_writebacks() {
        let mut h = Hierarchy::new(tiny_cfg());
        let mut wrote_back = false;
        // Store to many distinct lines: eventually dirty data cascades
        // out of the 16-line L3.
        for i in 0..64u64 {
            let out = h.access(CoreId(0), line(i), MemOp::Store, 1000 + i, i);
            wrote_back |= !out.writebacks.is_empty();
            if out.mem_read_needed() {
                let fr = h.complete_fill(line(i), 1);
                wrote_back |= !fr.writebacks.is_empty();
                let wb = h.fill_waiter(CoreId(0), line(i), 1, Some(1000 + i));
                wrote_back |= !wb.is_empty();
            }
        }
        assert!(wrote_back, "dirty traffic must eventually reach memory");
    }

    #[test]
    fn stats_aggregate_over_cores() {
        let mut h = Hierarchy::new(tiny_cfg());
        let out = h.access(CoreId(0), line(1), MemOp::Load, 0, 1);
        assert!(out.mem_read_needed());
        h.complete_fill(line(1), 1);
        h.fill_waiter(CoreId(0), line(1), 1, None);
        h.access(CoreId(0), line(1), MemOp::Load, 0, 0);
        h.access(CoreId(1), line(1), MemOp::Load, 0, 0);
        let (l1, _l2, l3) = h.stats();
        assert!(l1.accesses >= 3);
        assert!(l3.accesses >= 2);
    }
}
