//! Criterion macro-benchmark: controller throughput — requests through
//! each DRAM-cache architecture, including both DRAM back ends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redcache::{PolicyConfig, PolicyKind, RedVariant};
use redcache_policies::build_controller;
use redcache_types::{CoreId, LineAddr, MemRequest, ReqId};
use std::time::Duration;

fn drive_requests(kind: PolicyKind, n: u64) -> u64 {
    let mut cfg = PolicyConfig::scaled(kind);
    cfg.hbm = redcache_dram::DramConfig::wideio_scaled(4 << 20);
    cfg.ddr = redcache_dram::DramConfig::ddr4_scaled(64 << 20);
    let mut ctl = build_controller(&cfg);
    let mut now = 0u64;
    let mut done = Vec::new();
    for i in 0..n {
        // Mixed stream: 3/4 reads, hot/cold mix.
        let line = LineAddr::new(if i % 3 == 0 { i % 64 } else { i * 17 % 16384 });
        if i % 4 == 0 {
            ctl.submit(
                MemRequest::writeback(ReqId(i), line, CoreId(0), now, i),
                now,
            );
        } else {
            ctl.submit(MemRequest::read(ReqId(i), line, CoreId(0), now), now);
        }
        for _ in 0..24 {
            ctl.tick(now, &mut done);
            now += 1;
        }
        done.clear();
    }
    while ctl.pending() > 0 {
        ctl.tick(now, &mut done);
        now += 1;
    }
    now
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_throughput");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    for kind in [
        PolicyKind::NoHbm,
        PolicyKind::Ideal,
        PolicyKind::Alloy,
        PolicyKind::Bear,
        PolicyKind::Red(RedVariant::Full),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.to_string()),
            &kind,
            |b, &k| b.iter(|| drive_requests(k, 800)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
