//! The workload vocabulary: the Table II applications plus the
//! server-class scenarios, dispatched through [`crate::registry`].

use crate::common::{GenConfig, ThreadTraces};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of trace generations (every [`Workload::generate`]
/// call). Harnesses that claim to share traces across runs assert on
/// this: a matrix over W workloads must add exactly W, not one per cell.
static GENERATIONS: AtomicU64 = AtomicU64::new(0);

/// Trace generations performed by this process so far.
pub fn generation_count() -> u64 {
    GENERATIONS.load(Ordering::Relaxed)
}

/// The evaluated applications: the paper's Table II rows plus the
/// server-class scenarios of the scenario engine (DESIGN.md §3.15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// NAS Fourier Transform, class-A-shaped.
    Ft,
    /// NAS Integer Sort, class-A-shaped.
    Is,
    /// NAS Multi-Grid, class-A-shaped.
    Mg,
    /// SPLASH-2 Cholesky (tk29.0-shaped).
    Ch,
    /// SPLASH-2 Radix (2 M-integer-shaped).
    Rdx,
    /// SPLASH-2 Ocean (514×514-shaped).
    Ocn,
    /// SPLASH-2 FFT (1,048,576-point-shaped).
    Fft,
    /// SPLASH-2 LU.
    Lu,
    /// SPLASH-2 Barnes (16 K-particle-shaped).
    Brn,
    /// Phoenix Histogram (100 MB-file-shaped).
    Hist,
    /// Phoenix Linear Regression (50 MB-key-file-shaped).
    Lreg,
    /// Zipfian key-value serving (θ = 0.99, 5 % writes).
    Kvz,
    /// Pointer-chasing traversal of a power-law CSR graph.
    Grph,
    /// ML-inference working set (layer streaming + hot activations).
    Mli,
}

/// Static description of a workload — the rows of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadInfo {
    /// Short label used in the figures (e.g. "RDX").
    pub label: &'static str,
    /// Full benchmark name.
    pub name: &'static str,
    /// Source suite.
    pub suite: &'static str,
    /// The paper's input description.
    pub input: &'static str,
}

impl Workload {
    /// All workloads in figure order: the paper's eleven Table II
    /// applications followed by the server-class scenarios. Must match
    /// the row order of [`crate::registry::REGISTRY`] (pinned by the
    /// registry tests).
    pub const ALL: [Workload; 14] = [
        Workload::Ft,
        Workload::Is,
        Workload::Mg,
        Workload::Ch,
        Workload::Rdx,
        Workload::Ocn,
        Workload::Fft,
        Workload::Lu,
        Workload::Brn,
        Workload::Hist,
        Workload::Lreg,
        Workload::Kvz,
        Workload::Grph,
        Workload::Mli,
    ];

    /// Table II row for this workload.
    pub const fn info(self) -> WorkloadInfo {
        match self {
            Workload::Ft => WorkloadInfo {
                label: "FT",
                name: "Fourier Transform",
                suite: "NAS",
                input: "Class A",
            },
            Workload::Is => WorkloadInfo {
                label: "IS",
                name: "Integer Sort",
                suite: "NAS",
                input: "Class A",
            },
            Workload::Mg => WorkloadInfo {
                label: "MG",
                name: "Multi-Grid",
                suite: "NAS",
                input: "Class A",
            },
            Workload::Ch => WorkloadInfo {
                label: "CH",
                name: "Cholesky",
                suite: "SPLASH-2",
                input: "tk29.O",
            },
            Workload::Rdx => WorkloadInfo {
                label: "RDX",
                name: "Radix",
                suite: "SPLASH-2",
                input: "2M integer",
            },
            Workload::Ocn => WorkloadInfo {
                label: "OCN",
                name: "Ocean",
                suite: "SPLASH-2",
                input: "514x514 ocean",
            },
            Workload::Fft => WorkloadInfo {
                label: "FFT",
                name: "FFT",
                suite: "SPLASH-2",
                input: "1048576 data points",
            },
            Workload::Lu => WorkloadInfo {
                label: "LU",
                name: "Lower/Upper Triangular",
                suite: "SPLASH-2",
                input: "isiz02=64",
            },
            Workload::Brn => WorkloadInfo {
                label: "BRN",
                name: "Barnes",
                suite: "SPLASH-2",
                input: "16K particles",
            },
            Workload::Hist => WorkloadInfo {
                label: "HIST",
                name: "Histogram",
                suite: "PHOENIX",
                input: "100MB file",
            },
            Workload::Lreg => WorkloadInfo {
                label: "LREG",
                name: "Linear Regression",
                suite: "PHOENIX",
                input: "50MB key file",
            },
            Workload::Kvz => WorkloadInfo {
                label: "KVZ",
                name: "Key-Value Zipfian",
                suite: "SERVER",
                input: "256K keys, θ=0.99",
            },
            Workload::Grph => WorkloadInfo {
                label: "GRPH",
                name: "Graph Traversal",
                suite: "SERVER",
                input: "512K-node power-law CSR",
            },
            Workload::Mli => WorkloadInfo {
                label: "MLI",
                name: "ML Inference",
                suite: "SERVER",
                input: "8-layer streamed model",
            },
        }
    }

    /// Generates the per-thread traces for this workload, dispatching
    /// through the registry table.
    pub fn generate(self, cfg: &GenConfig) -> ThreadTraces {
        GENERATIONS.fetch_add(1, Ordering::Relaxed);
        (crate::registry::entry(self).generate)(cfg)
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.info().label)
    }
}

impl std::str::FromStr for Workload {
    type Err = String;

    /// Parses a figure label or registry alias (`"RDX"`, `"hist"`,
    /// `"zipf"`, …), case-insensitive — the spelling shared by
    /// `redcache-sim` and the `redcache-serve` job API, resolved by
    /// [`crate::registry::lookup`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        crate::registry::lookup(s)
            .map(|e| e.workload)
            .ok_or_else(|| format!("unknown workload {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_cpu::TraceStats;

    #[test]
    fn all_registry_workloads_generate_nonempty_traces() {
        let cfg = GenConfig::tiny();
        for w in Workload::ALL {
            let traces = w.generate(&cfg);
            assert_eq!(traces.len(), cfg.threads, "{w}");
            let total: usize = traces.iter().map(|t| t.len()).sum();
            assert!(total > 100, "{w} produced only {total} accesses");
        }
    }

    #[test]
    fn budgets_are_respected() {
        let cfg = GenConfig::tiny();
        for w in Workload::ALL {
            for t in w.generate(&cfg) {
                assert!(t.len() <= cfg.budget_per_thread, "{w}");
            }
        }
    }

    #[test]
    fn labels_match_paper_then_scenarios() {
        let labels: Vec<&str> = Workload::ALL.iter().map(|w| w.info().label).collect();
        assert_eq!(
            labels,
            [
                "FT", "IS", "MG", "CH", "RDX", "OCN", "FFT", "LU", "BRN", "HIST", "LREG", "KVZ",
                "GRPH", "MLI"
            ]
        );
    }

    #[test]
    fn labels_parse_back_case_insensitively() {
        for w in Workload::ALL {
            assert_eq!(w.info().label.parse::<Workload>().unwrap(), w);
            assert_eq!(
                w.info().label.to_lowercase().parse::<Workload>().unwrap(),
                w
            );
        }
        assert!("quicksort".parse::<Workload>().is_err());
    }

    #[test]
    fn suite_has_varied_reuse_profiles() {
        // The suite must span stream-dominated and reuse-dominated
        // applications for the α/γ classification to matter.
        let cfg = GenConfig::tiny();
        let reuse_of = |w: Workload| {
            let flat: Vec<_> = w.generate(&cfg).into_iter().flatten().collect();
            let s = TraceStats::from_trace(&flat);
            s.accesses as f64 / s.footprint_lines as f64
        };
        let lreg = reuse_of(Workload::Lreg);
        let ocn = reuse_of(Workload::Ocn);
        assert!(
            ocn > 2.0 * lreg,
            "OCN ({ocn}) should far exceed LREG ({lreg})"
        );
    }
}
