//! Parameter-tuning scenario: sweep RedCache's γ configuration on one
//! workload and observe the trade-off between last-write elision
//! (saved HBM writes) and premature invalidations (extra DDR refetches).
//!
//! ```sh
//! cargo run --release --example tuning_sweep
//! ```

use redcache::{PolicyKind, RedConfig, RedVariant, SimConfig, Simulator};
use redcache_policies::redcache::GammaConfig;
use redcache_workloads::{GenConfig, Workload};

fn main() {
    let mut gen = GenConfig::scaled();
    gen.budget_per_thread = 40_000;
    let w = Workload::Fft;
    let traces = w.generate(&gen);

    println!("sweeping gamma on {} …\n", w.info().label);
    println!(
        "{:<18} {:>12} {:>9} {:>12} {:>12}",
        "gamma", "cycles", "hitrate", "invalidations", "ddr writes"
    );
    let mut settings: Vec<(String, GammaConfig)> =
        vec![("adaptive".into(), GammaConfig::default())];
    for fixed in [4u32, 8, 16, 32, 64] {
        settings.push((
            format!("fixed {fixed}"),
            GammaConfig {
                initial: fixed,
                adapt: false,
                ..GammaConfig::default()
            },
        ));
    }
    for (name, gamma) in settings {
        let kind = PolicyKind::Red(RedVariant::Full);
        let mut cfg = SimConfig::scaled(kind);
        let mut rc = RedConfig::for_variant(RedVariant::Full);
        rc.gamma = gamma;
        cfg.policy.red_override = Some(rc);
        let r = Simulator::new(cfg).run(traces.clone());
        assert_eq!(r.shadow_violations, 0);
        println!(
            "{name:<18} {:>12} {:>8.1}% {:>13} {:>12}",
            r.cycles,
            r.hbm_hit_rate() * 100.0,
            r.ctl.gamma_invalidations,
            r.ctl.ddr_writes,
        );
    }
    println!("\nlow fixed gamma invalidates hot blocks early (refetch cost);");
    println!("high fixed gamma never frees dead blocks; the adaptive policy tracks lifetimes.");
}
