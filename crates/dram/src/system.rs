//! The public DRAM-system facade: enqueue transactions, tick, drain
//! completions.

use crate::audit::{AuditStats, TimingAuditor};
use crate::channel::{Channel, ChannelState};
use crate::config::DramConfig;
use crate::par::ChannelPool;
use crate::queue::TxnCold;
use crate::scheduler::schedule_slot;
use crate::stats::DramStats;
use crate::timing::TimingParams;
use crate::topology::{decode, DramLoc};
use redcache_types::wire::{Reader, Wire, WireError};
use redcache_types::{Cycle, PhysAddr, Restorable, Snapshot};
use serde::{Deserialize, Serialize};

/// Unique identifier of a DRAM transaction.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TxnId(pub u64);

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "txn#{}", self.0)
    }
}

/// Transaction direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxnKind {
    /// DRAM-to-controller data movement.
    Read,
    /// Controller-to-DRAM data movement.
    Write,
}

/// Command classes reported through [`DramSystem::take_issued_cmds`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IssuedKind {
    /// Row activation.
    Activate,
    /// Row precharge.
    Precharge,
    /// Column read burst.
    Read,
    /// Column write burst.
    Write,
    /// Per-rank all-bank refresh (REF). The `bank`/`row`/`col` fields of
    /// its location are 0 — a refresh addresses the whole rank.
    Refresh,
}

/// A command issued by the scheduler, visible to controllers that snoop
/// the command stream (the RCU manager's CAM match of §III.C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IssuedCmd {
    /// Command class.
    pub kind: IssuedKind,
    /// Target location.
    pub loc: DramLoc,
    /// Issue cycle.
    pub cycle: Cycle,
}

/// A finished transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Completion {
    /// The transaction that finished.
    pub txn: TxnId,
    /// Caller-supplied tag from `enqueue`.
    pub meta: u64,
    /// Cycle at which the last data beat left/entered the DRAM.
    pub done_at: Cycle,
    /// Direction of the finished transaction.
    pub kind: TxnKind,
}

/// A complete DRAM system (one memory interface: all channels).
///
/// Drive it by calling [`DramSystem::tick`] every CPU cycle (work happens
/// only on command-clock edges) and draining completions.
#[derive(Debug)]
pub struct DramSystem {
    cfg: DramConfig,
    channels: Vec<Channel>,
    completions: Vec<Completion>,
    issued_cmds: Vec<IssuedCmd>,
    stats: DramStats,
    next_txn: u64,
    pending: usize,
    record_cmds: bool,
    /// First command-clock slot not yet accounted in `slot_samples`
    /// (always aligned). Slots the driver never ticks — event-driven
    /// skips, compute fast-forwards — are back-filled by [`Self::sync_to`]
    /// so slot accounting is independent of how time is advanced.
    next_slot: Cycle,
    /// Present only when the runtime timing audit is enabled; boxed so
    /// the audit-off system carries a single pointer of overhead.
    auditor: Option<Box<TimingAuditor>>,
    /// The per-channel stepping pool, present when
    /// [`DramConfig::channel_par`] asked for one and the topology has
    /// more than one channel (DESIGN.md §3.11). `None` means the serial
    /// walk.
    par: Option<ChannelPool>,
    /// One scratch sink per channel for the parallel walk; merged into
    /// the global buffers in channel order after each fan-out so the
    /// observable streams match the serial walk byte for byte.
    par_scratch: Vec<ChannelScratch>,
}

/// Private per-lane sink for one channel's slot advance: everything
/// `channel_slot` would have written into the system-wide buffers,
/// deferred so lanes never contend and the merge order is deterministic.
#[derive(Debug, Default)]
struct ChannelScratch {
    stats: DramStats,
    issued: Vec<IssuedCmd>,
    completed: Option<(TxnKind, TxnCold)>,
    window_len: u64,
    was_empty: bool,
}

/// Lane policy for per-channel parallel stepping (DESIGN.md §3.11):
/// how many lanes [`DramSystem::tick`] fans channels across, given the
/// `channel_par` knob and the channel count. An explicit
/// `REDCACHE_JOBS` pin is honoured verbatim (so `REDCACHE_JOBS=1`
/// forces the serial walk for bisection, and the equivalence suites
/// can pin lanes up on any host); otherwise the knob engages only when
/// the machine has at least two available cores — on a single-core
/// host the fan-out is pure overhead (threads time-slice one core, and
/// benches would record an honest-but-useless slowdown), so the plan
/// falls back to the serial walk. Public so benches report the lane
/// count they measured under without re-deriving the policy.
pub fn planned_lanes(channel_par: bool, channels: usize) -> usize {
    if channel_par && channels > 1 {
        match redcache_types::jobs::explicit_jobs() {
            Some(j) => j.min(channels),
            None => {
                let avail = std::thread::available_parallelism().map_or(1, |p| p.get());
                if avail < 2 {
                    1
                } else {
                    avail.min(channels)
                }
            }
        }
    } else {
        1
    }
}

/// One channel's advance for one command slot — the exact per-channel
/// body of the serial walk, shared verbatim by the parallel lanes
/// (DESIGN.md §3.11). It touches only `ch` plus the caller-supplied
/// stat/command sinks, which is what makes disjoint channels safe to
/// run concurrently. Returns the transaction retired by this slot's
/// column command, if any (at most one per slot).
fn channel_slot(
    ch: &mut Channel,
    ci: usize,
    timing: &TimingParams,
    refresh_enabled: bool,
    bytes_per_burst: usize,
    now: Cycle,
    stats: &mut DramStats,
    issued_cmds: &mut Vec<IssuedCmd>,
) -> Option<(TxnKind, TxnCold)> {
    if ch.q.is_empty() {
        // Only a due refresh could issue on an idle channel; skip the
        // full scheduling pass otherwise — but still latch what that
        // pass would have latched: with no queued writes the drain
        // hysteresis always resolves to off.
        if ch.write_drain_mode {
            ch.write_drain_mode = false;
            ch.horizon.set(None);
        }
        let refresh_due = refresh_enabled
            && ch
                .ranks
                .iter()
                .any(|r| crate::scheduler::rank_refresh_due(r, now));
        if !refresh_due {
            return None;
        }
    }
    let drain_before = ch.write_drain_mode;
    let cmds_mark = issued_cmds.len();
    let outcome = schedule_slot(ch, ci, timing, now, bytes_per_burst, stats, issued_cmds);
    // Harvest the finished transaction, if any. At most one can
    // complete per slot (one column command), and the scheduler
    // recorded its slab index — retirement is an O(1) unlink that
    // promotes the oldest waiting transaction into the freed window
    // slot, preserving FR-FCFS age priority.
    let completed = if matches!(
        outcome,
        crate::scheduler::SlotOutcome::Issued(IssuedKind::Read)
            | crate::scheduler::SlotOutcome::Issued(IssuedKind::Write)
    ) {
        ch.take_completed()
    } else {
        None
    };
    if ch.write_drain_mode != drain_before || issued_cmds.len() > cmds_mark {
        ch.horizon.set(None);
    }
    completed
}

impl DramSystem {
    /// Builds a DRAM system from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DramConfig::validate`].
    pub fn new(cfg: DramConfig) -> Self {
        cfg.validate().expect("invalid DRAM configuration");
        let stagger = if cfg.refresh_enabled {
            cfg.timing.t_refi / (cfg.topology.ranks as Cycle + 1)
        } else {
            Cycle::MAX / 4
        };
        let channels = (0..cfg.topology.channels)
            .map(|_| Channel::new(cfg.topology.ranks, cfg.topology.banks, stagger))
            .collect();
        let auditor = cfg
            .audit
            .then(|| Box::new(TimingAuditor::new(&cfg.topology, cfg.timing)));
        let lanes = planned_lanes(cfg.channel_par, cfg.topology.channels);
        let par = (lanes > 1).then(|| ChannelPool::new(lanes - 1));
        let par_scratch = if par.is_some() {
            (0..cfg.topology.channels)
                .map(|_| ChannelScratch::default())
                .collect()
        } else {
            Vec::new()
        };
        Self {
            cfg,
            channels,
            completions: Vec::new(),
            issued_cmds: Vec::new(),
            stats: DramStats::default(),
            next_txn: 0,
            pending: 0,
            record_cmds: false,
            next_slot: 0,
            auditor,
            par,
            par_scratch,
        }
    }

    /// Number of stepping lanes [`DramSystem::tick`] fans channels
    /// across (1 = the serial walk).
    pub fn parallel_lanes(&self) -> usize {
        self.par.as_ref().map_or(1, |p| p.workers() + 1)
    }

    /// Enables or disables the runtime timing audit. Enabling constructs
    /// a fresh [`TimingAuditor`] (its view starts at the current device
    /// state boundary); disabling drops all audit state.
    pub fn set_timing_audit(&mut self, on: bool) {
        self.cfg.audit = on;
        self.auditor =
            on.then(|| Box::new(TimingAuditor::new(&self.cfg.topology, self.cfg.timing)));
    }

    /// The audit verdict so far, when the audit is enabled.
    pub fn audit_stats(&self) -> Option<&AuditStats> {
        self.auditor.as_deref().map(TimingAuditor::stats)
    }

    /// Feeds one raw command straight to the auditor (and, when command
    /// recording is on, into the observable stream) as if the scheduler
    /// had emitted it. This is the fault-injection hook: tests use it to
    /// prove the audit actually fires on an illegal command. It does not
    /// touch device state, so the scheduled stream stays legal.
    pub fn inject_raw_cmd(&mut self, cmd: IssuedCmd) {
        if let Some(a) = self.auditor.as_deref_mut() {
            a.observe(&cmd);
            self.stats.audit_violations = a.stats().violations;
        }
        if self.record_cmds {
            self.issued_cmds.push(cmd);
        }
    }

    /// Enables (or disables) recording of issued commands for
    /// [`DramSystem::take_issued_cmds`]. Off by default so callers that
    /// never snoop the command stream pay nothing.
    pub fn set_cmd_recording(&mut self, on: bool) {
        self.record_cmds = on;
        if !on {
            self.issued_cmds.clear();
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Decodes `addr` to its channel/rank/bank/row/column location.
    pub fn decode_addr(&self, addr: PhysAddr) -> DramLoc {
        decode(&self.cfg.topology, self.cfg.mapping, addr)
    }

    /// Enqueues a transaction of `bursts` data bursts (1 for a 64 B
    /// block on these channels; 2/4 for the 128 B/256 B granularity
    /// sweep). `meta` is returned opaquely with the completion.
    ///
    /// # Panics
    ///
    /// Panics if `bursts == 0`.
    pub fn enqueue(
        &mut self,
        addr: PhysAddr,
        kind: TxnKind,
        meta: u64,
        bursts: u32,
        now: Cycle,
    ) -> TxnId {
        assert!(bursts > 0, "a transaction needs at least one burst");
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        let loc = self.decode_addr(addr);
        let ch = &mut self.channels[loc.channel];
        ch.push(id, kind, loc, bursts, meta, now);
        ch.horizon.set(None);
        self.stats.txns_enqueued += 1;
        self.pending += 1;
        id
    }

    /// Number of transactions not yet completed.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Number of transactions queued on the channel serving `addr`.
    pub fn queue_len(&self, addr: PhysAddr) -> usize {
        let loc = self.decode_addr(addr);
        self.channels[loc.channel].q.len()
    }

    /// True when every channel queue is empty (the RCU drain condition 2
    /// of §III.C).
    pub fn all_queues_empty(&self) -> bool {
        self.channels.iter().all(|c| c.q.is_empty())
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Queue length of one channel (per-channel RCU idle condition).
    pub fn channel_queue_len(&self, channel: usize) -> usize {
        self.channels[channel].q.len()
    }

    /// Write transactions queued on one channel (a write batch is
    /// forming when this approaches the drain watermark).
    pub fn channel_pending_writes(&self, channel: usize) -> usize {
        self.channels[channel].pending_writes
    }

    /// Cycles until the rank serving `addr` finishes its refresh
    /// (0 when it is not refreshing).
    pub fn rank_refresh_remaining(&self, addr: PhysAddr, now: Cycle) -> Cycle {
        let loc = self.decode_addr(addr);
        self.channels[loc.channel].ranks[loc.rank]
            .refreshing_until
            .saturating_sub(now)
    }

    /// Charges a *free-riding* write burst: a tag/r-count update that
    /// follows a just-issued write to the same open row at tCCD cost
    /// (§III.C of the paper). No transaction is queued; the burst's bus
    /// time and energy are charged and the bus reservation extended.
    pub fn piggyback_write(&mut self, addr: PhysAddr, now: Cycle) {
        let loc = self.decode_addr(addr);
        let t = self.cfg.timing;
        let ch = &mut self.channels[loc.channel];
        let start = ch.bus_free_at.max(now + t.t_cwd);
        ch.bus_free_at = start + t.t_bl;
        let bank = &mut ch.banks[loc.rank][loc.bank];
        bank.ready_pre = bank.ready_pre.max(ch.bus_free_at + t.t_wr);
        ch.ranks[loc.rank].ready_read = ch.ranks[loc.rank].ready_read.max(ch.bus_free_at + t.t_wtr);
        self.stats.energy.wr_bursts += 1;
        self.stats.bytes_written += self.cfg.topology.bytes_per_burst as u64;
        self.stats.bus_busy_cycles += t.t_bl;
        self.channels[loc.channel].horizon.set(None);
    }

    /// True when the rank serving `addr` is refreshing at `now`
    /// (consulted by RedCache's refresh bypass).
    pub fn is_rank_refreshing(&self, addr: PhysAddr, now: Cycle) -> bool {
        let loc = self.decode_addr(addr);
        self.channels[loc.channel].ranks[loc.rank].is_refreshing(now)
    }

    /// Transactions currently inside the scheduler windows, summed over
    /// channels — a live gauge of scheduler pressure, sampled by the
    /// epoch recorder (the per-slot time integral of the same quantity
    /// is [`DramStats::window_occupancy_sum`]).
    pub fn window_occupancy(&self) -> usize {
        self.channels.iter().map(|c| c.q.window_len()).sum()
    }

    /// Bitmask of channels currently latched in write-drain mode
    /// (bit *i* set ⇔ channel *i* is draining writes). At most 64
    /// channels are representable, far beyond any Table I topology.
    pub fn write_drain_mask(&self) -> u64 {
        self.channels
            .iter()
            .enumerate()
            .fold(0u64, |m, (i, c)| m | ((c.write_drain_mode as u64) << i))
    }

    /// Back-fills slot accounting for command-clock slots in
    /// `[next_slot, now)` that the driver skipped over without ticking.
    /// No command can issue in a skipped slot (that is the caller's
    /// contract, enforced by [`DramSystem::next_event`]), so queue state
    /// is frozen across the span and one emptiness sample stands for all
    /// of it. Call before any state change at a later cycle — `tick`
    /// does so itself; callers that enqueue at a cycle they have not yet
    /// ticked must call this first with the current cycle.
    pub fn sync_to(&mut self, now: Cycle) {
        if now <= self.next_slot {
            return;
        }
        let d = self.cfg.timing.cmd_clock_divisor;
        let skipped = (now - self.next_slot).div_ceil(d);
        self.stats.slot_samples += skipped;
        if self.channels.iter().all(|c| c.q.is_empty()) {
            self.stats.empty_slot_samples += skipped;
        }
        // Queue state is frozen across the skipped span, so one
        // occupancy sample stands for every skipped slot — keeping
        // `window_occupancy_sum` identical between event-driven and
        // cycle-accurate walks.
        let occ: u64 = self.channels.iter().map(|c| c.q.window_len() as u64).sum();
        self.stats.window_occupancy_sum += skipped * occ;
        self.next_slot += skipped * d;
    }

    /// A lower bound on the next CPU cycle strictly after `now` at which
    /// this system could issue any DRAM command (aligned to the command
    /// clock), or `Cycle::MAX` when no queued work or refresh can ever
    /// make progress. Waking the system earlier than the returned cycle
    /// is observably a no-op; waking it later would miss a command slot.
    pub fn next_event(&self, now: Cycle) -> Cycle {
        let d = self.cfg.timing.cmd_clock_divisor;
        let next_slot_after_now = (now / d + 1) * d;
        let mut earliest = Cycle::MAX;
        for ch in &self.channels {
            // A channel's horizon only moves when its device state
            // changes (enqueue, issued commands, drain-latch flips);
            // between those events the memoised value keeps answering,
            // as long as it is still strictly in the future.
            let c = match ch.horizon.get() {
                Some(v) if v > now => v,
                _ => {
                    let v = crate::scheduler::channel_next_event(
                        ch,
                        &self.cfg.timing,
                        self.cfg.refresh_enabled,
                        now,
                    );
                    ch.horizon.set(Some(v));
                    v
                }
            };
            earliest = earliest.min(c);
            if earliest <= now {
                return next_slot_after_now;
            }
        }
        if earliest == Cycle::MAX {
            Cycle::MAX
        } else {
            earliest
                .checked_next_multiple_of(d)
                .unwrap_or(Cycle::MAX)
                .max(next_slot_after_now)
        }
    }

    /// Advances the system to CPU cycle `now`. Call with monotonically
    /// non-decreasing values; work happens on command-clock edges only.
    pub fn tick(&mut self, now: Cycle) {
        self.sync_to(now);
        if !now.is_multiple_of(self.cfg.timing.cmd_clock_divisor) {
            return;
        }
        // Commands already in the buffer were audited when they were
        // emitted (or injected); only this slot's additions are new.
        let audit_mark = self.issued_cmds.len();
        let mut all_empty = true;
        let mut occupancy: u64 = 0;
        // Fan out only when at least two channels have queued work; a
        // slot with one busy channel (or none) runs the same
        // `channel_slot` inline. The execution venue never affects the
        // numbers — only where the per-channel writes land first.
        let busy = self.channels.iter().filter(|c| !c.q.is_empty()).count();
        let Self {
            cfg,
            channels,
            completions,
            issued_cmds,
            stats,
            pending,
            par,
            par_scratch,
            ..
        } = self;
        let cfg = &*cfg;
        if busy >= 2 && par.is_some() {
            if let Some(pool) = par.as_ref() {
                pool.for_each_pair(channels, par_scratch, |ci, ch, sc| {
                    sc.window_len = ch.q.window_len() as u64;
                    sc.was_empty = ch.q.is_empty();
                    sc.stats = DramStats::default();
                    sc.issued.clear();
                    sc.completed = channel_slot(
                        ch,
                        ci,
                        &cfg.timing,
                        cfg.refresh_enabled,
                        cfg.topology.bytes_per_burst,
                        now,
                        &mut sc.stats,
                        &mut sc.issued,
                    );
                });
            }
            // Deterministic merge in channel-index order: the command
            // stream, completion order and stat accumulation are exactly
            // what the serial walk would have produced (every stat is a
            // sum of per-channel u64 deltas).
            for sc in par_scratch.iter_mut() {
                occupancy += sc.window_len;
                if !sc.was_empty {
                    all_empty = false;
                }
                stats.add(&sc.stats);
                issued_cmds.extend_from_slice(&sc.issued);
                if let Some((kind, cold)) = sc.completed.take() {
                    completions.push(Completion {
                        txn: cold.id,
                        meta: cold.meta,
                        done_at: cold.data_done_at,
                        kind,
                    });
                    stats.txns_completed += 1;
                    stats.latency_sum += cold.data_done_at.saturating_sub(cold.enqueued_at);
                    *pending -= 1;
                }
            }
        } else {
            for (ci, ch) in channels.iter_mut().enumerate() {
                occupancy += ch.q.window_len() as u64;
                if !ch.q.is_empty() {
                    all_empty = false;
                }
                if let Some((kind, cold)) = channel_slot(
                    ch,
                    ci,
                    &cfg.timing,
                    cfg.refresh_enabled,
                    cfg.topology.bytes_per_burst,
                    now,
                    stats,
                    issued_cmds,
                ) {
                    completions.push(Completion {
                        txn: cold.id,
                        meta: cold.meta,
                        done_at: cold.data_done_at,
                        kind,
                    });
                    stats.txns_completed += 1;
                    stats.latency_sum += cold.data_done_at.saturating_sub(cold.enqueued_at);
                    *pending -= 1;
                }
            }
        }
        self.stats.slot_samples += 1;
        self.stats.window_occupancy_sum += occupancy;
        if all_empty {
            self.stats.empty_slot_samples += 1;
        }
        self.next_slot = now + self.cfg.timing.cmd_clock_divisor;
        if let Some(a) = self.auditor.as_deref_mut() {
            for cmd in &self.issued_cmds[audit_mark..] {
                a.observe(cmd);
            }
            self.stats.audit_violations = a.stats().violations;
        }
        if !self.record_cmds {
            self.issued_cmds.clear();
        }
    }

    /// Removes and returns all completions accumulated so far.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Appends all accumulated completions to `out` and clears the
    /// internal buffer, reusing both allocations across ticks (the
    /// zero-alloc twin of [`DramSystem::drain_completions`]).
    pub fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        out.append(&mut self.completions);
    }

    /// Removes and returns the commands issued since the last call
    /// (for controllers snooping the command stream).
    pub fn take_issued_cmds(&mut self) -> Vec<IssuedCmd> {
        std::mem::take(&mut self.issued_cmds)
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Zeroes all statistics (used at the warmup boundary, §IV.A:
    /// measurement starts after the cache is warm). Device and queue
    /// state are untouched.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
        if let Some(a) = self.auditor.as_deref_mut() {
            a.reset_stats();
        }
    }
}

/// Captured mutable state of a [`DramSystem`] (DESIGN.md §3.13): every
/// channel's device and queue state, the undrained completion and
/// command buffers, statistics, transaction counters, slot accounting
/// and the auditor's shadow state. The configuration and the parallel
/// stepping venue are *not* part of the state — they are rebuilt from
/// the config by [`DramSystem::new`], and §3.11 guarantees the venue
/// never affects the numbers.
#[derive(Debug, Clone)]
pub struct DramSystemState {
    channels: Vec<ChannelState>,
    completions: Vec<Completion>,
    issued_cmds: Vec<IssuedCmd>,
    stats: DramStats,
    next_txn: u64,
    pending: usize,
    record_cmds: bool,
    next_slot: Cycle,
    auditor: Option<Box<TimingAuditor>>,
}

impl Snapshot for DramSystem {
    type State = DramSystemState;

    fn snapshot(&self) -> DramSystemState {
        DramSystemState {
            channels: self.channels.iter().map(Channel::capture).collect(),
            completions: self.completions.clone(),
            issued_cmds: self.issued_cmds.clone(),
            stats: self.stats,
            next_txn: self.next_txn,
            pending: self.pending,
            record_cmds: self.record_cmds,
            next_slot: self.next_slot,
            auditor: self.auditor.clone(),
        }
    }
}

impl Restorable for DramSystem {
    fn restore(&mut self, state: &DramSystemState) {
        assert_eq!(
            self.channels.len(),
            state.channels.len(),
            "snapshot restored into a system with a different topology"
        );
        for (ch, s) in self.channels.iter_mut().zip(&state.channels) {
            ch.restore(s);
        }
        self.completions = state.completions.clone();
        self.issued_cmds = state.issued_cmds.clone();
        self.stats = state.stats;
        self.next_txn = state.next_txn;
        self.pending = state.pending;
        self.record_cmds = state.record_cmds;
        self.next_slot = state.next_slot;
        self.auditor = state.auditor.clone();
    }
}

impl Wire for TxnId {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TxnId(u64::get(r)?))
    }
}

redcache_types::wire_enum!(TxnKind {
    TxnKind::Read = 0,
    TxnKind::Write = 1,
});
redcache_types::wire_enum!(IssuedKind {
    IssuedKind::Activate = 0,
    IssuedKind::Precharge = 1,
    IssuedKind::Read = 2,
    IssuedKind::Write = 3,
    IssuedKind::Refresh = 4,
});
redcache_types::wire_struct!(IssuedCmd { kind, loc, cycle });
redcache_types::wire_struct!(Completion {
    txn,
    meta,
    done_at,
    kind,
});
redcache_types::wire_struct!(DramSystemState {
    channels,
    completions,
    issued_cmds,
    stats,
    next_txn,
    pending,
    record_cmds,
    next_slot,
    auditor,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn run_to_completion(dram: &mut DramSystem, start: Cycle) -> (Vec<Completion>, Cycle) {
        let mut now = start;
        while dram.pending() > 0 {
            dram.tick(now);
            now += 1;
            assert!(now < start + 10_000_000, "DRAM deadlocked");
        }
        (dram.drain_completions(), now)
    }

    #[test]
    fn single_read_completes_with_meta() {
        let mut d = DramSystem::new(DramConfig::ddr4_table1());
        let id = d.enqueue(PhysAddr::new(0x1000), TxnKind::Read, 42, 1, 0);
        let (done, _) = run_to_completion(&mut d, 0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].txn, id);
        assert_eq!(done[0].meta, 42);
        assert_eq!(done[0].kind, TxnKind::Read);
        // Cold access: ACT + RD, data ends at >= tRCD + tCAS + tBL.
        let t = d.config().timing;
        assert!(done[0].done_at >= t.t_rcd + t.t_cas + t.t_bl);
        assert_eq!(d.stats().energy.acts, 1);
        assert_eq!(d.stats().energy.rd_bursts, 1);
        assert_eq!(d.stats().bytes_read, 64);
    }

    #[test]
    fn multi_burst_transaction_moves_more_bytes() {
        let mut d = DramSystem::new(DramConfig::wideio_table1());
        d.enqueue(PhysAddr::new(0), TxnKind::Read, 0, 4, 0);
        let (done, _) = run_to_completion(&mut d, 0);
        assert_eq!(done.len(), 1);
        assert_eq!(d.stats().energy.rd_bursts, 4);
        assert_eq!(d.stats().bytes_read, 256);
    }

    #[test]
    fn writes_and_reads_both_complete() {
        let mut d = DramSystem::new(DramConfig::ddr4_table1());
        for i in 0..20u64 {
            let kind = if i % 3 == 0 {
                TxnKind::Write
            } else {
                TxnKind::Read
            };
            d.enqueue(PhysAddr::new(i * 64), kind, i, 1, 0);
        }
        let (done, _) = run_to_completion(&mut d, 0);
        assert_eq!(done.len(), 20);
        let metas: std::collections::HashSet<u64> = done.iter().map(|c| c.meta).collect();
        assert_eq!(metas.len(), 20);
        assert_eq!(d.stats().txns_completed, 20);
        assert!(d.stats().mean_latency() > 0.0);
    }

    #[test]
    fn row_hits_are_faster_than_cold_misses() {
        let mut d = DramSystem::new(DramConfig::ddr4_table1());
        // Two reads to the same row: second should complete ~tCCD later.
        d.enqueue(PhysAddr::new(0x0), TxnKind::Read, 0, 1, 0);
        d.enqueue(PhysAddr::new(0x80), TxnKind::Read, 1, 1, 0);
        let (done, _) = run_to_completion(&mut d, 0);
        let a = done.iter().find(|c| c.meta == 0).unwrap().done_at;
        let b = done.iter().find(|c| c.meta == 1).unwrap().done_at;
        let t = d.config().timing;
        assert!(b > a);
        assert!(
            b - a <= t.t_ccd + t.cmd_clock_divisor,
            "row hit gap {} too large",
            b - a
        );
    }

    #[test]
    fn refresh_fires_periodically() {
        let mut d = DramSystem::new(DramConfig::ddr4_table1());
        let refi = d.config().timing.t_refi;
        // Idle the system for ~3 refresh intervals.
        for now in 0..(3 * refi) {
            d.tick(now);
        }
        // 2 channels * 2 ranks, staggered; each rank refreshes ~3 times.
        let refs = d.stats().energy.refreshes;
        assert!(refs >= 8, "expected at least 8 refreshes, saw {refs}");
    }

    #[test]
    fn refresh_disabled_produces_none() {
        let mut cfg = DramConfig::ddr4_table1();
        cfg.refresh_enabled = false;
        let mut d = DramSystem::new(cfg);
        for now in 0..100_000 {
            d.tick(now);
        }
        assert_eq!(d.stats().energy.refreshes, 0);
    }

    #[test]
    fn issued_cmds_are_observable() {
        let mut d = DramSystem::new(DramConfig::wideio_table1());
        d.set_cmd_recording(true);
        d.enqueue(PhysAddr::new(0), TxnKind::Write, 0, 1, 0);
        let (_, end) = run_to_completion(&mut d, 0);
        let cmds = d.take_issued_cmds();
        assert!(cmds.iter().any(|c| c.kind == IssuedKind::Activate));
        assert!(cmds.iter().any(|c| c.kind == IssuedKind::Write));
        assert!(cmds.iter().all(|c| c.cycle < end));
        // Draining empties the buffer.
        assert!(d.take_issued_cmds().is_empty());
    }

    #[test]
    fn queue_state_queries() {
        let mut d = DramSystem::new(DramConfig::ddr4_table1());
        assert!(d.all_queues_empty());
        d.enqueue(PhysAddr::new(0), TxnKind::Read, 0, 1, 0);
        assert!(!d.all_queues_empty());
        assert_eq!(d.queue_len(PhysAddr::new(0)), 1);
    }

    #[test]
    fn bandwidth_counters_track_bus_occupancy() {
        let mut d = DramSystem::new(DramConfig::ddr4_table1());
        for i in 0..10u64 {
            d.enqueue(PhysAddr::new(i * 4096), TxnKind::Read, i, 1, 0);
        }
        run_to_completion(&mut d, 0);
        let s = d.stats();
        assert_eq!(s.bus_busy_cycles, 10 * d.config().timing.t_bl);
        assert_eq!(s.bytes_read, 640);
    }

    #[test]
    #[should_panic(expected = "at least one burst")]
    fn zero_burst_enqueue_panics() {
        let mut d = DramSystem::new(DramConfig::ddr4_table1());
        d.enqueue(PhysAddr::new(0), TxnKind::Read, 0, 0, 0);
    }
}
