//! Extending the simulator with a custom DRAM-cache policy.
//!
//! Implements a deliberately simple controller — a direct-mapped cache
//! that probabilistically bypasses every other fill ("CoinFlip") — and
//! runs it through the full simulator next to Alloy and RedCache,
//! showing that the [`DramCacheController`] trait is the only contract
//! a new policy needs.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use redcache::sim::run_workload;
use redcache::{PolicyConfig, PolicyKind, RedVariant, SimConfig, Simulator};
use redcache_dram::{DramStats, TxnKind};
use redcache_policies::controller::{CompletedReq, ControllerStats, MemorySides};
use redcache_policies::DramCacheController;
use redcache_types::{AccessKind, Cycle, LineAddr, MemRequest};
use redcache_workloads::{GenConfig, Workload};
use std::collections::HashMap;

/// A toy policy: direct-mapped functional tags, fill only every second
/// miss, writes always to DDR. Not a good policy — the point is how
/// little code a new one takes.
struct CoinFlipController {
    sides: MemorySides,
    stats: ControllerStats,
    tags: HashMap<u64, (u64, u64)>, // set -> (line, version)
    sets: u64,
    flip: bool,
    inflight: Vec<(u64, MemRequest, u64)>, // (txn meta, request, version)
    next_meta: u64,
}

impl CoinFlipController {
    fn new(cfg: &PolicyConfig) -> Self {
        Self {
            sides: MemorySides::new(cfg),
            stats: ControllerStats::default(),
            tags: HashMap::new(),
            sets: cfg.hbm.topology.capacity_bytes() / 64,
            flip: false,
            inflight: Vec::new(),
            next_meta: 0,
        }
    }

    fn hbm_addr(&self, line: LineAddr) -> redcache_types::PhysAddr {
        redcache_types::PhysAddr::new(line.raw() % self.sets * 64)
    }
}

impl DramCacheController for CoinFlipController {
    fn submit(&mut self, req: MemRequest, now: Cycle) {
        self.stats.submitted += 1;
        let set = req.line.raw() % self.sets;
        let meta = self.next_meta;
        self.next_meta += 1;
        match req.kind {
            AccessKind::Read => {
                if let Some(&(line, version)) = self.tags.get(&set) {
                    if line == req.line.raw() {
                        self.stats.hbm_hits += 1;
                        self.sides
                            .hbm
                            .issue(self.hbm_addr(req.line), TxnKind::Read, meta, 1, now);
                        self.inflight.push((meta, req, version));
                        return;
                    }
                }
                self.stats.hbm_misses += 1;
                let version = self.sides.ddr_version(req.line);
                self.flip = !self.flip;
                if self.flip {
                    self.stats.fills += 1;
                    self.tags.insert(set, (req.line.raw(), version));
                    self.sides
                        .hbm
                        .issue(self.hbm_addr(req.line), TxnKind::Write, u64::MAX, 1, now);
                } else {
                    self.stats.fill_bypasses += 1;
                }
                let addr = self.sides.ddr_addr(req.line);
                self.sides.ddr.issue(addr, TxnKind::Read, meta, 1, now);
                self.inflight.push((meta, req, version));
            }
            AccessKind::Writeback => {
                // Invalidate any stale cached copy; write to DDR.
                if matches!(self.tags.get(&set), Some(&(l, _)) if l == req.line.raw()) {
                    self.tags.remove(&set);
                }
                self.sides.ddr_store(req.line, req.data_version);
                let addr = self.sides.ddr_addr(req.line);
                self.sides.ddr.issue(addr, TxnKind::Write, meta, 1, now);
                self.inflight.push((meta, req, 0));
            }
        }
    }

    fn tick(&mut self, now: Cycle, done: &mut Vec<CompletedReq>) {
        self.sides.hbm.tick(now);
        self.sides.ddr.tick(now);
        let mut finished = Vec::new();
        self.sides.hbm.drain_completions_into(&mut finished);
        self.sides.ddr.drain_completions_into(&mut finished);
        for c in finished {
            if c.meta == u64::MAX {
                continue; // fire-and-forget fill
            }
            if let Some(pos) = self.inflight.iter().position(|(m, _, _)| *m == c.meta) {
                let (_, req, version) = self.inflight.remove(pos);
                self.stats.completed += 1;
                if req.kind == AccessKind::Read {
                    self.stats.reads_completed += 1;
                    self.stats.read_latency_sum += c.done_at.saturating_sub(req.issued_at);
                }
                done.push(CompletedReq {
                    id: req.id,
                    line: req.line,
                    kind: req.kind,
                    data_version: if req.kind == AccessKind::Read {
                        version
                    } else {
                        req.data_version
                    },
                    issued_at: req.issued_at,
                    done_at: c.done_at,
                });
            }
        }
    }

    fn pending(&self) -> usize {
        self.inflight.len()
    }

    fn stats(&self) -> ControllerStats {
        self.stats
    }

    fn hbm_stats(&self) -> Option<DramStats> {
        Some(*self.sides.hbm.sys.stats())
    }

    fn ddr_stats(&self) -> DramStats {
        *self.sides.ddr.sys.stats()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Alloy // reported kind; a real policy would extend the enum
    }

    fn preload(&mut self, line: LineAddr, version: u64) {
        self.sides.ddr_store(line, version);
    }

    fn reset_stats(&mut self) {
        self.stats = ControllerStats::default();
        self.sides.hbm.sys.reset_stats();
        self.sides.ddr.sys.reset_stats();
    }
}

fn main() {
    let mut gen = GenConfig::scaled();
    gen.budget_per_thread = 30_000;
    let w = Workload::Is;
    let cfg = SimConfig::scaled(PolicyKind::Alloy);

    // Custom controller through the same simulator.
    let traces = w.generate(&gen);
    let custom =
        Simulator::new(cfg).run_with(traces, Box::new(CoinFlipController::new(&cfg.policy)));

    let alloy = run_workload(cfg, w, &gen);
    let red = run_workload(
        SimConfig::scaled(PolicyKind::Red(RedVariant::Full)),
        w,
        &gen,
    );

    println!(
        "{:<12} {:>12} {:>10} {:>8}",
        "policy", "cycles", "hitrate", "stale"
    );
    for (name, r) in [("CoinFlip", &custom), ("Alloy", &alloy), ("RedCache", &red)] {
        println!(
            "{name:<12} {:>12} {:>9.1}% {:>8}",
            r.cycles,
            r.hbm_hit_rate() * 100.0,
            r.shadow_violations
        );
    }
    assert_eq!(
        custom.shadow_violations, 0,
        "even toy policies must not serve stale data"
    );
    println!("\n(the shadow checker validated every read of all three policies)");
}
