//! Workload trace generators for the RedCache reproduction.
//!
//! The paper evaluates eleven data-intensive parallel applications
//! (Table II): FT, IS, MG from NAS; Cholesky, Radix, Ocean, FFT, LU,
//! Barnes from SPLASH-2; Histogram and Linear Regression from Phoenix.
//! The scenario engine (DESIGN.md §3.15) extends the suite with
//! server-class generators — Zipfian key-value serving (KVZ),
//! power-law graph traversal (GRPH), ML-inference working sets (MLI) —
//! plus imported external traces ([`import`]) and deterministic
//! multi-tenant interleaving ([`multitenant`]). All of them register in
//! [`registry`], the single table behind CLI parsing, figure columns,
//! and daemon validation.
//!
//! Per DESIGN.md §1, each generator **runs the actual kernel** of its
//! benchmark at a scaled problem size and records the memory reference
//! stream of each of the 16 worker threads. This preserves the property
//! RedCache exploits — the per-application block-reuse/bandwidth-cost
//! distribution (Fig. 3/4) — while keeping simulation tractable:
//! streaming inputs stay zero-reuse (L-type), hot working sets stay
//! high-reuse (H-type), and phase-terminated data keeps its
//! "last access is a write" signature (§II.C).
//!
//! # Example
//!
//! ```
//! use redcache_workloads::{GenConfig, Workload};
//!
//! let traces = Workload::Hist.generate(&GenConfig::tiny());
//! assert_eq!(traces.len(), GenConfig::tiny().threads);
//! assert!(traces.iter().all(|t| !t.is_empty()));
//! ```

#![warn(missing_docs)]

mod barnes;
mod cholesky;
mod common;
mod fft;
mod ft;
mod graph;
mod hist;
mod is;
pub mod kvzipf;
mod lreg;
mod lu;
mod mg;
mod mlinf;
mod ocean;
mod radix;
pub mod import;
pub mod multitenant;
pub mod registry;
pub mod suite;
pub mod synthetic;
pub mod trace_io;

pub use common::{GenConfig, Layout, SharedTraces, ThreadTraces};
pub use suite::{generation_count, Workload, WorkloadInfo};
