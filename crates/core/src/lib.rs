//! **RedCache** — a full-system reproduction of *"RedCache: Reduced DRAM
//! Caching"* (Behnam & Bojnordi, DAC 2020).
//!
//! This crate assembles the whole evaluated system and is the public
//! API of the workspace:
//!
//! * a 16-core out-of-order front end ([`redcache_cpu`]) running the
//!   eleven Table II workloads plus the server-class scenario suite
//!   ([`redcache_workloads`]),
//! * the Table I three-level SRAM hierarchy ([`redcache_cache`]),
//! * cycle-level WideIO/HBM and DDR4 DRAM ([`redcache_dram`]),
//! * the DRAM-cache controllers under study ([`redcache_policies`]):
//!   No-HBM, IDEAL, Alloy, BEAR and the RedCache α/γ/RCU family,
//! * event-based energy models ([`redcache_energy`]).
//!
//! # Quickstart
//!
//! ```
//! use redcache::{PolicyKind, SimConfig, Simulator};
//! use redcache_workloads::{GenConfig, Workload};
//!
//! let cfg = SimConfig::quick(PolicyKind::Alloy);
//! let traces = Workload::Hist.generate(&GenConfig::tiny());
//! let report = Simulator::new(cfg).run(traces);
//! assert!(report.cycles > 0);
//! assert_eq!(report.shadow_violations, 0); // no stale data, ever
//! ```
//!
//! Each figure/table of the paper has a regenerating binary in the
//! `redcache-bench` crate; see `DESIGN.md` §4 for the experiment index.

#![warn(missing_docs)]

pub mod config;
pub mod epoch;
pub mod metrics;
pub mod profile;
pub mod sim;
pub mod snapshot_io;

mod checker;

pub use config::{SimConfig, SimConfigBuilder};
pub use epoch::{EpochRecorder, EpochSample, TimeSeries};
pub use metrics::RunReport;
pub use profile::{last_access_writeback_fraction, MemLevelStream, ReuseProfile};
pub use sim::{run_workload, warm_count, Simulator, WarmSnapshot};

// The vocabulary types users need, re-exported at the root.
pub use redcache_policies::registry as policy_registry;
pub use redcache_policies::{FbrConfig, PolicyConfig, PolicyKind, RedConfig, RedVariant};
pub use redcache_types::{ConfigError, Cycle, TenantSchedule, TenantStats};

/// One-stop imports for driving simulations: configuration, execution
/// and reporting types, plus the workload vocabulary.
///
/// ```
/// use redcache::prelude::*;
///
/// let cfg = SimConfig::quick(PolicyKind::NoHbm);
/// let report = run_workload(cfg, Workload::Hist, &GenConfig::tiny());
/// assert!(report.cycles > 0);
/// ```
pub mod prelude {
    pub use crate::config::{SimConfig, SimConfigBuilder};
    pub use crate::epoch::{EpochSample, TimeSeries};
    pub use crate::metrics::RunReport;
    pub use crate::sim::{run_workload, Simulator, WarmSnapshot};
    pub use redcache_policies::{FbrConfig, PolicyConfig, PolicyKind, RedConfig, RedVariant};
    pub use redcache_types::{ConfigError, Cycle, TenantSchedule, TenantStats};
    pub use redcache_workloads::{GenConfig, Workload};
}
