//! **redcache-bomber** — an open-loop HTTP load generator for the
//! `redcache-served` daemon.
//!
//! *Open-loop* means requests are emitted on a fixed schedule (`rate`
//! requests per second, spread across `connections` keep-alive
//! connections) regardless of how fast the server answers, and every
//! latency is measured from the request's **scheduled** start time,
//! not from when a worker finally got around to sending it. A
//! closed-loop generator silently slows down when the server does and
//! so under-reports tail latency (coordinated omission); this one
//! charges the server for the queueing it causes.
//!
//! The crate is deliberately dependency-light: the wire client is
//! hand-rolled on `std::net` and every artifact is rendered to JSON by
//! hand (`redcache_bench::report_io::write_raw_envelope` supplies the
//! versioned envelope), so the bomber itself cannot perturb the system
//! under test with serialization overhead or allocator churn beyond
//! what the workload requires.

#![warn(missing_docs)]

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A log-linear latency histogram (microseconds): exact below 32 µs,
/// then 32 sub-buckets per power of two. Worst-case quantization error
/// is one sub-bucket, ~3.1% of the value — plenty for p50/p99/p999
/// reporting without per-sample storage.
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
}

const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS; // 32
const GROUPS: usize = 64 - SUB_BITS as usize; // exponents 5..=63, plus the linear group
const BUCKETS: usize = SUB * (GROUPS + 1);

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            max: 0,
        }
    }

    fn index(value: u64) -> usize {
        if value < SUB as u64 {
            return value as usize;
        }
        let top = 63 - value.leading_zeros(); // >= SUB_BITS
        let group = (top - SUB_BITS + 1) as usize;
        let sub = ((value >> (top - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        (group << SUB_BITS) | sub
    }

    fn lower_bound(index: usize) -> u64 {
        let group = index >> SUB_BITS;
        let sub = (index & (SUB - 1)) as u64;
        if group == 0 {
            return sub;
        }
        let top = group as u32 + SUB_BITS - 1;
        (1u64 << top) + (sub << (top - SUB_BITS))
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index(value)] += 1;
        self.total += 1;
        self.max = self.max.max(value);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]` (bucket lower bound;
    /// `0` when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::lower_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }
}

/// One request kind in the workload mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// `POST /jobs` with a fixed cheap body (all submissions share one
    /// content key, so after the first they coalesce or hit the cache).
    Submit,
    /// `GET /jobs/{i mod 64}` — mostly `404`, which counts as success
    /// (the probe worked).
    Status,
    /// `GET /metrics`.
    Metrics,
    /// `GET /healthz`.
    Health,
}

/// Workload mix as integer weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Weight of [`Kind::Submit`].
    pub submit: u32,
    /// Weight of [`Kind::Status`].
    pub status: u32,
    /// Weight of [`Kind::Metrics`].
    pub metrics: u32,
    /// Weight of [`Kind::Health`].
    pub health: u32,
}

impl Mix {
    /// Parses `"submit:status:metrics:health"`, e.g. `"1:6:2:1"`.
    ///
    /// # Errors
    ///
    /// A message when the string is not four `:`-separated integers
    /// with a positive sum.
    pub fn parse(s: &str) -> Result<Self, String> {
        let parts: Vec<u32> = s
            .split(':')
            .map(|p| p.trim().parse::<u32>())
            .collect::<Result<_, _>>()
            .map_err(|e| format!("bad mix {s:?}: {e}"))?;
        let [submit, status, metrics, health] = parts[..] else {
            return Err(format!("bad mix {s:?}: want submit:status:metrics:health"));
        };
        let mix = Self {
            submit,
            status,
            metrics,
            health,
        };
        if mix.submit + mix.status + mix.metrics + mix.health == 0 {
            return Err(format!("bad mix {s:?}: all weights are zero"));
        }
        Ok(mix)
    }

    /// A deterministic repeating pattern with the requested
    /// proportions (no RNG: runs are reproducible by construction).
    pub fn pattern(&self) -> Vec<Kind> {
        let mut p = Vec::new();
        let longest = self
            .submit
            .max(self.status)
            .max(self.metrics)
            .max(self.health);
        // Interleave by round-robin over the weights so e.g. 1:6:2:1
        // spreads the single submit through the cycle instead of
        // front-loading it.
        for round in 0..longest {
            for (kind, weight) in [
                (Kind::Status, self.status),
                (Kind::Metrics, self.metrics),
                (Kind::Submit, self.submit),
                (Kind::Health, self.health),
            ] {
                // Bresenham spread: kind appears in round r exactly
                // when the cumulative quota crosses an integer there,
                // giving `weight` evenly spaced occurrences overall.
                let before = (round as u64 * weight as u64) / longest as u64;
                let after = ((round as u64 + 1) * weight as u64) / longest as u64;
                if after > before {
                    p.push(kind);
                }
            }
        }
        if p.is_empty() {
            // Degenerate spacing fallback: plain concatenation.
            for (kind, weight) in [
                (Kind::Submit, self.submit),
                (Kind::Status, self.status),
                (Kind::Metrics, self.metrics),
                (Kind::Health, self.health),
            ] {
                p.extend(std::iter::repeat(kind).take(weight as usize));
            }
        }
        p
    }

    /// The mix as its canonical `"a:b:c:d"` spelling.
    pub fn label(&self) -> String {
        format!(
            "{}:{}:{}:{}",
            self.submit, self.status, self.metrics, self.health
        )
    }
}

/// One worker's wire connection: a hand-rolled HTTP/1.1 client.
struct Conn {
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(Self {
            reader: BufReader::new(stream),
        })
    }

    /// One request/response cycle. Returns `(status, reusable)`.
    fn roundtrip(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        keep_alive: bool,
    ) -> io::Result<(u16, bool)> {
        let body = body.unwrap_or("");
        let stream = self.reader.get_mut();
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nhost: bomber\r\ncontent-length: {}\r\n",
            body.len()
        )?;
        if !body.is_empty() {
            stream.write_all(b"content-type: application/json\r\n")?;
        }
        if !keep_alive {
            stream.write_all(b"connection: close\r\n")?;
        }
        stream.write_all(b"\r\n")?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;

        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "closed before status line",
            ));
        }
        let status = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad status {line:?}"))
            })?;
        let mut content_length: Option<usize> = None;
        let mut server_closes = false;
        loop {
            let mut h = String::new();
            if self.reader.read_line(&mut h)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "eof inside headers",
                ));
            }
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some((k, v)) = h.split_once(':') {
                let k = k.trim();
                let v = v.trim();
                if k.eq_ignore_ascii_case("content-length") {
                    content_length = v.parse().ok();
                } else if k.eq_ignore_ascii_case("connection") {
                    server_closes = v.eq_ignore_ascii_case("close");
                }
            }
        }
        match content_length {
            Some(n) => {
                // Drain the body without keeping it; the bomber only
                // cares about status and timing.
                let mut remaining = n;
                let mut scratch = [0u8; 4096];
                while remaining > 0 {
                    let want = remaining.min(scratch.len());
                    let got = self.reader.read(&mut scratch[..want])?;
                    if got == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "eof inside body",
                        ));
                    }
                    remaining -= got;
                }
                Ok((status, keep_alive && !server_closes))
            }
            None => {
                let mut sink = Vec::new();
                self.reader.read_to_end(&mut sink)?;
                Ok((status, false))
            }
        }
    }
}

/// Load-run configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon address, e.g. `"127.0.0.1:7878"`.
    pub addr: String,
    /// Concurrent connections (= worker threads).
    pub connections: usize,
    /// Target request rate, requests/second, across all connections.
    pub rate: f64,
    /// Nominal run length (lagging requests are still completed and
    /// measured after it elapses).
    pub duration: Duration,
    /// Workload mix.
    pub mix: Mix,
    /// Reuse connections across requests (`false` = one connection per
    /// request, the thread-per-connection server's native discipline).
    pub keep_alive: bool,
    /// Fixed `POST /jobs` body for [`Kind::Submit`].
    pub submit_body: String,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            connections: 64,
            rate: 500.0,
            duration: Duration::from_secs(5),
            mix: Mix {
                submit: 1,
                status: 6,
                metrics: 2,
                health: 1,
            },
            keep_alive: true,
            // Cheapest valid job: all submissions share this content
            // key, so the daemon runs at most one simulation and
            // serves the rest from the single-flight cache.
            submit_body: r#"{"workload":"synthetic","preset":"quick","budget":4096}"#.to_string(),
        }
    }
}

/// Aggregated result of one load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests attempted (scheduled and sent, or failed trying).
    pub sent: u64,
    /// 2xx and `404` responses (a 404 status probe is a success).
    pub ok: u64,
    /// `503`/`429` responses — backpressure working as designed.
    pub rejected: u64,
    /// Transport failures and unexpected statuses.
    pub errors: u64,
    /// Reconnections after a dead cached connection.
    pub reconnects: u64,
    /// Wall-clock from first schedule to last completion, seconds.
    pub elapsed_s: f64,
    /// `sent / elapsed_s`.
    pub achieved_rps: f64,
    /// Latency percentiles, microseconds, measured from each request's
    /// *scheduled* time (open-loop: server-induced queueing counts).
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// 99.9th percentile.
    pub p999_us: u64,
    /// Maximum.
    pub max_us: u64,
}

impl LoadReport {
    /// The report as a JSON object (hand-rendered; no serde).
    pub fn json(&self) -> String {
        format!(
            "{{\"sent\": {}, \"ok\": {}, \"rejected\": {}, \"errors\": {}, \"reconnects\": {}, \
             \"elapsed_s\": {:.3}, \"achieved_rps\": {:.1}, \"p50_us\": {}, \"p90_us\": {}, \
             \"p99_us\": {}, \"p999_us\": {}, \"max_us\": {}}}",
            self.sent,
            self.ok,
            self.rejected,
            self.errors,
            self.reconnects,
            self.elapsed_s,
            self.achieved_rps,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.p999_us,
            self.max_us,
        )
    }
}

struct WorkerStats {
    hist: Histogram,
    sent: u64,
    ok: u64,
    rejected: u64,
    errors: u64,
    reconnects: u64,
}

/// Runs one open-loop load test against a live daemon.
///
/// Request *i* is scheduled at `start + i / rate`; whichever worker
/// claims tick *i* sleeps until then (or not at all if the fleet is
/// behind) and measures latency from the scheduled instant. The run
/// ends when every tick scheduled inside `duration` has completed.
pub fn run_load(cfg: &LoadConfig) -> LoadReport {
    let ticks = AtomicU64::new(0);
    let merged = Mutex::new(WorkerStats {
        hist: Histogram::new(),
        sent: 0,
        ok: 0,
        rejected: 0,
        errors: 0,
        reconnects: 0,
    });
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..cfg.connections.max(1) {
            scope.spawn(|| {
                let stats = run_worker(cfg, &ticks, start);
                let mut m = merged.lock().unwrap();
                m.hist.merge(&stats.hist);
                m.sent += stats.sent;
                m.ok += stats.ok;
                m.rejected += stats.rejected;
                m.errors += stats.errors;
                m.reconnects += stats.reconnects;
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let m = merged.into_inner().unwrap();
    LoadReport {
        sent: m.sent,
        ok: m.ok,
        rejected: m.rejected,
        errors: m.errors,
        reconnects: m.reconnects,
        elapsed_s: elapsed,
        achieved_rps: m.sent as f64 / elapsed,
        p50_us: m.hist.quantile(0.50),
        p90_us: m.hist.quantile(0.90),
        p99_us: m.hist.quantile(0.99),
        p999_us: m.hist.quantile(0.999),
        max_us: m.hist.max(),
    }
}

fn run_worker(cfg: &LoadConfig, ticks: &AtomicU64, start: Instant) -> WorkerStats {
    let pattern = cfg.mix.pattern();
    let mut stats = WorkerStats {
        hist: Histogram::new(),
        sent: 0,
        ok: 0,
        rejected: 0,
        errors: 0,
        reconnects: 0,
    };
    let mut conn: Option<Conn> = None;
    loop {
        let i = ticks.fetch_add(1, Ordering::Relaxed);
        let offset = Duration::from_secs_f64(i as f64 / cfg.rate.max(1e-9));
        if offset > cfg.duration {
            break;
        }
        let scheduled = start + offset;
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        let kind = pattern[(i as usize) % pattern.len()];
        let (method, path, body): (&str, String, Option<&str>) = match kind {
            Kind::Submit => ("POST", "/jobs".to_string(), Some(cfg.submit_body.as_str())),
            Kind::Status => ("GET", format!("/jobs/{}", i % 64), None),
            Kind::Metrics => ("GET", "/metrics".to_string(), None),
            Kind::Health => ("GET", "/healthz".to_string(), None),
        };
        stats.sent += 1;
        let mut attempt = 0;
        let status = loop {
            let had_conn = conn.is_some();
            let c = match conn.as_mut() {
                Some(c) => c,
                None => match Conn::connect(&cfg.addr) {
                    Ok(c) => {
                        if had_conn || attempt > 0 {
                            stats.reconnects += 1;
                        }
                        conn.insert(c)
                    }
                    Err(_) => break None,
                },
            };
            match c.roundtrip(method, &path, body, cfg.keep_alive) {
                Ok((status, reusable)) => {
                    if !reusable {
                        conn = None;
                    }
                    break Some(status);
                }
                Err(_) => {
                    // A cached connection may have been idle-closed by
                    // the server; one fresh retry, then give up on
                    // this request.
                    conn = None;
                    attempt += 1;
                    if !had_conn || attempt > 1 {
                        break None;
                    }
                }
            }
        };
        match status {
            Some(s) if (200..300).contains(&s) || s == 404 => stats.ok += 1,
            Some(503) | Some(429) => stats.rejected += 1,
            Some(_) => stats.errors += 1,
            None => {
                stats.errors += 1;
                // Don't busy-spin through the schedule when the server
                // is unreachable.
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let latency = Instant::now().saturating_duration_since(scheduled);
        stats.hist.record(latency.as_micros() as u64);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_serve::{Engine, ServeOptions, Server};

    #[test]
    fn histogram_quantiles_land_within_bucket_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.max(), 10_000);
        let p50 = h.quantile(0.50);
        // Lower-bound buckets under-report by at most one sub-bucket
        // (~3.1%).
        assert!((4800..=5000).contains(&p50), "p50 = {p50}");
        let p999 = h.quantile(0.999);
        assert!((9600..=10_000).contains(&p999), "p999 = {p999}");
        assert!(h.quantile(1.0) <= h.max());
        assert_eq!(Histogram::new().quantile(0.99), 0);
    }

    #[test]
    fn histogram_bucket_indexing_is_monotone() {
        let mut last = 0usize;
        for v in [0u64, 1, 31, 32, 33, 63, 64, 1000, 1 << 20, u64::MAX] {
            let idx = Histogram::index(v);
            assert!(idx >= last, "index regressed at {v}");
            assert!(Histogram::lower_bound(idx) <= v);
            last = idx;
        }
    }

    #[test]
    fn mix_parses_and_patterns_keep_proportions() {
        let mix = Mix::parse("1:6:2:1").unwrap();
        let pattern = mix.pattern();
        let count = |k: Kind| pattern.iter().filter(|&&p| p == k).count();
        assert_eq!(count(Kind::Submit), 1);
        assert_eq!(count(Kind::Status), 6);
        assert_eq!(count(Kind::Metrics), 2);
        assert_eq!(count(Kind::Health), 1);
        assert!(Mix::parse("0:0:0:0").is_err());
        assert!(Mix::parse("1:2:3").is_err());
        assert!(Mix::parse("a:b:c:d").is_err());
    }

    #[test]
    fn open_loop_run_against_a_live_daemon_sees_no_errors() {
        let server = Server::bind(&ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_capacity: 4,
            engine: Engine::default(),
            max_connections: 64,
            ..ServeOptions::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let daemon = server.daemon();
        let handle = std::thread::spawn(move || server.run());

        let report = run_load(&LoadConfig {
            addr,
            connections: 8,
            rate: 400.0,
            duration: Duration::from_millis(300),
            // GET-only mix: status probes, metrics, health.
            mix: Mix::parse("0:4:1:1").unwrap(),
            ..LoadConfig::default()
        });
        daemon.begin_drain();
        handle.join().unwrap().unwrap();

        assert!(report.sent > 0);
        assert_eq!(
            report.errors, 0,
            "unexpected errors against an idle daemon: {report:?}"
        );
        assert_eq!(report.ok + report.rejected, report.sent);
        assert!(report.p50_us <= report.p99_us && report.p99_us <= report.max_us);
    }
}
