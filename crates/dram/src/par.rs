//! A persistent fan-out/join pool for per-channel slot stepping
//! (DESIGN.md §3.11).
//!
//! [`DramSystem::tick`](crate::DramSystem::tick) runs one *round* per
//! command slot when channel parallelism is enabled: every channel's
//! scheduler advance is an independent item, claimed off a shared
//! work-stealing counter by the pool's workers *and* the calling
//! thread. Rounds are far too frequent for `std::thread::scope` (a
//! spawn/join per slot costs microseconds; a slot costs tens of
//! nanoseconds), so the workers are long-lived: they spin briefly
//! watching a round counter, then park with a timeout.
//!
//! # Round protocol
//!
//! Each round is a freshly allocated [`Round`] published under a mutex
//! and announced by bumping an epoch counter. A worker that wakes up
//! clones the `Arc<Round>` it finds published and pulls items until the
//! round's claim counter is exhausted. [`ChannelPool::run`] returns only
//! once `done == n`, i.e. after the last item's closure has finished —
//! so the closure reference smuggled into the round (its lifetime
//! erased) is dereferenced strictly while the real closure is alive. A
//! straggler that wakes long after its round ended still holds a
//! consistent (if stale) `Round` whose claim counter is exhausted, so it
//! can never touch the dangling pointer, and it can never claim items
//! from a newer round because every round gets fresh counters.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Busy-wait iterations a worker spends watching for a new round before
/// parking. Slots are dense while DRAM traffic is flowing (one round
/// every few nanoseconds of host time), so a short spin catches the
/// next round without a syscall; the park timeout below bounds the cost
/// of a compute fast-forward during which no rounds arrive.
const SPIN_BUDGET: u32 = 4096;

/// How long a parked worker sleeps before re-checking the epoch on its
/// own. Unparks from [`ChannelPool::run`] cut this short; the timeout
/// only covers a lost wakeup race.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// One fan-out round: the type-erased item closure plus this round's
/// claim/completion counters.
struct Round {
    /// `&(dyn Fn(usize) + Sync)` with its lifetime erased. Dereferenced
    /// only by threads that claim an item, which the counter protocol
    /// restricts to the span of [`ChannelPool::run`]'s borrow.
    f: *const (dyn Fn(usize) + Sync),
    /// Number of items in the round.
    n: usize,
    /// Next unclaimed item index; claims past `n` mean "round over".
    next: AtomicUsize,
    /// Items whose closure call has returned.
    done: AtomicUsize,
}

// SAFETY: the raw closure pointer is only dereferenced under the round
// protocol described in the module docs; everything else is atomics.
unsafe impl Send for Round {}
unsafe impl Sync for Round {}

impl Round {
    /// Pulls items until the claim counter runs out. Called by workers
    /// and by the round's publisher alike.
    fn work(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            // SAFETY: a claimed index proves the round is still live
            // (see module docs), so the erased closure is valid.
            unsafe { (*self.f)(i) };
            self.done.fetch_add(1, Ordering::Release);
        }
    }
}

struct Shared {
    /// Round announcement counter; a worker re-reads `current` whenever
    /// this moves.
    epoch: AtomicUsize,
    /// The currently (or most recently) published round.
    current: Mutex<Option<Arc<Round>>>,
    /// Cleared by `Drop` to shut the workers down.
    live: AtomicBool,
}

/// The persistent per-channel stepping pool: `workers` parked OS
/// threads plus the calling thread, joined by [`ChannelPool::for_each_pair`].
pub(crate) struct ChannelPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ChannelPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

/// A raw pointer that may cross the closure's `Sync` boundary: each
/// round item dereferences a disjoint element, so no two threads alias.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// The `i`-th element's pointer. Going through `&self` (instead of
    /// the raw field) makes edition-2021 closures capture the whole
    /// wrapper, keeping its `Sync` impl in force.
    fn at(&self, i: usize) -> *mut T {
        unsafe { self.0.add(i) }
    }
}

impl ChannelPool {
    /// Spawns `workers` extra threads (the caller is always lane 0, so
    /// `workers == lanes - 1`).
    pub(crate) fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            epoch: AtomicUsize::new(0),
            current: Mutex::new(None),
            live: AtomicBool::new(true),
        });
        let handles = (0..workers)
            .map(|i| {
                let sh = shared.clone();
                std::thread::Builder::new()
                    .name(format!("dram-ch-{i}"))
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn channel worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// Number of extra worker threads (lanes minus the caller).
    pub(crate) fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs `f(i, &mut a[i], &mut b[i])` for every index, fanned out
    /// over the pool, and returns when all items are done. `f` must be
    /// safe to call concurrently for distinct indices.
    pub(crate) fn for_each_pair<A: Send, B: Send>(
        &self,
        a: &mut [A],
        b: &mut [B],
        f: impl Fn(usize, &mut A, &mut B) + Sync,
    ) {
        assert_eq!(a.len(), b.len(), "paired slices must match");
        let pa = SendPtr(a.as_mut_ptr());
        let pb = SendPtr(b.as_mut_ptr());
        let g = move |i: usize| {
            // SAFETY: the round protocol hands each index to exactly one
            // thread, so these two &muts never alias, and both slices
            // outlive `run` (they are borrowed across the call).
            unsafe { f(i, &mut *pa.at(i), &mut *pb.at(i)) }
        };
        self.run(a.len(), &g);
    }

    /// Publishes one round and participates until it completes.
    fn run(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        // SAFETY: erasing the closure's lifetime is sound because this
        // function does not return until `done == n` (so the pointer is
        // only dereferenced while `f` is borrowed) and stale rounds can
        // never claim an item (module docs).
        let f = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        } as *const (dyn Fn(usize) + Sync);
        let round = Arc::new(Round {
            f,
            n,
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
        });
        *self.shared.current.lock().expect("pool mutex poisoned") = Some(round.clone());
        self.shared.epoch.fetch_add(1, Ordering::Release);
        for h in &self.handles {
            h.thread().unpark();
        }
        round.work();
        // Acquire pairs with each item's Release increment: once every
        // item is done, all writes made by the closures are visible.
        // Spin briefly, then yield: on an oversubscribed (or one-core)
        // host the worker holding the last item needs the CPU more than
        // this wait loop does.
        let mut spins = 0u32;
        while round.done.load(Ordering::Acquire) < n {
            spins += 1;
            if spins < SPIN_BUDGET {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

impl Drop for ChannelPool {
    fn drop(&mut self) {
        self.shared.live.store(false, Ordering::Release);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        for h in &self.handles {
            h.thread().unpark();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen = 0usize;
    loop {
        let e = shared.epoch.load(Ordering::Acquire);
        if !shared.live.load(Ordering::Acquire) {
            return;
        }
        if e == seen {
            let mut spins = 0u32;
            while shared.epoch.load(Ordering::Acquire) == seen
                && shared.live.load(Ordering::Acquire)
            {
                spins += 1;
                if spins < SPIN_BUDGET {
                    std::hint::spin_loop();
                } else {
                    std::thread::park_timeout(PARK_TIMEOUT);
                }
            }
            continue;
        }
        seen = e;
        let round = shared.current.lock().expect("pool mutex poisoned").clone();
        if let Some(r) = round {
            r.work();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn fans_out_disjoint_mutation() {
        let pool = ChannelPool::new(3);
        let mut a: Vec<u64> = (0..64).collect();
        let mut b: Vec<u64> = vec![0; 64];
        for round in 0..100u64 {
            pool.for_each_pair(&mut a, &mut b, |i, x, y| {
                *x += 1;
                *y = *x * 2 + i as u64 + round;
            });
        }
        for (i, (&x, &y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x, i as u64 + 100);
            assert_eq!(y, x * 2 + i as u64 + 99);
        }
    }

    #[test]
    fn zero_and_single_item_rounds() {
        let pool = ChannelPool::new(1);
        let mut a: [u8; 0] = [];
        let mut b: [u8; 0] = [];
        pool.for_each_pair(&mut a, &mut b, |_, _, _| unreachable!());
        let mut a = [1u8];
        let mut b = [0u8];
        pool.for_each_pair(&mut a, &mut b, |_, x, y| *y = *x + 1);
        assert_eq!(b[0], 2);
    }

    #[test]
    fn closures_actually_run_on_multiple_threads_eventually() {
        // Not guaranteed per-round (the caller may win every claim),
        // but across many rounds with a sleeping item the workers
        // must participate.
        let pool = ChannelPool::new(2);
        let ids = Mutex::new(std::collections::HashSet::new());
        let mut a = [0u8; 8];
        let mut b = [0u8; 8];
        for _ in 0..50 {
            pool.for_each_pair(&mut a, &mut b, |_, _, _| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(Duration::from_micros(50));
            });
        }
        assert!(ids.lock().unwrap().len() >= 2, "pool never participated");
    }

    #[test]
    fn drop_joins_cleanly_even_right_after_a_round() {
        let counter = AtomicU64::new(0);
        {
            let pool = ChannelPool::new(2);
            let mut a = [0u8; 4];
            let mut b = [0u8; 4];
            pool.for_each_pair(&mut a, &mut b, |_, _, _| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }
}
