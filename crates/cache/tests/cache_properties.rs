//! Property tests: the set-associative cache matches a naive reference
//! model, and the hierarchy never loses dirty data.

use proptest::prelude::*;
use redcache_cache::{CacheGeometry, Hierarchy, HierarchyConfig, SetAssocCache};
use redcache_types::{CoreId, LineAddr, MemOp};
use std::collections::HashMap;

/// A deliberately naive reference LRU cache: per-set vectors ordered by
/// recency, no clever bookkeeping.
struct RefCache {
    sets: Vec<Vec<(u64, bool, u64)>>, // (line, dirty, version), MRU last
    ways: usize,
    nsets: usize,
}

impl RefCache {
    fn new(nsets: usize, ways: usize) -> Self {
        Self {
            sets: vec![Vec::new(); nsets],
            ways,
            nsets,
        }
    }

    fn set(&mut self, line: u64) -> &mut Vec<(u64, bool, u64)> {
        let idx = (line as usize) % self.nsets;
        &mut self.sets[idx]
    }

    fn access(&mut self, line: u64, write: Option<u64>) -> Option<u64> {
        let set = self.set(line);
        if let Some(pos) = set.iter().position(|e| e.0 == line) {
            let mut e = set.remove(pos);
            if let Some(v) = write {
                e.1 = true;
                e.2 = v;
            }
            let ver = e.2;
            set.push(e);
            Some(ver)
        } else {
            None
        }
    }

    fn fill(&mut self, line: u64, version: u64, dirty: bool) -> Option<(u64, bool, u64)> {
        let ways = self.ways;
        let set = self.set(line);
        if let Some(pos) = set.iter().position(|e| e.0 == line) {
            let mut e = set.remove(pos);
            e.2 = version;
            e.1 |= dirty;
            set.push(e);
            return None;
        }
        let victim = if set.len() == ways {
            Some(set.remove(0))
        } else {
            None
        };
        set.push((line, dirty, version));
        victim
    }
}

#[derive(Debug, Clone)]
enum Op {
    Access {
        line: u64,
        store: Option<u64>,
    },
    Fill {
        line: u64,
        version: u64,
        dirty: bool,
    },
    Invalidate {
        line: u64,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..64, prop::option::of(1u64..1000))
            .prop_map(|(line, store)| Op::Access { line, store }),
        (0u64..64, 1u64..1000, any::<bool>()).prop_map(|(line, version, dirty)| Op::Fill {
            line,
            version,
            dirty
        }),
        (0u64..64).prop_map(|line| Op::Invalidate { line }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn set_assoc_matches_reference(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let geom = CacheGeometry::new(2048, 4, 64); // 8 sets x 4 ways
        let mut dut: SetAssocCache = SetAssocCache::new(geom);
        let mut reference = RefCache::new(geom.sets(), geom.ways);
        for op in &ops {
            match *op {
                Op::Access { line, store } => {
                    let r = dut.access(LineAddr::new(line), store);
                    let e = reference.access(line, store);
                    prop_assert_eq!(r.hit, e.is_some(), "hit mismatch on {:?}", op);
                    if let Some(v) = e {
                        prop_assert_eq!(r.version, v, "version mismatch on {:?}", op);
                    }
                }
                Op::Fill { line, version, dirty } => {
                    let r = dut.fill(LineAddr::new(line), version, dirty);
                    let e = reference.fill(line, version, dirty);
                    match (r, e) {
                        (None, None) => {}
                        (Some(ev), Some((l, d, v))) => {
                            prop_assert_eq!(ev.line.raw(), l);
                            prop_assert_eq!(ev.dirty, d);
                            prop_assert_eq!(ev.version, v);
                        }
                        (a, b) => prop_assert!(false, "eviction mismatch {:?} vs {:?}", a, b),
                    }
                }
                Op::Invalidate { line } => {
                    let r = dut.invalidate(LineAddr::new(line));
                    let set = reference.set(line);
                    let e = set.iter().position(|x| x.0 == line).map(|p| set.remove(p));
                    prop_assert_eq!(r.is_some(), e.is_some());
                }
            }
        }
        // Final residency agrees.
        let dut_lines: std::collections::BTreeSet<u64> =
            dut.resident_lines().map(|(l, _, _)| l.raw()).collect();
        let ref_lines: std::collections::BTreeSet<u64> =
            reference.sets.iter().flatten().map(|e| e.0).collect();
        prop_assert_eq!(dut_lines, ref_lines);
    }

    /// Every version stored by the CPU is observable afterwards from
    /// somewhere: a later load of the same line (with no intervening
    /// store) returns either the stored version or the line reached
    /// memory as a writeback carrying it.
    #[test]
    fn hierarchy_never_loses_dirty_data(
        accesses in prop::collection::vec((0u64..96, any::<bool>()), 1..400)
    ) {
        let mut h = Hierarchy::new(
            HierarchyConfig::builder(2)
                .l1(CacheGeometry::new(256, 2, 64))
                .l2(CacheGeometry::new(512, 2, 64))
                .l3(CacheGeometry::new(1024, 2, 64))
                .latencies(4, 12, 38)
                .mshr_entries(8)
                .build()
                .expect("tiny hierarchy validates"),
        );
        // memory[line] = version last written back.
        let mut memory: HashMap<u64, u64> = HashMap::new();
        // expected[line] = newest version stored by the CPU side.
        let mut expected: HashMap<u64, u64> = HashMap::new();
        let mut next_version = 1u64;

        for (i, &(linez, is_store)) in accesses.iter().enumerate() {
            let core = CoreId((i % 2) as u16);
            let line = LineAddr::new(linez);
            let (op, sv) = if is_store {
                next_version += 1;
                (MemOp::Store, next_version)
            } else {
                (MemOp::Load, 0)
            };
            let out = h.access(core, line, op, sv, i as u64);
            for wb in &out.writebacks {
                memory.insert(wb.line.raw(), wb.version);
            }
            match out.hit_level {
                Some(_) => {
                    if !is_store {
                        // A load hit must observe the newest version this
                        // core could have produced; with two non-coherent
                        // private caches we only require it to be one of
                        // the versions ever stored or loaded for the line.
                        let v = out.version;
                        let newest = expected.get(&linez).copied().unwrap_or(0);
                        let at_mem = memory.get(&linez).copied().unwrap_or(0);
                        prop_assert!(
                            v <= newest.max(at_mem).max(next_version),
                            "impossible version {v}"
                        );
                    }
                }
                None => {
                    if out.mem_read_needed() {
                        let mem_v = memory.get(&linez).copied().unwrap_or(0);
                        let fr = h.complete_fill(line, mem_v);
                        for wb in &fr.writebacks {
                            memory.insert(wb.line.raw(), wb.version);
                        }
                        for _w in fr.waiters {
                            let wbs = h.fill_waiter(core, line, mem_v, is_store.then_some(sv));
                            for wb in wbs {
                                memory.insert(wb.line.raw(), wb.version);
                            }
                        }
                    }
                }
            }
            if is_store && !out.must_retry() {
                expected.insert(linez, sv);
            }
        }
        // Drain: every line's newest version must be findable in some
        // cache level or at memory. We check single-core lines only
        // (cross-core racing lines are exempt by the documented
        // no-coherence simplification) — here all lines are shared, so
        // check the weaker global property: for every line, SOME copy
        // holds a version >= the memory version.
        for (&linez, &mem_v) in &memory {
            let line = LineAddr::new(linez);
            let newest = expected.get(&linez).copied().unwrap_or(0);
            if newest > mem_v {
                // Must still be cached somewhere (it was never written
                // back): probe all levels via a fresh load on core 0/1.
                let mut found = false;
                for c in 0..2u16 {
                    let out = h.access(CoreId(c), line, MemOp::Load, 0, 0);
                    if out.hit_level.is_some() && out.version >= mem_v {
                        found = true;
                        break;
                    }
                    if out.mem_read_needed() {
                        let _ = h.complete_fill(line, mem_v);
                        let _ = h.fill_waiter(CoreId(c), line, mem_v, None);
                    }
                }
                prop_assert!(found, "line {linez}: newest {newest} lost (memory {mem_v})");
            }
        }
    }
}
