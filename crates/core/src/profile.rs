//! Memory-level reuse/bandwidth profiling — the analyses behind Fig. 3
//! (bandwidth cost vs. number of block reuses) and the §II.C last-write
//! observation (">82 % of last accesses to HBM blocks are writebacks").
//!
//! The profiler pushes a workload's traces through the SRAM hierarchy
//! *functionally* (no DRAM timing) to obtain the below-L3 request
//! stream of the No-HBM system, then aggregates per-block statistics.

use redcache_cache::{Hierarchy, HierarchyConfig};
use redcache_types::{AccessKind, CoreId, LineAddr, BLOCK_BYTES};
use redcache_workloads::ThreadTraces;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One below-L3 event: the memory-level stream of the No-HBM system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemEvent {
    /// The 64 B line.
    pub line: LineAddr,
    /// Read (L3 miss) or writeback (dirty eviction).
    pub kind: AccessKind,
}

/// The below-L3 request stream extracted from a workload.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MemLevelStream {
    /// Events in global submission order.
    pub events: Vec<MemEvent>,
}

impl MemLevelStream {
    /// Runs `traces` through the Table-I-shaped hierarchy in `cfg`,
    /// interleaving threads round-robin, and records every memory-level
    /// request. Purely functional: no DRAM timing is simulated.
    pub fn extract(traces: &ThreadTraces, cfg: HierarchyConfig) -> Self {
        let mut h = Hierarchy::new(cfg);
        let mut events = Vec::new();
        let mut idx = vec![0usize; traces.len()];
        let mut version = 1u64;
        let mut waiter = 0u64;
        loop {
            let mut progressed = false;
            for (t, trace) in traces.iter().enumerate() {
                let Some(a) = trace.get(idx[t]) else { continue };
                idx[t] += 1;
                progressed = true;
                let core = CoreId((t % cfg.cores) as u16);
                let line = a.addr.line(BLOCK_BYTES);
                let sv = if a.op.is_store() {
                    version += 1;
                    version
                } else {
                    0
                };
                waiter += 1;
                let out = h.access(core, line, a.op, sv, waiter);
                for wb in &out.writebacks {
                    events.push(MemEvent {
                        line: wb.line,
                        kind: AccessKind::Writeback,
                    });
                }
                if out.mem_read_needed() {
                    events.push(MemEvent {
                        line,
                        kind: AccessKind::Read,
                    });
                    let fr = h.complete_fill(line, sv.max(1));
                    for wb in &fr.writebacks {
                        events.push(MemEvent {
                            line: wb.line,
                            kind: AccessKind::Writeback,
                        });
                    }
                    for _w in fr.waiters {
                        let wbs = h.fill_waiter(core, line, 1, a.op.is_store().then_some(sv));
                        for wb in &wbs {
                            events.push(MemEvent {
                                line: wb.line,
                                kind: AccessKind::Writeback,
                            });
                        }
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        // Program termination: dirty data still cached on-die is
        // written back (otherwise every trace would end read-heavy and
        // the §II.C last-write statistic would be an artifact of
        // truncation).
        let mut drained = h.drain_dirty();
        drained.sort_by_key(|e| e.line.raw());
        for wb in drained {
            events.push(MemEvent {
                line: wb.line,
                kind: AccessKind::Writeback,
            });
        }
        Self { events }
    }
}

/// Fig. 3: for each *homo-reuse group* (all blocks with the same number
/// of memory-level reuses), the total off-chip bandwidth cost.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReuseProfile {
    /// `cost[r]` = fraction of total DDR bandwidth cost spent on blocks
    /// with exactly `r` reuses (index capped at `max_reuse`).
    pub cost_by_reuse: Vec<f64>,
    /// Blocks per homo-reuse group.
    pub blocks_by_reuse: Vec<u64>,
}

impl ReuseProfile {
    /// Builds the profile from a memory-level stream. `max_reuse` caps
    /// the x-axis (the paper plots 0..150); heavier groups accumulate
    /// in the last bin. Cost is charged per DDR access (the exact DDRx
    /// cycles are a fixed multiple at this abstraction level).
    pub fn from_stream(stream: &MemLevelStream, max_reuse: usize) -> Self {
        let mut per_line: HashMap<u64, u64> = HashMap::new();
        for e in &stream.events {
            *per_line.entry(e.line.raw()).or_default() += 1;
        }
        let mut cost = vec![0.0f64; max_reuse + 1];
        let mut blocks = vec![0u64; max_reuse + 1];
        for (_, &accesses) in per_line.iter() {
            let reuse = (accesses - 1).min(max_reuse as u64) as usize;
            cost[reuse] += accesses as f64;
            blocks[reuse] += 1;
        }
        let total: f64 = cost.iter().sum();
        if total > 0.0 {
            cost.iter_mut().for_each(|c| *c /= total);
        }
        Self {
            cost_by_reuse: cost,
            blocks_by_reuse: blocks,
        }
    }

    /// The reuse level whose group carries the largest cost share.
    pub fn peak_reuse(&self) -> usize {
        self.cost_by_reuse
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Fraction of cost carried by groups in `[lo, hi]`.
    pub fn cost_share(&self, lo: usize, hi: usize) -> f64 {
        self.cost_by_reuse
            [lo.min(self.cost_by_reuse.len() - 1)..=hi.min(self.cost_by_reuse.len() - 1)]
            .iter()
            .sum()
    }
}

/// §II.C: the fraction of blocks whose *last* memory-level access is a
/// writeback (the paper reports >82 % for blocks in the HBM cache).
/// `min_accesses` restricts the population to blocks that would plausibly
/// live in the cache (more than one access).
pub fn last_access_writeback_fraction(stream: &MemLevelStream, min_accesses: u64) -> f64 {
    let mut last: HashMap<u64, AccessKind> = HashMap::new();
    let mut count: HashMap<u64, u64> = HashMap::new();
    for e in &stream.events {
        last.insert(e.line.raw(), e.kind);
        *count.entry(e.line.raw()).or_default() += 1;
    }
    let mut total = 0u64;
    let mut wb = 0u64;
    for (line, kind) in &last {
        if count[line] < min_accesses {
            continue;
        }
        total += 1;
        if *kind == AccessKind::Writeback {
            wb += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        wb as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_workloads::{GenConfig, Workload};

    fn stream_of(w: Workload) -> MemLevelStream {
        // Tiny workloads need a proportionally tiny hierarchy, or the
        // whole footprint lives in the L3 and nothing reaches memory.
        let traces = w.generate(&GenConfig::tiny());
        let mut cfg = HierarchyConfig::scaled(4);
        cfg.l1 = redcache_cache::CacheGeometry::new(1 << 10, 4, 64);
        cfg.l2 = redcache_cache::CacheGeometry::new(2 << 10, 8, 64);
        cfg.l3 = redcache_cache::CacheGeometry::new(8 << 10, 8, 64);
        MemLevelStream::extract(&traces, cfg)
    }

    #[test]
    fn extraction_produces_reads_and_writebacks() {
        let s = stream_of(Workload::Ocn);
        assert!(!s.events.is_empty());
        assert!(s.events.iter().any(|e| e.kind == AccessKind::Read));
        assert!(s.events.iter().any(|e| e.kind == AccessKind::Writeback));
    }

    #[test]
    fn streaming_workload_cost_sits_at_low_reuse() {
        let p = ReuseProfile::from_stream(&stream_of(Workload::Lreg), 150);
        // LREG is a pure stream: nearly all cost in the 0/1-reuse bins.
        assert!(
            p.cost_share(0, 2) > 0.85,
            "LREG low-reuse share {}",
            p.cost_share(0, 2)
        );
    }

    fn stream_of_budget(w: Workload, budget: usize) -> MemLevelStream {
        let mut g = GenConfig::tiny();
        g.budget_per_thread = budget;
        let traces = w.generate(&g);
        let mut cfg = HierarchyConfig::scaled(4);
        cfg.l1 = redcache_cache::CacheGeometry::new(1 << 10, 4, 64);
        cfg.l2 = redcache_cache::CacheGeometry::new(2 << 10, 8, 64);
        cfg.l3 = redcache_cache::CacheGeometry::new(8 << 10, 8, 64);
        MemLevelStream::extract(&traces, cfg)
    }

    #[test]
    fn iterative_workload_cost_sits_higher() {
        // A budget covering several OCN iterations, so the per-iteration
        // revisits show up as memory-level reuse.
        let lreg = ReuseProfile::from_stream(&stream_of_budget(Workload::Lreg, 60_000), 150);
        let ocn = ReuseProfile::from_stream(&stream_of_budget(Workload::Ocn, 60_000), 150);
        assert!(
            ocn.cost_share(3, 150) > lreg.cost_share(3, 150) + 0.2,
            "OCN ({}) vs LREG ({})",
            ocn.cost_share(3, 150),
            lreg.cost_share(3, 150)
        );
    }

    #[test]
    fn profile_mass_is_normalised() {
        let p = ReuseProfile::from_stream(&stream_of(Workload::Mg), 150);
        let total: f64 = p.cost_by_reuse.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(p.blocks_by_reuse.iter().sum::<u64>() > 0);
    }

    #[test]
    fn last_write_fraction_is_high_for_update_heavy_workloads() {
        // OCN's relaxation ends every sweep with a store to each point.
        let f = last_access_writeback_fraction(&stream_of(Workload::Ocn), 2);
        assert!(f > 0.4, "OCN last-write fraction {f}");
        // And bounded for a read-mostly stream.
        let f2 = last_access_writeback_fraction(&stream_of(Workload::Lreg), 2);
        assert!(f2 < f);
    }

    #[test]
    fn empty_stream_fraction_is_zero() {
        assert_eq!(
            last_access_writeback_fraction(&MemLevelStream::default(), 1),
            0.0
        );
    }
}
