//! **redcache-serve** — the simulation-as-a-service layer of the
//! RedCache reproduction.
//!
//! Every experiment binary in `redcache-bench` is a one-shot process:
//! it regenerates traces, simulates, prints, exits. This crate keeps
//! the machinery *resident*: `redcache-served` is a long-running HTTP
//! daemon with a bounded job queue, a fixed worker pool, an in-memory
//! single-flight trace store, and a content-addressed result cache —
//! so a repeated figure sweep or ablation costs one simulation per
//! distinct `(workload, GenConfig, SimConfig)` triple, ever. The same
//! admission discipline RedCache applies to scarce DRAM bandwidth
//! (only spend it where it pays) applies here to compute: duplicate
//! work is coalesced, overload is refused early with `503`, and
//! everything is observable through Prometheus `/metrics`.
//!
//! # API surface (HTTP/1.1, JSON)
//!
//! | Method & path             | Meaning                                             |
//! |---------------------------|-----------------------------------------------------|
//! | `POST /jobs`              | Submit a [`api::JobRequest`]; `202` + [`api::JobView`], or `503` + `Retry-After` when the queue is full |
//! | `GET /jobs`               | All jobs, in submission order                       |
//! | `GET /jobs/{id}`          | One job's status                                    |
//! | `GET /jobs/{id}/report`   | The versioned `report_io` envelope of a completed job |
//! | `GET /jobs/{id}/timeseries` | The job's epoch series as JSON Lines              |
//! | `DELETE /jobs/{id}`       | Cancel a still-queued job                           |
//! | `POST /sweeps`            | Submit a [`api::SweepRequest`]: one α/γ/policy grid fanned into per-cell jobs, deduped by the single-flight cache |
//! | `GET /sweeps/{id}`        | A sweep's roll-up (`GET /jobs/{id}` on a sweep id answers the same) |
//! | `GET /metrics`            | Prometheus text format                              |
//! | `GET /healthz`            | Liveness + drain state                              |
//! | `POST /shutdown`          | Begin graceful drain (what SIGTERM does)            |
//!
//! The server is hand-rolled on `std::net` — no async runtime. The
//! default front end is an epoll event loop (see [`poll`] and
//! `DESIGN.md` §3.12) with HTTP/1.1 keep-alive and pipelining; the
//! original thread-per-connection engine remains selectable as a
//! baseline. See `DESIGN.md` §3.10 for the job protocol (queue and
//! backpressure semantics, cache-key definition, shutdown sequence).

#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod http;
pub mod jobs;
pub mod metrics;
#[cfg(unix)]
pub mod poll;
pub mod server;
pub mod signals;

pub use api::{JobRequest, JobStatus, JobView, SweepRequest, SweepView};
pub use client::Client;
pub use jobs::{Daemon, Retention, Submitted};
pub use server::{Engine, ServeOptions, Server};
