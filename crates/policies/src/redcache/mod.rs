//! **RedCache** — adaptively reduced DRAM caching (§III), the paper's
//! contribution, in all five evaluated variants (§IV.A):
//!
//! | Variant | α | γ | r-count update cost | RCU queue | refresh bypass |
//! |---|---|---|---|---|---|
//! | `Red-Alpha`  | ✓ | – | none needed        | –  | – |
//! | `Red-Gamma`  | – | ✓ | in-DRAM (free)     | –  | – |
//! | `Red-Basic`  | ✓ | ✓ | immediate HBM write| –  | – |
//! | `Red-InSitu` | ✓ | ✓ | in-DRAM (free)     | –  | – |
//! | `RedCache`   | ✓ | ✓ | deferred via RCU   | ✓ (+ block cache) | ✓ |
//!
//! The request flow follows Fig. 7: α-counting gates whether a request
//! may use the HBM at all; eligible requests take the Alloy-style TAD
//! probe; γ identifies last writes on write hits and invalidates the
//! block while routing the data straight to DDR; fills and evictions
//! follow the dirty-victim rules of the flow chart.

mod alpha;
mod gamma;
mod rcu;
#[cfg(test)]
mod tests;

pub use alpha::{AlphaConfig, AlphaManager, AlphaStats};
pub use gamma::{GammaConfig, GammaManager};
pub use rcu::{RcuEntry, RcuQueue, RcuStats};

use crate::controller::{
    CompletedReq, ControllerGauges, ControllerStats, DramCacheController, MemorySides,
    PolicyConfig, PolicyKind,
};
use crate::engine::{legs, Engine, LegSpec};
use crate::predictor::RegionPredictor;
use crate::tagstore::TagStore;
use redcache_dram::{AuditStats, DramStats, IssuedKind, TxnKind};
use redcache_types::{AccessKind, Cycle, LineAddr, MemRequest};
use serde::{Deserialize, Serialize};

/// Meta tag reserved for RCU drain writes (outside the engine space).
const DRAIN_META: u64 = u64::MAX;

/// The five evaluated RedCache variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RedVariant {
    /// Direct-mapped cache with α-counting only.
    Alpha,
    /// In-DRAM γ-counting applied to the Alloy cache.
    Gamma,
    /// α + γ without the RCU manager (updates pay full cost).
    Basic,
    /// α + γ with in-DRAM (free) r-count processing.
    InSitu,
    /// The full architecture: α + γ + RCU + refresh bypass.
    Full,
}

impl std::fmt::Display for RedVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RedVariant::Alpha => write!(f, "Red-Alpha"),
            RedVariant::Gamma => write!(f, "Red-Gamma"),
            RedVariant::Basic => write!(f, "Red-Basic"),
            RedVariant::InSitu => write!(f, "Red-InSitu"),
            RedVariant::Full => write!(f, "RedCache"),
        }
    }
}

/// How r-count updates reach the DRAM-resident tag byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateMode {
    /// No updates needed (no γ to compare against).
    None,
    /// An HBM write immediately after every read hit (Red-Basic).
    Immediate,
    /// Deferred through the RCU queue (RedCache).
    Rcu,
    /// Processed inside the DRAM dies (Red-InSitu / Red-Gamma).
    InSitu,
}

/// Full RedCache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RedConfig {
    /// Which variant this configuration realises.
    pub variant: RedVariant,
    /// Enable α-counting.
    pub alpha_enabled: bool,
    /// Enable γ-counting / last-write invalidation.
    pub gamma_enabled: bool,
    /// r-count update cost model.
    pub update_mode: UpdateMode,
    /// Serve reads from parked RCU blocks.
    pub rcu_block_cache: bool,
    /// Route around ranks under refresh.
    pub refresh_bypass: bool,
    /// α parameters.
    pub alpha: AlphaConfig,
    /// γ parameters.
    pub gamma: GammaConfig,
    /// RCU queue entries (32 in the paper).
    pub rcu_capacity: usize,
}

impl RedConfig {
    /// The canonical configuration for each paper variant.
    pub fn for_variant(variant: RedVariant) -> Self {
        let base = Self {
            variant,
            alpha_enabled: true,
            gamma_enabled: true,
            update_mode: UpdateMode::Rcu,
            rcu_block_cache: true,
            refresh_bypass: true,
            alpha: AlphaConfig::default(),
            gamma: GammaConfig::default(),
            rcu_capacity: 32,
        };
        match variant {
            RedVariant::Alpha => Self {
                gamma_enabled: false,
                update_mode: UpdateMode::None,
                rcu_block_cache: false,
                refresh_bypass: false,
                ..base
            },
            RedVariant::Gamma => Self {
                alpha_enabled: false,
                update_mode: UpdateMode::InSitu,
                rcu_block_cache: false,
                refresh_bypass: false,
                ..base
            },
            RedVariant::Basic => Self {
                update_mode: UpdateMode::Immediate,
                rcu_block_cache: false,
                refresh_bypass: false,
                ..base
            },
            RedVariant::InSitu => Self {
                update_mode: UpdateMode::InSitu,
                rcu_block_cache: false,
                refresh_bypass: false,
                ..base
            },
            RedVariant::Full => base,
        }
    }
}

/// The RedCache controller.
#[derive(Debug)]
pub struct RedCacheController {
    sides: MemorySides,
    engine: Engine,
    tags: TagStore,
    alpha: AlphaManager,
    gamma: GammaManager,
    rcu: RcuQueue,
    predictor: RegionPredictor,
    red: RedConfig,
    stats: ControllerStats,
    block_bytes: usize,
    bursts: u32,
    drain_outstanding: usize,
    rcu_updates_owed: u64,
    /// Requests completed synchronously (RCU block-cache hits), handed
    /// out on the next tick.
    sync_done: Vec<CompletedReq>,
    /// Reusable completion-drain buffer (avoids a per-tick allocation).
    compl_buf: Vec<redcache_dram::Completion>,
}

impl RedCacheController {
    /// Builds a RedCache controller.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: &PolicyConfig, red: RedConfig) -> Self {
        cfg.validate().expect("invalid policy config");
        let sets = (cfg.hbm.topology.capacity_bytes() / cfg.cache_block_bytes as u64) as usize;
        let mut sides = MemorySides::new(cfg);
        if red.update_mode == UpdateMode::Rcu {
            sides.hbm.sys.set_cmd_recording(true);
        }
        Self {
            sides,
            engine: Engine::new(),
            tags: TagStore::new(sets, cfg.lines_per_block()),
            alpha: AlphaManager::new(red.alpha),
            gamma: GammaManager::new(red.gamma),
            rcu: RcuQueue::new(red.rcu_capacity),
            predictor: RegionPredictor::new(4096),
            red,
            stats: ControllerStats::default(),
            block_bytes: cfg.cache_block_bytes,
            bursts: (cfg.cache_block_bytes / 64) as u32,
            drain_outstanding: 0,
            rcu_updates_owed: 0,
            sync_done: Vec::new(),
            compl_buf: Vec::new(),
        }
    }

    /// Current α threshold.
    pub fn current_alpha(&self) -> u32 {
        self.alpha.alpha()
    }

    /// Current γ lifetime.
    pub fn current_gamma(&self) -> u32 {
        self.gamma.gamma()
    }

    /// RCU drain statistics.
    pub fn rcu_stats(&self) -> RcuStats {
        self.rcu.stats()
    }

    /// α-buffer statistics.
    pub fn alpha_stats(&self) -> AlphaStats {
        self.alpha.stats()
    }

    fn hbm_addr(&self, line: LineAddr) -> redcache_types::PhysAddr {
        self.tags.hbm_addr(line, self.block_bytes)
    }

    fn probe_leg(&self, line: LineAddr, gates_data: bool) -> LegSpec {
        LegSpec {
            leg: legs::PROBE,
            hbm: true,
            kind: TxnKind::Read,
            addr: self.hbm_addr(line),
            bursts: self.bursts,
            gates_data,
            deferred: false,
        }
    }

    fn ddr_read_leg(&self, line: LineAddr, deferred: bool) -> LegSpec {
        LegSpec {
            leg: legs::DDR_READ,
            hbm: false,
            kind: TxnKind::Read,
            addr: self.sides.ddr_addr(line),
            bursts: self.bursts,
            gates_data: true,
            deferred,
        }
    }

    fn block_versions_from_ddr(&self, line: LineAddr) -> [u64; 4] {
        let mut v = [0u64; 4];
        let first = self.tags.block_first_line(self.tags.block_of(line));
        for (i, slot) in v
            .iter_mut()
            .enumerate()
            .take(self.tags.lines_per_block() as usize)
        {
            *slot = self
                .sides
                .ddr_version(LineAddr::new(first.raw() + i as u64));
        }
        v
    }

    /// Writes a victim's dirty payload to the functional main memory and
    /// returns the DDR timing leg if one is needed.
    fn retire_victim(
        &mut self,
        victim: Option<crate::tagstore::TagEntry>,
        leg: u8,
    ) -> Option<LegSpec> {
        let victim = victim?;
        self.rcu.remove_block(victim.block);
        if self.red.gamma_enabled {
            // A conflict eviction ends the victim's residency: its final
            // r-count is a completed lifetime sample for γ.
            self.gamma.on_lifetime_end(victim.r_count.get());
        }
        if !victim.dirty {
            return None;
        }
        self.stats.victim_writebacks += 1;
        self.stats.ddr_writes += 1;
        let first = self.tags.block_first_line(victim.block);
        for i in 0..self.tags.lines_per_block() {
            let l = LineAddr::new(first.raw() + i);
            self.sides.ddr_store(l, victim.versions[i as usize]);
        }
        Some(LegSpec {
            leg,
            hbm: false,
            kind: TxnKind::Write,
            addr: self.sides.ddr_addr(first),
            bursts: self.bursts,
            gates_data: false,
            deferred: false,
        })
    }

    /// Accounts one r-count update on a hit, per the configured mode.
    /// Returns the extra leg for the immediate mode.
    fn update_rcount(&mut self, line: LineAddr, now: Cycle) -> Option<LegSpec> {
        match self.red.update_mode {
            UpdateMode::None | UpdateMode::InSitu => None,
            UpdateMode::Immediate => {
                self.stats.hbm_writes += 1;
                Some(LegSpec {
                    leg: legs::RCU_WRITE,
                    hbm: true,
                    kind: TxnKind::Write,
                    addr: self.hbm_addr(line),
                    bursts: self.bursts,
                    gates_data: false,
                    deferred: true, // follows the probe read
                })
            }
            UpdateMode::Rcu => {
                self.rcu_updates_owed += 1;
                let entry = self.tags.entry(line).expect("hit entry");
                let e = RcuEntry {
                    block: entry.block,
                    hbm_addr: self.hbm_addr(line),
                    loc: self.sides.hbm.sys.decode_addr(self.hbm_addr(line)),
                    versions: entry.versions,
                    queued_at: now,
                };
                if let Some(forced) = self.rcu.push(e) {
                    self.issue_drain(forced, now);
                }
                None
            }
        }
    }

    fn issue_drain(&mut self, e: RcuEntry, now: Cycle) {
        self.stats.hbm_writes += 1;
        self.drain_outstanding += 1;
        self.sides
            .hbm
            .issue(e.hbm_addr, TxnKind::Write, DRAIN_META, self.bursts, now);
    }

    /// Refresh bypass is only worthwhile while a substantial tRFC tail
    /// remains — otherwise waiting out the refresh beats a DDR round
    /// trip.
    fn rank_refreshing(&self, line: LineAddr, now: Cycle) -> bool {
        const MIN_REMAINING: Cycle = 600;
        self.red.refresh_bypass
            && self
                .sides
                .hbm
                .sys
                .rank_refresh_remaining(self.hbm_addr(line), now)
                >= MIN_REMAINING
    }

    fn submit_read(&mut self, req: MemRequest, now: Cycle, done: &mut Vec<CompletedReq>) {
        let line = req.line;
        self.stats.table_lookups += 1;
        let counted_eligible =
            !self.red.alpha_enabled || self.alpha.on_request(line.base(64).page());
        let resident = self.tags.contains(line);
        // α gate (Fig. 7 top): not yet bandwidth-hungry and nothing
        // cached → serve from main memory without touching HBM.
        if !counted_eligible && !resident {
            self.stats.hbm_bypasses += 1;
            self.stats.ddr_reads += 1;
            let version = self.sides.ddr_version(line);
            let leg = self.ddr_read_leg(line, false);
            self.engine
                .start(req, version, &[leg], &mut self.sides, now, done);
            return;
        }
        // RCU block cache: a parked TAD copy serves the read on-die.
        if self.red.rcu_block_cache && resident {
            let block = self.tags.block_of(line);
            if self.rcu.lookup_block(block).is_some() {
                self.rcu.note_cache_hit();
                let sub = self.tags.subline_of(line);
                let e = self.tags.entry_mut(line).expect("resident");
                e.r_count.inc();
                let r = e.r_count.get();
                let version = e.versions[sub];
                if self.red.gamma_enabled {
                    self.gamma.on_hit(r);
                }
                // Refresh the parked copy so it stays coherent.
                let _ = self.update_rcount(line, now);
                self.engine
                    .start(req, version, &[], &mut self.sides, now, done);
                return;
            }
        }
        // Refresh bypass: clean or absent data under a refreshing rank
        // is served by DDR instead of queueing behind tRFC.
        if self.rank_refreshing(line, now) {
            let clean_resident = resident && !self.tags.entry(line).is_some_and(|e| e.dirty);
            if !resident || clean_resident {
                self.stats.refresh_bypasses += 1;
                self.stats.ddr_reads += 1;
                let version = self.sides.ddr_version(line);
                let leg = self.ddr_read_leg(line, false);
                self.engine
                    .start(req, version, &[leg], &mut self.sides, now, done);
                return;
            }
        }
        // Normal HBM path: TAD probe.
        self.stats.hbm_probes += 1;
        let predicted_hit = self.predictor.predict_hit(line.base(64).page());
        self.predictor.train(line.base(64).page(), resident);
        if resident {
            self.stats.hbm_hits += 1;
            let sub = self.tags.subline_of(line);
            let e = self.tags.entry_mut(line).expect("hit entry");
            e.r_count.inc();
            let r = e.r_count.get();
            let version = e.versions[sub];
            if self.red.gamma_enabled {
                self.gamma.on_hit(r);
            }
            let mut legspecs = vec![self.probe_leg(line, true)];
            if let Some(upd) = self.update_rcount(line, now) {
                legspecs.push(upd);
            }
            self.engine
                .start(req, version, &legspecs, &mut self.sides, now, done);
            return;
        }
        // Miss on an eligible page: fetch from DDR and fill.
        self.stats.hbm_misses += 1;
        self.stats.ddr_reads += 1;
        let version = self.sides.ddr_version(line);
        let mut legspecs = vec![
            self.probe_leg(line, true),
            self.ddr_read_leg(line, predicted_hit), // serialized on mispredict
        ];
        if self.rank_refreshing(line, now) {
            // Fill would land in a refreshing rank: skip it.
            self.stats.fill_bypasses += 1;
            self.stats.refresh_bypasses += 1;
        } else {
            self.stats.fills += 1;
            self.stats.hbm_writes += 1;
            let fill_versions = self.block_versions_from_ddr(line);
            let victim = self.tags.install(line, fill_versions, false);
            legspecs.push(LegSpec {
                leg: legs::HBM_WRITE,
                hbm: true,
                kind: TxnKind::Write,
                addr: self.hbm_addr(line),
                bursts: self.bursts,
                gates_data: false,
                deferred: true,
            });
            if let Some(wb) = self.retire_victim(victim, legs::DDR_WRITE) {
                legspecs.push(wb);
            }
        }
        self.engine
            .start(req, version, &legspecs, &mut self.sides, now, done);
    }

    fn submit_writeback(&mut self, req: MemRequest, now: Cycle, done: &mut Vec<CompletedReq>) {
        let line = req.line;
        self.stats.table_lookups += 1;
        let counted_eligible =
            !self.red.alpha_enabled || self.alpha.on_request(line.base(64).page());
        let resident = self.tags.contains(line);
        if !counted_eligible && !resident {
            // α gate: write goes straight to main memory.
            self.stats.hbm_bypasses += 1;
            self.stats.ddr_writes += 1;
            self.sides.ddr_store(line, req.data_version);
            let leg = LegSpec {
                leg: legs::DDR_WRITE,
                hbm: false,
                kind: TxnKind::Write,
                addr: self.sides.ddr_addr(line),
                bursts: 1,
                gates_data: true,
                deferred: false,
            };
            self.engine
                .start(req, 0, &[leg], &mut self.sides, now, done);
            return;
        }
        if !resident && self.rank_refreshing(line, now) {
            self.stats.refresh_bypasses += 1;
            self.stats.ddr_writes += 1;
            self.sides.ddr_store(line, req.data_version);
            let leg = LegSpec {
                leg: legs::DDR_WRITE,
                hbm: false,
                kind: TxnKind::Write,
                addr: self.sides.ddr_addr(line),
                bursts: 1,
                gates_data: true,
                deferred: false,
            };
            self.engine
                .start(req, 0, &[leg], &mut self.sides, now, done);
            return;
        }
        self.stats.hbm_probes += 1;
        if resident {
            // Write hit: tag check, then either the γ last-write
            // invalidation (write routed to DDR) or a normal HBM write.
            let sub = self.tags.subline_of(line);
            let block = self.tags.block_of(line);
            self.stats.hbm_hits += 1;
            let e = self.tags.entry_mut(line).expect("hit entry");
            e.r_count.inc();
            let r = e.r_count.get();
            if self.red.gamma_enabled {
                self.gamma.on_hit(r);
            }
            if self.red.gamma_enabled && self.gamma.should_invalidate(r) {
                // Last write: invalidate and route the whole (possibly
                // dirty) block to main memory.
                self.stats.gamma_invalidations += 1;
                self.stats.last_writes_routed += 1;
                self.stats.ddr_writes += 1;
                let mut victim = self.tags.invalidate(line).expect("resident block");
                victim.versions[sub] = req.data_version;
                self.rcu.remove_block(block);
                let first = self.tags.block_first_line(victim.block);
                for i in 0..self.tags.lines_per_block() {
                    let l = LineAddr::new(first.raw() + i);
                    self.sides.ddr_store(l, victim.versions[i as usize]);
                }
                let legspecs = [
                    self.probe_leg(line, false),
                    LegSpec {
                        leg: legs::DDR_WRITE,
                        hbm: false,
                        kind: TxnKind::Write,
                        addr: self.sides.ddr_addr(first),
                        bursts: self.bursts,
                        gates_data: true,
                        deferred: false,
                    },
                ];
                self.engine
                    .start(req, 0, &legspecs, &mut self.sides, now, done);
                return;
            }
            let e = self.tags.entry_mut(line).expect("hit entry");
            e.dirty = true;
            e.versions[sub] = req.data_version;
            self.rcu.remove_block(block); // parked copy is now stale
            self.stats.hbm_writes += 1;
            let legspecs = [
                self.probe_leg(line, false),
                LegSpec {
                    leg: legs::HBM_WRITE,
                    hbm: true,
                    kind: TxnKind::Write,
                    addr: self.hbm_addr(line),
                    bursts: self.bursts,
                    gates_data: true,
                    deferred: true,
                },
            ];
            self.engine
                .start(req, 0, &legspecs, &mut self.sides, now, done);
            return;
        }
        // Write miss on an eligible page (Fig. 7 bottom right).
        self.stats.hbm_misses += 1;
        let victim_dirty = self.tags.victim_entry(line).is_some_and(|e| e.dirty);
        if victim_dirty {
            // Dirty victim: leave it alone, write the new data to DDR.
            self.stats.ddr_writes += 1;
            self.sides.ddr_store(line, req.data_version);
            let legspecs = [
                self.probe_leg(line, false),
                LegSpec {
                    leg: legs::DDR_WRITE,
                    hbm: false,
                    kind: TxnKind::Write,
                    addr: self.sides.ddr_addr(line),
                    bursts: 1,
                    gates_data: true,
                    deferred: false,
                },
            ];
            self.engine
                .start(req, 0, &legspecs, &mut self.sides, now, done);
            return;
        }
        // Clean (or empty) victim: evict it and install the new block.
        self.stats.fills += 1;
        self.stats.hbm_writes += 1;
        let sub = self.tags.subline_of(line);
        let mut fill_versions = self.block_versions_from_ddr(line);
        fill_versions[sub] = req.data_version;
        let victim = self.tags.install(line, fill_versions, true);
        if let Some(v) = &victim {
            debug_assert!(!v.dirty);
            self.rcu.remove_block(v.block);
            if self.red.gamma_enabled {
                self.gamma.on_lifetime_end(v.r_count.get());
            }
        }
        let mut legspecs = vec![
            self.probe_leg(line, false),
            LegSpec {
                leg: legs::HBM_WRITE,
                hbm: true,
                kind: TxnKind::Write,
                addr: self.hbm_addr(line),
                bursts: self.bursts,
                gates_data: true,
                deferred: true,
            },
        ];
        if self.tags.lines_per_block() > 1 {
            self.stats.ddr_reads += 1;
            legspecs.push(LegSpec {
                leg: legs::DDR_READ,
                hbm: false,
                kind: TxnKind::Read,
                addr: self.sides.ddr_addr(line),
                bursts: self.bursts,
                gates_data: false,
                deferred: false,
            });
        }
        self.engine
            .start(req, 0, &legspecs, &mut self.sides, now, done);
    }

    /// RCU drain conditions (§III.C), evaluated once per tick.
    fn drain_rcu(&mut self, now: Cycle) {
        if self.red.update_mode != UpdateMode::Rcu {
            return;
        }
        // Condition 1: a scheduled write opened a row matching a parked
        // entry — the update free-rides right behind it at tCCD, never
        // entering the transaction queue.
        let cmds = self.sides.hbm.sys.take_issued_cmds();
        for cmd in cmds {
            if cmd.kind == IssuedKind::Write {
                if let Some(e) = self.rcu.match_write(&cmd.loc) {
                    self.stats.hbm_writes += 1;
                    self.sides.hbm.sys.piggyback_write(e.hbm_addr, now);
                }
            }
        }
        // Condition 1b (write clustering, the condition's spirit under
        // our scaled row count — DESIGN.md §3.4): when a channel is
        // batching writes anyway, parked updates for that channel join
        // the batch; the bus is already turned around, so each costs
        // only its tCCD slot.
        for ch in 0..self.sides.hbm.sys.channel_count() {
            if self.sides.hbm.sys.channel_pending_writes(ch) >= 4 {
                if let Some(e) = self.rcu.pop_cluster_on_channel(ch) {
                    self.issue_drain(e, now);
                }
            }
        }
        // Condition 2: a channel's transaction queue is empty — its
        // parked updates drain without delaying any cache request. The
        // paper states this condition unconditionally ("the queue is
        // empty, so the update is free"); an earlier occupancy gate
        // (only drain once half-full) deferred updates for no benefit
        // and left short runs with parked entries never draining at all
        // (DESIGN.md §3.4).
        for ch in 0..self.sides.hbm.sys.channel_count() {
            if self.sides.hbm.sys.channel_queue_len(ch) == 0 {
                if let Some(e) = self.rcu.pop_idle_on_channel(ch) {
                    self.issue_drain(e, now);
                }
            }
        }
    }
}

impl DramCacheController for RedCacheController {
    fn submit(&mut self, req: MemRequest, now: Cycle) {
        self.sides.sync_to(now);
        self.stats.submitted += 1;
        let mut done = Vec::new();
        match req.kind {
            AccessKind::Read => self.submit_read(req, now, &mut done),
            AccessKind::Writeback => self.submit_writeback(req, now, &mut done),
        }
        // RCU block-cache hits complete synchronously.
        for d in done {
            self.stats.completed += 1;
            if d.kind == AccessKind::Read {
                self.stats.reads_completed += 1;
                self.stats.read_latency_sum += d.latency();
            }
            self.sync_done.push(d);
        }
    }

    fn tick(&mut self, now: Cycle, done: &mut Vec<CompletedReq>) {
        done.append(&mut self.sync_done);
        self.sides.hbm.tick(now);
        self.sides.ddr.tick(now);
        let before = done.len();
        let mut buf = std::mem::take(&mut self.compl_buf);
        self.sides.hbm.drain_completions_into(&mut buf);
        for c in &buf {
            if c.meta == DRAIN_META {
                self.drain_outstanding -= 1;
                continue;
            }
            self.engine
                .on_completion(c.meta, c.done_at, &mut self.sides, done);
        }
        buf.clear();
        self.sides.ddr.drain_completions_into(&mut buf);
        for c in &buf {
            self.engine
                .on_completion(c.meta, c.done_at, &mut self.sides, done);
        }
        buf.clear();
        self.compl_buf = buf;
        let _ = self.engine.take_events();
        self.drain_rcu(now);
        for d in &done[before..] {
            self.stats.completed += 1;
            if d.kind == AccessKind::Read {
                self.stats.reads_completed += 1;
                self.stats.read_latency_sum += d.latency();
            }
        }
    }

    fn next_event(&self, now: Cycle) -> Cycle {
        // Synchronous completions are handed out on the very next tick.
        if !self.sync_done.is_empty() {
            return now + 1;
        }
        // An RCU drain condition that holds *now* will fire on the next
        // tick's `drain_rcu` pass; skipping past it would defer the
        // drain and change the command stream. All three conditions are
        // frozen while no tick runs (queues, pending-write counts and
        // parked entries only change at processed ticks), so checking
        // them once here is exact.
        if self.red.update_mode == UpdateMode::Rcu && !self.rcu.is_empty() {
            let hbm = &self.sides.hbm.sys;
            for ch in 0..hbm.channel_count() {
                let cluster = hbm.channel_pending_writes(ch) >= 4;
                let idle = hbm.channel_queue_len(ch) == 0;
                if (cluster || idle) && self.rcu.has_entry_on_channel(ch) {
                    return now + 1;
                }
            }
        }
        self.sides
            .hbm
            .sys
            .next_event(now)
            .min(self.sides.ddr.sys.next_event(now))
    }

    fn pending(&self) -> usize {
        self.engine.pending() + self.drain_outstanding + self.sync_done.len()
    }

    fn stats(&self) -> ControllerStats {
        self.stats
    }

    fn hbm_stats(&self) -> Option<DramStats> {
        Some(*self.sides.hbm.sys.stats())
    }

    fn ddr_stats(&self) -> DramStats {
        *self.sides.ddr.sys.stats()
    }

    fn hbm_audit(&self) -> Option<AuditStats> {
        self.sides.hbm_audit()
    }

    fn ddr_audit(&self) -> Option<AuditStats> {
        self.sides.ddr_audit()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Red(self.red.variant)
    }

    fn preload(&mut self, line: LineAddr, version: u64) {
        self.sides.ddr_store(line, version);
    }

    fn reset_stats(&mut self) {
        self.stats = ControllerStats::default();
        self.sides.hbm.sys.reset_stats();
        self.sides.ddr.sys.reset_stats();
        self.rcu.reset_stats();
        self.alpha.reset_stats();
    }

    fn adopt_warm(&mut self, warm: &crate::WarmMemoryState) {
        self.sides.restore_warm(warm);
    }

    fn supports_warm_fork(&self) -> bool {
        true
    }

    fn gauges(&self) -> ControllerGauges {
        ControllerGauges {
            alpha: self.alpha.alpha() as f64,
            gamma: self.gamma.gamma() as f64,
            rcu_depth: self.rcu.len() as u64,
            ..self.sides.dram_gauges()
        }
    }

    fn extras(&self) -> Vec<(&'static str, f64)> {
        let r = self.rcu.stats();
        let a = self.alpha.stats();
        vec![
            ("alpha", self.alpha.alpha() as f64),
            ("gamma", self.gamma.gamma() as f64),
            ("rcu_cheap_fraction", r.cheap_fraction()),
            ("rcu_enqueued", r.enqueued as f64),
            ("rcu_piggyback", r.piggyback_drains as f64),
            ("rcu_idle", r.idle_drains as f64),
            ("rcu_forced", r.forced_drains as f64),
            ("rcu_block_cache_hits", r.block_cache_hits as f64),
            ("rcu_updates_owed", self.rcu_updates_owed as f64),
            ("alpha_buffer_hit_rate", {
                let t = a.buffer_hits + a.buffer_misses;
                if t == 0 {
                    0.0
                } else {
                    a.buffer_hits as f64 / t as f64
                }
            }),
        ]
    }
}
