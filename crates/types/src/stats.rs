//! Small statistics utilities shared across the simulator.
//!
//! * [`Counter`] — a named monotonic event counter.
//! * [`SatCounter`] — the 8-bit-style saturating counter RedCache uses
//!   for α- and r-counts (§III.A, footnote 3: "RedCache employs
//!   saturating counters for tracking block reuses").
//! * [`Histogram`] — fixed-bucket histogram with both linear and log₂
//!   bucketing; used for the reuse/bandwidth profiles of Fig. 3 and the
//!   α-adaptation logic.
//! * [`EwmAverage`] — exponentially weighted moving average used by
//!   epoch-based adaptation.

use serde::{Deserialize, Serialize};

/// A monotonic event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Self(0)
    }

    /// Adds one event.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n` events.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A saturating up/down counter with a configurable ceiling, modelling
/// the narrow hardware counters used for α- and r-counts.
///
/// ```
/// use redcache_types::SatCounter;
/// let mut r = SatCounter::u8_zero();
/// r.inc();
/// assert_eq!(r.get(), 1);
/// r.reset(255);
/// assert_eq!(r.inc(), 255); // saturates
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SatCounter {
    value: u32,
    max: u32,
}

impl SatCounter {
    /// Creates a counter starting at `value`, saturating at `max`.
    ///
    /// # Panics
    ///
    /// Panics if `value > max`.
    pub fn new(value: u32, max: u32) -> Self {
        assert!(value <= max, "initial value exceeds ceiling");
        Self { value, max }
    }

    /// An 8-bit counter starting at zero (the r-count of §III.A.2).
    pub fn u8_zero() -> Self {
        Self::new(0, u8::MAX as u32)
    }

    /// Current value.
    pub const fn get(self) -> u32 {
        self.value
    }

    /// Ceiling.
    pub const fn max(self) -> u32 {
        self.max
    }

    /// Increments, saturating at the ceiling. Returns the new value.
    pub fn inc(&mut self) -> u32 {
        if self.value < self.max {
            self.value += 1;
        }
        self.value
    }

    /// Adds `n`, saturating at the ceiling. Returns the new value.
    /// (FBR seeds a fresh fill's r-count with the block's sampled
    /// candidate frequency in one step.)
    pub fn add(&mut self, n: u32) -> u32 {
        self.value = self.value.saturating_add(n).min(self.max);
        self.value
    }

    /// Decrements, saturating at zero. Returns the new value.
    pub fn dec(&mut self) -> u32 {
        self.value = self.value.saturating_sub(1);
        self.value
    }

    /// True once the counter has reached zero.
    pub const fn is_zero(self) -> bool {
        self.value == 0
    }

    /// Resets to `value` (clamped to the ceiling).
    pub fn reset(&mut self, value: u32) {
        self.value = value.min(self.max);
    }
}

impl Default for SatCounter {
    fn default() -> Self {
        Self::u8_zero()
    }
}

/// Bucketing strategy for [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bucketing {
    /// Bucket `i` covers `[i*width, (i+1)*width)`.
    Linear {
        /// Width of each bucket.
        width: u64,
    },
    /// Bucket `i` covers `[2^i, 2^(i+1))`, with bucket 0 covering `{0, 1}`.
    Log2,
}

/// A fixed-size histogram over `u64` samples, with weighted insertion.
///
/// Samples beyond the last bucket are accumulated in the final bucket so
/// no mass is silently dropped.
///
/// ```
/// use redcache_types::stats::{Bucketing, Histogram};
/// let mut h = Histogram::new(Bucketing::Log2, 8);
/// h.add_weighted(10, 9.0); // heavy reuse group
/// h.add_weighted(1, 1.0);  // stream
/// assert_eq!(h.upper_mass_threshold(0.5), 8); // cost concentrates at reuse ~10
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bucketing: Bucketing,
    counts: Vec<f64>,
    samples: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets using `bucketing`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or a linear width of 0 is given.
    pub fn new(bucketing: Bucketing, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        if let Bucketing::Linear { width } = bucketing {
            assert!(width > 0, "linear bucket width must be positive");
        }
        Self {
            bucketing,
            counts: vec![0.0; buckets],
            samples: 0,
        }
    }

    /// Index of the bucket holding `sample`.
    pub fn bucket_of(&self, sample: u64) -> usize {
        let idx = match self.bucketing {
            Bucketing::Linear { width } => (sample / width) as usize,
            Bucketing::Log2 => {
                if sample <= 1 {
                    0
                } else {
                    63 - sample.leading_zeros() as usize
                }
            }
        };
        idx.min(self.counts.len() - 1)
    }

    /// Lower edge (inclusive) of bucket `i`.
    pub fn bucket_lo(&self, i: usize) -> u64 {
        match self.bucketing {
            Bucketing::Linear { width } => i as u64 * width,
            Bucketing::Log2 => {
                if i == 0 {
                    0
                } else {
                    1u64 << i
                }
            }
        }
    }

    /// Adds `sample` with weight `weight`.
    pub fn add_weighted(&mut self, sample: u64, weight: f64) {
        let b = self.bucket_of(sample);
        self.counts[b] += weight;
        self.samples += 1;
    }

    /// Adds `sample` with weight 1.
    pub fn add(&mut self, sample: u64) {
        self.add_weighted(sample, 1.0);
    }

    /// Accumulated weight per bucket.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Number of samples inserted.
    pub const fn samples(&self) -> u64 {
        self.samples
    }

    /// Total accumulated weight.
    pub fn total_weight(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Smallest bucket lower-edge `t` such that buckets at or above the
    /// bucket containing `t` hold at least `fraction` of the weight.
    /// Returns 0 for an empty histogram. Used by the α-adaptation rule
    /// to find the reuse level concentrating the bandwidth cost.
    pub fn upper_mass_threshold(&self, fraction: f64) -> u64 {
        let total = self.total_weight();
        if total <= 0.0 {
            return 0;
        }
        let target = total * fraction.clamp(0.0, 1.0);
        let mut acc = 0.0;
        for i in (0..self.counts.len()).rev() {
            acc += self.counts[i];
            if acc >= target {
                return self.bucket_lo(i);
            }
        }
        0
    }

    /// Clears all buckets and the sample count.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0.0);
        self.samples = 0;
    }
}

/// An exponentially weighted moving average with weight `alpha` on the
/// newest sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EwmAverage {
    alpha: f64,
    value: Option<f64>,
}

impl EwmAverage {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` or not finite.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1]"
        );
        Self { alpha, value: None }
    }

    /// Feeds a sample and returns the updated average.
    pub fn update(&mut self, sample: f64) -> f64 {
        let v = match self.value {
            None => sample,
            Some(prev) => prev + self.alpha * (sample - prev),
        };
        self.value = Some(v);
        v
    }

    /// Current average, or `None` if no sample has been fed.
    pub const fn get(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(format!("{c}"), "5");
    }

    #[test]
    fn sat_counter_saturates_high_and_low() {
        let mut s = SatCounter::new(254, 255);
        assert_eq!(s.inc(), 255);
        assert_eq!(s.inc(), 255);
        s.reset(1);
        assert_eq!(s.dec(), 0);
        assert_eq!(s.dec(), 0);
        assert!(s.is_zero());
    }

    #[test]
    fn sat_counter_reset_clamps_to_ceiling() {
        let mut s = SatCounter::new(0, 15);
        s.reset(100);
        assert_eq!(s.get(), 15);
    }

    #[test]
    #[should_panic(expected = "exceeds ceiling")]
    fn sat_counter_invalid_initial_panics() {
        let _ = SatCounter::new(10, 5);
    }

    #[test]
    fn linear_histogram_buckets() {
        let mut h = Histogram::new(Bucketing::Linear { width: 10 }, 4);
        h.add(0);
        h.add(9);
        h.add(10);
        h.add(39);
        h.add(1000); // clamps into last bucket
        assert_eq!(h.counts(), &[2.0, 1.0, 0.0, 2.0]);
        assert_eq!(h.samples(), 5);
    }

    #[test]
    fn log2_histogram_buckets() {
        let h = Histogram::new(Bucketing::Log2, 8);
        assert_eq!(h.bucket_of(0), 0);
        assert_eq!(h.bucket_of(1), 0);
        assert_eq!(h.bucket_of(2), 1);
        assert_eq!(h.bucket_of(3), 1);
        assert_eq!(h.bucket_of(4), 2);
        assert_eq!(h.bucket_of(255), 7);
        assert_eq!(h.bucket_of(u64::MAX), 7);
        assert_eq!(h.bucket_lo(0), 0);
        assert_eq!(h.bucket_lo(3), 8);
    }

    #[test]
    fn upper_mass_threshold_finds_heavy_tail() {
        let mut h = Histogram::new(Bucketing::Linear { width: 1 }, 16);
        // Light mass at reuse 1, heavy at reuse 10.
        h.add_weighted(1, 1.0);
        h.add_weighted(10, 9.0);
        assert_eq!(h.upper_mass_threshold(0.5), 10);
        assert_eq!(h.upper_mass_threshold(1.0), 1);
    }

    #[test]
    fn upper_mass_threshold_empty_is_zero() {
        let h = Histogram::new(Bucketing::Log2, 4);
        assert_eq!(h.upper_mass_threshold(0.5), 0);
    }

    #[test]
    fn histogram_clear_resets() {
        let mut h = Histogram::new(Bucketing::Log2, 4);
        h.add(3);
        h.clear();
        assert_eq!(h.total_weight(), 0.0);
        assert_eq!(h.samples(), 0);
    }

    #[test]
    fn ewma_first_sample_is_identity() {
        let mut e = EwmAverage::new(0.25);
        assert_eq!(e.get(), None);
        assert_eq!(e.update(8.0), 8.0);
        let v = e.update(0.0);
        assert!((v - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn ewma_rejects_bad_alpha() {
        let _ = EwmAverage::new(0.0);
    }
}
