//! **Ablation** — the α mechanism's design choices (DESIGN.md §3.4):
//! fixed vs adaptive α, threshold values, and page-granular (divisor
//! 64) vs idealised block-granular (divisor 1) counting.
//!
//! Run on a streaming workload (HIST) and a reuse-heavy one (OCN),
//! reporting execution time normalised to Alloy.

use redcache::{PolicyKind, RedConfig, RedVariant, SimConfig};
use redcache_bench::{
    assert_clean, experiment_gen_config, print_table, run_matrix, save_json, RunSpec,
};
use redcache_policies::redcache::AlphaConfig;
use redcache_workloads::Workload;

fn red_cfg(f: impl FnOnce(&mut RedConfig)) -> SimConfig {
    let kind = PolicyKind::Red(RedVariant::Alpha);
    let mut cfg = SimConfig::scaled(kind);
    let mut rc = RedConfig::for_variant(RedVariant::Alpha);
    f(&mut rc);
    cfg.policy.red_override = Some(rc);
    cfg
}

fn main() {
    let gen = experiment_gen_config();
    let variants: Vec<(String, SimConfig)> = vec![
        (
            "Alloy (no alpha)".into(),
            SimConfig::scaled(PolicyKind::Alloy),
        ),
        (
            "alpha=1 fixed".into(),
            red_cfg(|rc| {
                rc.alpha = AlphaConfig {
                    initial: 1,
                    adapt: false,
                    ..AlphaConfig::default()
                };
            }),
        ),
        (
            "alpha=2 fixed".into(),
            red_cfg(|rc| {
                rc.alpha = AlphaConfig {
                    initial: 2,
                    adapt: false,
                    ..AlphaConfig::default()
                };
            }),
        ),
        (
            "alpha=4 fixed".into(),
            red_cfg(|rc| {
                rc.alpha = AlphaConfig {
                    initial: 4,
                    adapt: false,
                    ..AlphaConfig::default()
                };
            }),
        ),
        (
            "alpha=8 fixed".into(),
            red_cfg(|rc| {
                rc.alpha = AlphaConfig {
                    initial: 8,
                    adapt: false,
                    ..AlphaConfig::default()
                };
            }),
        ),
        ("adaptive (default)".into(), red_cfg(|_| {})),
        (
            "adaptive, per-block".into(),
            red_cfg(|rc| {
                rc.alpha.avg_divisor = 1;
            }),
        ),
    ];
    let workloads = [Workload::Hist, Workload::Ocn, Workload::Lu];

    let mut specs = Vec::new();
    for &w in &workloads {
        for (_, cfg) in &variants {
            specs.push(RunSpec {
                workload: w,
                policy: cfg.policy.kind,
                cfg: *cfg,
            });
        }
    }
    let reports = run_matrix(&specs, &gen);
    assert_clean(&reports);

    let cols: Vec<String> = workloads
        .iter()
        .map(|w| w.info().label.to_string())
        .collect();
    let mut rows = Vec::new();
    for (vi, (name, _)) in variants.iter().enumerate() {
        let vals: Vec<f64> = workloads
            .iter()
            .enumerate()
            .map(|(wi, _)| {
                let base = &reports[wi * variants.len()]; // Alloy row
                reports[wi * variants.len() + vi].time_normalized_to(base)
            })
            .collect();
        rows.push((name.clone(), vals));
    }
    print_table(
        "Ablation: alpha design choices (execution time normalised to Alloy)",
        "variant",
        &cols,
        &rows,
    );
    save_json("ablation_alpha", &rows);
}
