//! **FBR** — Banshee-style frequency-based replacement
//! [Yu et al., MICRO'17], on top of the pluggable replacement API
//! (DESIGN.md §3.14).
//!
//! Banshee's observation: in a DRAM cache the *replacement traffic* is
//! as expensive as the misses it saves, so both the decision to replace
//! and the rate of replacement must be bandwidth-aware. Three
//! mechanisms, reproduced here at the controller level:
//!
//! * **Frequency counters, sampled.** The tag store runs
//!   set-associatively over [`Lfu`] frequency state; counters are only
//!   updated on a deterministic 1-in-2^k sample of accesses, so the
//!   metadata write traffic stays negligible — exactly the trade
//!   Banshee makes with its sampled frequency counters.
//! * **Thresholded admission.** A miss is only filled when the missing
//!   block's *candidate* frequency (tracked in a small table for
//!   non-resident blocks) beats the would-be victim's resident
//!   frequency by [`FbrConfig::threshold`] — replacement happens only
//!   when it provably improves the working set, which kills the
//!   direct-mapped thrash that Alloy suffers.
//! * **Fill throttling.** Fills spend from a credit bucket that refills
//!   per request ([`FbrConfig::fill_credit_pct`] percent of a fill per
//!   access), bounding fill bandwidth to a fixed share of demand
//!   traffic regardless of miss rate.
//!
//! Like BEAR, presence knowledge lets reads of absent blocks skip the
//! probe entirely, and writeback misses go straight to DDR.

use crate::controller::{
    CompletedReq, ControllerGauges, ControllerStats, DramCacheController, MemorySides,
    PolicyConfig, PolicyKind,
};
use crate::engine::{legs, Engine, LegSpec};
use crate::tagstore::TagStore;
use redcache_cache::{Lfu, ReplacementPolicy};
use redcache_dram::{AuditStats, DramStats, TxnKind};
use redcache_types::{AccessKind, Cycle, LineAddr, MemRequest};
use serde::{Deserialize, Serialize};

/// A fill costs this much credit; `fill_credit_pct` is earned per
/// request, so the steady-state fill rate is `pct / 100` fills per
/// access.
const FILL_COST: u64 = 100;
/// Credit cap: at most this many fills' worth of burst headroom.
const CREDIT_CAP: u64 = 8 * FILL_COST;

/// Tunable FBR parameters (the policy-zoo knobs; see README).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FbrConfig {
    /// Tag-store associativity (block frames per set).
    pub ways: usize,
    /// Admission margin: candidate frequency must be at least
    /// `victim frequency + threshold` to displace a resident block.
    pub threshold: u32,
    /// Counter updates are sampled 1-in-`2^sample_shift` accesses.
    pub sample_shift: u32,
    /// Fill credit earned per request, in percent of one fill.
    pub fill_credit_pct: u32,
    /// log2 of the candidate-frequency table size (entries).
    pub cand_table_bits: u32,
}

impl Default for FbrConfig {
    fn default() -> Self {
        Self {
            ways: 4,
            threshold: 2,
            sample_shift: 3,
            fill_credit_pct: 35,
            cand_table_bits: 12,
        }
    }
}

impl FbrConfig {
    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.ways == 0 || self.ways > 16 {
            return Err(format!("fbr ways must be 1..=16, got {}", self.ways));
        }
        if self.sample_shift > 16 {
            return Err(format!(
                "fbr sample_shift must be <= 16, got {}",
                self.sample_shift
            ));
        }
        if self.fill_credit_pct == 0 || self.fill_credit_pct > 400 {
            return Err(format!(
                "fbr fill_credit_pct must be 1..=400, got {}",
                self.fill_credit_pct
            ));
        }
        if !(4..=20).contains(&self.cand_table_bits) {
            return Err(format!(
                "fbr cand_table_bits must be 4..=20, got {}",
                self.cand_table_bits
            ));
        }
        Ok(())
    }
}

/// The FBR controller.
#[derive(Debug)]
pub struct FbrController {
    sides: MemorySides,
    engine: Engine,
    tags: TagStore<Lfu>,
    stats: ControllerStats,
    fbr: FbrConfig,
    /// Candidate frequencies of non-resident blocks, indexed by a
    /// multiplicative hash of the block number.
    cand: Vec<u8>,
    access_count: u64,
    fill_credit: u64,
    freq_rejects: u64,
    throttled_fills: u64,
    block_bytes: usize,
    bursts: u32,
    compl_buf: Vec<redcache_dram::Completion>,
}

impl FbrController {
    /// Builds the controller.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: &PolicyConfig) -> Self {
        cfg.validate().expect("invalid policy config");
        let fbr = cfg.fbr();
        fbr.validate().expect("invalid fbr config");
        let frames = (cfg.hbm.topology.capacity_bytes() / cfg.cache_block_bytes as u64) as usize;
        let sets = (frames / fbr.ways).max(1);
        Self {
            sides: MemorySides::new(cfg),
            engine: Engine::new(),
            tags: TagStore::with_assoc(sets, fbr.ways, cfg.lines_per_block()),
            stats: ControllerStats::default(),
            fbr,
            cand: vec![0; 1usize << fbr.cand_table_bits],
            access_count: 0,
            fill_credit: CREDIT_CAP,
            freq_rejects: 0,
            throttled_fills: 0,
            block_bytes: cfg.cache_block_bytes,
            bursts: (cfg.cache_block_bytes / 64) as u32,
            compl_buf: Vec::new(),
        }
    }

    /// Deterministic 1-in-2^k sampling tied to the access counter —
    /// no RNG, so warm forks and reruns are bit-exact.
    fn sample(&mut self) -> bool {
        self.access_count += 1;
        let mask = (1u64 << self.fbr.sample_shift) - 1;
        self.access_count & mask == 0
    }

    fn cand_index(&self, block: u64) -> usize {
        let h = block.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> (64 - self.fbr.cand_table_bits)) as usize
    }

    fn earn_credit(&mut self) {
        self.fill_credit = (self.fill_credit + self.fbr.fill_credit_pct as u64).min(CREDIT_CAP);
    }

    fn block_versions_from_ddr(&self, line: LineAddr) -> [u64; 4] {
        let mut v = [0u64; 4];
        let first = self.tags.block_first_line(self.tags.block_of(line));
        for (i, slot) in v
            .iter_mut()
            .enumerate()
            .take(self.tags.lines_per_block() as usize)
        {
            *slot = self
                .sides
                .ddr_version(LineAddr::new(first.raw() + i as u64));
        }
        v
    }

    fn retire_victim(
        &mut self,
        victim: Option<crate::tagstore::TagEntry>,
        leg: u8,
    ) -> Option<LegSpec> {
        let victim = victim?;
        if !victim.dirty {
            return None;
        }
        self.stats.victim_writebacks += 1;
        self.stats.ddr_writes += 1;
        let first = self.tags.block_first_line(victim.block);
        for i in 0..self.tags.lines_per_block() {
            let l = LineAddr::new(first.raw() + i);
            self.sides.ddr_store(l, victim.versions[i as usize]);
        }
        Some(LegSpec {
            leg,
            hbm: false,
            kind: TxnKind::Write,
            addr: self.sides.ddr_addr(first),
            bursts: self.bursts,
            gates_data: false,
            deferred: false,
        })
    }

    /// The frequency-and-bandwidth admission decision for a missing
    /// block, and the fill bookkeeping when it is admitted. Returns the
    /// HBM fill leg plus an optional victim writeback leg.
    fn try_fill(&mut self, line: LineAddr, sampled: bool) -> Vec<LegSpec> {
        let set = self.tags.set_of(line);
        let ci = self.cand_index(self.tags.block_of(line));
        if sampled {
            self.cand[ci] = self.cand[ci].saturating_add(1);
        }
        let cand_freq = self.cand[ci] as u32;
        // Victim inspection must precede install: install resets the
        // displaced way's frequency.
        let victim_freq = if self.tags.has_free_way(line) {
            None
        } else {
            let vway = self.tags.policy().victim(set);
            Some(self.tags.policy().freq(set, vway))
        };
        let admit = match victim_freq {
            None => true, // free frame: no displacement cost
            Some(vf) => cand_freq >= vf + self.fbr.threshold,
        };
        if !admit {
            self.freq_rejects += 1;
            self.stats.fill_bypasses += 1;
            return Vec::new();
        }
        if self.fill_credit < FILL_COST {
            self.throttled_fills += 1;
            self.stats.fill_bypasses += 1;
            return Vec::new();
        }
        self.fill_credit -= FILL_COST;
        self.stats.fills += 1;
        self.stats.hbm_writes += 1;
        let fill_versions = self.block_versions_from_ddr(line);
        let victim = self.tags.install(line, fill_versions, false);
        // The candidate's tracked frequency moves into residence (both
        // the LFU ordering state and the in-HBM r-count byte), and the
        // displaced block's frequency drops back into the candidate
        // table so it can earn its way back in.
        let way = self.tags.resident_way(line).expect("just installed");
        self.tags.policy_mut().set_freq(set, way, cand_freq);
        if let Some(e) = self.tags.entry_mut(line) {
            e.r_count.add(cand_freq);
        }
        self.cand[ci] = 0;
        if let Some(v) = &victim {
            let vi = self.cand_index(v.block);
            self.cand[vi] = victim_freq.unwrap_or(0).min(u8::MAX as u32) as u8;
        }
        let mut out = vec![LegSpec {
            leg: legs::HBM_WRITE,
            hbm: true,
            kind: TxnKind::Write,
            addr: self.tags.hbm_addr(line, self.block_bytes),
            bursts: self.bursts,
            gates_data: false,
            deferred: false,
        }];
        if let Some(wb) = self.retire_victim(victim, legs::DDR_WRITE) {
            out.push(wb);
        }
        out
    }

    fn submit_read(&mut self, req: MemRequest, now: Cycle, done: &mut Vec<CompletedReq>) {
        let line = req.line;
        self.stats.table_lookups += 1; // presence + candidate lookup
        let sampled = self.sample();
        if self.tags.contains(line) {
            self.stats.hbm_probes += 1;
            self.stats.hbm_hits += 1;
            if sampled {
                self.tags.touch(line);
            }
            let sub = self.tags.subline_of(line);
            let e = self.tags.entry_mut(line).expect("hit entry");
            e.r_count.inc();
            let version = e.versions[sub];
            let probe = LegSpec {
                leg: legs::PROBE,
                hbm: true,
                kind: TxnKind::Read,
                addr: self.tags.hbm_addr(line, self.block_bytes),
                bursts: self.bursts,
                gates_data: true,
                deferred: false,
            };
            self.engine
                .start(req, version, &[probe], &mut self.sides, now, done);
            return;
        }
        // Presence says absent: no probe (miss-probe elision, as BEAR).
        self.stats.hbm_misses += 1;
        self.stats.hbm_bypasses += 1;
        self.stats.ddr_reads += 1;
        let version = self.sides.ddr_version(line);
        let mut legspecs = vec![LegSpec {
            leg: legs::DDR_READ,
            hbm: false,
            kind: TxnKind::Read,
            addr: self.sides.ddr_addr(line),
            bursts: self.bursts,
            gates_data: true,
            deferred: false,
        }];
        legspecs.extend(self.try_fill(line, sampled));
        self.engine
            .start(req, version, &legspecs, &mut self.sides, now, done);
    }

    fn submit_writeback(&mut self, req: MemRequest, now: Cycle, done: &mut Vec<CompletedReq>) {
        let line = req.line;
        self.stats.table_lookups += 1;
        let sampled = self.sample();
        if self.tags.contains(line) {
            // Presence is known — write directly, no tag-check read.
            self.stats.hbm_hits += 1;
            self.stats.hbm_writes += 1;
            if sampled {
                self.tags.touch(line);
            }
            let sub = self.tags.subline_of(line);
            let e = self.tags.entry_mut(line).expect("hit entry");
            e.dirty = true;
            e.versions[sub] = req.data_version;
            e.r_count.inc();
            let write = LegSpec {
                leg: legs::HBM_WRITE,
                hbm: true,
                kind: TxnKind::Write,
                addr: self.tags.hbm_addr(line, self.block_bytes),
                bursts: self.bursts,
                gates_data: true,
                deferred: false,
            };
            self.engine
                .start(req, 0, &[write], &mut self.sides, now, done);
            return;
        }
        // Writeback miss: straight to DDR (no allocate, no probe).
        self.stats.hbm_misses += 1;
        self.stats.hbm_bypasses += 1;
        self.stats.ddr_writes += 1;
        self.sides.ddr_store(line, req.data_version);
        let write = LegSpec {
            leg: legs::DDR_WRITE,
            hbm: false,
            kind: TxnKind::Write,
            addr: self.sides.ddr_addr(line),
            bursts: 1,
            gates_data: true,
            deferred: false,
        };
        self.engine
            .start(req, 0, &[write], &mut self.sides, now, done);
    }
}

impl DramCacheController for FbrController {
    fn submit(&mut self, req: MemRequest, now: Cycle) {
        self.sides.sync_to(now);
        self.stats.submitted += 1;
        self.earn_credit();
        let mut done = Vec::new();
        match req.kind {
            AccessKind::Read => self.submit_read(req, now, &mut done),
            AccessKind::Writeback => self.submit_writeback(req, now, &mut done),
        }
        debug_assert!(done.is_empty());
    }

    fn tick(&mut self, now: Cycle, done: &mut Vec<CompletedReq>) {
        self.sides.hbm.tick(now);
        self.sides.ddr.tick(now);
        let before = done.len();
        let mut buf = std::mem::take(&mut self.compl_buf);
        self.sides.hbm.drain_completions_into(&mut buf);
        for c in &buf {
            self.engine
                .on_completion(c.meta, c.done_at, &mut self.sides, done);
        }
        buf.clear();
        self.sides.ddr.drain_completions_into(&mut buf);
        for c in &buf {
            self.engine
                .on_completion(c.meta, c.done_at, &mut self.sides, done);
        }
        buf.clear();
        self.compl_buf = buf;
        let _ = self.engine.take_events();
        for d in &done[before..] {
            self.stats.completed += 1;
            if d.kind == AccessKind::Read {
                self.stats.reads_completed += 1;
                self.stats.read_latency_sum += d.latency();
            }
        }
    }

    fn next_event(&self, now: Cycle) -> Cycle {
        self.sides
            .hbm
            .sys
            .next_event(now)
            .min(self.sides.ddr.sys.next_event(now))
    }

    fn pending(&self) -> usize {
        self.engine.pending()
    }

    fn stats(&self) -> ControllerStats {
        self.stats
    }

    fn hbm_stats(&self) -> Option<DramStats> {
        Some(*self.sides.hbm.sys.stats())
    }

    fn ddr_stats(&self) -> DramStats {
        *self.sides.ddr.sys.stats()
    }

    fn hbm_audit(&self) -> Option<AuditStats> {
        self.sides.hbm_audit()
    }

    fn ddr_audit(&self) -> Option<AuditStats> {
        self.sides.ddr_audit()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Fbr
    }

    fn preload(&mut self, line: LineAddr, version: u64) {
        self.sides.ddr_store(line, version);
    }

    fn gauges(&self) -> ControllerGauges {
        ControllerGauges {
            fbr_fill_credit: self.fill_credit as f64 / FILL_COST as f64,
            ..self.sides.dram_gauges()
        }
    }

    fn reset_stats(&mut self) {
        self.stats = ControllerStats::default();
        self.sides.hbm.sys.reset_stats();
        self.sides.ddr.sys.reset_stats();
        self.freq_rejects = 0;
        self.throttled_fills = 0;
    }

    fn adopt_warm(&mut self, warm: &crate::WarmMemoryState) {
        self.sides.restore_warm(warm);
    }

    fn supports_warm_fork(&self) -> bool {
        true
    }

    fn extras(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("fbr_freq_rejects", self.freq_rejects as f64),
            ("fbr_throttled_fills", self.throttled_fills as f64),
            (
                "fbr_fill_credit",
                self.fill_credit as f64 / FILL_COST as f64,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_types::{CoreId, ReqId};

    fn drive(c: &mut FbrController, from: Cycle) -> (Vec<CompletedReq>, Cycle) {
        let mut done = Vec::new();
        let mut now = from;
        while c.pending() > 0 {
            c.tick(now, &mut done);
            now += 1;
            assert!(now < 5_000_000);
        }
        (done, now)
    }

    fn ctl() -> FbrController {
        FbrController::new(&PolicyConfig::scaled(PolicyKind::Fbr))
    }

    fn ctl_with(fbr: FbrConfig) -> FbrController {
        let mut cfg = PolicyConfig::scaled(PolicyKind::Fbr);
        cfg.fbr_override = Some(fbr);
        FbrController::new(&cfg)
    }

    #[test]
    fn cold_miss_fills_a_free_frame_and_hits_after() {
        let mut c = ctl();
        c.preload(LineAddr::new(5), 50);
        c.submit(
            MemRequest::read(ReqId(1), LineAddr::new(5), CoreId(0), 0),
            0,
        );
        let (done, t) = drive(&mut c, 0);
        assert_eq!(done[0].data_version, 50);
        assert_eq!(c.stats().fills, 1, "free frame admits unconditionally");
        assert_eq!(c.stats().hbm_probes, 0, "miss-probe elision");
        c.submit(
            MemRequest::read(ReqId(2), LineAddr::new(5), CoreId(0), t),
            t,
        );
        let (done, _) = drive(&mut c, t);
        assert_eq!(done[0].data_version, 50);
        assert_eq!(c.stats().hbm_hits, 1);
    }

    #[test]
    fn full_set_requires_frequency_advantage() {
        // 1-way sets make the conflict deterministic; threshold 2 and
        // 1-in-1 sampling (shift 0) make frequencies exact.
        let fbr = FbrConfig {
            ways: 1,
            threshold: 2,
            sample_shift: 0,
            fill_credit_pct: 400,
            cand_table_bits: 12,
        };
        let mut c = ctl_with(fbr);
        let sets = c.tags.sets() as u64;
        let a = LineAddr::new(3);
        let b = LineAddr::new(3 + sets); // same set as `a`
                                         // Resident `a` with some accumulated frequency.
        for i in 0..6u64 {
            c.submit(MemRequest::read(ReqId(i), a, CoreId(0), 0), 0);
            drive(&mut c, 0);
        }
        assert_eq!(c.stats().fills, 1);
        // One touch of `b`: candidate freq 1 < victim freq + 2 → reject.
        c.submit(MemRequest::read(ReqId(100), b, CoreId(0), 0), 0);
        drive(&mut c, 0);
        assert_eq!(c.stats().fills, 1, "cold candidate must not displace");
        assert!(c.freq_rejects > 0);
        assert!(c.tags.contains(a) && !c.tags.contains(b));
        // Hammer `b` until its candidate frequency wins the margin.
        for i in 0..12u64 {
            c.submit(MemRequest::read(ReqId(200 + i), b, CoreId(0), 0), 0);
            drive(&mut c, 0);
        }
        assert!(c.tags.contains(b), "hot candidate eventually replaces");
        assert!(!c.tags.contains(a));
    }

    #[test]
    fn fill_throttle_bounds_fill_rate() {
        // Streaming misses (every block touched once) against a tiny
        // credit rate: fills can't exceed credit earned + initial burst.
        let fbr = FbrConfig {
            ways: 4,
            threshold: 0,
            sample_shift: 0,
            fill_credit_pct: 10, // one fill per 10 requests
            cand_table_bits: 12,
        };
        let mut c = ctl_with(fbr);
        let n = 600u64;
        for i in 0..n {
            c.submit(
                MemRequest::read(ReqId(i), LineAddr::new(i * 3), CoreId(0), 0),
                0,
            );
            drive(&mut c, 0);
        }
        let s = c.stats();
        let budget = (n * 10) / 100 + CREDIT_CAP / FILL_COST;
        assert!(
            s.fills <= budget,
            "fills {} exceed the bandwidth budget {}",
            s.fills,
            budget
        );
        assert!(c.throttled_fills > 0, "the throttle must have engaged");
        assert_eq!(s.fills + s.fill_bypasses, s.ddr_reads);
    }

    #[test]
    fn writeback_miss_goes_straight_to_ddr() {
        let mut c = ctl();
        c.submit(
            MemRequest::writeback(ReqId(1), LineAddr::new(9), CoreId(0), 0, 7),
            0,
        );
        let (_, t) = drive(&mut c, 0);
        assert_eq!(
            c.hbm_stats().unwrap().bytes_total(),
            0,
            "no WideIO traffic for absent writeback"
        );
        assert_eq!(c.ddr_stats().bytes_written, 64);
        c.submit(
            MemRequest::read(ReqId(2), LineAddr::new(9), CoreId(0), t),
            t,
        );
        let (done, _) = drive(&mut c, t);
        assert_eq!(done[0].data_version, 7);
    }

    #[test]
    fn writeback_hit_updates_in_place() {
        let mut c = ctl();
        c.submit(
            MemRequest::read(ReqId(1), LineAddr::new(0), CoreId(0), 0),
            0,
        );
        let (_, t) = drive(&mut c, 0);
        assert_eq!(c.stats().fills, 1);
        c.submit(
            MemRequest::writeback(ReqId(2), LineAddr::new(0), CoreId(0), t, 9),
            t,
        );
        let (_, t2) = drive(&mut c, t);
        c.submit(
            MemRequest::read(ReqId(3), LineAddr::new(0), CoreId(0), t2),
            t2,
        );
        let (done, _) = drive(&mut c, t2);
        assert_eq!(done[0].data_version, 9);
    }

    #[test]
    fn dirty_victim_writes_back_on_displacement() {
        let fbr = FbrConfig {
            ways: 1,
            threshold: 0,
            sample_shift: 0,
            fill_credit_pct: 400,
            cand_table_bits: 12,
        };
        let mut c = ctl_with(fbr);
        let sets = c.tags.sets() as u64;
        let a = LineAddr::new(3);
        let b = LineAddr::new(3 + sets);
        c.submit(MemRequest::read(ReqId(1), a, CoreId(0), 0), 0);
        drive(&mut c, 0);
        c.submit(MemRequest::writeback(ReqId(2), a, CoreId(0), 0, 42), 0);
        drive(&mut c, 0);
        // Displace `a` with a hotter `b`.
        for i in 0..16u64 {
            c.submit(MemRequest::read(ReqId(10 + i), b, CoreId(0), 0), 0);
            drive(&mut c, 0);
        }
        assert!(c.tags.contains(b));
        assert!(c.stats().victim_writebacks >= 1, "dirty victim retired");
        // The dirty data survived the round trip through DDR.
        c.submit(MemRequest::read(ReqId(99), a, CoreId(0), 0), 0);
        let (done, _) = drive(&mut c, 0);
        assert_eq!(done[0].data_version, 42);
    }

    #[test]
    fn sampling_is_deterministic() {
        let mk = || {
            let mut c = ctl();
            for i in 0..400u64 {
                c.submit(
                    MemRequest::read(ReqId(i), LineAddr::new(i % 37), CoreId(0), 0),
                    0,
                );
                drive(&mut c, 0);
            }
            (c.stats(), c.access_count, c.fill_credit, c.cand.clone())
        };
        assert_eq!(mk(), mk(), "two identical runs must agree exactly");
    }

    #[test]
    fn gauges_surface_the_fill_credit() {
        let c = ctl();
        let g = c.gauges();
        assert_eq!(g.fbr_fill_credit, (CREDIT_CAP / FILL_COST) as f64);
    }

    #[test]
    fn config_validation_rejects_bad_knobs() {
        let mut f = FbrConfig::default();
        f.validate().unwrap();
        f.ways = 0;
        assert!(f.validate().is_err());
        f = FbrConfig {
            cand_table_bits: 30,
            ..FbrConfig::default()
        };
        assert!(f.validate().is_err());
        f = FbrConfig {
            fill_credit_pct: 0,
            ..FbrConfig::default()
        };
        assert!(f.validate().is_err());
    }
}
