//! Memory requests as they travel below the L3 cache.
//!
//! The cache hierarchy turns CPU loads/stores into L3 *misses* (reads)
//! and L3 *dirty evictions* (writebacks). Both are presented to the
//! active DRAM-cache controller as [`MemRequest`]s at cache-block
//! granularity. Each request carries a `data_version`: a monotonically
//! increasing stamp standing in for the actual 64-byte payload, used by
//! the shadow-memory checker to detect stale reads (see the `redcache`
//! crate's `checker` module).

use crate::addr::LineAddr;
use crate::Cycle;
use serde::{Deserialize, Serialize};

/// Identifies one of the simulated cores (Table I: sixteen 4-issue
/// out-of-order cores).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CoreId(pub u16);

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// A CPU-visible memory operation, as emitted by workload generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemOp {
    /// A data load.
    Load,
    /// A data store.
    Store,
}

impl MemOp {
    /// True for [`MemOp::Store`].
    pub const fn is_store(self) -> bool {
        matches!(self, MemOp::Store)
    }
}

/// The kind of request presented to the DRAM-cache controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// An L3 read miss: the block must be returned to the L3.
    Read,
    /// An L3 dirty eviction: a full-block writeback. No reply data is
    /// needed, but the payload must not be lost.
    Writeback,
}

impl AccessKind {
    /// True for [`AccessKind::Read`].
    pub const fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }
}

/// Unique identifier for an in-flight [`MemRequest`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ReqId(pub u64);

impl std::fmt::Display for ReqId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// A block-granularity request below the L3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Unique id, assigned by the issuer.
    pub id: ReqId,
    /// Cache line addressed (at the system block size).
    pub line: LineAddr,
    /// Read (L3 miss) or writeback (L3 dirty eviction).
    pub kind: AccessKind,
    /// Core whose miss/eviction produced this request.
    pub core: CoreId,
    /// Cycle at which the request entered the memory subsystem.
    pub issued_at: Cycle,
    /// Version stamp of the payload. For writebacks this is the version
    /// being written; for reads it is ignored on issue and filled with
    /// the version observed on completion.
    pub data_version: u64,
}

impl MemRequest {
    /// Convenience constructor for a read request.
    pub fn read(id: ReqId, line: LineAddr, core: CoreId, now: Cycle) -> Self {
        Self {
            id,
            line,
            kind: AccessKind::Read,
            core,
            issued_at: now,
            data_version: 0,
        }
    }

    /// Convenience constructor for a writeback request carrying payload
    /// version `version`.
    pub fn writeback(id: ReqId, line: LineAddr, core: CoreId, now: Cycle, version: u64) -> Self {
        Self {
            id,
            line,
            kind: AccessKind::Writeback,
            core,
            issued_at: now,
            data_version: version,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let r = MemRequest::read(ReqId(1), LineAddr::new(7), CoreId(3), 100);
        assert!(r.kind.is_read());
        assert_eq!(r.issued_at, 100);
        let w = MemRequest::writeback(ReqId(2), LineAddr::new(7), CoreId(3), 101, 42);
        assert!(!w.kind.is_read());
        assert_eq!(w.data_version, 42);
    }

    #[test]
    fn memop_store_predicate() {
        assert!(MemOp::Store.is_store());
        assert!(!MemOp::Load.is_store());
    }

    #[test]
    fn ids_are_ordered() {
        assert!(ReqId(1) < ReqId(2));
        assert_eq!(format!("{}", ReqId(5)), "req#5");
        assert_eq!(format!("{}", CoreId(5)), "core5");
    }
}
