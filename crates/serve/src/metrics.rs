//! Daemon counters and their Prometheus text-format rendering.
//!
//! Everything is a plain atomic bumped on the hot path; `/metrics`
//! renders a snapshot. Counter semantics follow Prometheus: the
//! `*_total` counters are monotonic, gauges (`queue_depth`, `running`,
//! ratios) move both ways. The reconciliation invariant — pinned by the
//! end-to-end test — is that at quiescence
//! `submitted = completed + failed + canceled` and
//! `sims ≤ completed` (cache hits and coalesced followers complete
//! without their own simulation).
//!
//! All bumps and loads use `Relaxed` ordering: these are pure
//! statistics with no cross-field invariant that synchronizes other
//! memory — every count the e2e suite reconciles is made consistent
//! by the daemon's mutexes/channel, not by counter ordering. (SeqCst
//! here would serialize every bump through one global order for no
//! benefit; the pelikan grow-a-cache notes call this out as the
//! classic over-synchronization tax.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Bumps a pure-statistic counter.
#[inline]
pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// All daemon counters. Fields are public atomics so the job machinery
/// bumps them directly.
#[derive(Debug)]
pub struct Metrics {
    /// Daemon start time (for uptime and sims/s).
    pub started: Instant,
    /// Accepted submissions (202s). Rejected ones are not jobs.
    pub submitted: AtomicU64,
    /// Jobs that reached `completed`.
    pub completed: AtomicU64,
    /// Jobs that reached `failed`.
    pub failed: AtomicU64,
    /// Jobs cancelled while queued.
    pub canceled: AtomicU64,
    /// Submissions refused with 503 (queue full or draining).
    pub rejected: AtomicU64,
    /// Submissions answered straight from the completed-result cache.
    pub cache_hits: AtomicU64,
    /// Submissions coalesced onto an identical in-flight run.
    pub coalesced: AtomicU64,
    /// Completed results evicted from the cache (LRU retention cap).
    pub cache_evictions: AtomicU64,
    /// Terminal jobs pruned from the jobs table (retention cap).
    pub jobs_pruned: AtomicU64,
    /// Simulations actually executed (single-flight leaders).
    pub sims: AtomicU64,
    /// Cells fanned out by accepted sweep submissions.
    pub sweep_cells: AtomicU64,
    /// Sweep cells answered without a fresh simulation (result-cache
    /// hit or coalesced onto an in-flight identical run).
    pub sweep_cache_hits: AtomicU64,
    /// Simulations that started from an already-warm shared snapshot
    /// (identical trace set and warm-relevant config, different
    /// policy/knobs) instead of re-running the warmup phase.
    pub snapshot_hits: AtomicU64,
    /// Microseconds spent simulating, summed over workers.
    pub sim_micros: AtomicU64,
    /// Microseconds spent generating traces (first touch per trace key).
    pub gen_micros: AtomicU64,
    /// Jobs sitting in the bounded queue right now.
    pub queue_depth: AtomicU64,
    /// Jobs being simulated right now.
    pub running: AtomicU64,
    /// Connections currently open (admitted, not yet closed).
    pub connections_open: AtomicU64,
    /// Connections accepted from the listener, including ones
    /// immediately refused over the max-connections limit.
    pub connections_accepted: AtomicU64,
    /// Requests served on an already-used connection (keep-alive or
    /// pipelining; request number ≥ 2 on its socket).
    pub keepalive_reuses: AtomicU64,
    /// Responses sent with status 429 or 503 (backpressure +
    /// connection-limit rejections), counted at response-write time.
    pub http_429_or_503: AtomicU64,
    /// HTTP requests routed (any status, any endpoint).
    pub http_requests: AtomicU64,
    /// Per-worker busy microseconds (index = worker id).
    pub worker_busy_micros: Vec<AtomicU64>,
}

impl Metrics {
    /// Fresh counters for a pool of `workers` workers.
    pub fn new(workers: usize) -> Self {
        Self {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            canceled: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            cache_evictions: AtomicU64::new(0),
            jobs_pruned: AtomicU64::new(0),
            sims: AtomicU64::new(0),
            sweep_cells: AtomicU64::new(0),
            sweep_cache_hits: AtomicU64::new(0),
            snapshot_hits: AtomicU64::new(0),
            sim_micros: AtomicU64::new(0),
            gen_micros: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            running: AtomicU64::new(0),
            connections_open: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
            keepalive_reuses: AtomicU64::new(0),
            http_429_or_503: AtomicU64::new(0),
            http_requests: AtomicU64::new(0),
            worker_busy_micros: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Renders the Prometheus text exposition. `queue_capacity`,
    /// `cache_entries` and `draining` are point-in-time facts owned by
    /// the daemon rather than the counters.
    pub fn render(&self, queue_capacity: usize, cache_entries: usize, draining: bool) -> String {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let uptime = self.started.elapsed().as_secs_f64();
        let sims = get(&self.sims);
        let submitted = get(&self.submitted);
        let hits = get(&self.cache_hits);

        let mut out = String::with_capacity(4096);
        let mut metric = |name: &str, kind: &str, help: &str, value: String| {
            out.push_str("# HELP redcache_serve_");
            out.push_str(name);
            out.push(' ');
            out.push_str(help);
            out.push_str("\n# TYPE redcache_serve_");
            out.push_str(name);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            out.push_str("redcache_serve_");
            out.push_str(&value);
            out.push('\n');
        };

        metric(
            "jobs_submitted_total",
            "counter",
            "Accepted job submissions.",
            format!("jobs_submitted_total {submitted}"),
        );
        metric(
            "jobs_completed_total",
            "counter",
            "Jobs completed successfully.",
            format!("jobs_completed_total {}", get(&self.completed)),
        );
        metric(
            "jobs_failed_total",
            "counter",
            "Jobs whose simulation failed.",
            format!("jobs_failed_total {}", get(&self.failed)),
        );
        metric(
            "jobs_canceled_total",
            "counter",
            "Jobs cancelled while queued.",
            format!("jobs_canceled_total {}", get(&self.canceled)),
        );
        metric(
            "jobs_rejected_total",
            "counter",
            "Submissions refused with 503 (backpressure).",
            format!("jobs_rejected_total {}", get(&self.rejected)),
        );
        metric(
            "cache_hits_total",
            "counter",
            "Submissions served from the completed-result cache.",
            format!("cache_hits_total {hits}"),
        );
        metric(
            "coalesced_total",
            "counter",
            "Submissions coalesced onto an identical in-flight run.",
            format!("coalesced_total {}", get(&self.coalesced)),
        );
        metric(
            "cache_evictions_total",
            "counter",
            "Completed results evicted by the LRU retention cap.",
            format!("cache_evictions_total {}", get(&self.cache_evictions)),
        );
        metric(
            "jobs_pruned_total",
            "counter",
            "Terminal jobs pruned by the retention cap.",
            format!("jobs_pruned_total {}", get(&self.jobs_pruned)),
        );
        metric(
            "sims_total",
            "counter",
            "Simulations actually executed.",
            format!("sims_total {sims}"),
        );
        metric(
            "sweep_cells_total",
            "counter",
            "Cells fanned out by accepted sweep submissions.",
            format!("sweep_cells_total {}", get(&self.sweep_cells)),
        );
        metric(
            "sweep_cache_hits_total",
            "counter",
            "Sweep cells answered without a fresh simulation (cache hit or coalesced).",
            format!("sweep_cache_hits_total {}", get(&self.sweep_cache_hits)),
        );
        metric(
            "snapshot_hits_total",
            "counter",
            "Simulations forked from an already-warm shared snapshot (warmup skipped).",
            format!("snapshot_hits_total {}", get(&self.snapshot_hits)),
        );
        metric(
            "sim_seconds_total",
            "counter",
            "Wall-clock seconds spent simulating.",
            format!(
                "sim_seconds_total {:.6}",
                get(&self.sim_micros) as f64 / 1e6
            ),
        );
        metric(
            "gen_seconds_total",
            "counter",
            "Wall-clock seconds spent generating traces.",
            format!(
                "gen_seconds_total {:.6}",
                get(&self.gen_micros) as f64 / 1e6
            ),
        );
        metric(
            "queue_depth",
            "gauge",
            "Jobs waiting in the bounded queue.",
            format!("queue_depth {}", get(&self.queue_depth)),
        );
        metric(
            "queue_capacity",
            "gauge",
            "Admission-control bound on the queue.",
            format!("queue_capacity {queue_capacity}"),
        );
        metric(
            "running",
            "gauge",
            "Jobs being simulated right now.",
            format!("running {}", get(&self.running)),
        );
        metric(
            "connections_open",
            "gauge",
            "Connections currently open.",
            format!("connections_open {}", get(&self.connections_open)),
        );
        metric(
            "connections_accepted_total",
            "counter",
            "Connections accepted from the listener (including ones refused over the connection limit).",
            format!(
                "connections_accepted_total {}",
                get(&self.connections_accepted)
            ),
        );
        metric(
            "keepalive_reuses_total",
            "counter",
            "Requests served on an already-used (kept-alive or pipelined) connection.",
            format!("keepalive_reuses_total {}", get(&self.keepalive_reuses)),
        );
        metric(
            "http_429_or_503_total",
            "counter",
            "Responses sent with status 429 or 503 (backpressure and connection-limit rejections).",
            format!("http_429_or_503_total {}", get(&self.http_429_or_503)),
        );
        metric(
            "http_requests_total",
            "counter",
            "HTTP requests routed, any status.",
            format!("http_requests_total {}", get(&self.http_requests)),
        );
        metric(
            "workers",
            "gauge",
            "Size of the worker pool.",
            format!("workers {}", self.worker_busy_micros.len()),
        );
        metric(
            "cache_entries",
            "gauge",
            "Completed results resident in the cache.",
            format!("cache_entries {cache_entries}"),
        );
        metric(
            "draining",
            "gauge",
            "1 while a graceful shutdown is draining the queue.",
            format!("draining {}", draining as u8),
        );
        metric(
            "uptime_seconds",
            "gauge",
            "Seconds since daemon start.",
            format!("uptime_seconds {uptime:.3}"),
        );
        metric(
            "cache_hit_ratio",
            "gauge",
            "cache_hits_total / jobs_submitted_total.",
            format!(
                "cache_hit_ratio {:.6}",
                if submitted == 0 {
                    0.0
                } else {
                    hits as f64 / submitted as f64
                }
            ),
        );
        metric(
            "sims_per_second",
            "gauge",
            "sims_total / uptime_seconds.",
            format!(
                "sims_per_second {:.6}",
                if uptime > 0.0 {
                    sims as f64 / uptime
                } else {
                    0.0
                }
            ),
        );

        // Per-worker utilization: busy seconds as a labelled counter
        // (utilization = rate(busy_seconds) in the scraper).
        out.push_str(
            "# HELP redcache_serve_worker_busy_seconds_total Seconds each worker spent on jobs.\n",
        );
        out.push_str("# TYPE redcache_serve_worker_busy_seconds_total counter\n");
        for (i, w) in self.worker_busy_micros.iter().enumerate() {
            out.push_str(&format!(
                "redcache_serve_worker_busy_seconds_total{{worker=\"{i}\"}} {:.6}\n",
                w.load(Ordering::Relaxed) as f64 / 1e6
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_every_series_with_help_and_type() {
        let m = Metrics::new(2);
        m.submitted.store(4, Ordering::SeqCst);
        m.cache_hits.store(1, Ordering::SeqCst);
        m.connections_accepted.store(7, Ordering::SeqCst);
        m.keepalive_reuses.store(5, Ordering::SeqCst);
        m.http_429_or_503.store(2, Ordering::SeqCst);
        let text = m.render(8, 3, false);
        for name in [
            "jobs_submitted_total",
            "jobs_completed_total",
            "jobs_failed_total",
            "jobs_canceled_total",
            "jobs_rejected_total",
            "cache_hits_total",
            "coalesced_total",
            "cache_evictions_total",
            "jobs_pruned_total",
            "sims_total",
            "sweep_cells_total",
            "sweep_cache_hits_total",
            "snapshot_hits_total",
            "sim_seconds_total",
            "gen_seconds_total",
            "queue_depth",
            "queue_capacity",
            "running",
            "connections_open",
            "connections_accepted_total",
            "keepalive_reuses_total",
            "http_429_or_503_total",
            "http_requests_total",
            "workers",
            "cache_entries",
            "draining",
            "uptime_seconds",
            "cache_hit_ratio",
            "sims_per_second",
            "worker_busy_seconds_total",
        ] {
            assert!(
                text.contains(&format!("# TYPE redcache_serve_{name}")),
                "missing {name} in:\n{text}"
            );
        }
        assert!(text.contains("redcache_serve_jobs_submitted_total 4\n"));
        assert!(text.contains("redcache_serve_cache_hit_ratio 0.250000\n"));
        assert!(text.contains("redcache_serve_worker_busy_seconds_total{worker=\"1\"}"));
        assert!(text.contains("redcache_serve_queue_capacity 8\n"));
        assert!(text.contains("redcache_serve_cache_entries 3\n"));
        assert!(text.contains("redcache_serve_connections_accepted_total 7\n"));
        assert!(text.contains("redcache_serve_keepalive_reuses_total 5\n"));
        assert!(text.contains("redcache_serve_http_429_or_503_total 2\n"));
    }
}
