//! `redcache-bomber` — open-loop load generator CLI.
//!
//! ```text
//! redcache-bomber --addr HOST:PORT [flags]      # bomb a running daemon
//! redcache-bomber --self-host [flags]           # bench in-process servers
//! ```
//!
//! Flags: `--connections N` (default 64), `--rate RPS` (default 500),
//! `--duration-s S` (default 5), `--mix submit:status:metrics:health`
//! (default `1:6:2:1`), `--no-keep-alive`, `--out PATH` (default
//! `BENCH_serve.json`), and for `--self-host`: `--workers N`,
//! `--queue N`.
//!
//! `--self-host` binds three in-process daemons and runs the identical
//! open-loop schedule against each: the epoll event loop with
//! keep-alive, the epoll event loop with one connection per request,
//! and the thread-per-connection baseline (which always closes after
//! one request). The comparison lands in the versioned `bench_serve`
//! envelope at `--out`, alongside the server-side metric counters so
//! client- and server-side views can be reconciled.

use redcache_bomber::{run_load, LoadConfig, LoadReport, Mix};
use redcache_serve::{Engine, ServeOptions, Server};
use std::path::PathBuf;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: redcache-bomber (--addr HOST:PORT | --self-host) [--connections N] [--rate RPS] \
         [--duration-s S] [--mix s:st:m:h] [--no-keep-alive] [--out PATH] [--workers N] [--queue N]"
    );
    std::process::exit(2)
}

struct Args {
    addr: Option<String>,
    self_host: bool,
    cfg: LoadConfig,
    out: PathBuf,
    workers: usize,
    queue: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        self_host: false,
        cfg: LoadConfig::default(),
        out: PathBuf::from("BENCH_serve.json"),
        workers: 1,
        queue: 32,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" | "-a" => args.addr = Some(val()),
            "--self-host" => args.self_host = true,
            "--connections" | "-c" => {
                args.cfg.connections = val().parse().unwrap_or_else(|_| usage())
            }
            "--rate" | "-r" => args.cfg.rate = val().parse().unwrap_or_else(|_| usage()),
            "--duration-s" | "-d" => {
                args.cfg.duration =
                    Duration::from_secs_f64(val().parse().unwrap_or_else(|_| usage()))
            }
            "--mix" => args.cfg.mix = Mix::parse(&val()).unwrap_or_else(|_| usage()),
            "--no-keep-alive" => args.cfg.keep_alive = false,
            "--out" | "-o" => args.out = PathBuf::from(val()),
            "--workers" | "-w" => args.workers = val().parse().unwrap_or_else(|_| usage()),
            "--queue" | "-q" => args.queue = val().parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.self_host == args.addr.is_some() {
        // Exactly one target, please.
        usage();
    }
    if args.cfg.connections == 0 || args.cfg.rate <= 0.0 || args.workers == 0 || args.queue == 0 {
        usage();
    }
    args
}

/// Server-side counters snapshotted after a self-hosted scenario.
struct ServerSide {
    http_requests: u64,
    keepalive_reuses: u64,
    connections_accepted: u64,
    http_429_or_503: u64,
}

struct Scenario {
    name: &'static str,
    engine: Engine,
    keep_alive: bool,
    report: LoadReport,
    server: Option<ServerSide>,
}

fn scenario_json(s: &Scenario) -> String {
    let server = match &s.server {
        Some(sv) => format!(
            ",\n      \"server\": {{\"http_requests\": {}, \"keepalive_reuses\": {}, \
             \"connections_accepted\": {}, \"http_429_or_503\": {}}}",
            sv.http_requests, sv.keepalive_reuses, sv.connections_accepted, sv.http_429_or_503
        ),
        None => String::new(),
    };
    format!(
        "{{\n      \"name\": \"{}\",\n      \"engine\": \"{}\",\n      \"keep_alive\": {},\n      \
         \"client\": {}{server}\n    }}",
        s.name,
        s.engine,
        s.keep_alive,
        s.report.json()
    )
}

fn print_summary(s: &Scenario) {
    let r = &s.report;
    println!(
        "{:<18} {:>8.0} rps  ok {:>7}  rejected {:>5}  errors {:>4}  \
         p50 {:>7}us  p99 {:>8}us  p999 {:>8}us",
        s.name, r.achieved_rps, r.ok, r.rejected, r.errors, r.p50_us, r.p99_us, r.p999_us
    );
}

fn run_self_hosted(args: &Args, name: &'static str, engine: Engine, keep_alive: bool) -> Scenario {
    let server = Server::bind(&ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: args.workers,
        queue_capacity: args.queue,
        spool: None,
        engine,
        // Headroom over the client fleet so the bench measures request
        // throughput, not the admission limiter.
        max_connections: args.cfg.connections + 64,
        ..ServeOptions::default()
    })
    .expect("bind in-process server");
    let addr = server.local_addr().to_string();
    let daemon = server.daemon();
    let handle = std::thread::spawn(move || server.run());

    let report = run_load(&LoadConfig {
        addr,
        keep_alive,
        ..args.cfg.clone()
    });

    let m = &daemon.metrics;
    use std::sync::atomic::Ordering::Relaxed;
    let server_side = ServerSide {
        http_requests: m.http_requests.load(Relaxed),
        keepalive_reuses: m.keepalive_reuses.load(Relaxed),
        connections_accepted: m.connections_accepted.load(Relaxed),
        http_429_or_503: m.http_429_or_503.load(Relaxed),
    };
    daemon.begin_drain();
    handle
        .join()
        .expect("server thread")
        .expect("server run succeeds");

    Scenario {
        name,
        engine,
        keep_alive,
        report,
        server: Some(server_side),
    }
}

fn main() {
    let args = parse_args();
    let scenarios: Vec<Scenario> = if args.self_host {
        println!(
            "redcache-bomber self-host: {} connections, {:.0} rps target, {:?}, mix {}",
            args.cfg.connections,
            args.cfg.rate,
            args.cfg.duration,
            args.cfg.mix.label()
        );
        [
            ("epoll-keepalive", Engine::Epoll, true),
            ("epoll-close", Engine::Epoll, false),
            ("threaded-close", Engine::Threaded, false),
        ]
        .into_iter()
        .map(|(name, engine, keep_alive)| {
            let s = run_self_hosted(&args, name, engine, keep_alive);
            print_summary(&s);
            s
        })
        .collect()
    } else {
        let addr = args.addr.clone().expect("checked in parse_args");
        println!(
            "redcache-bomber -> {addr}: {} connections, {:.0} rps target, {:?}, mix {}",
            args.cfg.connections,
            args.cfg.rate,
            args.cfg.duration,
            args.cfg.mix.label()
        );
        let report = run_load(&LoadConfig {
            addr,
            ..args.cfg.clone()
        });
        let s = Scenario {
            name: "external",
            engine: Engine::default(),
            keep_alive: args.cfg.keep_alive,
            report,
            server: None,
        };
        print_summary(&s);
        vec![s]
    };

    let rows: Vec<String> = scenarios.iter().map(scenario_json).collect();
    let data = format!(
        "{{\n  \"host_workers\": {},\n  \"note\": \"open-loop schedule; latency measured from each \
         request's scheduled start time (coordinated-omission-free); absolute numbers are \
         host-bound (host_workers cores) — compare scenarios within one run only\",\n  \
         \"config\": {{\"connections\": {}, \"rate_rps\": {:.0}, \
         \"duration_s\": {:.1}, \"mix\": \"{}\"}},\n  \"scenarios\": [\n    {}\n  ]\n}}",
        redcache_bench::pool::max_workers(),
        args.cfg.connections,
        args.cfg.rate,
        args.cfg.duration.as_secs_f64(),
        args.cfg.mix.label(),
        rows.join(",\n    ")
    );
    redcache_bench::report_io::write_raw_envelope(&args.out, "bench_serve", &data);

    let errors: u64 = scenarios.iter().map(|s| s.report.errors).sum();
    if errors > 0 {
        eprintln!("warning: {errors} unexpected errors across scenarios");
        std::process::exit(1);
    }
}
