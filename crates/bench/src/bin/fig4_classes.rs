//! **Figure 4** — demonstration of the L/H/X block classification that
//! α and γ induce, on the synthetic three-class workload.
//!
//! L: low reuse (bypass); H: high reuse carrying the bandwidth bulk
//! (cache); X: very high reuse but little bandwidth (cacheable, first
//! eviction candidates).

use redcache::profile::{MemLevelStream, ReuseProfile};
use redcache_bench::save_json;
use redcache_cache::HierarchyConfig;
use redcache_policies::{classify, BlockClass};
use redcache_workloads::synthetic::{self, SyntheticSpec};
use redcache_workloads::GenConfig;

fn main() {
    let spec = SyntheticSpec::mixed();
    let mut gen = GenConfig::scaled();
    gen.budget_per_thread = 60_000;
    let traces = synthetic::generate(&spec, &gen);
    let stream = MemLevelStream::extract(&traces, HierarchyConfig::scaled(16));
    let profile = ReuseProfile::from_stream(&stream, 250);

    let (alpha, gamma) = (2u32, 40u32);
    println!("\n== Fig. 4: block classes under alpha={alpha}, gamma={gamma} ==");
    println!(
        "{:>7} {:>10} {:>12} {:>7}",
        "reuse", "blocks", "cost share", "class"
    );
    let total_blocks: u64 = profile.blocks_by_reuse.iter().sum();
    let mut counts = [0u64; 3];
    for (r, (&blocks, &cost)) in profile
        .blocks_by_reuse
        .iter()
        .zip(profile.cost_by_reuse.iter())
        .enumerate()
    {
        if blocks == 0 {
            continue;
        }
        let class = classify(r as u32, cost, alpha, gamma);
        let idx = match class {
            BlockClass::L => 0,
            BlockClass::H => 1,
            BlockClass::X => 2,
        };
        counts[idx] += blocks;
        if cost > 0.01 || blocks > total_blocks / 100 {
            println!("{r:>7} {blocks:>10} {:>11.1}% {:>7?}", cost * 100.0, class);
        }
    }
    println!(
        "\nblock population: L={} H={} X={} (of {total_blocks})",
        counts[0], counts[1], counts[2]
    );
    save_json("fig4_classes", &(profile, counts));
    println!("\npaper:    L blocks stay in DDR despite their bandwidth; H blocks are cached;");
    println!("          X blocks are cached but first candidates for invalidation");
}
