//! NAS **FT** — 3D fast Fourier transform (class-A-shaped, scaled).
//!
//! The kernel performs 1D FFTs along each dimension of a 3D complex
//! grid. Pencils along the current dimension are partitioned across
//! threads; each pencil runs `log2(n)` butterfly stages (two loads and
//! two stores per butterfly). At DRAM granularity every grid line is
//! revisited once per dimension pass — the moderate-reuse profile that
//! makes FT bandwidth-bound.

use crate::common::{elem, GenConfig, Layout, ThreadTraces, TraceBuilder};

const COMPLEX_BYTES: u64 = 16;

pub(crate) fn generate(cfg: &GenConfig) -> ThreadTraces {
    let nx = cfg.dim(64);
    let ny = cfg.dim(64);
    let nz = cfg.dim(32);
    let n = (nx * ny * nz) as u64;
    let mut layout = Layout::new();
    let grid = layout.alloc(n * COMPLEX_BYTES);
    let scratch = layout.alloc(n * COMPLEX_BYTES);
    let mut b = TraceBuilder::new(cfg);
    let threads = cfg.threads;

    // Butterfly stages along one dimension for every pencil.
    let dim_pass =
        |b: &mut TraceBuilder, len: usize, pencils: u64, stride_of: &dyn Fn(u64, u64) -> u64| {
            let stages = len.trailing_zeros().max(1);
            for p in 0..pencils {
                let t = (p % threads as u64) as usize;
                if !b.has_budget(t) {
                    continue;
                }
                for _s in 0..stages {
                    let mut i = 0u64;
                    while i + 1 < len as u64 {
                        let a0 = stride_of(p, i);
                        let a1 = stride_of(p, i + 1);
                        // Butterfly: load both, compute (twiddle), store both.
                        b.load(t, elem(grid, a0, COMPLEX_BYTES), 6);
                        b.load(t, elem(grid, a1, COMPLEX_BYTES), 2);
                        b.store(t, elem(grid, a0, COMPLEX_BYTES), 4);
                        b.store(t, elem(grid, a1, COMPLEX_BYTES), 2);
                        i += 2;
                    }
                }
            }
        };

    // Dimension X: unit stride within a pencil.
    let nxy = (nx * ny) as u64;
    dim_pass(&mut b, nx, (ny * nz) as u64, &|p, i| p * nx as u64 + i);
    // Dimension Y: stride nx.
    dim_pass(&mut b, ny, (nx * nz) as u64, &|p, i| {
        let (z, x) = (p / nx as u64, p % nx as u64);
        z * nxy + i * nx as u64 + x
    });
    // Dimension Z: stride nx*ny.
    dim_pass(&mut b, nz, nxy, &|p, i| i * nxy + p);

    // Evolve step: elementwise multiply into scratch (streaming write).
    for i in 0..n {
        let t = (i / 64 % threads as u64) as usize;
        b.load(t, elem(grid, i, COMPLEX_BYTES), 3);
        b.store(t, elem(scratch, i, COMPLEX_BYTES), 2);
        if b.exhausted() {
            break;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_cpu::TraceStats;

    #[test]
    fn deterministic_and_nonempty() {
        let cfg = GenConfig::tiny();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        assert!(a.iter().all(|t| !t.is_empty()));
    }

    #[test]
    fn has_butterfly_store_fraction() {
        let cfg = GenConfig::tiny();
        let flat: Vec<_> = generate(&cfg).into_iter().flatten().collect();
        let s = TraceStats::from_trace(&flat);
        // Butterflies are 2 loads / 2 stores; evolve adds 1/1.
        assert!(
            s.store_fraction() > 0.3 && s.store_fraction() < 0.6,
            "{}",
            s.store_fraction()
        );
    }
}
