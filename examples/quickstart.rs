//! Quickstart: simulate one workload under the Alloy baseline and the
//! full RedCache architecture, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use redcache::sim::run_workload;
use redcache::{PolicyKind, RedVariant, SimConfig};
use redcache_workloads::{GenConfig, Workload};

fn main() {
    // A reduced workload so the example finishes in seconds; use
    // GenConfig::scaled() for evaluation-sized runs.
    let mut gen = GenConfig::scaled();
    gen.budget_per_thread = 40_000;

    println!("simulating HIST (Phoenix histogram) under two architectures…\n");
    let alloy = run_workload(SimConfig::scaled(PolicyKind::Alloy), Workload::Hist, &gen);
    let red = run_workload(
        SimConfig::scaled(PolicyKind::Red(RedVariant::Full)),
        Workload::Hist,
        &gen,
    );

    for r in [&alloy, &red] {
        println!("{:—<60}", format!("{} ", r.policy));
        println!("  execution time   {:>12} cycles", r.cycles);
        println!("  IPC              {:>12.2}", r.ipc());
        println!("  HBM hit rate     {:>12.1}%", r.hbm_hit_rate() * 100.0);
        println!(
            "  WideIO traffic   {:>12} bytes",
            r.hbm.map(|h| h.bytes_total()).unwrap_or(0)
        );
        println!("  DDR traffic      {:>12} bytes", r.ddr.bytes_total());
        println!(
            "  HBM energy       {:>12.4} mJ",
            r.energy.hbm.total_j() * 1e3
        );
        println!("  system energy    {:>12.4} mJ", r.energy.total_j() * 1e3);
        println!("  stale reads      {:>12}", r.shadow_violations);
        println!();
    }
    println!(
        "RedCache vs Alloy: {:.1}% faster, {:.1}% less HBM energy",
        100.0 * (1.0 - red.time_normalized_to(&alloy)),
        100.0 * (1.0 - red.hbm_energy_normalized_to(&alloy)),
    );
}
