//! On-die SRAM cache hierarchy for the RedCache reproduction.
//!
//! Models the three cache levels of Table I: per-core L1D (64 KB,
//! 4-way) and L2 (128 KB, 8-way), plus a shared L3 (8 MB, 8-way), all
//! with 64 B blocks, LRU replacement, write-back and write-allocate.
//! L3 misses are tracked in an MSHR file that merges concurrent misses
//! to the same line; L3 dirty evictions become memory writebacks.
//!
//! Cache lines carry a `data version` — a monotonically increasing stamp
//! standing in for the 64-byte payload — which flows through fills and
//! writebacks so the memory-side shadow checker can detect any stale
//! read introduced by a DRAM-cache policy.
//!
//! # Example
//!
//! ```
//! use redcache_cache::{Hierarchy, HierarchyConfig};
//! use redcache_types::{CoreId, LineAddr, MemOp};
//!
//! let mut h = Hierarchy::new(HierarchyConfig::scaled(1));
//! let out = h.access(CoreId(0), LineAddr::new(0x10), MemOp::Load, 0, 0);
//! assert!(out.mem_read_needed()); // cold miss reaches memory
//! ```

#![warn(missing_docs)]

mod geometry;
mod hierarchy;
mod mshr;
pub mod reference;
mod replacement;
mod set_assoc;

pub use geometry::CacheGeometry;
pub use hierarchy::{
    AccessOutcome, CacheLevel, FillResult, Hierarchy, HierarchyConfig, HierarchyConfigBuilder,
};
pub use mshr::{Mshr, MshrOutcome};
pub use replacement::{DirectMapped, Lfu, Lru, ReplacementPolicy, Slru, TrueLru, FREQ_MAX};
pub use set_assoc::{AccessResult, CacheStats, Evicted, SetAssocCache};
