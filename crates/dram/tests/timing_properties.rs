//! Property tests: under arbitrary transaction mixes, the scheduler's
//! emitted command stream never violates the Table I timing constraints.
//!
//! The checker here is written independently of the scheduler: it replays
//! the `IssuedCmd` stream and re-verifies every constraint from scratch,
//! so a bug in the scheduler's bookkeeping cannot hide itself.

use proptest::prelude::*;
use redcache_dram::{DramConfig, DramSystem, IssuedCmd, IssuedKind, TimingParams, TxnKind};
use redcache_types::{Cycle, PhysAddr};
use std::collections::HashMap;

#[derive(Default, Clone)]
struct BankShadow {
    open: bool,
    last_act: Option<Cycle>,
    last_pre: Option<Cycle>,
    last_rd: Option<Cycle>,
    last_wr_data_end: Option<Cycle>,
}

/// Replays a command stream and panics on the first timing violation.
fn check_stream(cmds: &[IssuedCmd], t: &TimingParams) {
    let mut banks: HashMap<(usize, usize, usize), BankShadow> = HashMap::new();
    let mut rank_acts: HashMap<(usize, usize), Vec<Cycle>> = HashMap::new();
    let mut rank_wr_data_end: HashMap<(usize, usize), Cycle> = HashMap::new();
    let mut chan_last_col: HashMap<usize, Cycle> = HashMap::new();
    let mut chan_bus_free: HashMap<usize, Cycle> = HashMap::new();

    for c in cmds {
        let bkey = (c.loc.channel, c.loc.rank, c.loc.bank);
        let rkey = (c.loc.channel, c.loc.rank);
        let now = c.cycle;
        assert_eq!(now % t.cmd_clock_divisor, 0, "command off the command clock at {now}");
        let b = banks.entry(bkey).or_default();
        match c.kind {
            IssuedKind::Activate => {
                assert!(!b.open, "ACT to open bank at {now}");
                if let Some(a) = b.last_act {
                    assert!(now >= a + t.t_rc, "tRC violated: ACT {now} after ACT {a}");
                }
                if let Some(p) = b.last_pre {
                    assert!(now >= p + t.t_rp, "tRP violated: ACT {now} after PRE {p}");
                }
                let acts = rank_acts.entry(rkey).or_default();
                if let Some(&prev) = acts.last() {
                    assert!(now >= prev + t.t_rrd, "tRRD violated at {now}");
                }
                let in_window =
                    acts.iter().filter(|&&a| a + t.t_faw > now).count();
                assert!(in_window < 4, "tFAW violated at {now}");
                acts.push(now);
                b.open = true;
                b.last_act = Some(now);
            }
            IssuedKind::Precharge => {
                assert!(b.open, "PRE to closed bank at {now}");
                let a = b.last_act.expect("PRE before any ACT");
                assert!(now >= a + t.t_ras, "tRAS violated at {now}");
                if let Some(r) = b.last_rd {
                    assert!(now >= r + t.t_rtp, "tRTP violated at {now}");
                }
                if let Some(w) = b.last_wr_data_end {
                    assert!(now >= w + t.t_wr, "tWR violated at {now}");
                }
                b.open = false;
                b.last_pre = Some(now);
            }
            IssuedKind::Read | IssuedKind::Write => {
                assert!(b.open, "column command to closed bank at {now}");
                let a = b.last_act.expect("column command before ACT");
                assert!(now >= a + t.t_rcd, "tRCD violated at {now}");
                if let Some(&last) = chan_last_col.get(&c.loc.channel) {
                    assert!(now >= last + t.t_ccd, "tCCD violated at {now}");
                }
                chan_last_col.insert(c.loc.channel, now);
                let (start, end) = match c.kind {
                    IssuedKind::Read => (now + t.t_cas, now + t.t_cas + t.t_bl),
                    _ => (now + t.t_cwd, now + t.t_cwd + t.t_bl),
                };
                let free = chan_bus_free.entry(c.loc.channel).or_insert(0);
                assert!(start >= *free, "data bus overlap at {now}: start {start} < free {free}");
                *free = end;
                match c.kind {
                    IssuedKind::Read => {
                        if let Some(&wend) = rank_wr_data_end.get(&rkey) {
                            assert!(now >= wend + t.t_wtr, "tWTR violated at {now}");
                        }
                        b.last_rd = Some(now);
                    }
                    _ => {
                        b.last_wr_data_end = Some(end);
                        rank_wr_data_end.insert(rkey, end);
                    }
                }
            }
        }
    }
}

fn small_config(wideio: bool) -> DramConfig {
    let mut cfg = if wideio {
        DramConfig::wideio_scaled(16 << 20)
    } else {
        DramConfig::ddr4_scaled(64 << 20)
    };
    // Refresh left on: the checker must hold across refresh boundaries
    // too (refresh closes rows; subsequent ACTs re-open them).
    cfg.refresh_enabled = true;
    cfg
}

fn run_mix(cfg: DramConfig, txns: &[(u64, bool, u8)]) -> (Vec<IssuedCmd>, TimingParams) {
    let timing = cfg.timing;
    let capacity = cfg.topology.capacity_bytes();
    let mut d = DramSystem::new(cfg);
    d.set_cmd_recording(true);
    let mut now: Cycle = 0;
    let mut queued = 0usize;
    let mut it = txns.iter();
    let mut next = it.next();
    while next.is_some() || d.pending() > 0 {
        // Inject a new transaction every few cycles.
        if now % 8 == 0 {
            if let Some(&(addr, is_write, bursts)) = next {
                let kind = if is_write { TxnKind::Write } else { TxnKind::Read };
                let b = (bursts % 4) as u32 + 1;
                d.enqueue(PhysAddr::new(addr % capacity), kind, queued as u64, b, now);
                queued += 1;
                next = it.next();
            }
        }
        d.tick(now);
        now += 1;
        assert!(now < 50_000_000, "scheduler deadlock");
    }
    (d.take_issued_cmds(), timing)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ddr4_command_stream_is_legal(
        txns in prop::collection::vec((any::<u64>(), any::<bool>(), any::<u8>()), 1..120)
    ) {
        let (cmds, t) = run_mix(small_config(false), &txns);
        check_stream(&cmds, &t);
    }

    #[test]
    fn wideio_command_stream_is_legal(
        txns in prop::collection::vec((any::<u64>(), any::<bool>(), any::<u8>()), 1..120)
    ) {
        let (cmds, t) = run_mix(small_config(true), &txns);
        check_stream(&cmds, &t);
    }

    #[test]
    fn hot_row_stress_is_legal(
        rows in prop::collection::vec(0u64..4, 1..200),
        writes in prop::collection::vec(any::<bool>(), 1..200)
    ) {
        // Hammer a handful of rows to maximise row-hit scheduling and
        // read/write interleaving on the same banks.
        let txns: Vec<(u64, bool, u8)> = rows
            .iter()
            .zip(writes.iter().cycle())
            .map(|(&r, &w)| (r * 1024 * 1024, w, 0))
            .collect();
        let (cmds, t) = run_mix(small_config(false), &txns);
        check_stream(&cmds, &t);
    }

    #[test]
    fn all_transactions_complete_exactly_once(
        txns in prop::collection::vec((any::<u64>(), any::<bool>()), 1..100)
    ) {
        let cfg = small_config(false);
        let capacity = cfg.topology.capacity_bytes();
        let mut d = DramSystem::new(cfg);
        let mut now = 0;
        for (i, &(addr, w)) in txns.iter().enumerate() {
            let kind = if w { TxnKind::Write } else { TxnKind::Read };
            d.enqueue(PhysAddr::new(addr % capacity), kind, i as u64, 1, now);
            d.tick(now);
            now += 1;
        }
        while d.pending() > 0 {
            d.tick(now);
            now += 1;
            prop_assert!(now < 50_000_000);
        }
        let done = d.drain_completions();
        prop_assert_eq!(done.len(), txns.len());
        let mut metas: Vec<u64> = done.iter().map(|c| c.meta).collect();
        metas.sort_unstable();
        let expect: Vec<u64> = (0..txns.len() as u64).collect();
        prop_assert_eq!(metas, expect);
        // Completion timestamps never precede enqueue order by more than
        // the pipeline allows (sanity: all strictly positive).
        prop_assert!(done.iter().all(|c| c.done_at > 0));
    }
}
