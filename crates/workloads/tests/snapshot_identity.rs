//! Snapshot identity for [`SharedTraces`] (DESIGN.md §3.13).
//!
//! Traces are immutable once generated, so their snapshot is the
//! cheap `Arc` clone itself — but the warm-forking machinery leans on
//! two properties this suite pins: restore really does hand back the
//! identical trace set, and `content_key` is a stable fingerprint that
//! moves when (and only when) the trace content moves.

use proptest::prelude::*;
use redcache_types::{Restorable, Snapshot};
use redcache_workloads::{GenConfig, SharedTraces, Workload};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn snapshot_restore_is_identity_and_content_keyed(
        seed in 0u64..1_000,
        wi in 0usize..Workload::ALL.len(),
    ) {
        let mut gen = GenConfig::tiny();
        gen.seed = seed;
        let w = Workload::ALL[wi];
        let traces: SharedTraces = w.generate(&gen).into();

        // Snapshot → restore hands back the same trace set.
        let state = traces.snapshot();
        let mut restored: SharedTraces = w.generate(&gen).into();
        restored.restore(&state);
        prop_assert_eq!(restored.content_key(), traces.content_key());
        prop_assert_eq!(restored.total_accesses(), traces.total_accesses());

        // The key is deterministic across regeneration...
        let again: SharedTraces = w.generate(&gen).into();
        prop_assert_eq!(again.content_key(), traces.content_key());

        // ...and sensitive to content changes (some generators are
        // seed-blind compute kernels, so perturb the workload itself).
        let other_w = Workload::ALL[(wi + 1) % Workload::ALL.len()];
        let other: SharedTraces = other_w.generate(&gen).into();
        prop_assert_ne!(other.content_key(), traces.content_key());
    }
}
