//! The **policy registry** — the single source of truth for every
//! controller the harness knows about (DESIGN.md §3.14).
//!
//! Each [`PolicyEntry`] carries everything the surrounding layers used
//! to hard-code in per-crate `match` statements: the CLI/API spellings
//! ([`PolicyKind::from_str`] delegates here), the figure-legend display
//! name ([`PolicyKind`]'s `Display` delegates here), whether the policy
//! is a column of the paper figures (`redcache-bench` enumerates
//! [`figure_kinds`]), and the constructor ([`crate::build_controller`]
//! dispatches through `build`). Adding a policy is now one entry in
//! [`REGISTRY`]: it becomes parseable in `redcache-sim` and the
//! `redcache-serve` job validator, printable, and benchable at once.

use crate::controller::{DramCacheController, PolicyConfig, PolicyKind};
use crate::redcache::{RedConfig, RedVariant};

/// Everything the harness knows about one policy.
pub struct PolicyEntry {
    /// The kind this entry describes.
    pub kind: PolicyKind,
    /// Canonical CLI spelling (lowercase).
    pub name: &'static str,
    /// Extra accepted spellings (lowercase; matching is
    /// case-insensitive over `name` and these).
    pub aliases: &'static [&'static str],
    /// Figure-legend display name (`PolicyKind: Display` prints this).
    pub display: &'static str,
    /// True when the policy is a column of the paper's figure matrix.
    pub figure_column: bool,
    /// One-line description for `--help`-style listings.
    pub summary: &'static str,
    /// Constructor. `cfg.kind` must equal `kind`.
    pub build: fn(&PolicyConfig) -> Box<dyn DramCacheController>,
}

fn build_nohbm(cfg: &PolicyConfig) -> Box<dyn DramCacheController> {
    Box::new(crate::NoHbmController::new(cfg))
}

fn build_ideal(cfg: &PolicyConfig) -> Box<dyn DramCacheController> {
    Box::new(crate::IdealController::new(cfg))
}

fn build_alloy(cfg: &PolicyConfig) -> Box<dyn DramCacheController> {
    Box::new(crate::AlloyController::new(cfg))
}

fn build_bear(cfg: &PolicyConfig) -> Box<dyn DramCacheController> {
    Box::new(crate::BearController::new(cfg))
}

fn build_fbr(cfg: &PolicyConfig) -> Box<dyn DramCacheController> {
    Box::new(crate::FbrController::new(cfg))
}

fn build_red(cfg: &PolicyConfig) -> Box<dyn DramCacheController> {
    let PolicyKind::Red(variant) = cfg.kind else {
        unreachable!("red builder dispatched for {:?}", cfg.kind);
    };
    let red = cfg
        .red_override
        .unwrap_or_else(|| RedConfig::for_variant(variant));
    Box::new(crate::RedCacheController::new(cfg, red))
}

/// Every known policy, in presentation order (figure columns appear in
/// the paper's legend order; FBR extends the legend at the end).
pub static REGISTRY: [PolicyEntry; 10] = [
    PolicyEntry {
        kind: PolicyKind::NoHbm,
        name: "nohbm",
        aliases: &["no-hbm"],
        display: "No-HBM",
        figure_column: false,
        summary: "no DRAM cache; all traffic to DDR4 (Fig. 1a)",
        build: build_nohbm,
    },
    PolicyEntry {
        kind: PolicyKind::Ideal,
        name: "ideal",
        aliases: &[],
        display: "IDEAL",
        figure_column: false,
        summary: "perfect HBM cache with 100 % hit rate (Fig. 1b)",
        build: build_ideal,
    },
    PolicyEntry {
        kind: PolicyKind::Alloy,
        name: "alloy",
        aliases: &[],
        display: "Alloy",
        figure_column: true,
        summary: "direct-mapped TAD cache with a MAP-I-style predictor",
        build: build_alloy,
    },
    PolicyEntry {
        kind: PolicyKind::Bear,
        name: "bear",
        aliases: &[],
        display: "Bear",
        figure_column: true,
        summary: "Alloy plus bandwidth-aware bypass and probe elision",
        build: build_bear,
    },
    PolicyEntry {
        kind: PolicyKind::Red(RedVariant::Alpha),
        name: "red-alpha",
        aliases: &[],
        display: "Red-Alpha",
        figure_column: true,
        summary: "reduced caching with α-counting only",
        build: build_red,
    },
    PolicyEntry {
        kind: PolicyKind::Red(RedVariant::Gamma),
        name: "red-gamma",
        aliases: &[],
        display: "Red-Gamma",
        figure_column: true,
        summary: "in-DRAM γ-counting applied to the Alloy cache",
        build: build_red,
    },
    PolicyEntry {
        kind: PolicyKind::Red(RedVariant::Basic),
        name: "red-basic",
        aliases: &[],
        display: "Red-Basic",
        figure_column: true,
        summary: "α + γ without the RCU update manager",
        build: build_red,
    },
    PolicyEntry {
        kind: PolicyKind::Red(RedVariant::InSitu),
        name: "red-insitu",
        aliases: &[],
        display: "Red-InSitu",
        figure_column: true,
        summary: "α + γ with in-DRAM (free) r-count processing",
        build: build_red,
    },
    PolicyEntry {
        kind: PolicyKind::Red(RedVariant::Full),
        name: "redcache",
        aliases: &["red-full", "red"],
        display: "RedCache",
        figure_column: true,
        summary: "the full architecture: α + γ + RCU + refresh bypass",
        build: build_red,
    },
    PolicyEntry {
        kind: PolicyKind::Fbr,
        name: "fbr",
        aliases: &["banshee"],
        display: "FBR",
        figure_column: true,
        summary: "Banshee-style frequency-based replacement with fill throttling",
        build: build_fbr,
    },
];

/// All registry entries, in presentation order.
pub fn entries() -> &'static [PolicyEntry] {
    &REGISTRY
}

/// The entry describing `kind`.
///
/// # Panics
///
/// Panics if `kind` is missing from the registry — a bug by
/// construction, since the registry covers every [`PolicyKind`].
pub fn entry(kind: PolicyKind) -> &'static PolicyEntry {
    REGISTRY
        .iter()
        .find(|e| e.kind == kind)
        .unwrap_or_else(|| panic!("policy {kind:?} missing from the registry"))
}

/// Looks up a CLI/API spelling (case-insensitive over canonical names
/// and aliases).
pub fn lookup(name: &str) -> Option<&'static PolicyEntry> {
    let lower = name.to_ascii_lowercase();
    REGISTRY
        .iter()
        .find(|e| e.name == lower || e.aliases.contains(&lower.as_str()))
}

/// Canonical spellings of every known policy, in presentation order
/// (the `FromStr` error message and CLI usage text print these).
pub fn known_names() -> Vec<&'static str> {
    REGISTRY.iter().map(|e| e.name).collect()
}

/// The figure-matrix columns, in legend order.
pub fn figure_kinds() -> Vec<PolicyKind> {
    REGISTRY
        .iter()
        .filter(|e| e.figure_column)
        .map(|e| e.kind)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_has_exactly_one_entry() {
        for e in entries() {
            assert_eq!(entry(e.kind).name, e.name, "{:?}", e.kind);
        }
        let mut names: Vec<&str> = entries()
            .iter()
            .flat_map(|e| std::iter::once(e.name).chain(e.aliases.iter().copied()))
            .collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate spelling in the registry");
    }

    #[test]
    fn lookup_is_case_insensitive_and_knows_aliases() {
        assert_eq!(lookup("No-HBM").unwrap().kind, PolicyKind::NoHbm);
        assert_eq!(lookup("BANSHEE").unwrap().kind, PolicyKind::Fbr);
        assert_eq!(
            lookup("red").unwrap().kind,
            PolicyKind::Red(RedVariant::Full)
        );
        assert!(lookup("alchemy").is_none());
    }

    #[test]
    fn builders_match_their_kind() {
        for e in entries() {
            let cfg = PolicyConfig::scaled(e.kind);
            let c = (e.build)(&cfg);
            assert_eq!(c.kind(), e.kind, "{}", e.name);
        }
    }

    #[test]
    fn figure_columns_extend_the_paper_legend() {
        let displays: Vec<&str> = figure_kinds().iter().map(|k| entry(*k).display).collect();
        assert_eq!(
            displays,
            [
                "Alloy",
                "Bear",
                "Red-Alpha",
                "Red-Gamma",
                "Red-Basic",
                "Red-InSitu",
                "RedCache",
                "FBR"
            ]
        );
    }
}
