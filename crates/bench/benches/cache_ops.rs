//! Criterion micro-benchmark: SRAM hierarchy lookup/fill throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redcache_cache::{CacheGeometry, Hierarchy, HierarchyConfig, SetAssocCache};
use redcache_types::{CoreId, LineAddr, MemOp};
use std::time::Duration;

fn bench_set_assoc(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_assoc");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    for (name, stride) in [("hit_stream", 0u64), ("miss_stream", 1)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &stride, |b, &stride| {
            let mut cache: SetAssocCache = SetAssocCache::new(CacheGeometry::l3_table1());
            for i in 0..1024u64 {
                cache.fill(LineAddr::new(i), i, false);
            }
            let mut i = 0u64;
            b.iter(|| {
                let line = if stride == 0 { i % 1024 } else { 1024 + i };
                let r = cache.access(LineAddr::new(line), None);
                if !r.hit {
                    cache.fill(LineAddr::new(line), i, false);
                }
                i += 1;
                r.hit
            })
        });
    }
    group.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    c.bench_function("hierarchy_access_mixed", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::scaled(4));
        let mut i = 0u64;
        b.iter(|| {
            let core = CoreId((i % 4) as u16);
            let line = LineAddr::new((i * 97) % 65536);
            let op = if i % 5 == 0 {
                MemOp::Store
            } else {
                MemOp::Load
            };
            let out = h.access(core, line, op, i, i);
            if out.mem_read_needed() {
                let _ = h.complete_fill(line, i);
                let _ = h.fill_waiter(core, line, i, None);
            }
            i += 1;
        })
    });
}

criterion_group!(benches, bench_set_assoc, bench_hierarchy);
criterion_main!(benches);
