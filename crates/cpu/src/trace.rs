//! Memory-access trace records emitted by workload generators.

use redcache_types::{MemOp, PhysAddr, BLOCK_BYTES};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One memory access in a per-thread trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// Load or store.
    pub op: MemOp,
    /// Byte address accessed.
    pub addr: PhysAddr,
    /// Number of non-memory instructions executed since the previous
    /// access (dispatch work between memory operations).
    pub gap: u32,
}

/// Summary statistics of a trace, used by workload tests and the Fig. 3
/// reuse profiler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total accesses.
    pub accesses: u64,
    /// Stores among them.
    pub stores: u64,
    /// Distinct 64 B lines touched.
    pub footprint_lines: u64,
    /// Total instructions (memory + gaps).
    pub instructions: u64,
}

impl TraceStats {
    /// Computes statistics over a trace.
    pub fn from_trace(trace: &[Access]) -> Self {
        let mut lines = HashSet::new();
        let mut stores = 0;
        let mut instructions = 0u64;
        for a in trace {
            lines.insert(a.addr.line(BLOCK_BYTES));
            if a.op.is_store() {
                stores += 1;
            }
            instructions += a.gap as u64 + 1;
        }
        Self {
            accesses: trace.len() as u64,
            stores,
            footprint_lines: lines.len() as u64,
            instructions,
        }
    }

    /// Footprint in bytes (64 B lines).
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_lines * BLOCK_BYTES as u64
    }

    /// Store fraction of all accesses.
    pub fn store_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.stores as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_count_footprint_and_stores() {
        let t = vec![
            Access {
                op: MemOp::Load,
                addr: PhysAddr::new(0),
                gap: 3,
            },
            Access {
                op: MemOp::Store,
                addr: PhysAddr::new(32),
                gap: 0,
            },
            Access {
                op: MemOp::Load,
                addr: PhysAddr::new(64),
                gap: 1,
            },
        ];
        let s = TraceStats::from_trace(&t);
        assert_eq!(s.accesses, 3);
        assert_eq!(s.stores, 1);
        assert_eq!(s.footprint_lines, 2); // 0 and 32 share a line
        assert_eq!(s.instructions, 3 + 4);
        assert_eq!(s.footprint_bytes(), 128);
        assert!((s.store_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_stats() {
        let s = TraceStats::from_trace(&[]);
        assert_eq!(s.accesses, 0);
        assert_eq!(s.store_fraction(), 0.0);
    }
}
