//! On-disk persistence for [`WarmSnapshot`]s, keyed like the RCTR trace
//! cache (DESIGN.md §3.13).
//!
//! A snapshot file is a [`redcache_types::wire`] envelope — magic
//! `RCSN`, format version, the [`Simulator::warm_key`] it was warmed
//! under, then the snapshot payload. Traces are **not** stored: the
//! payload carries only [`SharedTraces::content_key`], and the loader
//! re-supplies the traces and verifies the key, so a snapshot file is
//! small and can never resurrect a stale trace set. Every decode path
//! fails closed — a truncated, corrupt, or mismatched file is a cache
//! miss that triggers a fresh warmup and heals the entry, never a wrong
//! simulation.

use crate::sim::{Simulator, WarmSnapshot};
use redcache_types::wire::{decode_file, encode_file};
use redcache_workloads::SharedTraces;
use std::io;
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"RCSN";
const VERSION: u32 = 2;

/// The file name a warm snapshot caches under —
/// `{label}-{trace_key:016x}-{warm_key:016x}.rcsn`. Both keys are in
/// the name so distinct trace sets and distinct warm-relevant
/// configurations never collide, mirroring the trace cache's
/// `{label}-{cache_key:016x}.rctr` scheme.
pub fn snapshot_file_name(label: &str, trace_key: u64, warm_key: u64) -> String {
    format!(
        "{}-{trace_key:016x}-{warm_key:016x}.rcsn",
        label.to_lowercase()
    )
}

/// Writes `snap` to `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save(path: &Path, snap: &WarmSnapshot) -> io::Result<()> {
    let bytes = encode_file(MAGIC, VERSION, snap.key(), &snap.encode_payload());
    std::fs::write(path, bytes)
}

/// Reads a snapshot previously written by [`save`], verifying the
/// envelope (magic, version, `warm_key`) and the trace identity.
///
/// # Errors
///
/// Returns `InvalidData` on any mismatch or corruption, and propagates
/// filesystem errors.
pub fn load(path: &Path, warm_key: u64, traces: &SharedTraces) -> io::Result<Arc<WarmSnapshot>> {
    let bytes = std::fs::read(path)?;
    let payload = decode_file(&bytes, MAGIC, VERSION, warm_key).ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidData, "not a matching snapshot file")
    })?;
    WarmSnapshot::decode_payload(payload, warm_key, traces)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.0))
}

/// Warms `sim` on `traces` through an optional on-disk cache rooted at
/// `dir`, keyed by `(label, trace content, warm key)`. A valid cached
/// snapshot is loaded instead of re-warming; a miss (or any unreadable
/// or stale entry) warms from scratch and then best-effort persists the
/// result, so a broken cache directory never fails a run.
pub fn warm_cached_in(
    sim: &Simulator,
    label: &str,
    traces: &SharedTraces,
    dir: Option<&Path>,
) -> Arc<WarmSnapshot> {
    let Some(dir) = dir else {
        return sim.warm(traces.clone());
    };
    let warm_key = sim.warm_key();
    let path = dir.join(snapshot_file_name(label, traces.content_key(), warm_key));
    if let Ok(snap) = load(&path, warm_key, traces) {
        return snap;
    }
    let snap = sim.warm(traces.clone());
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = save(&path, &snap);
    }
    snap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use redcache_policies::PolicyKind;
    use redcache_workloads::{GenConfig, Workload};

    fn traces() -> SharedTraces {
        Workload::Hist.generate(&GenConfig::tiny()).into()
    }

    #[test]
    fn file_round_trip_and_fail_closed() {
        let cfg = SimConfig::quick(PolicyKind::Alloy);
        let sim = Simulator::new(cfg);
        let traces = traces();
        let snap = sim.warm(traces.clone());
        let dir = std::env::temp_dir().join(format!("redcache_snap_io_{:x}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(snapshot_file_name("hist", snap.trace_key(), snap.key()));

        save(&path, &snap).unwrap();
        let back = load(&path, snap.key(), &traces).unwrap();
        assert_eq!(back.encode_payload(), snap.encode_payload());
        let forked = Simulator::new(cfg).resume(&back);
        let scratch = Simulator::new(cfg).run(traces.clone());
        assert_eq!(forked, scratch);

        // Wrong warm key: the envelope check rejects the file.
        assert!(load(&path, snap.key() ^ 1, &traces).is_err());
        // Wrong traces: the payload check rejects the file.
        let other: SharedTraces = Workload::Is.generate(&GenConfig::tiny()).into();
        assert!(load(&path, snap.key(), &other).is_err());
        // Truncation and garbage fail closed.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load(&path, snap.key(), &traces).is_err());
        std::fs::write(&path, b"this is not a snapshot").unwrap();
        assert!(load(&path, snap.key(), &traces).is_err());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cacheless_warm_still_works() {
        let cfg = SimConfig::quick(PolicyKind::NoHbm);
        let traces = traces();
        let snap = warm_cached_in(&Simulator::new(cfg), "hist", &traces, None);
        assert_eq!(
            Simulator::new(cfg).resume(&snap),
            Simulator::new(cfg).run(traces)
        );
    }
}
