//! Wall-clock speed benchmark for the event-driven time advance and the
//! indexed FR-FCFS scheduler kernel.
//!
//! Runs the quick-config evaluation matrix (all 14 suite workloads —
//! the 11 Table II applications plus the server-class scenarios —
//! under the registry's figure architectures) twice — once with event-driven time advance
//! (the default) and once cycle-by-cycle (`time_skip = false`, the
//! behaviour of `REDCACHE_NO_SKIP=1`) — and reports wall-clock,
//! simulations/second and simulated cycles/second per policy, plus the
//! overall speedup. As a side effect it asserts that both walks produce
//! bit-identical reports, so every benchmark run is also an
//! equivalence check.
//!
//! Each workload's traces are generated **once** and shared (via
//! [`SharedTraces`]) across every policy, mode, and repeat — generation
//! time is reported separately and never pollutes the simulation
//! timings.
//!
//! Scheduler-kernel metrics ride along: command-clock slots processed,
//! and the mean scheduler-window occupancy per slot (both summed over
//! the HBM and DDR systems), so kernel-level regressions show up next
//! to the end-to-end numbers.
//!
//! A second section measures **per-channel parallel stepping** inside a
//! single simulation (DESIGN.md §3.11): the same quick-config runs with
//! `channel_par` off vs on (the switch `REDCACHE_CHANNEL_PAR=1` maps
//! onto), again asserting bit-identical reports, and records the
//! single-simulation speedup and the lane count it was measured under.
//!
//! Results are written to `BENCH_speed.json` at the repository root
//! through the harness's versioned `report_io` envelope.
//!
//! `REDCACHE_BUDGET` overrides the per-thread access budget (default:
//! the tiny preset's 3 000) for longer, steadier measurements.

use redcache::{warm_count, PolicyKind, RedVariant, RunReport, SimConfig, Simulator};
use redcache_bench::{figure_policies, report_io, run_matrix_timed_opts, RunSpec};
use redcache_workloads::{GenConfig, SharedTraces, Workload};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The figure architecture columns, from the policy registry (the
/// paper's legend order plus FBR).
fn policies() -> Vec<PolicyKind> {
    figure_policies()
}

/// Sims/s may drop to this fraction of the prior `BENCH_speed.json`
/// before the regression gate trips. Generous because CI machines are
/// noisy; a real kernel regression blows far past it.
const REGRESSION_FLOOR: f64 = 0.65;

/// The slice of a prior `BENCH_speed.json` the regression gate needs.
#[derive(Deserialize)]
struct PriorSummary {
    budget_per_thread: usize,
    total: PriorTotals,
}

#[derive(Deserialize)]
struct PriorTotals {
    sims_per_s_event_driven: f64,
}

/// Compares throughput against the committed baseline (same budget
/// only — different budgets measure different work). Panics on a
/// regression beyond [`REGRESSION_FLOOR`] unless
/// `REDCACHE_BENCH_NO_GATE=1`; runs *before* the new file is written so
/// a failing run leaves the good baseline in place.
fn gate_against_prior(path: &std::path::Path, budget: usize, sims_per_s: f64) {
    if std::env::var_os("REDCACHE_BENCH_NO_GATE").is_some() {
        return;
    }
    let Some(prior) = report_io::read_json::<PriorSummary>(path) else {
        return;
    };
    if prior.budget_per_thread != budget {
        eprintln!(
            "regression gate: skipped (prior budget {} != current {})",
            prior.budget_per_thread, budget
        );
        return;
    }
    let floor = prior.total.sims_per_s_event_driven * REGRESSION_FLOOR;
    assert!(
        sims_per_s >= floor,
        "event-driven throughput regressed: {sims_per_s:.2} sims/s vs prior \
         {:.2} (floor {floor:.2}); set REDCACHE_BENCH_NO_GATE=1 to override",
        prior.total.sims_per_s_event_driven
    );
    eprintln!(
        "regression gate: ok ({sims_per_s:.2} sims/s vs prior {:.2})",
        prior.total.sims_per_s_event_driven
    );
}

#[derive(Serialize)]
struct PolicyRow {
    policy: String,
    sims: usize,
    /// Simulated cycles summed over the policy's runs (identical in
    /// both modes — asserted).
    cycles: u64,
    /// Command-clock slots the DRAM schedulers processed (HBM + DDR).
    slots: u64,
    /// Scheduler-window occupancy summed over those slots.
    occupancy_sum: u64,
    event_s: f64,
    cycle_s: f64,
}

/// Slots processed and window-occupancy sum across both DRAM systems.
fn kernel_counters(r: &RunReport) -> (u64, u64) {
    let hbm = r.hbm.as_ref();
    (
        r.ddr.slot_samples + hbm.map_or(0, |h| h.slot_samples),
        r.ddr.window_occupancy_sum + hbm.map_or(0, |h| h.window_occupancy_sum),
    )
}

/// Runs one (policy, workload) pair in one mode and returns the report
/// plus the *minimum* wall-clock over `REPEATS` runs. Min-of-N is the
/// standard defence against scheduler noise; both modes get the same
/// treatment, so the ratio is unbiased. The traces are shared — each
/// repeat costs `threads` atomic increments, not a regeneration.
fn run_timed(kind: PolicyKind, w: Workload, traces: &SharedTraces, skip: bool) -> (RunReport, f64) {
    run_timed_cfg(
        kind,
        w,
        traces,
        SimConfig::quick(kind)
            .to_builder()
            .time_skip(skip)
            .build()
            .expect("preset-derived config validates"),
    )
}

fn run_timed_cfg(
    kind: PolicyKind,
    w: Workload,
    traces: &SharedTraces,
    cfg: SimConfig,
) -> (RunReport, f64) {
    const REPEATS: usize = 2;
    let mut best: Option<(RunReport, f64)> = None;
    for _ in 0..REPEATS {
        // `SimConfig` is `Copy`; every repeat builds a fresh simulator.
        let traces = traces.clone();
        let started = Instant::now();
        let report = Simulator::new(cfg).run(traces);
        let t = started.elapsed().as_secs_f64();
        match &best {
            Some((prev, pt)) => {
                assert_eq!(prev, &report, "{kind} on {w}: repeat run diverged");
                if t < *pt {
                    best = Some((report, t));
                }
            }
            None => best = Some((report, t)),
        }
    }
    best.expect("REPEATS >= 1")
}

fn main() {
    let mut gen = GenConfig::tiny();
    if let Ok(v) = std::env::var("REDCACHE_BUDGET") {
        if let Ok(b) = v.parse() {
            gen.budget_per_thread = b;
        }
    }
    if std::env::var_os("REDCACHE_NO_SKIP").is_some() {
        eprintln!(
            "warning: REDCACHE_NO_SKIP is set; unset it — bench_speed controls both modes itself"
        );
    }

    let workloads = Workload::ALL;
    let gen_started = Instant::now();
    let traces: Vec<SharedTraces> = workloads
        .iter()
        .map(|w| SharedTraces::from(w.generate(&gen)))
        .collect();
    let gen_s = gen_started.elapsed().as_secs_f64();
    eprintln!(
        "generated {} workload trace sets once in {gen_s:.3}s (shared across {} policies x 2 modes)",
        workloads.len(),
        policies().len()
    );

    let mut rows: Vec<PolicyRow> = Vec::new();
    let mut total_event = 0.0f64;
    let mut total_cycle = 0.0f64;
    for &kind in &policies() {
        let mut row = PolicyRow {
            policy: kind.to_string(),
            sims: 0,
            cycles: 0,
            slots: 0,
            occupancy_sum: 0,
            event_s: 0.0,
            cycle_s: 0.0,
        };
        for (&w, tr) in workloads.iter().zip(&traces) {
            let (fast, t_fast) = run_timed(kind, w, tr, true);
            let (slow, t_slow) = run_timed(kind, w, tr, false);
            assert_eq!(
                fast, slow,
                "{kind} on {w}: event-driven report diverged from cycle-accurate walk"
            );
            let (slots, occ) = kernel_counters(&fast);
            row.sims += 1;
            row.cycles += fast.cycles;
            row.slots += slots;
            row.occupancy_sum += occ;
            row.event_s += t_fast;
            row.cycle_s += t_slow;
        }
        eprintln!(
            "{:<12} {:>8.3}s event-driven  {:>8.3}s cycle-accurate  ({:.2}x)  occ {:.2}",
            row.policy,
            row.event_s,
            row.cycle_s,
            row.cycle_s / row.event_s.max(1e-12),
            row.occupancy_sum as f64 / row.slots.max(1) as f64,
        );
        total_event += row.event_s;
        total_cycle += row.cycle_s;
        rows.push(row);
    }

    let sims: usize = rows.iter().map(|r| r.sims).sum();
    let total_slots: u64 = rows.iter().map(|r| r.slots).sum();
    let total_occ: u64 = rows.iter().map(|r| r.occupancy_sum).sum();
    let speedup = total_cycle / total_event.max(1e-12);
    eprintln!(
        "\ntotal: {sims} sims  {total_event:.3}s event-driven vs {total_cycle:.3}s cycle-accurate  => {speedup:.2}x"
    );

    // Single-simulation channel parallelism (DESIGN.md §3.11): the full
    // RedCache architecture across every workload, stepped serially vs
    // on the per-channel pool. Equality is asserted per pair, so this
    // section doubles as the bench-side equivalence check.
    let cp_kind = PolicyKind::Red(RedVariant::Full);
    let cp_cfg = |par: bool| {
        SimConfig::quick(cp_kind)
            .to_builder()
            .channel_par(par)
            .build()
            .expect("preset-derived config validates")
    };
    let probe = cp_cfg(true);
    let lanes_hbm = redcache_dram::planned_lanes(true, probe.policy.hbm.topology.channels);
    let lanes_ddr = redcache_dram::planned_lanes(true, probe.policy.ddr.topology.channels);
    // On a one-core host the lane planner already refuses to fan out
    // (`planned_lanes` requires two available cores), so a serial-vs-
    // parallel comparison would measure nothing: mark the section
    // skipped instead of recording noise.
    let have_two_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        >= 2;
    let mut cp = ChannelParBench {
        policy: cp_kind.to_string(),
        sims: 0,
        hbm_channels: probe.policy.hbm.topology.channels,
        ddr_channels: probe.policy.ddr.topology.channels,
        lanes_hbm,
        lanes_ddr,
        serial_s: 0.0,
        parallel_s: 0.0,
        speedup: 0.0,
        skipped: !have_two_cores,
    };
    if cp.skipped {
        eprintln!("channel-par: skipped (available_parallelism < 2)");
    } else {
        for (&w, tr) in workloads.iter().zip(&traces) {
            let (ser, t_ser) = run_timed_cfg(cp_kind, w, tr, cp_cfg(false));
            let (par, t_par) = run_timed_cfg(cp_kind, w, tr, cp_cfg(true));
            assert_eq!(
                ser, par,
                "{cp_kind} on {w}: parallel channel stepping diverged from the serial walk"
            );
            cp.sims += 1;
            cp.serial_s += t_ser;
            cp.parallel_s += t_par;
        }
        cp.speedup = cp.serial_s / cp.parallel_s.max(1e-12);
        eprintln!(
            "channel-par ({}, {} lanes on {}ch HBM): {:.3}s serial vs {:.3}s parallel => {:.2}x",
            cp.policy, cp.lanes_hbm, cp.hbm_channels, cp.serial_s, cp.parallel_s, cp.speedup
        );
    }

    // Warm forking (DESIGN.md §3.13): the full quick matrix with every
    // spec warming from scratch vs one shared snapshot per workload
    // forked into every figure policy. Reports are asserted bit-identical
    // pairwise, so this section is also the bench-side fork-vs-scratch
    // equivalence check.
    let mut specs = Vec::new();
    for &w in &workloads {
        for &kind in &policies() {
            specs.push(RunSpec {
                workload: w,
                policy: kind,
                cfg: SimConfig::quick(kind),
            });
        }
    }
    let started = Instant::now();
    let scratch = run_matrix_timed_opts(&specs, &gen, false);
    let scratch_s = started.elapsed().as_secs_f64();
    let warms_before = warm_count();
    let started = Instant::now();
    let forked = run_matrix_timed_opts(&specs, &gen, true);
    let forked_s = started.elapsed().as_secs_f64();
    let warms = warm_count() - warms_before;
    assert_eq!(
        warms,
        workloads.len() as u64,
        "forked matrix must warm exactly once per workload"
    );
    for ((spec, s), f) in specs.iter().zip(&scratch).zip(&forked) {
        assert_eq!(
            s.report,
            f.report,
            "{} on {}: forked report diverged from scratch",
            spec.policy,
            spec.workload.info().label
        );
    }
    let wf = WarmForkBench {
        sims: specs.len(),
        warms,
        scratch_s,
        forked_s,
        speedup: scratch_s / forked_s.max(1e-12),
    };
    eprintln!(
        "warm-fork: {} sims, {} warmups  {:.3}s scratch vs {:.3}s forked => {:.2}x",
        wf.sims, wf.warms, wf.scratch_s, wf.forked_s, wf.speedup
    );

    gate_against_prior(
        std::path::Path::new("BENCH_speed.json"),
        gen.budget_per_thread,
        sims as f64 / total_event.max(1e-12),
    );

    let summary = Summary {
        schema: "bench_speed",
        schema_version: report_io::SCHEMA_VERSION,
        config: "quick",
        budget_per_thread: gen.budget_per_thread,
        workloads: workloads.len(),
        policies: rows.len(),
        trace_generation_s: gen_s,
        total: Totals {
            sims,
            event_driven_s: total_event,
            cycle_accurate_s: total_cycle,
            speedup,
            scheduler_slots: total_slots,
            mean_window_occupancy: total_occ as f64 / total_slots.max(1) as f64,
            sims_per_s_event_driven: sims as f64 / total_event.max(1e-12),
            sims_per_s_cycle_accurate: sims as f64 / total_cycle.max(1e-12),
        },
        channel_par: cp,
        warm_fork: wf,
        per_policy: rows,
    };
    // Raw write: downstream tooling addresses this file's top-level
    // layout directly, so the schema fields live inline instead of in
    // the envelope.
    report_io::write_json_raw(
        std::path::Path::new("BENCH_speed.json"),
        "bench_speed",
        &summary,
    );
}

#[derive(Serialize)]
struct Totals {
    sims: usize,
    event_driven_s: f64,
    cycle_accurate_s: f64,
    speedup: f64,
    scheduler_slots: u64,
    mean_window_occupancy: f64,
    sims_per_s_event_driven: f64,
    sims_per_s_cycle_accurate: f64,
}

/// Single-simulation channel-parallel measurement (DESIGN.md §3.11):
/// one policy across the workload set, stepped serially vs on the
/// per-channel pool. Honest numbers: on a one-core host the pool adds
/// coordination cost it cannot buy back, and `speedup` comes out below
/// 1 — the field records whatever the machine actually measured.
#[derive(Serialize)]
struct ChannelParBench {
    policy: String,
    sims: usize,
    hbm_channels: usize,
    ddr_channels: usize,
    /// Lanes `DramSystem::tick` fans the HBM/DDR channels across under
    /// `channel_par` on this host ([`redcache_dram::planned_lanes`]).
    lanes_hbm: usize,
    lanes_ddr: usize,
    serial_s: f64,
    parallel_s: f64,
    speedup: f64,
    /// `true` when the host could not exercise the pool (fewer than two
    /// available cores): the timing fields are zero and meaningless.
    skipped: bool,
}

/// Warm-fork measurement (DESIGN.md §3.13): the full quick matrix with
/// per-spec scratch warmups vs one shared warm snapshot per workload
/// forked into every policy, reports asserted bit-identical pairwise.
#[derive(Serialize)]
struct WarmForkBench {
    sims: usize,
    /// Warmup phases the forked matrix executed — exactly one per
    /// distinct workload (asserted against the process-wide counter).
    warms: u64,
    scratch_s: f64,
    forked_s: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Summary {
    schema: &'static str,
    schema_version: u32,
    config: &'static str,
    budget_per_thread: usize,
    workloads: usize,
    policies: usize,
    trace_generation_s: f64,
    total: Totals,
    channel_par: ChannelParBench,
    warm_fork: WarmForkBench,
    per_policy: Vec<PolicyRow>,
}
