//! The job-facing API types: what a client submits, how the daemon
//! resolves it into runnable configuration, and what status it reports
//! back.

use redcache::{PolicyKind, RedConfig, SimConfig};
use redcache_bench::report_io;
use redcache_workloads::{synthetic::SyntheticSpec, trace_io, GenConfig, Workload};
use serde::{Deserialize, Serialize};

/// Hard cap on the [`JobRequest::hold_ms`] debug delay.
pub const MAX_HOLD_MS: u64 = 10_000;

/// Hard cap on the number of cells one [`SweepRequest`] may expand to.
/// The grid flows through the bounded job queue cell by cell, so this
/// only bounds per-request fan-out, not daemon load (admission control
/// does that).
pub const MAX_SWEEP_CELLS: usize = 256;

/// A job submission. Everything except `workload` is optional: the
/// defaults are the scaled evaluation preset under the full RedCache
/// architecture, exactly what the figure binaries run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct JobRequest {
    /// Workload label (`"HIST"`, `"rdx"`, …, case-insensitive) or
    /// `"synthetic"` for the parametric three-class stream.
    pub workload: String,
    /// Architecture spelling (`"redcache"`, `"alloy"`, `"red-gamma"`,
    /// …); defaults to `"redcache"`.
    #[serde(default)]
    pub policy: Option<String>,
    /// [`SimConfig`] preset name (`"quick"`, `"scaled"`, `"table1"`);
    /// defaults to `"scaled"`.
    #[serde(default)]
    pub preset: Option<String>,
    /// Override [`GenConfig::threads`] (clamped to the preset's cores).
    #[serde(default)]
    pub threads: Option<usize>,
    /// Override [`GenConfig::shrink`].
    #[serde(default)]
    pub shrink: Option<usize>,
    /// Override [`GenConfig::budget_per_thread`].
    #[serde(default)]
    pub budget: Option<usize>,
    /// Override [`GenConfig::seed`].
    #[serde(default)]
    pub seed: Option<u64>,
    /// Override [`SimConfig::warmup_fraction`].
    #[serde(default)]
    pub warmup: Option<f64>,
    /// Override [`SimConfig::max_cycles`].
    #[serde(default)]
    pub max_cycles: Option<u64>,
    /// Set [`SimConfig::epoch_cycles`] — enables the per-epoch
    /// [`redcache::TimeSeries`] and the `/jobs/{id}/timeseries` stream.
    #[serde(default)]
    pub epoch_cycles: Option<u64>,
    /// Override [`SimConfig::time_skip`].
    #[serde(default)]
    pub time_skip: Option<bool>,
    /// Override [`SimConfig::audit_timing`].
    #[serde(default)]
    pub audit_timing: Option<bool>,
    /// Pin the RedCache α threshold's starting point (the knob the
    /// paper's Figure 10 sweeps). Only meaningful for `red-*` policies;
    /// rejected otherwise. Flows into `cfg.policy.red_override`, so it
    /// re-keys the result cache like any other configuration change.
    #[serde(default)]
    pub alpha: Option<u32>,
    /// Pin the RedCache γ threshold's starting point. Same rules as
    /// [`JobRequest::alpha`].
    #[serde(default)]
    pub gamma: Option<u32>,
    /// Parameters for `workload = "synthetic"` (defaults to
    /// [`SyntheticSpec::mixed`]). Rejected for suite workloads.
    #[serde(default)]
    pub synthetic: Option<SyntheticSpec>,
    /// Debug/test aid: hold the worker this many milliseconds (capped
    /// at [`MAX_HOLD_MS`]) before simulating, to exercise queueing and
    /// drain behaviour deterministically. Part of the cache key, so
    /// held jobs never shadow real results.
    #[serde(default)]
    pub hold_ms: Option<u64>,
}

/// Where a job's traces come from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceSource {
    /// A Table II workload, generated through the shared
    /// `trace_io::generate_cached` disk cache.
    Suite(Workload),
    /// The parametric synthetic stream.
    Synthetic(SyntheticSpec),
}

/// A fully validated, runnable job: the output of [`resolve`].
#[derive(Debug, Clone)]
pub struct ResolvedJob {
    /// Figure-style label (`"HIST"`, `"SYN"`, …).
    pub label: String,
    /// Trace provenance.
    pub source: TraceSource,
    /// Validated generator configuration.
    pub gen: GenConfig,
    /// Validated simulator configuration (carries the policy).
    pub cfg: SimConfig,
    /// Debug pre-run delay in milliseconds (already capped).
    pub hold_ms: u64,
    /// Content-addressed result-cache key: FNV-1a over the canonical
    /// JSON of `(label, synthetic, gen, cfg, hold_ms)`.
    pub key: u64,
    /// In-memory trace-store key; suite workloads reuse the
    /// `trace_io` disk-cache identity so both caches agree on "same
    /// trace".
    pub trace_key: u64,
}

/// Turns a wire-level [`JobRequest`] into a runnable [`ResolvedJob`],
/// funnelling every override through the validated `SimConfig`
/// builder.
///
/// # Errors
///
/// Returns a human-readable message for unknown workloads/policies/
/// presets and for any configuration the builders reject.
pub fn resolve(req: &JobRequest) -> Result<ResolvedJob, String> {
    let policy: PolicyKind = req.policy.as_deref().unwrap_or("redcache").parse()?;
    let preset = req.preset.as_deref().unwrap_or("scaled");
    let base =
        SimConfig::preset(preset, policy).ok_or_else(|| format!("unknown preset {preset:?}"))?;

    let mut b = base.to_builder();
    if let Some(w) = req.warmup {
        b = b.warmup_fraction(w);
    }
    if let Some(m) = req.max_cycles {
        b = b.max_cycles(m);
    }
    if let Some(e) = req.epoch_cycles {
        b = b.epoch_cycles(Some(e));
    }
    if let Some(t) = req.time_skip {
        b = b.time_skip(t);
    }
    if let Some(a) = req.audit_timing {
        b = b.audit_timing(a);
    }
    let mut cfg = b.build().map_err(|e| e.to_string())?;
    if req.alpha.is_some() || req.gamma.is_some() {
        let PolicyKind::Red(variant) = policy else {
            return Err(format!(
                "alpha/gamma overrides only apply to red policies, not {policy}"
            ));
        };
        // Start from the variant's canonical knob set (or an override a
        // preset already installed) and move the initial threshold,
        // widening the adaptive band when the pin falls outside it.
        let mut red = cfg
            .policy
            .red_override
            .unwrap_or_else(|| RedConfig::for_variant(variant));
        if let Some(a) = req.alpha {
            if a == 0 {
                return Err("alpha must be positive".into());
            }
            red.alpha.initial = a;
            red.alpha.min = red.alpha.min.min(a);
            red.alpha.max = red.alpha.max.max(a);
        }
        if let Some(g) = req.gamma {
            if g == 0 {
                return Err("gamma must be positive".into());
            }
            red.gamma.initial = g;
            red.gamma.min = red.gamma.min.min(g);
            red.gamma.max = red.gamma.max.max(g);
        }
        cfg.policy.red_override = Some(red);
    }

    let mut gen = GenConfig::scaled();
    if let Some(t) = req.threads {
        gen.threads = t;
    }
    if let Some(s) = req.shrink {
        gen.shrink = s;
    }
    if let Some(bu) = req.budget {
        gen.budget_per_thread = bu;
    }
    if let Some(sd) = req.seed {
        gen.seed = sd;
    }
    if gen.threads == 0 || gen.shrink == 0 || gen.budget_per_thread == 0 {
        return Err("threads, shrink and budget must be positive".into());
    }
    if gen.threads > cfg.hierarchy.cores {
        gen.threads = cfg.hierarchy.cores;
    }

    let (label, source, synthetic) = if req.workload.eq_ignore_ascii_case("synthetic")
        || req.workload.eq_ignore_ascii_case("syn")
    {
        let spec = req.synthetic.unwrap_or_else(SyntheticSpec::mixed);
        ("SYN".to_string(), TraceSource::Synthetic(spec), Some(spec))
    } else {
        if req.synthetic.is_some() {
            return Err("a synthetic spec only applies to workload \"synthetic\"".into());
        }
        let w: Workload = req.workload.parse()?;
        (w.info().label.to_string(), TraceSource::Suite(w), None)
    };

    let hold_ms = req.hold_ms.unwrap_or(0).min(MAX_HOLD_MS);
    let key = report_io::json_key(&(&label, &synthetic, &gen, &cfg, hold_ms));
    let trace_key = match source {
        TraceSource::Suite(w) => report_io::fnv1a(trace_io::cache_file_name(w, &gen).as_bytes()),
        TraceSource::Synthetic(spec) => report_io::json_key(&("SYN", &spec, &gen)),
    };

    Ok(ResolvedJob {
        label,
        source,
        gen,
        cfg,
        hold_ms,
        key,
        trace_key,
    })
}

/// A job's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum JobStatus {
    /// Accepted and waiting for a worker (or for an identical
    /// in-flight run it coalesced onto).
    Queued,
    /// A worker is simulating it.
    Running,
    /// Finished; the report is available.
    Completed,
    /// The simulation panicked or was otherwise lost.
    Failed,
    /// Cancelled while still queued.
    Canceled,
}

impl JobStatus {
    /// True once the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Completed | JobStatus::Failed | JobStatus::Canceled
        )
    }
}

/// The status body returned for every job endpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobView {
    /// Daemon-local job id (monotonic).
    pub id: u64,
    /// Result-cache key as 16 hex digits.
    pub key: String,
    /// Lifecycle state.
    pub status: JobStatus,
    /// Workload label.
    pub workload: String,
    /// Architecture name.
    pub policy: String,
    /// True when the result came straight from the completed-result
    /// cache (no queueing at all).
    pub cached: bool,
    /// True when the submission attached to an identical job already
    /// in flight instead of enqueuing its own run.
    pub coalesced: bool,
    /// Whether the completed report carries an epoch time series.
    pub has_timeseries: bool,
    /// Simulation wall-clock seconds (completed jobs; 0 for cache hits).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub wall_s: Option<f64>,
    /// Trace generation/loading seconds attributed to this job.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub gen_s: Option<f64>,
    /// Failure message, for [`JobStatus::Failed`].
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
}

/// A parameter-sweep submission: one request fanned into a grid of
/// ordinary jobs, one per `(policy, α, γ)` cell.
///
/// Every cell is `base` with the axis values substituted in, so the
/// whole grid shares traces and warm snapshots through the existing
/// single-flight stores. An empty axis means "whatever `base` says" —
/// a single value, so `{}` axes degenerate to a one-cell sweep.
///
/// Baseline policies (`alloy`, `bear`, …) have no α/γ knobs; their
/// cells drop those axes, so a mixed-policy grid produces *identical*
/// baseline cells on purpose — they coalesce onto one run through the
/// single-flight cache, which is exactly what the
/// `sweep_cache_hits_total` metric counts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SweepRequest {
    /// The template every cell shares (workload, preset, generator
    /// overrides, …).
    pub base: JobRequest,
    /// α axis; empty means the base request's α.
    #[serde(default)]
    pub alphas: Vec<u32>,
    /// γ axis; empty means the base request's γ.
    #[serde(default)]
    pub gammas: Vec<u32>,
    /// Policy axis; empty means the base request's policy.
    #[serde(default)]
    pub policies: Vec<String>,
}

impl SweepRequest {
    /// Expands the grid into per-cell [`JobRequest`]s, policy-major
    /// then α then γ.
    ///
    /// # Errors
    ///
    /// When the cross product exceeds [`MAX_SWEEP_CELLS`]. Per-cell
    /// validity (unknown policies, zero thresholds, …) is left to
    /// [`resolve`], which reports the offending cell precisely.
    pub fn expand(&self) -> Result<Vec<JobRequest>, String> {
        let policies: Vec<Option<String>> = if self.policies.is_empty() {
            vec![self.base.policy.clone()]
        } else {
            self.policies.iter().cloned().map(Some).collect()
        };
        let alphas: Vec<Option<u32>> = if self.alphas.is_empty() {
            vec![self.base.alpha]
        } else {
            self.alphas.iter().copied().map(Some).collect()
        };
        let gammas: Vec<Option<u32>> = if self.gammas.is_empty() {
            vec![self.base.gamma]
        } else {
            self.gammas.iter().copied().map(Some).collect()
        };
        let cells = policies.len() * alphas.len() * gammas.len();
        if cells > MAX_SWEEP_CELLS {
            return Err(format!(
                "sweep expands to {cells} cells, over the {MAX_SWEEP_CELLS}-cell cap"
            ));
        }
        let mut out = Vec::with_capacity(cells);
        for policy in &policies {
            let takes_knobs = matches!(
                policy.as_deref().unwrap_or("redcache").parse::<PolicyKind>(),
                Ok(PolicyKind::Red(_))
            );
            for &alpha in &alphas {
                for &gamma in &gammas {
                    let mut cell = self.base.clone();
                    cell.policy = policy.clone();
                    cell.alpha = if takes_knobs { alpha } else { None };
                    cell.gamma = if takes_knobs { gamma } else { None };
                    out.push(cell);
                }
            }
        }
        Ok(out)
    }
}

/// The roll-up body returned for a sweep: per-cell job views in grid
/// order plus aggregate progress.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepView {
    /// Daemon-local sweep id (same id space as jobs, so `GET
    /// /jobs/{id}` can fall through to the roll-up).
    pub id: u64,
    /// Cells in the grid.
    pub total: usize,
    /// Cells completed.
    pub completed: usize,
    /// Cells failed.
    pub failed: usize,
    /// Cells cancelled.
    pub canceled: usize,
    /// Cells whose terminal job was pruned by retention before this
    /// roll-up was taken (their per-cell view is gone; they still
    /// count as settled).
    pub pruned: usize,
    /// Cells answered without a fresh simulation (result-cache hits
    /// plus coalesced duplicates) — the sweep's dedupe payoff.
    pub deduped: usize,
    /// True once every cell has settled.
    pub done: bool,
    /// Per-cell views, grid order, pruned cells omitted.
    pub jobs: Vec<JobView>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(workload: &str) -> JobRequest {
        JobRequest {
            workload: workload.into(),
            ..JobRequest::default()
        }
    }

    #[test]
    fn defaults_resolve_to_scaled_redcache() {
        let r = resolve(&req("hist")).unwrap();
        assert_eq!(r.label, "HIST");
        assert_eq!(
            r.cfg,
            SimConfig::scaled(PolicyKind::Red(redcache::RedVariant::Full))
        );
        assert_eq!(r.gen, GenConfig::scaled());
        assert_eq!(r.hold_ms, 0);
    }

    #[test]
    fn identical_requests_key_identically_and_overrides_rekey() {
        let a = resolve(&req("rdx")).unwrap();
        let b = resolve(&req("RDX")).unwrap();
        assert_eq!(a.key, b.key);
        assert_eq!(a.trace_key, b.trace_key);

        let mut other = req("rdx");
        other.budget = Some(123);
        let c = resolve(&other).unwrap();
        assert_ne!(a.key, c.key);
        assert_ne!(a.trace_key, c.trace_key);

        // Same traces, different architecture: trace key shared,
        // result key distinct.
        let mut alloy = req("rdx");
        alloy.policy = Some("alloy".into());
        let d = resolve(&alloy).unwrap();
        assert_ne!(a.key, d.key);
        assert_eq!(a.trace_key, d.trace_key);
    }

    #[test]
    fn every_registry_policy_resolves() {
        // The daemon's job validator rides on the policy registry: each
        // canonical spelling (and the FBR alias) must resolve without
        // touching this crate when a policy is added.
        for e in redcache::policy_registry::entries() {
            let mut r = req("hist");
            r.policy = Some(e.name.into());
            let resolved = resolve(&r).unwrap_or_else(|m| panic!("{}: {m}", e.name));
            assert_eq!(resolved.cfg.policy.kind, e.kind, "{}", e.name);
        }
        let mut banshee = req("hist");
        banshee.policy = Some("banshee".into());
        assert_eq!(resolve(&banshee).unwrap().cfg.policy.kind, PolicyKind::Fbr);
    }

    #[test]
    fn synthetic_resolves_with_default_spec() {
        let r = resolve(&req("synthetic")).unwrap();
        assert_eq!(r.label, "SYN");
        assert!(matches!(r.source, TraceSource::Synthetic(_)));

        let mut bad = req("hist");
        bad.synthetic = Some(SyntheticSpec::mixed());
        assert!(resolve(&bad).is_err());
    }

    #[test]
    fn rejects_nonsense_and_invalid_configs() {
        assert!(resolve(&req("quicksort")).is_err());
        let mut bad_policy = req("hist");
        bad_policy.policy = Some("alchemy".into());
        assert!(resolve(&bad_policy).is_err());
        let mut bad_preset = req("hist");
        bad_preset.preset = Some("huge".into());
        assert!(resolve(&bad_preset).is_err());
        let mut bad_warmup = req("hist");
        bad_warmup.warmup = Some(0.99);
        assert!(resolve(&bad_warmup).is_err());
        let mut bad_gen = req("hist");
        bad_gen.shrink = Some(0);
        assert!(resolve(&bad_gen).is_err());
    }

    #[test]
    fn threads_clamp_to_preset_cores() {
        let mut r = req("hist");
        r.preset = Some("quick".into());
        r.threads = Some(64);
        let resolved = resolve(&r).unwrap();
        assert_eq!(resolved.gen.threads, resolved.cfg.hierarchy.cores);
    }

    #[test]
    fn alpha_gamma_pin_the_red_override_and_rekey() {
        let plain = resolve(&req("hist")).unwrap();
        let mut tuned = req("hist");
        tuned.alpha = Some(4);
        tuned.gamma = Some(32);
        let r = resolve(&tuned).unwrap();
        let red = r.cfg.policy.red_override.expect("override installed");
        assert_eq!(red.alpha.initial, 4);
        assert_eq!(red.gamma.initial, 32);
        assert_ne!(r.key, plain.key, "knob change must re-key the cache");
        assert_eq!(r.trace_key, plain.trace_key, "traces are unaffected");

        // A pin outside the adaptive band widens the band to admit it.
        let mut wide = req("hist");
        wide.alpha = Some(100);
        let red = resolve(&wide).unwrap().cfg.policy.red_override.unwrap();
        assert_eq!(red.alpha.initial, 100);
        assert!(red.alpha.max >= 100);

        // Baselines have no α/γ; zero thresholds are nonsense.
        let mut alloy = req("hist");
        alloy.policy = Some("alloy".into());
        alloy.alpha = Some(2);
        assert!(resolve(&alloy).is_err());
        let mut zero = req("hist");
        zero.gamma = Some(0);
        assert!(resolve(&zero).is_err());
    }

    #[test]
    fn sweep_expands_the_grid_policy_major() {
        let sweep = SweepRequest {
            base: req("hist"),
            alphas: vec![1, 2],
            gammas: vec![8],
            policies: vec!["redcache".into(), "alloy".into()],
        };
        let cells = sweep.expand().unwrap();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].policy.as_deref(), Some("redcache"));
        assert_eq!((cells[0].alpha, cells[0].gamma), (Some(1), Some(8)));
        assert_eq!((cells[1].alpha, cells[1].gamma), (Some(2), Some(8)));
        // Baseline cells drop the knob axes: the two alloy cells are
        // identical and will dedupe through the single-flight cache.
        for cell in &cells[2..] {
            assert_eq!(cell.policy.as_deref(), Some("alloy"));
            assert_eq!((cell.alpha, cell.gamma), (None, None));
        }
        assert_eq!(
            resolve(&cells[2]).unwrap().key,
            resolve(&cells[3]).unwrap().key
        );

        // Empty axes degenerate to the base value: a one-cell sweep.
        let trivial = SweepRequest {
            base: req("hist"),
            ..SweepRequest::default()
        };
        assert_eq!(trivial.expand().unwrap().len(), 1);
    }

    #[test]
    fn sweep_rejects_oversized_grids() {
        let sweep = SweepRequest {
            base: req("hist"),
            alphas: (1..=32).collect(),
            gammas: (1..=32).collect(),
            policies: vec![],
        };
        assert!(sweep.expand().is_err(), "1024 cells must exceed the cap");
    }

    #[test]
    fn hold_is_capped_and_keyed() {
        let mut held = req("hist");
        held.hold_ms = Some(999_999);
        let h = resolve(&held).unwrap();
        assert_eq!(h.hold_ms, MAX_HOLD_MS);
        assert_ne!(h.key, resolve(&req("hist")).unwrap().key);
    }
}
