//! The daemon itself: a `TcpListener` accept loop, thread-per-request
//! handlers, the fixed worker pool, and the graceful-shutdown
//! sequence.
//!
//! # Shutdown protocol
//!
//! 1. A `SIGTERM`/`SIGINT` (or `POST /shutdown`) flips the drain state.
//! 2. The accept loop notices within one poll interval, stops
//!    accepting, and calls [`jobs::Daemon::begin_drain`]: new
//!    submissions get `503`, and the queue's sender is dropped.
//! 3. Workers finish the jobs already queued or running — persisting
//!    each result to the spool — then exit when `recv` fails on the
//!    closed, empty channel.
//! 4. [`Server::run`] joins the in-flight connection handlers (so the
//!    `/shutdown` caller always receives its `202`) and every worker,
//!    then returns.

use crate::api::{resolve, JobRequest};
use crate::http::{read_request, Request, Response};
use crate::jobs::{self, Daemon, Submitted};
use crate::signals;
use redcache_bench::report_io::{Saved, SCHEMA_VERSION};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often the accept loop checks the shutdown/drain flags.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Per-direction socket timeout for connection handlers. Both
/// directions are bounded: a silent sender must not wedge
/// `read_request` and a stalled reader must not wedge
/// `Response::write_to`.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Extra allowance in the drain-time assertion for scheduling noise on
/// a loaded machine.
const DRAIN_SLACK: Duration = Duration::from_secs(5);

/// Applies both I/O timeouts to one accepted connection. A handler's
/// life is bounded by (roughly) one read timeout plus one write
/// timeout; `Server::run` asserts that bound when draining.
fn configure_stream(stream: &TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    Ok(())
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; use port `0` for an ephemeral port.
    pub addr: String,
    /// Worker pool size.
    pub workers: usize,
    /// Bounded queue capacity (admission-control limit).
    pub queue_capacity: usize,
    /// Directory results are persisted to (and warmed from), if any.
    pub spool: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            workers: redcache_bench::pool::max_workers(),
            queue_capacity: 32,
            spool: None,
        }
    }
}

/// A bound-but-not-yet-running daemon.
pub struct Server {
    daemon: Arc<Daemon>,
    listener: TcpListener,
    local_addr: SocketAddr,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and starts the worker pool.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound or put into non-blocking
    /// mode.
    pub fn bind(opts: &ServeOptions) -> io::Result<Self> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let workers_n = opts.workers.max(1);
        let (daemon, rx) = Daemon::new(workers_n, opts.queue_capacity, opts.spool.clone());
        let workers = (0..workers_n)
            .map(|widx| {
                let d = daemon.clone();
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{widx}"))
                    .spawn(move || jobs::worker_loop(&d, &rx, widx))
                    .expect("spawn worker")
            })
            .collect();
        Ok(Self {
            daemon,
            listener,
            local_addr,
            workers,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle to the shared daemon state (tests and embedders).
    pub fn daemon(&self) -> Arc<Daemon> {
        self.daemon.clone()
    }

    /// Serves until a shutdown is requested, then drains and joins the
    /// workers. Returns once every accepted job has finished.
    ///
    /// # Errors
    ///
    /// Propagates fatal accept-loop I/O errors (per-connection errors
    /// are logged and survived).
    pub fn run(self) -> io::Result<()> {
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if signals::requested() || self.daemon.is_draining() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    conns.retain(|h| !h.is_finished());
                    let d = self.daemon.clone();
                    conns.push(
                        std::thread::Builder::new()
                            .name("serve-conn".to_string())
                            .spawn(move || handle_connection(&d, stream))
                            .expect("spawn connection handler"),
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.daemon.begin_drain();
        // Join in-flight connection handlers too (they are bounded by
        // the per-connection read and write timeouts): otherwise the
        // process can exit while the `/shutdown` handler is still
        // writing its 202 and the client sees a reset connection.
        let drain_started = Instant::now();
        for c in conns {
            let _ = c.join();
        }
        let drained_in = drain_started.elapsed();
        // A handler that outlives read+write timeout (plus slack) means
        // some socket path lost its timeout — exactly the class of bug
        // the missing set_write_timeout was.
        debug_assert!(
            drained_in <= IO_TIMEOUT * 2 + DRAIN_SLACK,
            "connection drain took {drained_in:?}; a handler is unbounded"
        );
        for w in self.workers {
            let _ = w.join();
        }
        Ok(())
    }
}

fn handle_connection(daemon: &Arc<Daemon>, stream: TcpStream) {
    if configure_stream(&stream).is_err() {
        return;
    }
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let response = match read_request(&mut reader) {
        Ok(Some(req)) => route(daemon, &req),
        Ok(None) => return,
        Err(e) => Response::error(400, &format!("bad request: {e}")),
    };
    let mut stream = stream;
    let _ = response.write_to(&mut stream);
}

/// Dispatches one request to its handler.
fn route(daemon: &Arc<Daemon>, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => submit(daemon, &req.body),
        ("GET", ["jobs"]) => Response::json(200, &daemon.job_views()),
        ("GET", ["jobs", id]) => with_id(id, |id| job_status(daemon, id)),
        ("GET", ["jobs", id, "report"]) => with_id(id, |id| job_report(daemon, id)),
        ("GET", ["jobs", id, "timeseries"]) => with_id(id, |id| job_timeseries(daemon, id)),
        ("DELETE", ["jobs", id]) => with_id(id, |id| cancel(daemon, id)),
        ("GET", ["metrics"]) => Response::raw(
            200,
            "text/plain; version=0.0.4",
            daemon.render_metrics().into_bytes(),
        ),
        ("GET", ["healthz"]) => Response::json(
            200,
            &serde_json::json!({ "ok": true, "draining": daemon.is_draining() }),
        ),
        ("POST", ["shutdown"]) => {
            // The accept loop polls the signal flag; setting it (not
            // just the daemon drain state) also stops `run`.
            signals::request();
            daemon.begin_drain();
            Response::json(202, &serde_json::json!({ "draining": true }))
        }
        ("GET" | "POST" | "DELETE", _) => Response::error(404, "no such endpoint"),
        _ => Response::error(405, "method not allowed"),
    }
}

fn with_id(raw: &str, f: impl FnOnce(u64) -> Response) -> Response {
    match raw.parse::<u64>() {
        Ok(id) => f(id),
        Err(_) => Response::error(400, "job id must be an integer"),
    }
}

fn submit(daemon: &Arc<Daemon>, body: &[u8]) -> Response {
    let req: JobRequest = match serde_json::from_slice(body) {
        Ok(r) => r,
        Err(e) => return Response::error(400, &format!("invalid job request: {e}")),
    };
    let resolved = match resolve(&req) {
        Ok(r) => r,
        Err(msg) => return Response::error(400, &msg),
    };
    match daemon.submit(resolved) {
        Submitted::Accepted(view) => Response::json(202, &view),
        Submitted::Busy { retry_after_s } => {
            Response::error(503, "queue full or draining; retry later")
                .with_header("retry-after", &retry_after_s.to_string())
        }
    }
}

fn job_status(daemon: &Arc<Daemon>, id: u64) -> Response {
    match daemon.job_view(id) {
        Some(view) => Response::json(200, &view),
        None => Response::error(404, "no such job"),
    }
}

fn job_report(daemon: &Arc<Daemon>, id: u64) -> Response {
    let Some(view) = daemon.job_view(id) else {
        return Response::error(404, "no such job");
    };
    match daemon.job_report(id) {
        Some(report) => Response::json(
            200,
            &Saved {
                schema: "run_report".to_string(),
                schema_version: SCHEMA_VERSION,
                data: &*report,
            },
        ),
        None => Response::error(409, &format!("job is {:?}, no report yet", view.status)),
    }
}

fn job_timeseries(daemon: &Arc<Daemon>, id: u64) -> Response {
    let Some(report) = daemon.job_report(id) else {
        return Response::error(404, "no completed report for this job");
    };
    let Some(series) = &report.timeseries else {
        return Response::error(
            409,
            "job ran without epoch_cycles; no time series was recorded",
        );
    };
    let mut body = Vec::new();
    if let Err(e) = series.write_jsonl(&mut body) {
        return Response::error(500, &format!("serializing time series failed: {e}"));
    }
    Response::raw(200, "application/jsonl", body)
}

fn cancel(daemon: &Arc<Daemon>, id: u64) -> Response {
    match daemon.cancel(id) {
        Ok(view) => Response::json(200, &view),
        Err(None) => Response::error(404, "no such job"),
        Err(Some(reason)) => Response::error(409, &reason),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn configure_stream_bounds_both_directions() {
        // The write-timeout half of this pair was missing once: a
        // stalled reader could wedge a connection thread forever inside
        // `Response::write_to`. Pin both directions.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        configure_stream(&server_side).unwrap();
        assert_eq!(server_side.read_timeout().unwrap(), Some(IO_TIMEOUT));
        assert_eq!(server_side.write_timeout().unwrap(), Some(IO_TIMEOUT));
        drop(client);
    }
}
