//! The daemon's job machinery: bounded queue with admission control, a
//! fixed worker pool, the single-flight content-addressed result
//! cache, and the in-memory trace store.
//!
//! # Sharding and lock order
//!
//! The three state maps — `jobs` (by job id), `cache` (by content
//! key), and `traces` (by trace key) — are each split into
//! [`SHARD_COUNT`] independently locked shards so that unrelated
//! submissions, status polls, and completions no longer serialize on
//! three global mutexes (the contention the event-loop front end
//! would otherwise immediately expose). Lock-order discipline, which
//! DESIGN.md §3.12 spells out in full:
//!
//! 1. a `cache` shard before a `jobs` shard, always, and the queue
//!    sender mutex only innermost (taken while holding `cache` on the
//!    submission path, and alone in `begin_drain`);
//! 2. never two shards of the same family at once — cross-shard
//!    operations (the completion fan-out, the retention sweeps) lock
//!    shards strictly one at a time;
//! 3. `traces` shards are taken with no other shard held.
//!
//! Workers never touch the sender, so the order is acyclic.
//!
//! # Single-flight protocol
//!
//! Every submission resolves to a content key (see
//! [`crate::api::ResolvedJob::key`]). The cache maps keys to either a
//! finished report (`Done`) or the id of the job currently computing it
//! (`InFlight` + followers). A `Done` hit completes the new job
//! immediately; an `InFlight` hit *attaches* the new job as a follower
//! — when the leader finishes, every follower completes with the same
//! `Arc`'d report, so duplicate and concurrent-identical submissions
//! cost exactly one simulation and return bit-identical envelopes.
//!
//! The PR 5 follower-registration guarantee holds per shard: a
//! follower is pushed onto the in-flight list *and* inserted into its
//! jobs shard while the leader's **cache shard** (the one its key
//! hashes to) is held. The leader's completion path takes that same
//! cache shard first to swap `InFlight → Done` and harvest the
//! follower list, so every harvested follower is already visible in
//! its jobs shard by the time the completion fan-out looks for it —
//! the shard split changes which mutex provides the ordering, not the
//! ordering itself.

use crate::api::{JobStatus, JobView, ResolvedJob, SweepView, TraceSource};
use crate::metrics::{bump, Metrics};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use redcache::{RunReport, Simulator, WarmSnapshot};
use redcache_bench::{report_io, run_labelled_resumed};
use redcache_workloads::{synthetic, trace_io, SharedTraces};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Shards per state map. Sixteen is enough that sequential job ids
/// and hashed content keys both spread evenly, while keeping the
/// retention sweeps' all-shard scans cheap.
pub const SHARD_COUNT: usize = 16;

/// Sweep records kept resident; the oldest beyond this are pruned
/// (their ids then answer `404`, like pruned terminal jobs). A record
/// is just the child-id list, so the cap is generous.
const MAX_SWEEPS: usize = 1024;

/// A `u64`-keyed hash map split into independently locked shards.
struct Shards<V> {
    shards: Vec<Mutex<HashMap<u64, V>>>,
}

impl<V> Shards<V> {
    fn new() -> Self {
        Self {
            shards: (0..SHARD_COUNT).map(|_| Mutex::default()).collect(),
        }
    }

    /// The shard owning `key`. Job ids are sequential and content
    /// keys are FNV hashes; low bits spread both well.
    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, V>> {
        &self.shards[(key as usize) & (SHARD_COUNT - 1)]
    }

    /// All shards, for one-at-a-time sweeps.
    fn iter(&self) -> impl Iterator<Item = &Mutex<HashMap<u64, V>>> {
        self.shards.iter()
    }
}

/// One queued unit of work: a job id to look up and run.
#[derive(Debug, Clone, Copy)]
pub struct WorkItem {
    /// Id of the leader job to execute.
    pub job_id: u64,
}

/// One tracked job.
#[derive(Debug)]
struct Job {
    id: u64,
    key: u64,
    label: String,
    policy: String,
    status: JobStatus,
    cached: bool,
    coalesced: bool,
    canceled: bool,
    /// A cancelled job is only prunable once a worker has retired it
    /// (dequeued it, or completed the run it was attached to) —
    /// pruning it earlier would strand its queue item or followers.
    retired: bool,
    resolved: ResolvedJob,
    report: Option<Arc<RunReport>>,
    wall_s: Option<f64>,
    gen_s: Option<f64>,
    error: Option<String>,
}

impl Job {
    fn view(&self) -> JobView {
        JobView {
            id: self.id,
            key: format!("{:016x}", self.key),
            status: self.status,
            workload: self.label.clone(),
            policy: self.policy.clone(),
            cached: self.cached,
            coalesced: self.coalesced,
            has_timeseries: self
                .report
                .as_ref()
                .map(|r| r.timeseries.is_some())
                .unwrap_or(false),
            wall_s: self.wall_s,
            gen_s: self.gen_s,
            error: self.error.clone(),
        }
    }

    /// Terminal-and-prunable per the retention policy.
    fn prunable(&self) -> bool {
        match self.status {
            JobStatus::Completed | JobStatus::Failed => true,
            JobStatus::Canceled => self.retired,
            JobStatus::Queued | JobStatus::Running => false,
        }
    }
}

/// The result cache: one entry per content key.
enum CacheEntry {
    /// A leader job is computing this key; followers complete with it.
    InFlight { followers: Vec<u64> },
    /// The finished report, stamped for LRU eviction.
    Done {
        report: Arc<RunReport>,
        last_used: u64,
    },
}

/// Retention caps bounding resident memory in a long-running daemon.
/// Cache and trace keys are client-controlled (e.g. arbitrary seeds),
/// so without these every distinct submission would grow the result
/// cache, the trace store, and the jobs table forever.
#[derive(Debug, Clone, Copy)]
pub struct Retention {
    /// Completed results kept resident; least-recently-used `Done`
    /// entries beyond this are evicted (in-flight entries never are).
    /// Spooled copies stay on disk regardless.
    pub max_cached_results: usize,
    /// Trace sets kept resident; least-recently-used beyond this are
    /// dropped (running jobs keep their `Arc` until they finish).
    pub max_trace_sets: usize,
    /// Terminal jobs kept for status queries; the oldest beyond this
    /// are pruned (their ids then answer `404`).
    pub max_terminal_jobs: usize,
    /// Warm snapshots kept resident; least-recently-used beyond this
    /// are dropped (running jobs keep their `Arc` until they finish).
    /// A snapshot is the full post-warmup simulator state, so this cap
    /// is deliberately smaller than the trace cap.
    pub max_warm_snapshots: usize,
}

impl Default for Retention {
    fn default() -> Self {
        Self {
            max_cached_results: 512,
            max_trace_sets: 32,
            max_terminal_jobs: 4096,
            max_warm_snapshots: 16,
        }
    }
}

/// Outcome of a submission.
#[derive(Debug)]
pub enum Submitted {
    /// The job was accepted (possibly already completed, for cache
    /// hits).
    Accepted(JobView),
    /// Backpressure: the queue is full or the daemon is draining.
    /// Respond `503` with `Retry-After`.
    Busy {
        /// Suggested client back-off in seconds.
        retry_after_s: u32,
    },
}

type TraceCell = Arc<OnceLock<(SharedTraces, f64)>>;

/// A single-flight warm-snapshot slot. The cell stores the `(trace
/// key, warm key)` pair it was warmed for alongside the snapshot so a
/// store-key collision is detected rather than resumed from.
type SnapCell = Arc<OnceLock<(u64, u64, Arc<WarmSnapshot>)>>;

/// Store key for the warm-snapshot map. Both inputs are already
/// FNV-quality hashes; one odd-multiplier mix keeps the combination
/// well spread across shards.
fn snap_store_key(trace_key: u64, warm_key: u64) -> u64 {
    trace_key
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(32)
        ^ warm_key
}

/// Shared daemon state: everything the HTTP handlers and the workers
/// touch.
pub struct Daemon {
    /// All counters exported at `/metrics`.
    pub metrics: Metrics,
    jobs: Shards<Job>,
    cache: Shards<CacheEntry>,
    /// Trace sets stamped for LRU eviction (stamp, cell).
    traces: Shards<(u64, TraceCell)>,
    /// Warm snapshots shared across policy variants, stamped for LRU
    /// eviction (stamp, cell) and keyed by [`snap_store_key`].
    snapshots: Shards<(u64, SnapCell)>,
    /// Sweep roll-up records: sweep id → child job ids in grid order.
    /// Sweeps share the job id space (one allocator), so an id names
    /// either a job or a sweep, never both. Taken with no shard held.
    sweeps: Mutex<HashMap<u64, Vec<u64>>>,
    tx: Mutex<Option<Sender<WorkItem>>>,
    next_id: AtomicU64,
    /// Monotonic stamp source for the LRU eviction orders.
    lru_clock: AtomicU64,
    queue_capacity: usize,
    retention: Retention,
    spool: Option<PathBuf>,
    draining: AtomicBool,
}

impl Daemon {
    /// Builds the daemon state plus the receiving end of its bounded
    /// queue (one receiver, cloned per worker).
    pub fn new(
        workers: usize,
        queue_capacity: usize,
        spool: Option<PathBuf>,
    ) -> (Arc<Self>, Receiver<WorkItem>) {
        Self::with_retention(workers, queue_capacity, spool, Retention::default())
    }

    /// [`Daemon::new`] with explicit retention caps.
    pub fn with_retention(
        workers: usize,
        queue_capacity: usize,
        spool: Option<PathBuf>,
        retention: Retention,
    ) -> (Arc<Self>, Receiver<WorkItem>) {
        let (tx, rx) = bounded(queue_capacity.max(1));
        let d = Arc::new(Self {
            metrics: Metrics::new(workers.max(1)),
            jobs: Shards::new(),
            cache: Shards::new(),
            traces: Shards::new(),
            snapshots: Shards::new(),
            sweeps: Mutex::new(HashMap::new()),
            tx: Mutex::new(Some(tx)),
            next_id: AtomicU64::new(1),
            lru_clock: AtomicU64::new(0),
            queue_capacity: queue_capacity.max(1),
            retention,
            spool,
            draining: AtomicBool::new(false),
        });
        d.warm_from_spool();
        (d, rx)
    }

    /// Next LRU stamp. `Relaxed` is enough: the RMW is still atomic
    /// (stamps stay unique) and every stamp comparison happens under
    /// a shard lock.
    fn touch(&self) -> u64 {
        self.lru_clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Evicts least-recently-used `Done` entries beyond the retention
    /// cap. In-flight entries are never evicted. Takes cache shards
    /// one at a time with nothing else held; a victim is re-checked
    /// under its shard lock (same key *and* same stamp) so an entry
    /// touched between the scan and the eviction survives.
    fn evict_cached_results(&self) {
        let cap = self.retention.max_cached_results.max(1);
        let mut done: Vec<(u64, u64)> = Vec::new();
        for shard in self.cache.iter() {
            for (k, e) in shard.lock().iter() {
                if let CacheEntry::Done { last_used, .. } = e {
                    done.push((*last_used, *k));
                }
            }
        }
        if done.len() <= cap {
            return;
        }
        done.sort_unstable();
        for &(stamp, key) in &done[..done.len() - cap] {
            let mut shard = self.cache.shard(key).lock();
            let stale = matches!(
                shard.get(&key),
                Some(CacheEntry::Done { last_used, .. }) if *last_used == stamp
            );
            if stale {
                shard.remove(&key);
                bump(&self.metrics.cache_evictions);
            }
        }
    }

    /// Drops least-recently-used trace sets beyond the retention cap.
    /// Safe against running jobs: they hold their own `Arc` to the
    /// traces. Same one-shard-at-a-time, stamp-re-checked sweep as
    /// [`Self::evict_cached_results`].
    fn evict_trace_sets(&self) {
        let cap = self.retention.max_trace_sets.max(1);
        let mut stamps: Vec<(u64, u64)> = Vec::new();
        for shard in self.traces.iter() {
            for (k, (s, _)) in shard.lock().iter() {
                stamps.push((*s, *k));
            }
        }
        if stamps.len() <= cap {
            return;
        }
        stamps.sort_unstable();
        for &(stamp, key) in &stamps[..stamps.len() - cap] {
            let mut shard = self.traces.shard(key).lock();
            if matches!(shard.get(&key), Some((s, _)) if *s == stamp) {
                shard.remove(&key);
            }
        }
    }

    /// Drops least-recently-used warm snapshots beyond the retention
    /// cap. Safe against running jobs: they hold their own `Arc` to
    /// the snapshot. Same one-shard-at-a-time, stamp-re-checked sweep
    /// as [`Self::evict_trace_sets`].
    fn evict_warm_snapshots(&self) {
        let cap = self.retention.max_warm_snapshots.max(1);
        let mut stamps: Vec<(u64, u64)> = Vec::new();
        for shard in self.snapshots.iter() {
            for (k, (s, _)) in shard.lock().iter() {
                stamps.push((*s, *k));
            }
        }
        if stamps.len() <= cap {
            return;
        }
        stamps.sort_unstable();
        for &(stamp, key) in &stamps[..stamps.len() - cap] {
            let mut shard = self.snapshots.shard(key).lock();
            if matches!(shard.get(&key), Some((s, _)) if *s == stamp) {
                shard.remove(&key);
            }
        }
    }

    /// Prunes the oldest terminal jobs beyond the retention cap.
    /// Cancelled jobs count only once retired (see [`Job::retired`]):
    /// a cancelled leader still in the queue must stay visible so the
    /// worker that dequeues it can find its key and followers. A
    /// victim is re-checked under its shard lock (terminal jobs never
    /// leave the terminal state, so the re-check only guards against
    /// a concurrent sweep having removed it first).
    fn prune_terminal_jobs(&self) {
        let cap = self.retention.max_terminal_jobs.max(1);
        let mut terminal: Vec<u64> = Vec::new();
        for shard in self.jobs.iter() {
            for job in shard.lock().values() {
                if job.prunable() {
                    terminal.push(job.id);
                }
            }
        }
        if terminal.len() <= cap {
            return;
        }
        terminal.sort_unstable();
        for &id in &terminal[..terminal.len() - cap] {
            let mut shard = self.jobs.shard(id).lock();
            if shard.get(&id).map(Job::prunable).unwrap_or(false) {
                shard.remove(&id);
                bump(&self.metrics.jobs_pruned);
            }
        }
    }

    /// The admission-control bound.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// True once a graceful shutdown has begun.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Pre-populates the result cache from the spool directory.
    /// Entries that fail to parse are *evicted* from disk — a corrupt
    /// file must not shadow the key forever — while version-skewed or
    /// unreadable ones are merely skipped.
    fn warm_from_spool(&self) {
        let Some(dir) = &self.spool else { return };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(hex) = name
                .strip_prefix("report-")
                .and_then(|r| r.strip_suffix(".json"))
            else {
                continue;
            };
            let Ok(key) = u64::from_str_radix(hex, 16) else {
                continue;
            };
            match report_io::try_read_json::<RunReport>(&path) {
                Ok(report) => {
                    self.cache.shard(key).lock().insert(
                        key,
                        CacheEntry::Done {
                            report: Arc::new(report),
                            last_used: self.touch(),
                        },
                    );
                }
                Err(e) if e.is_corrupt() => {
                    eprintln!(
                        "warning: evicting corrupt cached result {}: {e}",
                        path.display()
                    );
                    let _ = std::fs::remove_file(&path);
                }
                Err(_) => {}
            }
        }
        self.evict_cached_results();
    }

    /// Completed results resident in the cache.
    pub fn cache_entries(&self) -> usize {
        self.cache
            .iter()
            .map(|s| {
                s.lock()
                    .values()
                    .filter(|e| matches!(e, CacheEntry::Done { .. }))
                    .count()
            })
            .sum()
    }

    /// Trace sets resident in the store.
    pub fn trace_sets(&self) -> usize {
        self.traces.iter().map(|s| s.lock().len()).sum()
    }

    /// Warm snapshots resident in the store.
    pub fn warm_snapshots(&self) -> usize {
        self.snapshots.iter().map(|s| s.lock().len()).sum()
    }

    /// Submits a resolved job: cache hit, coalesce, or enqueue — with
    /// `Busy` backpressure when the bounded queue is full or the
    /// daemon is draining.
    pub fn submit(&self, resolved: ResolvedJob) -> Submitted {
        if self.is_draining() {
            bump(&self.metrics.rejected);
            return Submitted::Busy { retry_after_s: 5 };
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let key = resolved.key;
        let mut job = Job {
            id,
            key,
            label: resolved.label.clone(),
            policy: resolved.cfg.policy.kind.to_string(),
            status: JobStatus::Queued,
            cached: false,
            coalesced: false,
            canceled: false,
            retired: false,
            resolved,
            report: None,
            wall_s: None,
            gen_s: None,
            error: None,
        };

        // Lock order: this key's cache shard, then this id's jobs
        // shard, then (enqueue path only) the sender.
        let mut cache = self.cache.shard(key).lock();
        match cache.get_mut(&key) {
            Some(CacheEntry::Done { report, last_used }) => {
                *last_used = self.touch();
                job.status = JobStatus::Completed;
                job.cached = true;
                job.report = Some(report.clone());
                job.wall_s = Some(0.0);
                job.gen_s = Some(0.0);
                bump(&self.metrics.cache_hits);
                bump(&self.metrics.submitted);
                bump(&self.metrics.completed);
            }
            Some(CacheEntry::InFlight { followers }) => {
                followers.push(id);
                job.coalesced = true;
                bump(&self.metrics.coalesced);
                bump(&self.metrics.submitted);
            }
            None => {
                // Admission control: the job table gains the entry
                // first so a worker dequeuing immediately finds it;
                // the cache shard held across try_send keeps completion
                // (which needs this same shard) ordered after the
                // insert.
                let view = {
                    let mut jobs = self.jobs.shard(id).lock();
                    jobs.insert(id, job);
                    jobs[&id].view()
                };
                // Bump the gauge before try_send: a worker can dequeue
                // (and decrement) the instant the item lands.
                self.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
                let sent = {
                    let tx = self.tx.lock();
                    match tx.as_ref() {
                        None => Err(()),
                        Some(tx) => match tx.try_send(WorkItem { job_id: id }) {
                            Ok(()) => Ok(()),
                            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                                Err(())
                            }
                        },
                    }
                };
                return match sent {
                    Ok(()) => {
                        cache.insert(key, CacheEntry::InFlight { followers: vec![] });
                        bump(&self.metrics.submitted);
                        Submitted::Accepted(view)
                    }
                    Err(()) => {
                        self.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        self.jobs.shard(id).lock().remove(&id);
                        bump(&self.metrics.rejected);
                        Submitted::Busy { retry_after_s: 1 }
                    }
                };
            }
        }
        // Cache-hit and coalesced jobs enter the jobs map while this
        // key's cache shard is still held: run_job's completion path
        // takes the same cache shard before touching jobs shards, so a
        // follower registered above is guaranteed to be in its jobs
        // shard before its leader can finish. (Inserting after
        // dropping the cache shard opens a window where the leader
        // completes, finds no such follower, and the follower is
        // stranded as Queued forever.)
        let prune = matches!(job.status, JobStatus::Completed);
        let view = {
            let mut jobs = self.jobs.shard(id).lock();
            let view = job.view();
            jobs.insert(id, job);
            view
        };
        drop(cache);
        if prune {
            self.prune_terminal_jobs();
        }
        Submitted::Accepted(view)
    }

    /// Submits a resolved sweep: every cell goes through [`Self::submit`]
    /// — and therefore through the same admission control and
    /// single-flight dedupe as an individual job — then a sweep record
    /// ties the accepted cell ids together for the roll-up.
    ///
    /// Backpressure mid-grid returns `Busy` without creating a record;
    /// cells already accepted stay queued as ordinary jobs. That makes
    /// a client retry idempotent: resubmitting the same sweep coalesces
    /// the already-accepted cells onto their in-flight runs (counted in
    /// `sweep_cache_hits_total`) and only the refused tail enqueues
    /// fresh work.
    pub fn submit_sweep(&self, cells: Vec<ResolvedJob>) -> Result<SweepView, u32> {
        let mut children = Vec::with_capacity(cells.len());
        for resolved in cells {
            match self.submit(resolved) {
                Submitted::Accepted(view) => {
                    bump(&self.metrics.sweep_cells);
                    if view.cached || view.coalesced {
                        bump(&self.metrics.sweep_cache_hits);
                    }
                    children.push(view.id);
                }
                Submitted::Busy { retry_after_s } => return Err(retry_after_s),
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        {
            let mut sweeps = self.sweeps.lock();
            sweeps.insert(id, children);
            // Bounded like every other state map: prune the oldest
            // records beyond the cap (ids are monotonic, so smallest
            // id = oldest sweep).
            while sweeps.len() > MAX_SWEEPS {
                let oldest = *sweeps.keys().min().expect("nonempty over cap");
                sweeps.remove(&oldest);
            }
        }
        Ok(self.sweep_view(id).expect("freshly inserted sweep"))
    }

    /// One sweep's roll-up, computed from the live child views.
    pub fn sweep_view(&self, id: u64) -> Option<SweepView> {
        let children = self.sweeps.lock().get(&id)?.clone();
        let mut view = SweepView {
            id,
            total: children.len(),
            completed: 0,
            failed: 0,
            canceled: 0,
            pruned: 0,
            deduped: 0,
            done: false,
            jobs: Vec::with_capacity(children.len()),
        };
        for jid in children {
            match self.job_view(jid) {
                Some(j) => {
                    match j.status {
                        JobStatus::Completed => view.completed += 1,
                        JobStatus::Failed => view.failed += 1,
                        JobStatus::Canceled => view.canceled += 1,
                        JobStatus::Queued | JobStatus::Running => {}
                    }
                    if j.cached || j.coalesced {
                        view.deduped += 1;
                    }
                    view.jobs.push(j);
                }
                // Retention pruned the terminal child; it still counts
                // as settled.
                None => view.pruned += 1,
            }
        }
        view.done =
            view.completed + view.failed + view.canceled + view.pruned == view.total;
        Some(view)
    }

    /// One job's status.
    pub fn job_view(&self, id: u64) -> Option<JobView> {
        self.jobs.shard(id).lock().get(&id).map(Job::view)
    }

    /// All jobs in submission order.
    pub fn job_views(&self) -> Vec<JobView> {
        let mut views: Vec<JobView> = self
            .jobs
            .iter()
            .flat_map(|s| s.lock().values().map(Job::view).collect::<Vec<_>>())
            .collect();
        views.sort_by_key(|v| v.id);
        views
    }

    /// A completed job's report.
    pub fn job_report(&self, id: u64) -> Option<Arc<RunReport>> {
        self.jobs
            .shard(id)
            .lock()
            .get(&id)
            .and_then(|j| j.report.clone())
    }

    /// Cancels a job. Only queued jobs can be cancelled: `Ok` carries
    /// the updated view, `Err` the reason it could not be cancelled
    /// (`None` = no such job).
    pub fn cancel(&self, id: u64) -> Result<JobView, Option<String>> {
        let mut jobs = self.jobs.shard(id).lock();
        let Some(job) = jobs.get_mut(&id) else {
            return Err(None);
        };
        match job.status {
            JobStatus::Queued => {
                job.canceled = true;
                job.status = JobStatus::Canceled;
                bump(&self.metrics.canceled);
                Ok(job.view())
            }
            other => Err(Some(format!("job is {other:?}, not queued"))),
        }
    }

    /// Begins a graceful drain: refuse new submissions and close the
    /// queue so workers exit once it is empty. Idempotent.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.tx.lock().take();
    }

    /// Renders the `/metrics` exposition.
    pub fn render_metrics(&self) -> String {
        self.metrics.render(
            self.queue_capacity,
            self.cache_entries(),
            self.is_draining(),
        )
    }

    /// Fetches (or single-flight-generates) the traces for a job.
    /// Returns the shared traces, the generation seconds stored with
    /// them, and whether this call performed the generation.
    fn traces_for(&self, r: &ResolvedJob) -> (SharedTraces, f64, bool) {
        let cell: TraceCell = {
            let mut map = self.traces.shard(r.trace_key).lock();
            let stamp = self.touch();
            let entry = map.entry(r.trace_key).or_default();
            entry.0 = stamp;
            entry.1.clone()
        };
        // The just-touched key carries the newest stamp at scan time,
        // so it survives this sweep (run with no shard held).
        self.evict_trace_sets();
        let mut generated_now = false;
        let (traces, gen_s) = cell.get_or_init(|| {
            generated_now = true;
            let started = Instant::now();
            let traces = match &r.source {
                TraceSource::Suite(w) => trace_io::generate_cached(*w, &r.gen),
                TraceSource::Synthetic(spec) => synthetic::generate(spec, &r.gen),
            };
            (SharedTraces::from(traces), started.elapsed().as_secs_f64())
        });
        (traces.clone(), *gen_s, generated_now)
    }

    /// Fetches (or single-flight-warms) the shared warm snapshot for a
    /// job: the policy-independent post-warmup simulator state, keyed
    /// by `(trace set, warm-relevant configuration)` so submissions
    /// that differ only in policy or its knobs (α, γ, RCU depth, …)
    /// skip the warmup entirely. Returns the snapshot and whether this
    /// call performed the warmup.
    fn snapshot_for(&self, r: &ResolvedJob, traces: &SharedTraces) -> (Arc<WarmSnapshot>, bool) {
        let sim = Simulator::new(r.cfg);
        let warm_key = sim.warm_key();
        let key = snap_store_key(r.trace_key, warm_key);
        let cell: SnapCell = {
            let mut map = self.snapshots.shard(key).lock();
            let stamp = self.touch();
            let entry = map.entry(key).or_default();
            entry.0 = stamp;
            entry.1.clone()
        };
        // The just-touched key carries the newest stamp at scan time,
        // so it survives this sweep (run with no shard held).
        self.evict_warm_snapshots();
        let mut warmed_now = false;
        let (tk, wk, snap) = cell.get_or_init(|| {
            warmed_now = true;
            (r.trace_key, warm_key, sim.warm(traces.clone()))
        });
        if (*tk, *wk) == (r.trace_key, warm_key) {
            (snap.clone(), warmed_now)
        } else {
            // Store-key collision between distinct (trace, config)
            // pairs: warm privately rather than resume wrong state.
            (sim.warm(traces.clone()), true)
        }
    }

    fn persist(&self, key: u64, report: &RunReport) {
        if let Some(dir) = &self.spool {
            report_io::write_json_at(
                &dir.join(format!("report-{key:016x}.json")),
                "run_report",
                report,
            );
        }
    }

    /// Executes one dequeued work item on worker `widx`.
    fn run_job(&self, id: u64, widx: usize) {
        self.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);

        // The content key names the cache shard, and the lock order
        // is cache-shard-first — so read the key under the jobs shard
        // alone, release, then take both in order. The job cannot
        // vanish in between: only terminal jobs are pruned, and a
        // queued leader is not terminal (a cancelled one is prunable
        // only once *this* dequeue retires it).
        let key = match self.jobs.shard(id).lock().get(&id) {
            Some(job) => job.key,
            None => return,
        };

        // Decide: run, or retire a cancelled leader nobody follows.
        let resolved = {
            let mut cache = self.cache.shard(key).lock();
            let mut jobs = self.jobs.shard(id).lock();
            let Some(job) = jobs.get_mut(&id) else { return };
            debug_assert_eq!(job.key, key);
            if job.canceled {
                let has_followers = matches!(
                    cache.get(&key),
                    Some(CacheEntry::InFlight { followers }) if !followers.is_empty()
                );
                if !has_followers {
                    cache.remove(&key);
                    job.retired = true;
                    None
                } else {
                    // Cancelled leader with followers: run anyway so
                    // the followers get their result; the leader
                    // stays cancelled.
                    Some(job.resolved.clone())
                }
            } else {
                job.status = JobStatus::Running;
                Some(job.resolved.clone())
            }
        };
        let Some(resolved) = resolved else {
            self.prune_terminal_jobs();
            return;
        };

        self.metrics.running.fetch_add(1, Ordering::Relaxed);
        let busy_started = Instant::now();
        if resolved.hold_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(resolved.hold_ms));
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let (traces, gen_s, generated_now) = self.traces_for(&resolved);
            if generated_now {
                self.metrics
                    .gen_micros
                    .fetch_add((gen_s * 1e6) as u64, Ordering::Relaxed);
            }
            // Fork from the shared warm snapshot (DESIGN.md §3.13): the
            // leader of a (traces, warm-config) group pays the warmup
            // once; every other policy/knob variant resumes from it.
            let sim_started = Instant::now();
            let (snap, warmed_now) = self.snapshot_for(&resolved, &traces);
            if !warmed_now {
                bump(&self.metrics.snapshot_hits);
            }
            let (report, _resume_s) = run_labelled_resumed(resolved.cfg, &resolved.label, &snap);
            // Bill warm + resume to this job; a snapshot hit shows up
            // as the fork-only (much smaller) wall time.
            let wall_s = sim_started.elapsed().as_secs_f64();
            (report, wall_s, gen_s)
        }));
        self.metrics.running.fetch_sub(1, Ordering::Relaxed);
        self.metrics.worker_busy_micros[widx]
            .fetch_add(busy_started.elapsed().as_micros() as u64, Ordering::Relaxed);

        match outcome {
            Ok((report, wall_s, gen_s)) => {
                bump(&self.metrics.sims);
                self.metrics
                    .sim_micros
                    .fetch_add((wall_s * 1e6) as u64, Ordering::Relaxed);
                let report = Arc::new(report);
                self.persist(resolved.key, &report);
                // Swap InFlight → Done and harvest followers under
                // the key's cache shard; every follower in the list
                // is already in its jobs shard (registration happened
                // under this same shard — see submit).
                let followers = {
                    let mut cache = self.cache.shard(resolved.key).lock();
                    match cache.insert(
                        resolved.key,
                        CacheEntry::Done {
                            report: report.clone(),
                            last_used: self.touch(),
                        },
                    ) {
                        Some(CacheEntry::InFlight { followers }) => followers,
                        _ => Vec::new(),
                    }
                };
                for jid in std::iter::once(id).chain(followers) {
                    let mut jobs = self.jobs.shard(jid).lock();
                    if let Some(job) = jobs.get_mut(&jid) {
                        if job.canceled {
                            job.retired = true;
                            continue;
                        }
                        job.status = JobStatus::Completed;
                        job.report = Some(report.clone());
                        job.wall_s = Some(if jid == id { wall_s } else { 0.0 });
                        job.gen_s = Some(if jid == id { gen_s } else { 0.0 });
                        bump(&self.metrics.completed);
                    }
                }
                self.evict_cached_results();
                self.prune_terminal_jobs();
            }
            Err(panic) => {
                let msg = panic_message(&panic);
                // Drop the in-flight entry entirely: a retry should
                // get a fresh run, not a poisoned cache slot.
                let followers = {
                    let mut cache = self.cache.shard(resolved.key).lock();
                    match cache.remove(&resolved.key) {
                        Some(CacheEntry::InFlight { followers }) => followers,
                        _ => Vec::new(),
                    }
                };
                for jid in std::iter::once(id).chain(followers) {
                    let mut jobs = self.jobs.shard(jid).lock();
                    if let Some(job) = jobs.get_mut(&jid) {
                        if job.canceled {
                            job.retired = true;
                            continue;
                        }
                        job.status = JobStatus::Failed;
                        job.error = Some(msg.clone());
                        bump(&self.metrics.failed);
                    }
                }
                self.prune_terminal_jobs();
            }
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("simulation panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("simulation panicked: {s}")
    } else {
        "simulation panicked".to_string()
    }
}

/// Worker thread body: pull work until the queue closes (drain).
pub fn worker_loop(daemon: &Arc<Daemon>, rx: &Receiver<WorkItem>, widx: usize) {
    while let Ok(item) = rx.recv() {
        daemon.run_job(item.job_id, widx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{resolve, JobRequest};

    /// Serializes the module's tests: `generation_count()` is
    /// process-wide, so concurrent sibling tests would perturb the
    /// exactly-one-generation assertions.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn tiny_request(workload: &str) -> JobRequest {
        JobRequest {
            workload: workload.into(),
            preset: Some("quick".into()),
            threads: Some(2),
            shrink: Some(8),
            budget: Some(500),
            ..JobRequest::default()
        }
    }

    fn accepted(s: Submitted) -> JobView {
        match s {
            Submitted::Accepted(v) => v,
            Submitted::Busy { .. } => panic!("unexpected backpressure"),
        }
    }

    /// Drives a daemon synchronously: one in-test worker drains the
    /// queue after submissions.
    fn drain_queue(d: &Arc<Daemon>, rx: &Receiver<WorkItem>) {
        while let Ok(item) = rx.try_recv() {
            d.run_job(item.job_id, 0);
        }
    }

    #[test]
    fn cache_hit_completes_without_second_sim() {
        let _serial = SERIAL.lock();
        let (d, rx) = Daemon::new(1, 8, None);
        let r = resolve(&tiny_request("hist")).unwrap();
        let v1 = accepted(d.submit(r.clone()));
        assert_eq!(v1.status, JobStatus::Queued);
        drain_queue(&d, &rx);
        assert_eq!(d.job_view(v1.id).unwrap().status, JobStatus::Completed);

        let v2 = accepted(d.submit(r));
        assert_eq!(v2.status, JobStatus::Completed);
        assert!(v2.cached);
        assert_eq!(d.metrics.sims.load(Ordering::SeqCst), 1);
        let rep1 = d.job_report(v1.id).unwrap();
        let rep2 = d.job_report(v2.id).unwrap();
        assert!(Arc::ptr_eq(&rep1, &rep2), "cache hit must share the Arc");
    }

    #[test]
    fn concurrent_identicals_coalesce_onto_one_run() {
        let _serial = SERIAL.lock();
        let (d, rx) = Daemon::new(1, 8, None);
        let r = resolve(&tiny_request("lreg")).unwrap();
        let v1 = accepted(d.submit(r.clone()));
        let v2 = accepted(d.submit(r.clone()));
        let v3 = accepted(d.submit(r));
        assert!(!v1.coalesced);
        assert!(v2.coalesced && v3.coalesced);
        drain_queue(&d, &rx);
        for id in [v1.id, v2.id, v3.id] {
            assert_eq!(d.job_view(id).unwrap().status, JobStatus::Completed);
        }
        assert_eq!(d.metrics.sims.load(Ordering::SeqCst), 1);
        assert_eq!(d.metrics.coalesced.load(Ordering::SeqCst), 2);
        let r1 = d.job_report(v1.id).unwrap();
        assert!(Arc::ptr_eq(&r1, &d.job_report(v2.id).unwrap()));
        assert!(Arc::ptr_eq(&r1, &d.job_report(v3.id).unwrap()));
    }

    #[test]
    fn queue_overflow_is_rejected_not_fatal() {
        let _serial = SERIAL.lock();
        let (d, rx) = Daemon::new(1, 2, None);
        let mut views = Vec::new();
        let mut rejected = 0;
        for seed in 0..6u64 {
            let mut req = tiny_request("is");
            req.seed = Some(seed); // distinct keys: no coalescing
            match d.submit(resolve(&req).unwrap()) {
                Submitted::Accepted(v) => views.push(v),
                Submitted::Busy { retry_after_s } => {
                    assert!(retry_after_s >= 1);
                    rejected += 1;
                }
            }
        }
        assert_eq!(views.len(), 2, "bounded queue admitted too much");
        assert_eq!(rejected, 4);
        assert_eq!(d.metrics.rejected.load(Ordering::SeqCst), 4);
        drain_queue(&d, &rx);
        for v in &views {
            assert_eq!(d.job_view(v.id).unwrap().status, JobStatus::Completed);
        }
    }

    #[test]
    fn canceled_queued_job_never_runs() {
        let _serial = SERIAL.lock();
        let (d, rx) = Daemon::new(1, 8, None);
        let v = accepted(d.submit(resolve(&tiny_request("mg")).unwrap()));
        let canceled = d.cancel(v.id).unwrap();
        assert_eq!(canceled.status, JobStatus::Canceled);
        assert!(d.cancel(v.id).is_err(), "double cancel must fail");
        drain_queue(&d, &rx);
        assert_eq!(d.job_view(v.id).unwrap().status, JobStatus::Canceled);
        assert_eq!(d.metrics.sims.load(Ordering::SeqCst), 0);
        // The key is free again: a resubmission runs fresh.
        let v2 = accepted(d.submit(resolve(&tiny_request("mg")).unwrap()));
        drain_queue(&d, &rx);
        assert_eq!(d.job_view(v2.id).unwrap().status, JobStatus::Completed);
        assert_eq!(d.metrics.sims.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn canceled_leader_with_followers_still_serves_them() {
        let _serial = SERIAL.lock();
        let (d, rx) = Daemon::new(1, 8, None);
        let r = resolve(&tiny_request("ft")).unwrap();
        let leader = accepted(d.submit(r.clone()));
        let follower = accepted(d.submit(r));
        d.cancel(leader.id).unwrap();
        drain_queue(&d, &rx);
        assert_eq!(d.job_view(leader.id).unwrap().status, JobStatus::Canceled);
        assert_eq!(
            d.job_view(follower.id).unwrap().status,
            JobStatus::Completed
        );
        assert_eq!(d.metrics.sims.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn drain_refuses_new_work() {
        let _serial = SERIAL.lock();
        let (d, _rx) = Daemon::new(1, 8, None);
        d.begin_drain();
        assert!(matches!(
            d.submit(resolve(&tiny_request("hist")).unwrap()),
            Submitted::Busy { .. }
        ));
        assert!(d.is_draining());
    }

    #[test]
    fn traces_are_generated_once_per_key() {
        let _serial = SERIAL.lock();
        let (d, rx) = Daemon::new(1, 8, None);
        let before = redcache_workloads::generation_count();
        // Same workload+gen under two policies: one generation.
        let mut a = tiny_request("ocn");
        a.policy = Some("alloy".into());
        let mut b = tiny_request("ocn");
        b.policy = Some("bear".into());
        d.submit(resolve(&a).unwrap());
        d.submit(resolve(&b).unwrap());
        drain_queue(&d, &rx);
        assert_eq!(
            redcache_workloads::generation_count(),
            before + 1,
            "trace store failed to share generations"
        );
        assert_eq!(d.metrics.sims.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn policy_variants_share_one_warm_snapshot() {
        let _serial = SERIAL.lock();
        let (d, rx) = Daemon::new(1, 8, None);
        let warms_before = redcache::warm_count();
        // Same workload+gen under three policy variants: the warmup
        // runs once and the other two resume from the shared snapshot.
        for policy in ["alloy", "bear", "redcache"] {
            let mut req = tiny_request("ch");
            req.policy = Some(policy.into());
            d.submit(resolve(&req).unwrap());
        }
        drain_queue(&d, &rx);
        assert_eq!(d.metrics.sims.load(Ordering::SeqCst), 3);
        assert_eq!(
            redcache::warm_count() - warms_before,
            1,
            "snapshot store failed to share the warmup"
        );
        assert_eq!(d.metrics.snapshot_hits.load(Ordering::SeqCst), 2);
        assert_eq!(d.warm_snapshots(), 1);
        let views = d.job_views();
        for v in &views {
            assert_eq!(v.status, JobStatus::Completed);
        }
        // A forked run must be bit-identical to a from-scratch one.
        let mut req = tiny_request("ch");
        req.policy = Some("bear".into());
        let r = resolve(&req).unwrap();
        let traces: SharedTraces = match &r.source {
            TraceSource::Suite(w) => trace_io::generate_cached(*w, &r.gen).into(),
            TraceSource::Synthetic(spec) => synthetic::generate(spec, &r.gen).into(),
        };
        let mut scratch = Simulator::new(r.cfg).run(traces);
        scratch.workload = Some(r.label.clone());
        let forked = d.job_report(views[1].id).unwrap();
        assert_eq!(*forked, scratch);
    }

    #[test]
    fn retention_caps_cache_traces_and_terminal_jobs() {
        let _serial = SERIAL.lock();
        let (d, rx) = Daemon::with_retention(
            1,
            16,
            None,
            Retention {
                max_cached_results: 2,
                max_trace_sets: 2,
                max_terminal_jobs: 3,
                max_warm_snapshots: 2,
            },
        );
        let mut ids = Vec::new();
        for seed in 0..5u64 {
            let mut req = tiny_request("hist");
            req.seed = Some(seed); // distinct content and trace keys
            ids.push(accepted(d.submit(resolve(&req).unwrap())).id);
            drain_queue(&d, &rx);
        }
        assert_eq!(d.cache_entries(), 2, "result cache exceeded its cap");
        assert_eq!(d.metrics.cache_evictions.load(Ordering::SeqCst), 3);
        assert_eq!(d.trace_sets(), 2, "trace store exceeded its cap");
        assert_eq!(d.warm_snapshots(), 2, "snapshot store exceeded its cap");
        let views = d.job_views();
        assert_eq!(views.len(), 3, "terminal jobs exceeded retention");
        assert_eq!(d.metrics.jobs_pruned.load(Ordering::SeqCst), 2);
        // The newest jobs survive; the pruned oldest now answer 404.
        assert!(d.job_view(ids[0]).is_none());
        assert!(d.job_view(ids[1]).is_none());
        assert!(d.job_view(ids[4]).is_some());
        // An evicted key misses the cache and re-runs.
        let mut req = tiny_request("hist");
        req.seed = Some(0);
        let v = accepted(d.submit(resolve(&req).unwrap()));
        assert_eq!(v.status, JobStatus::Queued, "evicted entry must not hit");
        drain_queue(&d, &rx);
        assert_eq!(d.metrics.sims.load(Ordering::SeqCst), 6);
        // A key still resident does hit.
        let mut req = tiny_request("hist");
        req.seed = Some(4);
        assert!(accepted(d.submit(resolve(&req).unwrap())).cached);
    }

    #[test]
    fn sweep_fans_out_through_single_flight_and_rolls_up() {
        let _serial = SERIAL.lock();
        let (d, rx) = Daemon::new(1, 16, None);
        // 2 red α cells + 2 identical baseline cells (alloy ignores the
        // α axis): 4 cells, 3 distinct keys, so one cell must dedupe.
        let sweep = crate::api::SweepRequest {
            base: tiny_request("hist"),
            alphas: vec![1, 2],
            gammas: vec![],
            policies: vec!["redcache".into(), "alloy".into()],
        };
        let cells: Vec<_> = sweep
            .expand()
            .unwrap()
            .iter()
            .map(|c| resolve(c).unwrap())
            .collect();
        assert_eq!(cells.len(), 4);
        let view = d.submit_sweep(cells).unwrap();
        assert_eq!(view.total, 4);
        assert!(!view.done);
        assert_eq!(view.deduped, 1, "duplicate baseline cell must coalesce");
        drain_queue(&d, &rx);

        let done = d.sweep_view(view.id).unwrap();
        assert!(done.done);
        assert_eq!(done.completed, 4);
        assert_eq!(done.jobs.len(), 4);
        assert_eq!(d.metrics.sims.load(Ordering::SeqCst), 3);
        assert_eq!(d.metrics.sweep_cells.load(Ordering::SeqCst), 4);
        assert_eq!(d.metrics.sweep_cache_hits.load(Ordering::SeqCst), 1);
        // The duplicate alloy cells share one Arc'd report.
        let alloy = &done.jobs[2..];
        assert!(Arc::ptr_eq(
            &d.job_report(alloy[0].id).unwrap(),
            &d.job_report(alloy[1].id).unwrap()
        ));
        // The sweep id is not a job id; the record answers instead.
        assert!(d.job_view(view.id).is_none());
        assert!(d.sweep_view(done.jobs[0].id).is_none());

        // A resubmission of the same grid is a pure cache hit per cell.
        let cells: Vec<_> = sweep
            .expand()
            .unwrap()
            .iter()
            .map(|c| resolve(c).unwrap())
            .collect();
        let again = d.submit_sweep(cells).unwrap();
        assert!(again.done);
        assert_eq!(again.deduped, 4);
        assert_eq!(d.metrics.sims.load(Ordering::SeqCst), 3, "no new sims");
        assert_eq!(d.metrics.sweep_cache_hits.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn sweep_backpressure_returns_busy_without_a_record() {
        let _serial = SERIAL.lock();
        let (d, rx) = Daemon::new(1, 2, None);
        // 5 distinct cells through a 2-deep queue: the grid must hit
        // admission control mid-fan-out.
        let mut cells = Vec::new();
        for seed in 0..5u64 {
            let mut req = tiny_request("is");
            req.seed = Some(seed);
            cells.push(resolve(&req).unwrap());
        }
        let sweeps_before = d.sweeps.lock().len();
        let retry = d.submit_sweep(cells).unwrap_err();
        assert!(retry >= 1);
        assert_eq!(d.sweeps.lock().len(), sweeps_before, "no record on Busy");
        // The accepted prefix still completes as ordinary jobs.
        drain_queue(&d, &rx);
        assert_eq!(d.metrics.sims.load(Ordering::SeqCst), 2);
        assert_eq!(d.metrics.sweep_cells.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn spool_persists_and_warms_with_corrupt_eviction() {
        let _serial = SERIAL.lock();
        let dir =
            std::env::temp_dir().join(format!("redcache_serve_spool_{:x}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let r = resolve(&tiny_request("rdx")).unwrap();
        let key = r.key;
        {
            let (d, rx) = Daemon::new(1, 8, Some(dir.clone()));
            let v = accepted(d.submit(r.clone()));
            drain_queue(&d, &rx);
            assert_eq!(d.job_view(v.id).unwrap().status, JobStatus::Completed);
        }
        let spool_file = dir.join(format!("report-{key:016x}.json"));
        assert!(spool_file.is_file(), "result was not persisted");

        // Plant a corrupt sibling: warming must evict it but keep the
        // good entry.
        let corrupt = dir.join(format!("report-{:016x}.json", key ^ 1));
        std::fs::write(&corrupt, "{definitely not json").unwrap();

        let (d2, _rx2) = Daemon::new(1, 8, Some(dir.clone()));
        assert_eq!(d2.cache_entries(), 1);
        assert!(!corrupt.exists(), "corrupt spool entry survived warming");
        let v = accepted(d2.submit(r));
        assert_eq!(v.status, JobStatus::Completed);
        assert!(v.cached, "warmed cache missed");
        assert_eq!(d2.metrics.sims.load(Ordering::SeqCst), 0);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_single_flight_survives_concurrent_submitters() {
        let _serial = SERIAL.lock();
        let (d, rx) = Daemon::new(1, 64, None);

        // A real worker drains while eight threads hammer the same
        // content key: ids land in different jobs shards, the key in
        // one cache shard. The per-shard follower-registration
        // ordering must guarantee no submission is ever stranded
        // Queued and the leader simulates exactly once (later
        // submissions either coalesce onto the in-flight run or hit
        // the finished cache entry).
        let worker = {
            let d = d.clone();
            let rx = rx.clone();
            std::thread::spawn(move || worker_loop(&d, &rx, 0))
        };

        let mut req = tiny_request("hist");
        req.hold_ms = Some(25); // widen the in-flight window
        let resolved = resolve(&req).unwrap();
        let submitters: Vec<_> = (0..8)
            .map(|_| {
                let d = d.clone();
                let r = resolved.clone();
                std::thread::spawn(move || {
                    (0..4)
                        .map(|_| accepted(d.submit(r.clone())).id)
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        let ids: Vec<u64> = submitters
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();

        // Wait for every job to reach a terminal state, then stop the
        // worker by closing the queue.
        let deadline = Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let all_done = ids
                .iter()
                .all(|&id| matches!(d.job_view(id).map(|v| v.status), Some(JobStatus::Completed)));
            if all_done {
                break;
            }
            assert!(Instant::now() < deadline, "stranded follower: {ids:?}");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        d.begin_drain();
        worker.join().unwrap();

        assert_eq!(d.metrics.sims.load(Ordering::SeqCst), 1, "single-flight");
        assert_eq!(d.metrics.submitted.load(Ordering::SeqCst), 32);
        assert_eq!(d.metrics.completed.load(Ordering::SeqCst), 32);
        let first = d.job_report(ids[0]).unwrap();
        for &id in &ids[1..] {
            assert!(
                Arc::ptr_eq(&first, &d.job_report(id).unwrap()),
                "all submissions must share one Arc'd report"
            );
        }
    }
}
