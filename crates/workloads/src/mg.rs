//! NAS **MG** — multigrid V-cycle on a 3D grid.
//!
//! Runs V-cycles of a 7-point-stencil smoother with restriction and
//! prolongation between levels. Fine-level sweeps stream the large grid
//! (one reuse per neighbouring plane); coarse levels are small and hot.
//! This produces the narrow medium-reuse band Fig. 3 shows for MG.

use crate::common::{elem, GenConfig, Layout, ThreadTraces, TraceBuilder};
use redcache_types::PhysAddr;

const ELEM: u64 = 8; // f64

struct Level {
    base: PhysAddr,
    n: usize,
}

fn idx(n: usize, x: usize, y: usize, z: usize) -> u64 {
    ((z * n + y) * n + x) as u64
}

/// One 7-point smoother sweep over a level, rows partitioned by thread.
fn smooth(b: &mut TraceBuilder, lv: &Level, threads: usize) {
    let n = lv.n;
    for z in 1..n - 1 {
        let t = z % threads;
        if !b.has_budget(t) {
            continue;
        }
        for y in 1..n - 1 {
            for x in 1..n - 1 {
                // Centre + 6 neighbours, then store.
                b.load(t, elem(lv.base, idx(n, x, y, z), ELEM), 5);
                b.load(t, elem(lv.base, idx(n, x - 1, y, z), ELEM), 1);
                b.load(t, elem(lv.base, idx(n, x + 1, y, z), ELEM), 1);
                b.load(t, elem(lv.base, idx(n, x, y - 1, z), ELEM), 1);
                b.load(t, elem(lv.base, idx(n, x, y + 1, z), ELEM), 1);
                b.load(t, elem(lv.base, idx(n, x, y, z - 1), ELEM), 1);
                b.load(t, elem(lv.base, idx(n, x, y, z + 1), ELEM), 1);
                b.store(t, elem(lv.base, idx(n, x, y, z), ELEM), 3);
            }
            if !b.has_budget(t) {
                break;
            }
        }
    }
}

/// Restriction: coarse(x,y,z) averaged from the fine grid.
fn restrict(b: &mut TraceBuilder, fine: &Level, coarse: &Level, threads: usize) {
    let nc = coarse.n;
    for z in 0..nc {
        let t = z % threads;
        for y in 0..nc {
            for x in 0..nc {
                b.load(
                    t,
                    elem(fine.base, idx(fine.n, 2 * x, 2 * y, 2 * z), ELEM),
                    4,
                );
                b.store(t, elem(coarse.base, idx(nc, x, y, z), ELEM), 2);
            }
            if !b.has_budget(t) {
                break;
            }
        }
    }
}

/// Prolongation: fine updated from the coarse grid.
fn prolong(b: &mut TraceBuilder, coarse: &Level, fine: &Level, threads: usize) {
    let nc = coarse.n;
    for z in 0..nc {
        let t = z % threads;
        for y in 0..nc {
            for x in 0..nc {
                b.load(t, elem(coarse.base, idx(nc, x, y, z), ELEM), 3);
                b.store(
                    t,
                    elem(fine.base, idx(fine.n, 2 * x, 2 * y, 2 * z), ELEM),
                    2,
                );
            }
            if !b.has_budget(t) {
                break;
            }
        }
    }
}

pub(crate) fn generate(cfg: &GenConfig) -> ThreadTraces {
    let mut layout = Layout::new();
    let mut levels = Vec::new();
    let mut n = cfg.dim(64);
    while n >= 8 {
        let base = layout.alloc((n * n * n) as u64 * ELEM);
        levels.push(Level { base, n });
        n /= 2;
    }
    let mut b = TraceBuilder::new(cfg);
    let threads = cfg.threads;
    for _cycle in 0..3 {
        // Down-sweep.
        for i in 0..levels.len() - 1 {
            smooth(&mut b, &levels[i], threads);
            restrict(&mut b, &levels[i], &levels[i + 1], threads);
        }
        smooth(&mut b, levels.last().unwrap(), threads);
        // Up-sweep.
        for i in (0..levels.len() - 1).rev() {
            prolong(&mut b, &levels[i + 1], &levels[i], threads);
            smooth(&mut b, &levels[i], threads);
        }
        if b.exhausted() {
            break;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_cpu::TraceStats;

    #[test]
    fn deterministic() {
        let cfg = GenConfig::tiny();
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn stencil_reuse_shows_in_trace() {
        let cfg = GenConfig::tiny();
        let flat: Vec<_> = generate(&cfg).into_iter().flatten().collect();
        let s = TraceStats::from_trace(&flat);
        // A 7-point stencil revisits each line many times per sweep.
        let reuse = s.accesses as f64 / s.footprint_lines as f64;
        assert!(reuse > 4.0, "mean line reuse {reuse}");
        // Smoother is load-dominated.
        assert!(s.store_fraction() < 0.35);
    }
}
