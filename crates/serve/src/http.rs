//! Minimal hand-rolled HTTP/1.1 — just enough for the daemon's API.
//!
//! Two parser entry points share the same grammar and the same
//! hardening caps:
//!
//! * [`read_request`] — the original blocking reader used by the
//!   thread-per-connection baseline engine and by tools that own a
//!   socket outright.
//! * [`parse_request`] — an incremental parser over a growing byte
//!   buffer for the nonblocking event loop: it returns `Ok(None)`
//!   while the request is incomplete and `(Request, consumed)` once a
//!   full request is buffered, which is what makes HTTP/1.1
//!   keep-alive and pipelining possible (several requests may sit in
//!   one buffer; callers re-invoke after draining `consumed` bytes).
//!
//! Both enforce the PR 6 hardening identically: capped request lines,
//! an aggregate header budget, conflicting-`Content-Length` rejection
//! (request-smuggling material, RFC 9110 §8.6), and bounded bodies.
//! Bodies are sized by `Content-Length` only — no TLS, no chunked
//! encoding: the API is line-of-sight (localhost/cluster) tooling,
//! not an internet-facing edge.

use std::io::{self, BufRead, Read, Write};

/// Upper bound on an accepted request body (a job submission is a few
/// hundred bytes; 1 MiB leaves room for generous synthetic specs).
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Upper bound on the request line + headers combined.
const MAX_HEADER_BYTES: usize = 64 << 10;

/// Upper bound on buffered-but-unparsed bytes for one in-flight
/// request: head budget plus body budget. A connection whose buffer
/// exceeds this without yielding a complete request is misbehaving
/// (the parser will have errored already in every reachable case;
/// this is the event loop's belt-and-braces bound).
pub const MAX_REQUEST_BYTES: usize = MAX_HEADER_BYTES + MAX_BODY_BYTES;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Path component of the target, query string stripped.
    pub path: String,
    /// Raw `(name, value)` header pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// True when the request line said `HTTP/1.0` (default close)
    /// rather than `HTTP/1.1` (default keep-alive).
    pub http10: bool,
}

impl Request {
    /// First header with the given case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection must close after this request's
    /// response: `Connection: close` always wins; otherwise HTTP/1.1
    /// defaults to keep-alive and HTTP/1.0 defaults to close unless
    /// it opted in with `Connection: keep-alive`.
    pub fn wants_close(&self) -> bool {
        let token = |v: &str, t: &str| v.split(',').any(|p| p.trim().eq_ignore_ascii_case(t));
        match self.header("connection") {
            Some(v) if token(v, "close") => true,
            Some(v) => self.http10 && !token(v, "keep-alive"),
            None => self.http10,
        }
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Parses a `METHOD target HTTP/1.x` line (trailing `\r\n` tolerated —
/// `\r` is whitespace to `split_whitespace`). Shared by both parsers
/// so they cannot drift.
fn parse_request_line(line: &str) -> io::Result<(String, String, bool)> {
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let target = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1") {
        return Err(bad("malformed request line"));
    }
    Ok((method, target, version == "HTTP/1.0"))
}

/// Resolves the body length from the header set. Absent
/// `Content-Length` means no body; a present-but-unparseable one is a
/// malformed request, not a body-less one. Repeated copies must
/// agree: silently honouring the first of two conflicting lengths is
/// classic request-smuggling material (RFC 9110 §8.6), so a mismatch
/// is a 400. Shared by both parsers.
fn body_length(headers: &[(String, String)]) -> io::Result<usize> {
    let mut len: Option<usize> = None;
    for v in headers
        .iter()
        .filter(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| v)
    {
        let parsed = v
            .parse::<usize>()
            .map_err(|_| bad("invalid Content-Length header"))?;
        match len {
            Some(prev) if prev != parsed => {
                return Err(bad("conflicting Content-Length headers"));
            }
            _ => len = Some(parsed),
        }
    }
    let len = len.unwrap_or(0);
    if len > MAX_BODY_BYTES {
        return Err(bad("body too large"));
    }
    Ok(len)
}

/// Reads one `\n`-terminated line holding at most `cap` bytes, through
/// a [`std::io::Take`]-bounded view of `r` so a client streaming bytes
/// with no newline is cut off after `cap + 1` bytes instead of growing
/// the line buffer without limit. Returns `Ok(None)` on a clean EOF
/// before any byte, and `InvalidData` (`too_big`) once the cap is
/// exceeded.
fn read_line_capped(r: &mut impl BufRead, cap: usize, too_big: &str) -> io::Result<Option<String>> {
    let mut line = String::new();
    let n = r.by_ref().take(cap as u64 + 1).read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if n > cap {
        return Err(bad(too_big));
    }
    Ok(Some(line))
}

/// Reads one request from `r`. Returns `Ok(None)` on a clean EOF
/// before any bytes (client connected and went away).
///
/// # Errors
///
/// Propagates I/O errors and returns `InvalidData` for malformed or
/// oversized requests.
pub fn read_request(r: &mut impl BufRead) -> io::Result<Option<Request>> {
    let Some(line) = read_line_capped(r, MAX_HEADER_BYTES, "request line too large")? else {
        return Ok(None);
    };
    let (method, target, http10) = parse_request_line(&line)?;

    let mut headers = Vec::new();
    let mut total = line.len();
    loop {
        // Each header line is individually bounded by the combined
        // budget left, so neither one endless line nor many modest
        // ones can exceed MAX_HEADER_BYTES in aggregate.
        let h = read_line_capped(r, MAX_HEADER_BYTES - total, "headers too large")?
            .ok_or_else(|| bad("connection closed inside headers"))?;
        total += h.len();
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            headers.push((k.trim().to_string(), v.trim().to_string()));
        }
    }

    let len = body_length(&headers)?;
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;

    let path = target.split('?').next().unwrap_or("").to_string();
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
        http10,
    }))
}

/// Scans `buf[start..]` for a line under the same cap discipline as
/// [`read_line_capped`]: at most `cap` bytes including the newline.
/// `Ok(Some(end))` has `buf[start..end]` as the line including its
/// `\n`; `Ok(None)` means more bytes are needed (and staying under
/// budget so far).
fn find_line(buf: &[u8], start: usize, cap: usize, too_big: &str) -> io::Result<Option<usize>> {
    let avail = buf.len() - start;
    let window = avail.min(cap + 1);
    match buf[start..start + window].iter().position(|&b| b == b'\n') {
        Some(i) if i + 1 > cap => Err(bad(too_big)),
        Some(i) => Ok(Some(start + i + 1)),
        None if avail > cap => Err(bad(too_big)),
        None => Ok(None),
    }
}

/// Incrementally parses one request from the front of `buf`.
///
/// Returns `Ok(None)` while the buffered bytes form only a prefix of
/// a request (read more and call again), and `Ok(Some((request,
/// consumed)))` once a full request is present — the caller drains
/// `consumed` bytes and may call again immediately to pick up a
/// pipelined successor.
///
/// # Errors
///
/// `InvalidData` for malformed or oversized requests, with the same
/// caps and the same error messages as [`read_request`]: the two
/// parsers share `parse_request_line` / `body_length`, and this one
/// mirrors the blocking reader's per-line and aggregate head budgets
/// exactly.
pub fn parse_request(buf: &[u8]) -> io::Result<Option<(Request, usize)>> {
    let Some(line_end) = find_line(buf, 0, MAX_HEADER_BYTES, "request line too large")? else {
        return Ok(None);
    };
    let line =
        std::str::from_utf8(&buf[..line_end]).map_err(|_| bad("invalid utf-8 in request head"))?;
    let (method, target, http10) = parse_request_line(line)?;

    let mut headers = Vec::new();
    let mut pos = line_end;
    let mut total = line_end;
    loop {
        let Some(end) = find_line(buf, pos, MAX_HEADER_BYTES - total, "headers too large")? else {
            return Ok(None);
        };
        let h = std::str::from_utf8(&buf[pos..end])
            .map_err(|_| bad("invalid utf-8 in request head"))?;
        total += end - pos;
        pos = end;
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            headers.push((k.trim().to_string(), v.trim().to_string()));
        }
    }

    let len = body_length(&headers)?;
    if buf.len() - pos < len {
        return Ok(None);
    }
    let body = buf[pos..pos + len].to_vec();

    let path = target.split('?').next().unwrap_or("").to_string();
    Ok(Some((
        Request {
            method,
            path,
            headers,
            body,
            http10,
        },
        pos + len,
    )))
}

/// One response, written with an explicit `Content-Length` and
/// `Connection` header.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Additional headers (e.g. `Retry-After`).
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    /// A JSON response serializing `value`.
    pub fn json<T: serde::Serialize>(status: u16, value: &T) -> Self {
        let body = serde_json::to_vec_pretty(value)
            .unwrap_or_else(|e| format!("{{\"error\": \"serialize failed: {e}\"}}").into_bytes());
        Self {
            status,
            content_type: "application/json",
            body,
            extra_headers: Vec::new(),
        }
    }

    /// A `{"error": message}` JSON response.
    pub fn error(status: u16, message: &str) -> Self {
        Self::json(status, &serde_json::json!({ "error": message }))
    }

    /// A raw-body response with an explicit content type.
    pub fn raw(status: u16, content_type: &'static str, body: Vec<u8>) -> Self {
        Self {
            status,
            content_type,
            body,
            extra_headers: Vec::new(),
        }
    }

    /// Appends an extra header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.extra_headers
            .push((name.to_string(), value.to_string()));
        self
    }

    /// Serializes the response head + body, announcing either
    /// `connection: keep-alive` or `connection: close`.
    pub fn render(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        // Writing into a Vec cannot fail.
        let _ = write!(
            out,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (k, v) in &self.extra_headers {
            let _ = write!(out, "{k}: {v}\r\n");
        }
        let _ = write!(
            out,
            "connection: {}\r\n\r\n",
            if keep_alive { "keep-alive" } else { "close" }
        );
        out.extend_from_slice(&self.body);
        out
    }

    /// Writes the response to `w` (single-shot, `Connection: close`)
    /// and flushes.
    ///
    /// # Errors
    ///
    /// Propagates the writer's I/O errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&self.render(false))?;
        w.flush()
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /jobs?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, b"body");
        assert_eq!(req.header("host"), Some("h"));
        assert!(!req.http10);
    }

    #[test]
    fn clean_eof_is_none_and_garbage_is_an_error() {
        assert!(read_request(&mut BufReader::new(&b""[..]))
            .unwrap()
            .is_none());
        assert!(read_request(&mut BufReader::new(&b"nonsense\r\n\r\n"[..])).is_err());
    }

    #[test]
    fn invalid_content_length_is_an_error_not_an_empty_body() {
        for raw in [
            &b"POST /jobs HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
            &b"POST /jobs HTTP/1.1\r\nContent-Length: 99999999999999999999999\r\n\r\n"[..],
            &b"POST /jobs HTTP/1.1\r\nContent-Length: -1\r\n\r\n"[..],
        ] {
            let err = read_request(&mut BufReader::new(raw)).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{raw:?}");
        }
    }

    #[test]
    fn truncated_body_is_an_error() {
        let raw = b"POST /jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert!(read_request(&mut BufReader::new(&raw[..])).is_err());
    }

    #[test]
    fn endless_request_line_is_rejected_with_bounded_memory() {
        // An infinite newline-free stream: without the Take bound this
        // read_line would grow the buffer forever. Termination of this
        // test *is* the bounded-memory proof — at most
        // MAX_HEADER_BYTES + 1 bytes are ever pulled.
        let mut r = BufReader::new(std::io::repeat(b'A'));
        let err = read_request(&mut r).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("request line"), "{err}");
    }

    #[test]
    fn megabyte_request_line_is_rejected() {
        // The acceptance-criteria shape: 1 MiB with no newline.
        let raw = vec![b'A'; 1 << 20];
        let err = read_request(&mut BufReader::new(&raw[..])).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn request_line_just_under_the_cap_still_parses() {
        // A huge-but-legal target: the cap applies to the line, not to
        // any fixed token budget.
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'x', 1000));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        let req = read_request(&mut BufReader::new(&raw[..]))
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path.len(), 1001);
    }

    #[test]
    fn endless_header_line_is_rejected() {
        let mut raw = b"GET / HTTP/1.1\r\nx-junk: ".to_vec();
        raw.extend(std::iter::repeat_n(b'B', MAX_HEADER_BYTES + 10));
        let err = read_request(&mut BufReader::new(&raw[..])).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("headers"), "{err}");
    }

    #[test]
    fn many_modest_header_lines_still_hit_the_aggregate_cap() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        let line = format!("x-h: {}\r\n", "c".repeat(1000));
        for _ in 0..(MAX_HEADER_BYTES / line.len() + 2) {
            raw.extend_from_slice(line.as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let err = read_request(&mut BufReader::new(&raw[..])).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        let raw = b"POST /jobs HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\nbody!";
        let err = read_request(&mut BufReader::new(&raw[..])).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("Content-Length"), "{err}");
    }

    #[test]
    fn agreeing_duplicate_content_lengths_are_accepted() {
        // RFC 9110 §8.6 lets a recipient accept repeated identical
        // values; only disagreement is smuggling material.
        let raw = b"POST /jobs HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn responses_carry_status_line_and_length() {
        let mut out = Vec::new();
        Response::json(202, &serde_json::json!({"ok": true}))
            .with_header("retry-after", "1")
            .write_to(&mut out)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 202 Accepted\r\n"), "{s}");
        assert!(s.contains("retry-after: 1\r\n"));
        assert!(s.contains("connection: close"));
        assert!(s.ends_with("}"));
    }

    // ---- incremental parser ----

    #[test]
    fn incremental_parser_handles_partial_then_complete() {
        let raw = b"POST /jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        // Every strict prefix is Incomplete; the full buffer parses.
        for cut in 0..raw.len() {
            assert!(
                parse_request(&raw[..cut]).unwrap().is_none(),
                "prefix of {cut} bytes must be incomplete"
            );
        }
        let (req, consumed) = parse_request(raw).unwrap().unwrap();
        assert_eq!(consumed, raw.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn incremental_parser_yields_pipelined_requests_in_order() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
        buf.extend_from_slice(b"POST /jobs HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi");
        buf.extend_from_slice(b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");

        let (r1, c1) = parse_request(&buf).unwrap().unwrap();
        assert_eq!(r1.path, "/healthz");
        assert!(!r1.wants_close());
        buf.drain(..c1);

        let (r2, c2) = parse_request(&buf).unwrap().unwrap();
        assert_eq!(r2.path, "/jobs");
        assert_eq!(r2.body, b"hi");
        buf.drain(..c2);

        let (r3, c3) = parse_request(&buf).unwrap().unwrap();
        assert_eq!(r3.path, "/metrics");
        assert!(r3.wants_close());
        buf.drain(..c3);
        assert!(buf.is_empty());
        assert!(parse_request(&buf).unwrap().is_none());
    }

    #[test]
    fn incremental_parser_enforces_the_same_caps() {
        // Endless request line.
        let raw = vec![b'A'; MAX_HEADER_BYTES + 2];
        let err = parse_request(&raw).unwrap_err();
        assert!(err.to_string().contains("request line"), "{err}");

        // Aggregate header budget.
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        let line = format!("x-h: {}\r\n", "c".repeat(1000));
        for _ in 0..(MAX_HEADER_BYTES / line.len() + 2) {
            raw.extend_from_slice(line.as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        assert!(parse_request(&raw).is_err());

        // Conflicting Content-Length.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\nbody!";
        let err = parse_request(raw).unwrap_err();
        assert!(err.to_string().contains("Content-Length"), "{err}");

        // Oversized body is rejected from the headers alone, before
        // any body bytes arrive.
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = parse_request(raw.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("body too large"), "{err}");
    }

    #[test]
    fn connection_semantics_follow_version_and_header() {
        let parse = |s: &str| parse_request(s.as_bytes()).unwrap().unwrap().0;
        // HTTP/1.1 defaults to keep-alive.
        assert!(!parse("GET / HTTP/1.1\r\n\r\n").wants_close());
        // Explicit close always wins, case-insensitively, in lists.
        assert!(parse("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").wants_close());
        assert!(parse("GET / HTTP/1.1\r\nConnection: foo, close\r\n\r\n").wants_close());
        // HTTP/1.0 defaults to close but may opt in.
        assert!(parse("GET / HTTP/1.0\r\n\r\n").wants_close());
        assert!(!parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").wants_close());
    }

    #[test]
    fn render_announces_keepalive_or_close() {
        let resp = Response::raw(200, "text/plain", b"ok".to_vec());
        let ka = String::from_utf8(resp.render(true)).unwrap();
        assert!(ka.contains("connection: keep-alive\r\n"), "{ka}");
        let cl = String::from_utf8(resp.render(false)).unwrap();
        assert!(cl.contains("connection: close\r\n"), "{cl}");
        // Both carry an accurate Content-Length so a pipelined reader
        // can frame the body.
        assert!(ka.contains("content-length: 2\r\n"));
    }
}
