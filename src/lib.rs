//! Meta-crate for the RedCache reproduction workspace.
//!
//! This package exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`); the public API lives
//! in the [`redcache`] crate and its substrates. See the repository
//! README for the tour.

pub use redcache;
pub use redcache_cache;
pub use redcache_cpu;
pub use redcache_dram;
pub use redcache_energy;
pub use redcache_policies;
pub use redcache_types;
pub use redcache_workloads;
