//! The ROB-occupancy out-of-order core model.
//!
//! Each core walks its trace in program order. Between memory accesses
//! it charges `gap / issue_width` dispatch cycles. Loads enter an
//! outstanding-load queue; the core keeps dispatching past them (memory
//! level parallelism) until either
//!
//! * the **ROB window** fills — an instruction cannot dispatch while a
//!   load more than `rob_size` instructions older is still in flight
//!   (in-order retirement), or
//! * the **outstanding-load budget** (per-core MSHRs) is exhausted.
//!
//! Stores never block dispatch (a write buffer is assumed), but they do
//! traverse the cache hierarchy and consume memory bandwidth.

use crate::trace::Access;
use redcache_types::{Cycle, MemOp};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

/// Core parameters (Table I: 4-issue, 256-entry ROB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Instructions dispatched (and retired) per cycle.
    pub issue_width: u32,
    /// Reorder-buffer capacity in instructions.
    pub rob_size: u32,
    /// Maximum loads in flight per core.
    pub max_outstanding_loads: usize,
}

impl CoreConfig {
    /// Table I: 4-issue, 256-entry ROB, 16 in-flight loads.
    pub const fn table1() -> Self {
        Self {
            issue_width: 4,
            rob_size: 256,
            max_outstanding_loads: 16,
        }
    }
}

/// Identifies an in-flight load of one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LoadToken(pub u64);

/// What a core wants to do when polled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poll {
    /// Trace exhausted and all loads returned; the payload is the cycle
    /// at which the core retired its last instruction.
    Finished(Cycle),
    /// Dispatch-limited: nothing to do before the given cycle.
    NotYet(Cycle),
    /// Blocked on memory (ROB window full or load budget exhausted).
    WaitingMem,
    /// The next access is ready to issue now.
    Ready(Access),
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    instr_no: u64,
    done_at: Option<Cycle>,
}

/// One out-of-order core consuming a memory trace.
#[derive(Debug)]
pub struct Core {
    cfg: CoreConfig,
    /// The reference stream, shared: many simulations of the same
    /// workload point at one generated trace.
    trace: Arc<[Access]>,
    idx: usize,
    /// Cumulative instructions dispatched before `trace[idx]`.
    instr_no: u64,
    /// Earliest cycle the next access may dispatch (gap pacing).
    dispatch_ready: Cycle,
    /// Outstanding loads in program order.
    in_flight: VecDeque<InFlight>,
    /// Latest load completion seen (lower-bounds the finish time).
    last_completion: Cycle,
    /// Latest retirement time among loads already popped from
    /// `in_flight` by the ROB check. Folding it into every dispatch
    /// bound keeps `poll` monotone in `now`: the answer no longer
    /// depends on how often the core was polled before, which is what
    /// lets the simulator skip polls without changing behaviour.
    retire_floor: Cycle,
    next_token: u64,
    loads_issued: u64,
    stores_issued: u64,
    stall_cycles_mem: Cycle,
    last_poll: Cycle,
}

impl Core {
    /// Creates a core that will execute `trace` (owned or shared — a
    /// `Vec<Access>` and an `Arc<[Access]>` both convert).
    pub fn new(cfg: CoreConfig, trace: impl Into<Arc<[Access]>>) -> Self {
        let trace = trace.into();
        assert!(
            cfg.issue_width > 0 && cfg.rob_size > 0,
            "degenerate core config"
        );
        assert!(
            cfg.max_outstanding_loads > 0,
            "need at least one outstanding load"
        );
        Self {
            cfg,
            trace,
            idx: 0,
            instr_no: 0,
            dispatch_ready: 0,
            in_flight: VecDeque::new(),
            last_completion: 0,
            retire_floor: 0,
            next_token: 0,
            loads_issued: 0,
            stores_issued: 0,
            stall_cycles_mem: 0,
            last_poll: 0,
        }
    }

    fn incomplete_loads(&self) -> usize {
        self.in_flight
            .iter()
            .filter(|l| l.done_at.is_none())
            .count()
    }

    /// Retires completed loads that have left the ROB window for the
    /// instruction numbered `upto`, folding their completion times into
    /// the persistent `retire_floor`, and returns that floor — or `Err`
    /// if an incomplete load blocks the window.
    fn rob_constraint(&mut self, upto: u64) -> Result<Cycle, ()> {
        let window_floor = upto.saturating_sub(self.cfg.rob_size as u64);
        while let Some(front) = self.in_flight.front() {
            if front.instr_no >= window_floor {
                break;
            }
            match front.done_at {
                Some(t) => {
                    self.retire_floor = self.retire_floor.max(t);
                    self.in_flight.pop_front();
                }
                None => return Err(()), // in-order retire blocked
            }
        }
        Ok(self.retire_floor)
    }

    /// Asks the core what it wants to do at cycle `now`.
    pub fn poll(&mut self, now: Cycle) -> Poll {
        if now > self.last_poll {
            self.last_poll = now;
        }
        if self.idx >= self.trace.len() {
            if self.incomplete_loads() > 0 {
                return Poll::WaitingMem;
            }
            let fin = self.dispatch_ready.max(self.last_completion);
            return Poll::Finished(fin);
        }
        let a = self.trace[self.idx];
        let this_instr = self.instr_no + a.gap as u64 + 1;
        // Gap pacing.
        let pace = (a.gap as u64 + 1).div_ceil(self.cfg.issue_width as u64);
        let mut earliest = self.dispatch_ready + pace;
        // ROB window.
        match self.rob_constraint(this_instr) {
            Ok(t) => earliest = earliest.max(t),
            Err(()) => {
                self.stall_cycles_mem += 1;
                return Poll::WaitingMem;
            }
        }
        // Outstanding-load budget (loads only).
        if a.op == MemOp::Load && self.incomplete_loads() >= self.cfg.max_outstanding_loads {
            self.stall_cycles_mem += 1;
            return Poll::WaitingMem;
        }
        if earliest > now {
            return Poll::NotYet(earliest);
        }
        Poll::Ready(a)
    }

    fn consume(&mut self, now: Cycle) -> Access {
        let a = self.trace[self.idx];
        self.idx += 1;
        self.instr_no += a.gap as u64 + 1;
        self.dispatch_ready = now;
        a
    }

    /// Commits the polled access as a cache hit with total `latency`.
    /// Loads complete at `now + latency`; stores retire immediately.
    pub fn commit_hit(&mut self, now: Cycle, latency: Cycle) {
        let a = self.consume(now);
        match a.op {
            MemOp::Load => {
                self.loads_issued += 1;
                let done = now + latency;
                self.last_completion = self.last_completion.max(done);
                self.in_flight.push_back(InFlight {
                    instr_no: self.instr_no,
                    done_at: Some(done),
                });
            }
            MemOp::Store => self.stores_issued += 1,
        }
    }

    /// Commits the polled access as a load miss going to memory.
    /// Returns the token to pass back via [`Core::complete_load`].
    ///
    /// # Panics
    ///
    /// Panics if the polled access was a store (use
    /// [`Core::commit_store_miss`]).
    pub fn commit_load_miss(&mut self, now: Cycle) -> LoadToken {
        let a = self.consume(now);
        assert!(a.op == MemOp::Load, "commit_load_miss on a store");
        self.loads_issued += 1;
        let tok = LoadToken(self.next_token);
        self.next_token += 1;
        self.in_flight.push_back(InFlight {
            instr_no: self.instr_no,
            done_at: None,
        });
        tok
    }

    /// Commits the polled access as a store miss (write-allocate fetch
    /// happens below; the core does not wait).
    pub fn commit_store_miss(&mut self, now: Cycle) {
        let a = self.consume(now);
        assert!(a.op == MemOp::Store, "commit_store_miss on a load");
        self.stores_issued += 1;
    }

    /// Signals that the load identified by `token` received its data.
    ///
    /// Tokens are issued in order, and in-flight entries retire from the
    /// front, so the `n`-th incomplete entry matches the `n`-th
    /// outstanding token.
    pub fn complete_load(&mut self, token: LoadToken, now: Cycle) {
        // Tokens count all misses ever issued; incomplete entries hold
        // the still-pending suffix. Find the oldest incomplete entry —
        // misses complete the oldest matching token first is NOT
        // guaranteed by memory, so we track by matching issue order:
        // the k-th incomplete entry corresponds to the k-th outstanding
        // token in issue order. We therefore search by token age.
        let _ = token;
        if let Some(e) = self.in_flight.iter_mut().find(|l| l.done_at.is_none()) {
            e.done_at = Some(now);
            self.last_completion = self.last_completion.max(now);
        }
    }

    /// Loads issued so far.
    pub fn loads_issued(&self) -> u64 {
        self.loads_issued
    }

    /// Stores issued so far.
    pub fn stores_issued(&self) -> u64 {
        self.stores_issued
    }

    /// Instructions represented by the consumed prefix of the trace.
    pub fn instructions_dispatched(&self) -> u64 {
        self.instr_no
    }

    /// Cycles spent blocked on memory.
    pub fn mem_stall_cycles(&self) -> Cycle {
        self.stall_cycles_mem
    }

    /// True once the trace is exhausted and all loads returned.
    pub fn finished(&mut self, now: Cycle) -> bool {
        matches!(self.poll(now), Poll::Finished(_))
    }
}

/// Captured execution state of one [`Core`] (DESIGN.md §3.13): the
/// trace cursor, ROB/in-flight bookkeeping and counters — everything
/// except the configuration and the trace itself, which are rebuilt
/// (and re-shared) by [`Core::new`] from the same workload.
#[derive(Debug, Clone)]
pub struct CoreState {
    idx: usize,
    instr_no: u64,
    dispatch_ready: Cycle,
    in_flight: VecDeque<InFlight>,
    last_completion: Cycle,
    retire_floor: Cycle,
    next_token: u64,
    loads_issued: u64,
    stores_issued: u64,
    stall_cycles_mem: Cycle,
    last_poll: Cycle,
}

impl redcache_types::Snapshot for Core {
    type State = CoreState;

    fn snapshot(&self) -> CoreState {
        CoreState {
            idx: self.idx,
            instr_no: self.instr_no,
            dispatch_ready: self.dispatch_ready,
            in_flight: self.in_flight.clone(),
            last_completion: self.last_completion,
            retire_floor: self.retire_floor,
            next_token: self.next_token,
            loads_issued: self.loads_issued,
            stores_issued: self.stores_issued,
            stall_cycles_mem: self.stall_cycles_mem,
            last_poll: self.last_poll,
        }
    }
}

impl redcache_types::Restorable for Core {
    fn restore(&mut self, state: &CoreState) {
        assert!(
            state.idx <= self.trace.len(),
            "snapshot restored into a core with a different trace"
        );
        self.idx = state.idx;
        self.instr_no = state.instr_no;
        self.dispatch_ready = state.dispatch_ready;
        self.in_flight = state.in_flight.clone();
        self.last_completion = state.last_completion;
        self.retire_floor = state.retire_floor;
        self.next_token = state.next_token;
        self.loads_issued = state.loads_issued;
        self.stores_issued = state.stores_issued;
        self.stall_cycles_mem = state.stall_cycles_mem;
        self.last_poll = state.last_poll;
    }
}

impl redcache_types::wire::Wire for LoadToken {
    fn put(&self, out: &mut Vec<u8>) {
        redcache_types::wire::Wire::put(&self.0, out);
    }
    fn get(
        r: &mut redcache_types::wire::Reader<'_>,
    ) -> Result<Self, redcache_types::wire::WireError> {
        Ok(LoadToken(redcache_types::wire::Wire::get(r)?))
    }
}

redcache_types::wire_struct!(InFlight { instr_no, done_at });
redcache_types::wire_struct!(CoreState {
    idx,
    instr_no,
    dispatch_ready,
    in_flight,
    last_completion,
    retire_floor,
    next_token,
    loads_issued,
    stores_issued,
    stall_cycles_mem,
    last_poll,
});

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_types::PhysAddr;

    fn load(addr: u64, gap: u32) -> Access {
        Access {
            op: MemOp::Load,
            addr: PhysAddr::new(addr),
            gap,
        }
    }

    fn store(addr: u64, gap: u32) -> Access {
        Access {
            op: MemOp::Store,
            addr: PhysAddr::new(addr),
            gap,
        }
    }

    fn cfg() -> CoreConfig {
        CoreConfig {
            issue_width: 4,
            rob_size: 8,
            max_outstanding_loads: 2,
        }
    }

    #[test]
    fn empty_trace_finishes_immediately() {
        let mut c = Core::new(cfg(), vec![]);
        assert_eq!(c.poll(0), Poll::Finished(0));
    }

    #[test]
    fn gap_paces_dispatch() {
        let mut c = Core::new(cfg(), vec![load(0, 15)]);
        // (15 + 1) / 4 = 4 cycles of dispatch before the load.
        assert_eq!(c.poll(0), Poll::NotYet(4));
        assert!(matches!(c.poll(4), Poll::Ready(_)));
    }

    #[test]
    fn hit_latency_delays_finish() {
        let mut c = Core::new(cfg(), vec![load(0, 0)]);
        assert!(matches!(c.poll(1), Poll::Ready(_)));
        c.commit_hit(1, 10);
        assert_eq!(c.poll(100), Poll::Finished(11));
    }

    #[test]
    fn mlp_overlaps_up_to_budget() {
        let mut c = Core::new(cfg(), vec![load(0, 0), load(64, 0), load(128, 0)]);
        assert!(matches!(c.poll(1), Poll::Ready(_)));
        let t0 = c.commit_load_miss(1);
        assert!(matches!(c.poll(2), Poll::Ready(_)));
        let _t1 = c.commit_load_miss(2);
        // Budget (2) exhausted: third load must wait.
        assert_eq!(c.poll(3), Poll::WaitingMem);
        c.complete_load(t0, 50);
        assert!(matches!(c.poll(50), Poll::Ready(_)));
    }

    #[test]
    fn rob_window_blocks_distant_dispatch() {
        // rob_size 8: after a miss, at most 8 more instructions can
        // dispatch before stalling on it.
        let trace = vec![load(0, 0), store(64, 5), store(128, 5)];
        let mut c = Core::new(cfg(), trace);
        assert!(matches!(c.poll(1), Poll::Ready(_)));
        let tok = c.commit_load_miss(1);
        // store at instr ~7 dispatches fine.
        loop {
            match c.poll(10) {
                Poll::Ready(a) => {
                    assert!(a.op.is_store());
                    c.commit_hit(10, 1);
                    break;
                }
                Poll::NotYet(_) => continue,
                other => panic!("unexpected {other:?}"),
            }
        }
        // Second store is > 8 instructions past the pending load.
        let mut saw_wait = false;
        for now in 11..20 {
            match c.poll(now) {
                Poll::WaitingMem => {
                    saw_wait = true;
                    break;
                }
                Poll::NotYet(_) => continue,
                Poll::Ready(_) => break,
                Poll::Finished(_) => unreachable!(),
            }
        }
        assert!(saw_wait, "ROB window should have blocked dispatch");
        c.complete_load(tok, 30);
        // Now it proceeds and finishes.
        let mut now = 30;
        loop {
            match c.poll(now) {
                Poll::Ready(_) => {
                    c.commit_hit(now, 1);
                }
                Poll::NotYet(t) => now = t,
                Poll::Finished(_) => break,
                Poll::WaitingMem => panic!("still blocked after completion"),
            }
        }
    }

    #[test]
    fn stores_never_block_dispatch() {
        let mut c = Core::new(cfg(), vec![store(0, 0), store(64, 0), store(128, 0)]);
        let mut now = 0;
        let mut issued = 0;
        while issued < 3 {
            match c.poll(now) {
                Poll::Ready(_) => {
                    c.commit_store_miss(now);
                    issued += 1;
                }
                Poll::NotYet(t) => now = t,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(matches!(c.poll(now), Poll::Finished(_)));
        assert_eq!(c.stores_issued(), 3);
    }

    #[test]
    fn finish_time_accounts_for_late_memory() {
        let mut c = Core::new(cfg(), vec![load(0, 0)]);
        assert!(matches!(c.poll(1), Poll::Ready(_)));
        let tok = c.commit_load_miss(1);
        assert_eq!(c.poll(500), Poll::WaitingMem);
        c.complete_load(tok, 700);
        assert_eq!(c.poll(700), Poll::Finished(700));
    }

    #[test]
    #[should_panic(expected = "on a store")]
    fn load_miss_commit_on_store_panics() {
        let mut c = Core::new(cfg(), vec![store(0, 0)]);
        let _ = c.poll(1);
        let _ = c.commit_load_miss(1);
    }

    #[test]
    fn instruction_accounting() {
        let mut c = Core::new(cfg(), vec![load(0, 9), store(64, 4)]);
        let mut now = 0;
        loop {
            match c.poll(now) {
                Poll::Ready(a) => {
                    if a.op.is_store() {
                        c.commit_store_miss(now)
                    } else {
                        c.commit_hit(now, 1)
                    }
                }
                Poll::NotYet(t) => now = t,
                Poll::Finished(_) => break,
                Poll::WaitingMem => now += 1,
            }
        }
        assert_eq!(c.instructions_dispatched(), 10 + 5);
    }
}
