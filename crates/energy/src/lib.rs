//! Event-based energy models for the RedCache reproduction.
//!
//! The paper computes energy with DRAMPower, the Micron power
//! calculator, CACTI 7 and McPAT (§IV.A). Those tools ultimately weight
//! *event counts* — activates, read/write bursts, refreshes, SRAM
//! lookups, instructions — with per-technology constants, and the
//! simulator produces exactly those counts. This crate supplies
//! constants of the published magnitudes (see [`DramEnergyConsts`] and
//! [`CpuEnergyConsts`]) and rolls the counts up into the HBM-cache
//! energy of Fig. 10 and the system energy of Fig. 11.
//!
//! # Example
//!
//! ```
//! use redcache_energy::{DramEnergyConsts, EnergyModel};
//! use redcache_dram::DramStats;
//!
//! let model = EnergyModel::default();
//! let mut stats = DramStats::default();
//! stats.energy.acts = 1000;
//! stats.energy.rd_bursts = 4000;
//! let e = model.dram_energy(&DramEnergyConsts::hbm(), &stats, 3_200_000, 32);
//! assert!(e.total_j() > 0.0);
//! ```

#![warn(missing_docs)]

use redcache_dram::DramStats;
use redcache_policies::ControllerStats;
use serde::{Deserialize, Serialize};

/// CPU clock frequency (Table I: 3.2 GHz); converts cycles to seconds.
pub const CPU_HZ: f64 = 3.2e9;

/// Per-event DRAM energy constants, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramEnergyConsts {
    /// One activate + precharge pair.
    pub act_pre_j: f64,
    /// DRAM-core energy of one 64 B burst (read or write).
    pub burst_core_j: f64,
    /// I/O energy per transferred byte.
    pub io_j_per_byte: f64,
    /// One all-bank refresh of one rank.
    pub refresh_j: f64,
    /// Background (standby) power per rank, watts.
    pub background_w_per_rank: f64,
}

impl DramEnergyConsts {
    /// In-package WideIO/HBM constants (O'Connor et al., MICRO'17
    /// magnitudes: ~3–4 pJ/bit end to end, small 2 KB rows).
    pub fn hbm() -> Self {
        Self {
            act_pre_j: 1.2e-9,
            burst_core_j: 1.6e-9,
            io_j_per_byte: 2.8e-11, // 3.5 pJ/bit
            refresh_j: 40e-9,
            background_w_per_rank: 0.018,
        }
    }

    /// Off-chip DDR4 constants (Micron power-calculator magnitudes:
    /// ~15–20 pJ/bit I/O over the board, 8 KB rows).
    pub fn ddr4() -> Self {
        Self {
            act_pre_j: 3.8e-9,
            burst_core_j: 2.6e-9,
            io_j_per_byte: 2.0e-10, // 16 pJ/bit
            refresh_j: 120e-9,
            background_w_per_rank: 0.075,
        }
    }
}

/// DRAM energy broken down by source, in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DramEnergyBreakdown {
    /// Activate/precharge energy.
    pub act_pre_j: f64,
    /// Core read/write burst energy.
    pub burst_j: f64,
    /// I/O transfer energy.
    pub io_j: f64,
    /// Refresh energy.
    pub refresh_j: f64,
    /// Standby/background energy.
    pub background_j: f64,
}

impl DramEnergyBreakdown {
    /// Total joules.
    pub fn total_j(&self) -> f64 {
        self.act_pre_j + self.burst_j + self.io_j + self.refresh_j + self.background_j
    }
}

/// Per-event CPU-side energy constants (McPAT/CACTI magnitudes for a
/// 16-core 22 nm out-of-order part).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuEnergyConsts {
    /// Dynamic energy per retired instruction.
    pub instr_j: f64,
    /// Leakage power per core, watts.
    pub leakage_w_per_core: f64,
    /// One L1 access.
    pub l1_access_j: f64,
    /// One L2 access.
    pub l2_access_j: f64,
    /// One L3 access.
    pub l3_access_j: f64,
    /// One controller table lookup (α buffer, presence, predictor —
    /// CACTI 7 small-SRAM magnitude).
    pub table_lookup_j: f64,
}

impl Default for CpuEnergyConsts {
    fn default() -> Self {
        Self {
            instr_j: 0.25e-9,
            leakage_w_per_core: 0.8,
            l1_access_j: 0.05e-9,
            l2_access_j: 0.2e-9,
            l3_access_j: 1.0e-9,
            table_lookup_j: 0.01e-9,
        }
    }
}

/// CPU + cache + controller energy breakdown, joules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CpuEnergyBreakdown {
    /// Core dynamic energy.
    pub dynamic_j: f64,
    /// Core leakage over the run.
    pub leakage_j: f64,
    /// SRAM cache access energy (L1+L2+L3).
    pub cache_j: f64,
    /// DRAM-cache-controller table energy.
    pub controller_j: f64,
}

impl CpuEnergyBreakdown {
    /// Total joules.
    pub fn total_j(&self) -> f64 {
        self.dynamic_j + self.leakage_j + self.cache_j + self.controller_j
    }
}

/// Whole-system energy rollup (the quantity of Fig. 11).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SystemEnergy {
    /// CPU cores, SRAM caches, controller tables.
    pub cpu: CpuEnergyBreakdown,
    /// In-package DRAM cache (the quantity of Fig. 10).
    pub hbm: DramEnergyBreakdown,
    /// Off-chip main memory.
    pub ddr: DramEnergyBreakdown,
}

impl SystemEnergy {
    /// Total system joules.
    pub fn total_j(&self) -> f64 {
        self.cpu.total_j() + self.hbm.total_j() + self.ddr.total_j()
    }
}

/// Inputs for the CPU-side rollup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CpuActivity {
    /// Instructions retired across all cores.
    pub instructions: u64,
    /// Execution time in CPU cycles.
    pub cycles: u64,
    /// Number of cores.
    pub cores: usize,
    /// L1 accesses.
    pub l1_accesses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L3 accesses.
    pub l3_accesses: u64,
}

/// The energy model: all constants in one place.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// HBM per-event constants.
    pub hbm: DramEnergyConsts,
    /// DDR4 per-event constants.
    pub ddr: DramEnergyConsts,
    /// CPU-side constants.
    pub cpu: CpuEnergyConsts,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            hbm: DramEnergyConsts::hbm(),
            ddr: DramEnergyConsts::ddr4(),
            cpu: CpuEnergyConsts::default(),
        }
    }
}

impl EnergyModel {
    /// Rolls up one DRAM system's energy from its event counts.
    /// `ranks` is the total rank count (background power scales with it).
    pub fn dram_energy(
        &self,
        consts: &DramEnergyConsts,
        stats: &DramStats,
        cycles: u64,
        ranks: usize,
    ) -> DramEnergyBreakdown {
        let seconds = cycles as f64 / CPU_HZ;
        let e = &stats.energy;
        DramEnergyBreakdown {
            act_pre_j: e.acts as f64 * consts.act_pre_j,
            burst_j: (e.rd_bursts + e.wr_bursts) as f64 * consts.burst_core_j,
            io_j: stats.bytes_total() as f64 * consts.io_j_per_byte,
            refresh_j: e.refreshes as f64 * consts.refresh_j,
            background_j: consts.background_w_per_rank * ranks as f64 * seconds,
        }
    }

    /// Rolls up the CPU-side energy.
    pub fn cpu_energy(&self, act: &CpuActivity, ctl: &ControllerStats) -> CpuEnergyBreakdown {
        let seconds = act.cycles as f64 / CPU_HZ;
        CpuEnergyBreakdown {
            dynamic_j: act.instructions as f64 * self.cpu.instr_j,
            leakage_j: self.cpu.leakage_w_per_core * act.cores as f64 * seconds,
            cache_j: act.l1_accesses as f64 * self.cpu.l1_access_j
                + act.l2_accesses as f64 * self.cpu.l2_access_j
                + act.l3_accesses as f64 * self.cpu.l3_access_j,
            controller_j: ctl.table_lookups as f64 * self.cpu.table_lookup_j,
        }
    }

    /// Full system rollup: Fig. 10's HBM energy is `result.hbm`,
    /// Fig. 11's system energy is `result.total_j()`.
    pub fn system_energy(
        &self,
        act: &CpuActivity,
        ctl: &ControllerStats,
        hbm: Option<&DramStats>,
        hbm_ranks: usize,
        ddr: &DramStats,
        ddr_ranks: usize,
    ) -> SystemEnergy {
        SystemEnergy {
            cpu: self.cpu_energy(act, ctl),
            hbm: hbm
                .map(|s| self.dram_energy(&self.hbm, s, act.cycles, hbm_ranks))
                .unwrap_or_default(),
            ddr: self.dram_energy(&self.ddr, ddr, act.cycles, ddr_ranks),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_dram::DramEnergyEvents;

    fn stats(acts: u64, rd: u64, wr: u64, refr: u64, bytes: u64) -> DramStats {
        DramStats {
            energy: DramEnergyEvents {
                acts,
                pres: acts,
                rd_bursts: rd,
                wr_bursts: wr,
                refreshes: refr,
            },
            bytes_read: bytes / 2,
            bytes_written: bytes / 2,
            ..Default::default()
        }
    }

    #[test]
    fn energy_is_monotone_in_events() {
        let m = EnergyModel::default();
        let lo = m.dram_energy(
            &DramEnergyConsts::hbm(),
            &stats(10, 10, 10, 1, 1000),
            1000,
            8,
        );
        let hi = m.dram_energy(
            &DramEnergyConsts::hbm(),
            &stats(20, 20, 20, 2, 2000),
            1000,
            8,
        );
        assert!(hi.total_j() > lo.total_j());
        assert!(hi.act_pre_j > lo.act_pre_j);
        assert!(hi.io_j > lo.io_j);
    }

    #[test]
    fn off_chip_io_costs_more_than_hbm_io() {
        // The premise of in-package caching: moving a byte over DDR pins
        // costs several times more than over WideIO.
        assert!(
            DramEnergyConsts::ddr4().io_j_per_byte > 3.0 * DramEnergyConsts::hbm().io_j_per_byte
        );
    }

    #[test]
    fn background_scales_with_time_and_ranks() {
        let m = EnergyModel::default();
        let s = stats(0, 0, 0, 0, 0);
        let short = m.dram_energy(&DramEnergyConsts::ddr4(), &s, 3_200_000, 4);
        let long = m.dram_energy(&DramEnergyConsts::ddr4(), &s, 6_400_000, 4);
        let wide = m.dram_energy(&DramEnergyConsts::ddr4(), &s, 3_200_000, 8);
        assert!((long.background_j - 2.0 * short.background_j).abs() < 1e-15);
        assert!((wide.background_j - 2.0 * short.background_j).abs() < 1e-15);
    }

    #[test]
    fn cpu_energy_accounts_all_components() {
        let m = EnergyModel::default();
        let act = CpuActivity {
            instructions: 1_000_000,
            cycles: 3_200_000,
            cores: 16,
            l1_accesses: 500_000,
            l2_accesses: 50_000,
            l3_accesses: 5_000,
        };
        let ctl = ControllerStats {
            table_lookups: 10_000,
            ..Default::default()
        };
        let e = m.cpu_energy(&act, &ctl);
        assert!(e.dynamic_j > 0.0);
        assert!(e.leakage_j > 0.0);
        assert!(e.cache_j > 0.0);
        assert!(e.controller_j > 0.0);
        // Leakage of 16 cores over 1 ms dominates here.
        assert!(e.leakage_j > e.controller_j);
    }

    #[test]
    fn system_energy_sums_components() {
        let m = EnergyModel::default();
        let act = CpuActivity {
            instructions: 1000,
            cycles: 1000,
            cores: 2,
            ..Default::default()
        };
        let ctl = ControllerStats::default();
        let hbm = stats(5, 5, 5, 0, 640);
        let ddr = stats(3, 3, 3, 0, 384);
        let sys = m.system_energy(&act, &ctl, Some(&hbm), 32, &ddr, 4);
        let total = sys.cpu.total_j() + sys.hbm.total_j() + sys.ddr.total_j();
        assert!((sys.total_j() - total).abs() < 1e-18);
        // Without an HBM the component is zero.
        let sys2 = m.system_energy(&act, &ctl, None, 0, &ddr, 4);
        assert_eq!(sys2.hbm.total_j(), 0.0);
    }
}
