//! Proves the zero-cost claims of the audit layer: `observe()` performs
//! no heap allocation per command (all auditor state is preallocated at
//! construction), and a disabled audit exposes no auditor at all.
//!
//! This file deliberately contains a single `#[test]`: the counting
//! allocator below is process-global, and a concurrently running test
//! would pollute the measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use redcache_dram::{DramConfig, DramSystem, TimingAuditor, TxnKind};
use redcache_types::PhysAddr;

#[test]
fn observe_is_allocation_free() {
    // Generate a realistic legal command stream first (with the audit
    // off), so the measured loop below is pure observation.
    let mut cfg = DramConfig::ddr4_scaled(64 << 20);
    cfg.refresh_enabled = true;
    cfg.audit = false;
    let topology = cfg.topology;
    let timing = cfg.timing;
    let capacity = topology.capacity_bytes();
    let mut d = DramSystem::new(cfg);
    assert!(d.audit_stats().is_none(), "disabled audit must not exist");
    d.set_cmd_recording(true);
    let mut now = 0;
    for i in 0..400u64 {
        let kind = if i % 3 == 0 {
            TxnKind::Write
        } else {
            TxnKind::Read
        };
        d.enqueue(PhysAddr::new((i * 0x1_2345) % capacity), kind, i, 1, now);
        d.tick(now);
        now += 1;
    }
    while d.pending() > 0 {
        d.tick(now);
        now += 1;
        assert!(now < 10_000_000, "scheduler deadlock");
    }
    let cmds = d.take_issued_cmds();
    // 400 single-burst transactions guarantee >= 400 column commands
    // alone, before ACT/PRE/REF traffic.
    assert!(
        cmds.len() >= 400,
        "stream too small to be a meaningful measurement"
    );

    // All auditor allocation happens here, in the constructor.
    let mut auditor = TimingAuditor::new(&topology, timing);

    let before = ALLOCS.load(Ordering::SeqCst);
    for c in &cmds {
        auditor.observe(c);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "observe() allocated {} time(s) over {} commands",
        after - before,
        cmds.len()
    );
    assert_eq!(auditor.stats().cmds_audited, cmds.len() as u64);
    assert!(
        auditor.stats().clean(),
        "legal stream flagged: {:?}",
        auditor.stats().first_violation
    );
}
