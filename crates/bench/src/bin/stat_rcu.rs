//! **§III.C statistic** — RCU manager effectiveness.
//!
//! The paper reports that in >97 % of cases the costly condition (a
//! forced drain on queue overflow) does not occur, so deferred r-count
//! updates land at (tBurst + tCWD + tWTR)/tCCD = 6.375× lower latency.
//! This binary runs the full RedCache on every Table II workload and
//! reports the measured drain mix and block-cache hits.

use redcache::{PolicyKind, RedVariant, SimConfig};
use redcache_bench::{assert_clean, experiment_gen_config, run_suite, save_json};
use redcache_dram::TimingParams;

fn main() {
    let gen = experiment_gen_config();
    let reports = run_suite(
        // The paper subset: the mean is quoted against §III.C.
        &redcache_workloads::registry::paper_workloads(),
        &[PolicyKind::Red(RedVariant::Full)],
        SimConfig::scaled,
        &gen,
    );
    println!("\n== §III.C: RCU update-drain mix (RedCache, full) ==\n");
    println!(
        "{:>5} {:>10} {:>11} {:>9} {:>9} {:>8} {:>11}",
        "wl", "enqueued", "piggyback", "idle", "forced", "cheap%", "blkcache"
    );
    let mut out = Vec::new();
    let (mut cheap_sum, mut n) = (0.0, 0);
    for row in &reports {
        assert_clean(row);
        let r = &row[0];
        let get = |k: &str| {
            r.extras
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        };
        let cheap = get("rcu_cheap_fraction");
        cheap_sum += cheap;
        n += 1;
        println!(
            "{:>5} {:>10} {:>11} {:>9} {:>9} {:>7.1}% {:>11}",
            r.workload.as_deref().unwrap_or("?"),
            get("rcu_enqueued") as u64,
            get("rcu_piggyback") as u64,
            get("rcu_idle") as u64,
            get("rcu_forced") as u64,
            cheap * 100.0,
            get("rcu_block_cache_hits") as u64,
        );
        out.push((r.workload.clone(), cheap));
    }
    let t = TimingParams::wideio_table1();
    println!(
        "\nmean cheap-drain fraction: {:.1}%",
        100.0 * cheap_sum / n as f64
    );
    println!("paper:                     >97% avoid the costly path");
    println!(
        "latency reduction of a piggybacked update: {:.3}x (paper: 6.375x)",
        t.rcu_latency_reduction()
    );
    save_json("stat_rcu", &out);
}
