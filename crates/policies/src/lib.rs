//! DRAM-cache controllers for the RedCache reproduction.
//!
//! This crate implements the paper's primary contribution — the
//! **RedCache** adaptive controller family (§III) — together with every
//! architecture it is evaluated against:
//!
//! * [`NoHbmController`] — no DRAM cache; all traffic to DDR4 (Fig. 1a);
//! * [`IdealController`] — a perfect HBM cache with 100 % hit rate that
//!   still pays tag-check transfers (Fig. 1b);
//! * [`AlloyController`] — the Alloy direct-mapped TAD cache
//!   [Qureshi & Loh, MICRO'12], with a region-based memory-access
//!   predictor standing in for MAP-I;
//! * [`BearController`] — BEAR [Chou et al., ISCA'15]: Alloy plus
//!   bandwidth-aware fill bypass and presence-based probe elision;
//! * [`RedCacheController`] — α/γ adaptive reduced caching with the RCU
//!   update manager, in all five paper variants
//!   ([`RedVariant::Alpha`], [`RedVariant::Gamma`], [`RedVariant::Basic`],
//!   [`RedVariant::InSitu`], [`RedVariant::Full`]).
//!
//! Every controller owns its DRAM back ends (a WideIO/HBM
//! [`redcache_dram::DramSystem`] and a DDR4 one), drives them cycle by
//! cycle, and tracks *functional* line versions so the simulator's
//! shadow checker can prove no policy ever serves stale data.

#![warn(missing_docs)]

mod alloy;
mod bear;
pub mod controller;
mod engine;
mod fill;
mod ideal;
mod nohbm;
mod predictor;
pub mod redcache;
mod tagstore;

pub use alloy::AlloyController;
pub use bear::BearController;
pub use controller::{
    CompletedReq, ControllerGauges, ControllerStats, DramCacheController, MemorySides,
    PolicyConfig, PolicyKind, WarmMemoryState,
};
pub use fill::FillController;
pub use ideal::IdealController;
pub use nohbm::NoHbmController;
pub use redcache::{RedCacheController, RedConfig, RedVariant};
pub use tagstore::{classify, BlockClass};

/// Builds the controller selected by `cfg.kind`.
pub fn build_controller(cfg: &PolicyConfig) -> Box<dyn DramCacheController> {
    match cfg.kind {
        PolicyKind::NoHbm => Box::new(NoHbmController::new(cfg)),
        PolicyKind::Ideal => Box::new(IdealController::new(cfg)),
        PolicyKind::Alloy => Box::new(AlloyController::new(cfg)),
        PolicyKind::Bear => Box::new(BearController::new(cfg)),
        PolicyKind::Red(variant) => {
            let red = cfg
                .red_override
                .unwrap_or_else(|| RedConfig::for_variant(variant));
            Box::new(RedCacheController::new(cfg, red))
        }
    }
}
