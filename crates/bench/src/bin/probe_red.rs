//! Developer probe: decompose the full RedCache's feature set on one
//! workload to attribute performance deltas (not a paper figure).

use redcache::{PolicyKind, RedConfig, RedVariant, SimConfig, Simulator};
use redcache_policies::redcache::UpdateMode;
use redcache_workloads::{GenConfig, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let budget: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let label = args.get(2).cloned().unwrap_or_else(|| "OCN".into());
    let w = Workload::ALL
        .iter()
        .copied()
        .find(|w| w.info().label.eq_ignore_ascii_case(&label))
        .expect("workload label");
    let mut gen = GenConfig::scaled();
    gen.budget_per_thread = budget;
    let traces = w.generate(&gen);

    let variants: Vec<(&str, RedConfig)> = vec![
        ("insitu (base)", RedConfig::for_variant(RedVariant::InSitu)),
        ("rcu only", {
            let mut c = RedConfig::for_variant(RedVariant::Full);
            c.rcu_block_cache = false;
            c.refresh_bypass = false;
            c
        }),
        ("rcu+blockcache", {
            let mut c = RedConfig::for_variant(RedVariant::Full);
            c.refresh_bypass = false;
            c
        }),
        ("rcu+refresh", {
            let mut c = RedConfig::for_variant(RedVariant::Full);
            c.rcu_block_cache = false;
            c
        }),
        ("full", RedConfig::for_variant(RedVariant::Full)),
        ("immediate", {
            let mut c = RedConfig::for_variant(RedVariant::Basic);
            c.update_mode = UpdateMode::Immediate;
            c
        }),
    ];
    println!(
        "{:<16} {:>11} {:>8} {:>8} {:>9} {:>9} {:>8}",
        "variant", "cycles", "hit%", "cheap%", "refbyp", "hbmwr", "stale"
    );
    for (name, rc) in variants {
        let kind = PolicyKind::Red(rc.variant);
        let mut cfg = SimConfig::scaled(kind);
        cfg.policy.red_override = Some(rc);
        let r = Simulator::new(cfg).run(traces.clone());
        let cheap = r
            .extras
            .iter()
            .find(|(k, _)| k == "rcu_cheap_fraction")
            .map(|(_, v)| *v)
            .unwrap_or(1.0);
        println!(
            "{name:<16} {:>11} {:>7.1}% {:>7.1}% {:>9} {:>9} {:>8}",
            r.cycles,
            r.hbm_hit_rate() * 100.0,
            cheap * 100.0,
            r.ctl.refresh_bypasses,
            r.ctl.hbm_writes,
            r.shadow_violations
        );
    }
}
