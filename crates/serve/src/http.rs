//! Minimal hand-rolled HTTP/1.1 — just enough for the daemon's API.
//!
//! One request per connection (`Connection: close`), bodies sized by
//! `Content-Length` only, and hard caps on header and body size so a
//! misbehaving client cannot balloon the daemon. No TLS, no chunked
//! encoding, no keep-alive: the API is line-of-sight
//! (localhost/cluster) tooling, not an internet-facing edge.

use std::io::{self, BufRead, Write};

/// Upper bound on an accepted request body (a job submission is a few
/// hundred bytes; 1 MiB leaves room for generous synthetic specs).
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Upper bound on the request line + headers combined.
const MAX_HEADER_BYTES: usize = 64 << 10;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Path component of the target, query string stripped.
    pub path: String,
    /// Raw `(name, value)` header pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Reads one request from `r`. Returns `Ok(None)` on a clean EOF
/// before any bytes (client connected and went away).
///
/// # Errors
///
/// Propagates I/O errors and returns `InvalidData` for malformed or
/// oversized requests.
pub fn read_request(r: &mut impl BufRead) -> io::Result<Option<Request>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let target = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1") {
        return Err(bad("malformed request line"));
    }

    let mut headers = Vec::new();
    let mut total = line.len();
    loop {
        let mut h = String::new();
        let n = r.read_line(&mut h)?;
        if n == 0 {
            return Err(bad("connection closed inside headers"));
        }
        total += n;
        if total > MAX_HEADER_BYTES {
            return Err(bad("headers too large"));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            headers.push((k.trim().to_string(), v.trim().to_string()));
        }
    }

    // Absent Content-Length means no body; a present-but-unparseable
    // one is a malformed request, not a body-less one.
    let len = match headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
    {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| bad("invalid Content-Length header"))?,
    };
    if len > MAX_BODY_BYTES {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;

    let path = target.split('?').next().unwrap_or("").to_string();
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// One response, written with `Content-Length` and `Connection: close`.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Additional headers (e.g. `Retry-After`).
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    /// A JSON response serializing `value`.
    pub fn json<T: serde::Serialize>(status: u16, value: &T) -> Self {
        let body = serde_json::to_vec_pretty(value)
            .unwrap_or_else(|e| format!("{{\"error\": \"serialize failed: {e}\"}}").into_bytes());
        Self {
            status,
            content_type: "application/json",
            body,
            extra_headers: Vec::new(),
        }
    }

    /// A `{"error": message}` JSON response.
    pub fn error(status: u16, message: &str) -> Self {
        Self::json(status, &serde_json::json!({ "error": message }))
    }

    /// A raw-body response with an explicit content type.
    pub fn raw(status: u16, content_type: &'static str, body: Vec<u8>) -> Self {
        Self {
            status,
            content_type,
            body,
            extra_headers: Vec::new(),
        }
    }

    /// Appends an extra header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.extra_headers
            .push((name.to_string(), value.to_string()));
        self
    }

    /// Writes the response to `w` and flushes.
    ///
    /// # Errors
    ///
    /// Propagates the writer's I/O errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        )?;
        for (k, v) in &self.extra_headers {
            write!(w, "{k}: {v}\r\n")?;
        }
        w.write_all(b"connection: close\r\n\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /jobs?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, b"body");
        assert_eq!(req.header("host"), Some("h"));
    }

    #[test]
    fn clean_eof_is_none_and_garbage_is_an_error() {
        assert!(read_request(&mut BufReader::new(&b""[..]))
            .unwrap()
            .is_none());
        assert!(read_request(&mut BufReader::new(&b"nonsense\r\n\r\n"[..])).is_err());
    }

    #[test]
    fn invalid_content_length_is_an_error_not_an_empty_body() {
        for raw in [
            &b"POST /jobs HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
            &b"POST /jobs HTTP/1.1\r\nContent-Length: 99999999999999999999999\r\n\r\n"[..],
            &b"POST /jobs HTTP/1.1\r\nContent-Length: -1\r\n\r\n"[..],
        ] {
            let err = read_request(&mut BufReader::new(raw)).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{raw:?}");
        }
    }

    #[test]
    fn truncated_body_is_an_error() {
        let raw = b"POST /jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert!(read_request(&mut BufReader::new(&raw[..])).is_err());
    }

    #[test]
    fn responses_carry_status_line_and_length() {
        let mut out = Vec::new();
        Response::json(202, &serde_json::json!({"ok": true}))
            .with_header("retry-after", "1")
            .write_to(&mut out)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 202 Accepted\r\n"), "{s}");
        assert!(s.contains("retry-after: 1\r\n"));
        assert!(s.contains("connection: close"));
        assert!(s.ends_with("}"));
    }
}
