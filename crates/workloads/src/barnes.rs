//! SPLASH-2 **BRN** — Barnes-Hut N-body force calculation.
//!
//! Bodies stream sequentially; for each body the force phase walks the
//! octree from the root. Upper tree levels are shared by every body
//! (extremely hot, X/H-type), lower levels fan out geometrically (cold
//! tail). The walk depth and the visited children are drawn
//! deterministically per body. Body updates end with a store.

use crate::common::{elem, GenConfig, Layout, ThreadTraces, TraceBuilder};
use rand::Rng;

const BODY_BYTES: u64 = 64; // one body per cache line, as in SPLASH-2
const NODE_BYTES: u64 = 64;
const DEPTH: usize = 8;

pub(crate) fn generate(cfg: &GenConfig) -> ThreadTraces {
    let n_bodies = cfg.count(64 << 10) as u64;
    let mut layout = Layout::new();
    let bodies = layout.alloc(n_bodies * BODY_BYTES);
    // Tree levels: level l has min(8^l, cap) nodes; cap bounds memory.
    let cap = cfg.count(64 << 10) as u64;
    let level_sizes: Vec<u64> = (0..DEPTH).map(|l| 8u64.pow(l as u32).min(cap)).collect();
    let levels: Vec<_> = level_sizes
        .iter()
        .map(|&s| layout.alloc(s * NODE_BYTES))
        .collect();
    let mut b = TraceBuilder::new(cfg);
    let threads = cfg.threads as u64;
    let chunk = n_bodies / threads;
    let seed: u64 = cfg.rng(0xB42).gen();

    let hash = |a: u64, c: u64| -> u64 {
        let mut x =
            seed ^ a.wrapping_mul(0xA24B_AED4_963E_E407) ^ c.wrapping_mul(0x9E6C_63D0_876A_68E5);
        x ^= x >> 32;
        x.wrapping_mul(0xD6E8_FEB8_6659_FD93)
    };

    for _iter in 0..4 {
        for t in 0..threads {
            let (lo, hi) = (t * chunk, ((t + 1) * chunk).min(n_bodies));
            for body in lo..hi {
                let tt = t as usize;
                if !b.has_budget(tt) {
                    break;
                }
                b.load(tt, elem(bodies, body, BODY_BYTES), 4);
                // Walk the tree; the opening criterion terminates most
                // walks early (2/3 continue per level).
                for (l, (&size, base)) in level_sizes.iter().zip(levels.iter()).enumerate() {
                    let node = hash(body, l as u64) % size;
                    b.load(tt, elem(*base, node, NODE_BYTES), 9);
                    if hash(body, 100 + l as u64) % 3 == 0 {
                        break;
                    }
                }
                // Update acceleration.
                b.store(tt, elem(bodies, body, BODY_BYTES), 5);
            }
        }
        // Position integration: stream bodies read-modify-write.
        for t in 0..threads {
            let (lo, hi) = (t * chunk, ((t + 1) * chunk).min(n_bodies));
            for body in lo..hi {
                let tt = t as usize;
                b.load(tt, elem(bodies, body, BODY_BYTES), 3);
                b.store(tt, elem(bodies, body, BODY_BYTES), 2);
                if !b.has_budget(tt) {
                    break;
                }
            }
        }
        if b.exhausted() {
            break;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_cpu::TraceStats;
    use redcache_types::BLOCK_BYTES;
    use std::collections::HashMap;

    #[test]
    fn deterministic() {
        let cfg = GenConfig::tiny();
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn tree_top_is_much_hotter_than_tail() {
        let cfg = GenConfig::tiny();
        let flat: Vec<_> = generate(&cfg).into_iter().flatten().collect();
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for a in &flat {
            *counts.entry(a.addr.line(BLOCK_BYTES).raw()).or_default() += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let s = TraceStats::from_trace(&flat);
        let mean = s.accesses as f64 / s.footprint_lines as f64;
        assert!(
            max as f64 > mean * 8.0,
            "root node must be far hotter (max {max}, mean {mean})"
        );
    }
}
