//! Compact binary serialization for generated traces.
//!
//! Generating the scaled workloads is fast, but pinning a byte-exact
//! trace to disk is useful for cross-machine reproducibility and for
//! feeding external tools. The format is a simple little-endian layout:
//!
//! ```text
//! magic "RCTR" | version u32 | threads u32
//! per thread: len u64, then len records of
//!   op u8 (0 = load, 1 = store) | addr u64 | gap u32
//! ```

use crate::common::ThreadTraces;
use redcache_cpu::Access;
use redcache_types::{MemOp, PhysAddr};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"RCTR";
const VERSION: u32 = 1;

/// Writes `traces` to `w`.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_traces<W: Write>(mut w: W, traces: &ThreadTraces) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(traces.len() as u32).to_le_bytes())?;
    for t in traces {
        w.write_all(&(t.len() as u64).to_le_bytes())?;
        for a in t {
            w.write_all(&[a.op.is_store() as u8])?;
            w.write_all(&a.addr.raw().to_le_bytes())?;
            w.write_all(&a.gap.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads traces previously written by [`write_traces`].
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic/version or truncated stream, and
/// propagates reader I/O errors.
pub fn read_traces<R: Read>(mut r: R) -> io::Result<ThreadTraces> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a RedCache trace file",
        ));
    }
    let mut u32buf = [0u8; 4];
    r.read_exact(&mut u32buf)?;
    if u32::from_le_bytes(u32buf) != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unsupported trace version",
        ));
    }
    r.read_exact(&mut u32buf)?;
    let threads = u32::from_le_bytes(u32buf) as usize;
    if threads > 4096 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "implausible thread count",
        ));
    }
    let mut traces = Vec::with_capacity(threads);
    let mut u64buf = [0u8; 8];
    for _ in 0..threads {
        r.read_exact(&mut u64buf)?;
        let len = u64::from_le_bytes(u64buf) as usize;
        let mut t = Vec::with_capacity(len.min(1 << 24));
        for _ in 0..len {
            let mut op = [0u8; 1];
            r.read_exact(&mut op)?;
            r.read_exact(&mut u64buf)?;
            let addr = u64::from_le_bytes(u64buf);
            r.read_exact(&mut u32buf)?;
            let gap = u32::from_le_bytes(u32buf);
            t.push(Access {
                op: if op[0] == 1 {
                    MemOp::Store
                } else {
                    MemOp::Load
                },
                addr: PhysAddr::new(addr),
                gap,
            });
        }
        traces.push(t);
    }
    Ok(traces)
}

/// Convenience: writes `traces` to `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save(path: &std::path::Path, traces: &ThreadTraces) -> io::Result<()> {
    write_traces(io::BufWriter::new(std::fs::File::create(path)?), traces)
}

/// Convenience: reads traces from `path`.
///
/// # Errors
///
/// Propagates filesystem and format errors.
pub fn load(path: &std::path::Path) -> io::Result<ThreadTraces> {
    read_traces(io::BufReader::new(std::fs::File::open(path)?))
}

/// Stable 64-bit key for a generator configuration (FNV-1a over its
/// fields), used to name on-disk cache entries. Deliberately not
/// `std::hash::Hash`: file names must survive compiler and std
/// upgrades. Public so other caches keyed on "what trace would this
/// config produce" (the `redcache-serve` in-memory trace store) share
/// the exact key the disk cache uses.
pub fn cache_key(cfg: &crate::GenConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    mix(cfg.threads as u64);
    mix(cfg.shrink as u64);
    mix(cfg.budget_per_thread as u64);
    mix(cfg.seed);
    h
}

/// The file name a `(workload, GenConfig)` pair caches under —
/// `{label}-{cache_key:016x}.rctr`.
pub fn cache_file_name(workload: crate::Workload, cfg: &crate::GenConfig) -> String {
    format!(
        "{}-{:016x}.rctr",
        workload.info().label.to_lowercase(),
        cache_key(cfg)
    )
}

/// Generates `workload`'s traces through an optional on-disk cache
/// rooted at `dir`, keyed by `(workload, GenConfig)`. A valid cached
/// file is loaded instead of regenerating; a miss (or any unreadable /
/// stale entry) regenerates and then best-effort persists the result,
/// so a broken cache directory never fails a run.
pub fn generate_cached_in(
    workload: crate::Workload,
    cfg: &crate::GenConfig,
    dir: Option<&std::path::Path>,
) -> ThreadTraces {
    let Some(dir) = dir else {
        return workload.generate(cfg);
    };
    let path = dir.join(cache_file_name(workload, cfg));
    if let Ok(traces) = load(&path) {
        if traces.len() == cfg.threads {
            return traces;
        }
    }
    let traces = workload.generate(cfg);
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = save(&path, &traces);
    }
    traces
}

/// Like [`generate_cached_in`], rooting the cache at the
/// `REDCACHE_TRACE_CACHE_DIR` environment variable when set (no caching
/// otherwise).
pub fn generate_cached(workload: crate::Workload, cfg: &crate::GenConfig) -> ThreadTraces {
    let dir = std::env::var_os("REDCACHE_TRACE_CACHE_DIR").map(std::path::PathBuf::from);
    generate_cached_in(workload, cfg, dir.as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GenConfig, Workload};

    #[test]
    fn round_trips_generated_traces() {
        let traces = Workload::Is.generate(&GenConfig::tiny());
        let mut buf = Vec::new();
        write_traces(&mut buf, &traces).unwrap();
        let back = read_traces(&buf[..]).unwrap();
        assert_eq!(traces, back);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(read_traces(&b"NOPE"[..]).is_err());
        let mut buf = Vec::new();
        write_traces(&mut buf, &vec![vec![]]).unwrap();
        buf[4] = 99; // corrupt version
        assert!(read_traces(&buf[..]).is_err());
    }

    #[test]
    fn rejects_truncated_stream() {
        let traces = Workload::Lreg.generate(&GenConfig::tiny());
        let mut buf = Vec::new();
        write_traces(&mut buf, &traces).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(read_traces(&buf[..]).is_err());
    }

    #[test]
    fn disk_cache_hits_skip_generation() {
        let cfg = GenConfig::tiny();
        let dir =
            std::env::temp_dir().join(format!("redcache_trace_cache_{:x}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let first = generate_cached_in(Workload::Hist, &cfg, Some(&dir));
        let generated = crate::suite::generation_count();
        let second = generate_cached_in(Workload::Hist, &cfg, Some(&dir));
        assert_eq!(
            crate::suite::generation_count(),
            generated,
            "cache hit regenerated"
        );
        assert_eq!(first, second);
        // A different config keys a different entry.
        let mut other = cfg;
        other.seed ^= 1;
        let third = generate_cached_in(Workload::Hist, &other, Some(&dir));
        assert!(crate::suite::generation_count() > generated);
        assert_ne!(first, third);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_entries_regenerate_and_heal() {
        let cfg = GenConfig::tiny();
        let dir = std::env::temp_dir().join(format!(
            "redcache_trace_cache_corrupt_{:x}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let first = generate_cached_in(Workload::Is, &cfg, Some(&dir));
        let path = dir.join(cache_file_name(Workload::Is, &cfg));
        assert!(path.is_file(), "cache entry was not written");

        // Truncate the entry mid-record: loading must fail cleanly and
        // the generator must fall back to regeneration.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let before = crate::suite::generation_count();
        let second = generate_cached_in(Workload::Is, &cfg, Some(&dir));
        assert!(
            crate::suite::generation_count() > before,
            "truncated entry was served instead of regenerated"
        );
        assert_eq!(first, second, "regeneration diverged from the original");

        // The fallback must also have rewritten a valid entry: the next
        // call is a clean hit again.
        let healed = crate::suite::generation_count();
        let third = generate_cached_in(Workload::Is, &cfg, Some(&dir));
        assert_eq!(
            crate::suite::generation_count(),
            healed,
            "healed entry missed the cache"
        );
        assert_eq!(first, third);

        // Same story for outright garbage (bad magic).
        std::fs::write(&path, b"this is not a trace file").unwrap();
        let before = crate::suite::generation_count();
        let fourth = generate_cached_in(Workload::Is, &cfg, Some(&dir));
        assert!(crate::suite::generation_count() > before);
        assert_eq!(first, fourth);
        assert_eq!(std::fs::read(&path).unwrap(), bytes, "entry not healed");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cacheless_generation_still_works() {
        let cfg = GenConfig::tiny();
        assert_eq!(
            generate_cached_in(Workload::Is, &cfg, None),
            Workload::Is.generate(&cfg)
        );
    }

    #[test]
    fn file_round_trip() {
        let traces = vec![vec![Access {
            op: MemOp::Store,
            addr: PhysAddr::new(0xABCD),
            gap: 7,
        }]];
        let path = std::env::temp_dir().join("redcache_trace_io_test.rctr");
        save(&path, &traces).unwrap();
        let back = load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(traces, back);
    }
}
