//! A blocking HTTP client for the daemon — used by the `redcache-serve`
//! CLI and the end-to-end tests. The client keeps one connection and
//! reuses it across requests (HTTP/1.1 keep-alive), so a `wait` poll
//! loop or a multi-call CLI sequence costs one TCP handshake, not one
//! per request. A cached connection the server has since closed (idle
//! deadline, drain) is detected on failure and retried once on a fresh
//! connection — safe because every daemon endpoint is idempotent:
//! submission is keyed by content, so a replayed `POST /jobs` coalesces
//! onto the same job.

use crate::api::{JobRequest, JobView, SweepRequest, SweepView};
use serde::de::DeserializeOwned;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One parsed HTTP response.
#[derive(Debug)]
pub struct HttpResult {
    /// Status code.
    pub status: u16,
    /// `(name, value)` headers in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl HttpResult {
    /// First header with the given case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Body as lossy UTF-8.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Body parsed as JSON.
    ///
    /// # Errors
    ///
    /// A human-readable message when the body is not valid `T`.
    pub fn json<T: DeserializeOwned>(&self) -> Result<T, String> {
        serde_json::from_slice(&self.body).map_err(|e| format!("bad response body: {e}"))
    }
}

/// Client for one daemon address, holding at most one cached
/// keep-alive connection.
#[derive(Debug)]
pub struct Client {
    addr: String,
    conn: Mutex<Option<BufReader<TcpStream>>>,
}

impl Clone for Client {
    fn clone(&self) -> Self {
        // The connection cache is per-handle; a clone starts cold.
        Self::new(self.addr.clone())
    }
}

impl Client {
    /// A client for `addr` (e.g. `"127.0.0.1:7878"`).
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            conn: Mutex::new(None),
        }
    }

    fn connect(addr: &str) -> io::Result<BufReader<TcpStream>> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(BufReader::new(stream))
    }

    /// Issues one request, reusing the cached connection when one is
    /// alive.
    ///
    /// # Errors
    ///
    /// Connection or protocol-level I/O failures. HTTP error statuses
    /// are returned in the [`HttpResult`], not as `Err`.
    pub fn request(&self, method: &str, path: &str, body: Option<&[u8]>) -> io::Result<HttpResult> {
        let cached = self.conn.lock().unwrap().take();
        let reused = cached.is_some();
        let mut reader = match cached {
            Some(r) => r,
            None => Self::connect(&self.addr)?,
        };
        match Self::try_request(&self.addr, &mut reader, method, path, body) {
            Ok((result, reusable)) => {
                if reusable {
                    *self.conn.lock().unwrap() = Some(reader);
                }
                Ok(result)
            }
            Err(_) if reused => {
                // The cached connection went stale (idle-closed by the
                // server between requests). One fresh retry; a failure
                // there is real.
                let mut reader = Self::connect(&self.addr)?;
                let (result, reusable) =
                    Self::try_request(&self.addr, &mut reader, method, path, body)?;
                if reusable {
                    *self.conn.lock().unwrap() = Some(reader);
                }
                Ok(result)
            }
            Err(e) => Err(e),
        }
    }

    /// Writes one request and reads one response off `reader`.
    /// Returns the result plus whether the connection may be reused.
    fn try_request(
        addr: &str,
        reader: &mut BufReader<TcpStream>,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> io::Result<(HttpResult, bool)> {
        let body = body.unwrap_or(&[]);
        let stream = reader.get_mut();
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\n",
            body.len()
        )?;
        if !body.is_empty() {
            stream.write_all(b"content-type: application/json\r\n")?;
        }
        stream.write_all(b"\r\n")?;
        stream.write_all(body)?;
        stream.flush()?;

        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before status line",
            ));
        }
        let status = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {line:?}"),
                )
            })?;

        let mut headers = Vec::new();
        loop {
            let mut h = String::new();
            if reader.read_line(&mut h)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "eof inside response headers",
                ));
            }
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some((k, v)) = h.split_once(':') {
                headers.push((k.trim().to_string(), v.trim().to_string()));
            }
        }

        let len = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse::<usize>().ok());
        let mut body = Vec::new();
        // Without a content-length the only framing is EOF, so the
        // connection cannot be reused afterwards.
        let mut reusable = false;
        match len {
            Some(n) => {
                body.resize(n, 0);
                reader.read_exact(&mut body)?;
                reusable = true;
            }
            None => {
                reader.read_to_end(&mut body)?;
            }
        }
        let server_closes = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("connection"))
            .is_some_and(|(_, v)| v.eq_ignore_ascii_case("close"));
        Ok((
            HttpResult {
                status,
                headers,
                body,
            },
            reusable && !server_closes,
        ))
    }

    /// `POST /jobs`.
    ///
    /// # Errors
    ///
    /// I/O failures only; inspect `status` for 4xx/5xx.
    pub fn submit(&self, job: &JobRequest) -> io::Result<HttpResult> {
        let body = serde_json::to_vec(job).expect("job request serializes");
        self.request("POST", "/jobs", Some(&body))
    }

    /// `GET /jobs/{id}`.
    ///
    /// # Errors
    ///
    /// I/O failures only.
    pub fn job(&self, id: u64) -> io::Result<HttpResult> {
        self.request("GET", &format!("/jobs/{id}"), None)
    }

    /// `GET /jobs`.
    ///
    /// # Errors
    ///
    /// I/O failures only.
    pub fn jobs(&self) -> io::Result<HttpResult> {
        self.request("GET", "/jobs", None)
    }

    /// `GET /jobs/{id}/report`.
    ///
    /// # Errors
    ///
    /// I/O failures only.
    pub fn report(&self, id: u64) -> io::Result<HttpResult> {
        self.request("GET", &format!("/jobs/{id}/report"), None)
    }

    /// `GET /jobs/{id}/timeseries`.
    ///
    /// # Errors
    ///
    /// I/O failures only.
    pub fn timeseries(&self, id: u64) -> io::Result<HttpResult> {
        self.request("GET", &format!("/jobs/{id}/timeseries"), None)
    }

    /// `DELETE /jobs/{id}`.
    ///
    /// # Errors
    ///
    /// I/O failures only.
    pub fn cancel(&self, id: u64) -> io::Result<HttpResult> {
        self.request("DELETE", &format!("/jobs/{id}"), None)
    }

    /// `POST /sweeps`.
    ///
    /// # Errors
    ///
    /// I/O failures only; inspect `status` for 4xx/5xx.
    pub fn submit_sweep(&self, sweep: &SweepRequest) -> io::Result<HttpResult> {
        let body = serde_json::to_vec(sweep).expect("sweep request serializes");
        self.request("POST", "/sweeps", Some(&body))
    }

    /// `GET /sweeps/{id}`.
    ///
    /// # Errors
    ///
    /// I/O failures only.
    pub fn sweep(&self, id: u64) -> io::Result<HttpResult> {
        self.request("GET", &format!("/sweeps/{id}"), None)
    }

    /// Polls `GET /sweeps/{id}` until every cell settles or `timeout`
    /// elapses, riding one keep-alive connection.
    ///
    /// # Errors
    ///
    /// I/O failures, a non-200 status, or `TimedOut` if cells are
    /// still live past the deadline.
    pub fn wait_sweep(&self, id: u64, timeout: Duration) -> io::Result<SweepView> {
        let deadline = Instant::now() + timeout;
        loop {
            let res = self.sweep(id)?;
            if res.status != 200 {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("status {} for sweep {id}: {}", res.status, res.text()),
                ));
            }
            let view: SweepView = res
                .json()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            if view.done {
                return Ok(view);
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "sweep {id} still has {} unsettled cells after {timeout:?}",
                        view.total - (view.completed + view.failed + view.canceled + view.pruned)
                    ),
                ));
            }
            std::thread::sleep(Duration::from_millis(15));
        }
    }

    /// `GET /metrics`.
    ///
    /// # Errors
    ///
    /// I/O failures only.
    pub fn metrics(&self) -> io::Result<HttpResult> {
        self.request("GET", "/metrics", None)
    }

    /// `GET /healthz`.
    ///
    /// # Errors
    ///
    /// I/O failures only.
    pub fn healthz(&self) -> io::Result<HttpResult> {
        self.request("GET", "/healthz", None)
    }

    /// `POST /shutdown`.
    ///
    /// # Errors
    ///
    /// I/O failures only.
    pub fn shutdown(&self) -> io::Result<HttpResult> {
        self.request("POST", "/shutdown", None)
    }

    /// Polls `GET /jobs/{id}` until the job reaches a terminal state
    /// or `timeout` elapses. The whole loop rides one keep-alive
    /// connection.
    ///
    /// # Errors
    ///
    /// I/O failures, a non-200 status, or `TimedOut` if the job stays
    /// live past the deadline.
    pub fn wait(&self, id: u64, timeout: Duration) -> io::Result<JobView> {
        let deadline = Instant::now() + timeout;
        loop {
            let res = self.job(id)?;
            if res.status != 200 {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("status {} for job {id}: {}", res.status, res.text()),
                ));
            }
            let view: JobView = res
                .json()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            if view.status.is_terminal() {
                return Ok(view);
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("job {id} still {:?} after {timeout:?}", view.status),
                ));
            }
            std::thread::sleep(Duration::from_millis(15));
        }
    }
}
