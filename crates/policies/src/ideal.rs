//! The **IDEAL** HBM cache (Fig. 1b): a perfect cache that never misses
//! a requested block — but still consumes WideIO bandwidth and storage
//! for tag checks (§II.A), which is exactly what makes it an upper
//! bound rather than free.

use crate::controller::{
    CompletedReq, ControllerGauges, ControllerStats, DramCacheController, MemorySides,
    PolicyConfig, PolicyKind,
};
use crate::engine::{legs, Engine, LegSpec};
use redcache_dram::{AuditStats, DramStats, TxnKind};
use redcache_types::{AccessKind, Cycle, LineAddr, MemRequest, PhysAddr};
use std::collections::HashMap;

/// Controller with a 100 % hit rate HBM front end.
#[derive(Debug)]
pub struct IdealController {
    sides: MemorySides,
    engine: Engine,
    stats: ControllerStats,
    /// Functional content of the magic cache: line → version.
    versions: HashMap<u64, u64>,
    hbm_capacity: u64,
    bursts: u32,
    compl_buf: Vec<redcache_dram::Completion>,
}

impl IdealController {
    /// Builds the controller.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: &PolicyConfig) -> Self {
        cfg.validate().expect("invalid policy config");
        Self {
            sides: MemorySides::new(cfg),
            engine: Engine::new(),
            stats: ControllerStats::default(),
            versions: HashMap::new(),
            hbm_capacity: cfg.hbm.topology.capacity_bytes(),
            bursts: (cfg.cache_block_bytes / 64) as u32,
            compl_buf: Vec::new(),
        }
    }

    fn hbm_addr(&self, line: LineAddr) -> PhysAddr {
        PhysAddr::new(line.base(64).raw() % self.hbm_capacity)
    }
}

impl DramCacheController for IdealController {
    fn submit(&mut self, req: MemRequest, now: Cycle) {
        self.sides.sync_to(now);
        self.stats.submitted += 1;
        let addr = self.hbm_addr(req.line);
        let mut done = Vec::new();
        match req.kind {
            AccessKind::Read => {
                // Tag check + data in one TAD read; always a hit.
                self.stats.hbm_probes += 1;
                self.stats.hbm_hits += 1;
                let version = self.versions.get(&req.line.raw()).copied().unwrap_or(0);
                self.engine.start(
                    req,
                    version,
                    &[LegSpec {
                        leg: legs::PROBE,
                        hbm: true,
                        kind: TxnKind::Read,
                        addr,
                        bursts: self.bursts,
                        gates_data: true,
                        deferred: false,
                    }],
                    &mut self.sides,
                    now,
                    &mut done,
                );
            }
            AccessKind::Writeback => {
                // Probe (tag check) then data write — same two-access
                // cost a real cache pays on a write hit (§III.B).
                self.stats.hbm_probes += 1;
                self.stats.hbm_hits += 1;
                self.stats.hbm_writes += 1;
                self.versions.insert(req.line.raw(), req.data_version);
                self.engine.start(
                    req,
                    0,
                    &[
                        LegSpec {
                            leg: legs::PROBE,
                            hbm: true,
                            kind: TxnKind::Read,
                            addr,
                            bursts: self.bursts,
                            gates_data: false,
                            deferred: false,
                        },
                        LegSpec {
                            leg: legs::HBM_WRITE,
                            hbm: true,
                            kind: TxnKind::Write,
                            addr,
                            bursts: self.bursts,
                            gates_data: true,
                            deferred: true,
                        },
                    ],
                    &mut self.sides,
                    now,
                    &mut done,
                );
            }
        }
        debug_assert!(done.is_empty());
    }

    fn tick(&mut self, now: Cycle, done: &mut Vec<CompletedReq>) {
        self.sides.hbm.tick(now);
        self.sides.ddr.tick(now);
        let before = done.len();
        let mut buf = std::mem::take(&mut self.compl_buf);
        self.sides.hbm.drain_completions_into(&mut buf);
        for c in &buf {
            self.engine
                .on_completion(c.meta, c.done_at, &mut self.sides, done);
        }
        buf.clear();
        self.compl_buf = buf;
        let _ = self.engine.take_events();
        for d in &done[before..] {
            self.stats.completed += 1;
            if d.kind == AccessKind::Read {
                self.stats.reads_completed += 1;
                self.stats.read_latency_sum += d.latency();
            }
        }
    }

    fn next_event(&self, now: Cycle) -> Cycle {
        // Both sides tick every cycle (the DDR side only for refresh
        // realism), so the controller's horizon is the earlier of the
        // two systems' command slots.
        self.sides
            .hbm
            .sys
            .next_event(now)
            .min(self.sides.ddr.sys.next_event(now))
    }

    fn pending(&self) -> usize {
        self.engine.pending()
    }

    fn stats(&self) -> ControllerStats {
        self.stats
    }

    fn hbm_stats(&self) -> Option<DramStats> {
        Some(*self.sides.hbm.sys.stats())
    }

    fn ddr_stats(&self) -> DramStats {
        *self.sides.ddr.sys.stats()
    }

    fn hbm_audit(&self) -> Option<AuditStats> {
        self.sides.hbm_audit()
    }

    fn ddr_audit(&self) -> Option<AuditStats> {
        self.sides.ddr_audit()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Ideal
    }

    fn preload(&mut self, line: LineAddr, version: u64) {
        self.versions.insert(line.raw(), version);
    }

    fn gauges(&self) -> ControllerGauges {
        self.sides.dram_gauges()
    }

    fn reset_stats(&mut self) {
        self.stats = ControllerStats::default();
        self.sides.hbm.sys.reset_stats();
        self.sides.ddr.sys.reset_stats();
    }

    fn adopt_warm(&mut self, warm: &crate::WarmMemoryState) {
        self.sides.restore_warm(warm);
        // The magic cache never misses, so every line written during the
        // shared warmup must be servable from it: seed the functional
        // image with main memory's warmed content.
        self.versions = warm.ddr_versions.clone();
    }

    fn supports_warm_fork(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_types::{CoreId, ReqId};

    fn drive(c: &mut IdealController, from: Cycle) -> (Vec<CompletedReq>, Cycle) {
        let mut done = Vec::new();
        let mut now = from;
        while c.pending() > 0 {
            c.tick(now, &mut done);
            now += 1;
            assert!(now < 1_000_000);
        }
        (done, now)
    }

    #[test]
    fn always_hits_and_never_touches_ddr() {
        let mut c = IdealController::new(&PolicyConfig::scaled(PolicyKind::Ideal));
        for i in 0..50u64 {
            c.submit(
                MemRequest::read(ReqId(i), LineAddr::new(i * 1000), CoreId(0), 0),
                0,
            );
        }
        let (done, _) = drive(&mut c, 0);
        assert_eq!(done.len(), 50);
        assert_eq!(c.stats().hit_rate(), 1.0);
        assert_eq!(c.ddr_stats().bytes_total(), 0);
        assert!(c.hbm_stats().unwrap().bytes_read > 0);
    }

    #[test]
    fn write_then_read_returns_new_version() {
        let mut c = IdealController::new(&PolicyConfig::scaled(PolicyKind::Ideal));
        c.submit(
            MemRequest::writeback(ReqId(1), LineAddr::new(9), CoreId(0), 0, 5),
            0,
        );
        let (_, t) = drive(&mut c, 0);
        c.submit(
            MemRequest::read(ReqId(2), LineAddr::new(9), CoreId(0), t),
            t,
        );
        let (done, _) = drive(&mut c, t);
        assert_eq!(done[0].data_version, 5);
    }

    #[test]
    fn writes_cost_two_hbm_accesses() {
        let mut c = IdealController::new(&PolicyConfig::scaled(PolicyKind::Ideal));
        c.submit(
            MemRequest::writeback(ReqId(1), LineAddr::new(9), CoreId(0), 0, 5),
            0,
        );
        drive(&mut c, 0);
        let s = c.hbm_stats().unwrap();
        assert_eq!(s.energy.rd_bursts, 1);
        assert_eq!(s.energy.wr_bursts, 1);
    }
}
