//! Worker-count policy shared by every parallel section in the
//! workspace.
//!
//! The run-matrix harness (`redcache-bench`), the serving daemon's
//! worker pool, and the per-channel stepping pool inside
//! [`DramSystem`](https://docs.rs) all size themselves through the same
//! two questions: *how many workers may I use?* ([`max_workers`]) and
//! *did the operator pin that number explicitly?* ([`explicit_jobs`]).
//! Keeping the policy here — in the leaf crate everything already
//! depends on — avoids a dependency cycle between `dram` and `bench`.

/// Maximum worker threads for a parallel section: the `REDCACHE_JOBS`
/// environment variable when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`] (falling back to 4 if the
/// platform cannot report it).
pub fn max_workers() -> usize {
    explicit_jobs().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
    })
}

/// The operator-pinned worker count: `Some(n)` when `REDCACHE_JOBS` is
/// set to a positive integer, `None` when the variable is absent or
/// unparseable. Callers that would otherwise *round up* a machine-derived
/// count (e.g. to keep a parallel code path exercised on a small host)
/// must respect an explicit pin verbatim — `REDCACHE_JOBS=1` has to mean
/// strictly serial execution for bisection to work.
pub fn explicit_jobs() -> Option<usize> {
    let v = std::env::var("REDCACHE_JOBS").ok()?;
    match v.parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_workers_is_positive() {
        // The environment is shared with other test threads, so only
        // the invariant — never zero — is checkable here.
        assert!(max_workers() >= 1);
        if let Some(n) = explicit_jobs() {
            assert!(n >= 1);
            assert_eq!(max_workers(), n);
        }
    }
}
