//! Golden equivalence suite for fork-after-warmup checkpointing.
//!
//! Warm forking (DESIGN.md §3.13) claims the policy-independent warmup
//! can run **once** per workload and the resulting [`redcache::WarmSnapshot`]
//! forked into every policy run without changing a single observable:
//! forked and from-scratch runs must produce bit-identical whole
//! [`redcache::RunReport`]s — cycle counts, per-level cache statistics,
//! DRAM command and energy counters, shadow checks, epoch timeseries,
//! timing-audit payloads. This suite pins that claim across the full
//! evaluation matrix, in both time-advance modes, and with the audit
//! and epoch recorders attached.

use redcache::{FbrConfig, PolicyKind, RedConfig, RedVariant, SimConfig, Simulator};
use redcache_workloads::{GenConfig, SharedTraces, Workload};

fn figure_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Alloy,
        PolicyKind::Bear,
        PolicyKind::Red(RedVariant::Alpha),
        PolicyKind::Red(RedVariant::Gamma),
        PolicyKind::Red(RedVariant::Basic),
        PolicyKind::Red(RedVariant::InSitu),
        PolicyKind::Red(RedVariant::Full),
        PolicyKind::Fbr,
    ]
}

#[test]
fn forking_matches_scratch_across_the_evaluation_matrix() {
    // All 14 suite workloads × the figure architectures × both time
    // modes. One
    // warmup per workload (under an arbitrary exemplar policy) feeds
    // every fork; the snapshot key must agree across the whole policy
    // family, including across time modes — the warm phase is
    // policy- and mode-independent by construction.
    let gen = GenConfig::tiny();
    for w in Workload::ALL {
        let traces: SharedTraces = w.generate(&gen).into();
        let cfg_of = |kind, skip: bool| {
            SimConfig::quick(kind)
                .to_builder()
                .time_skip(skip)
                .build()
                .expect("preset-derived config validates")
        };
        let snap = Simulator::new(cfg_of(PolicyKind::Alloy, true)).warm(traces.clone());
        for kind in figure_policies() {
            for skip in [true, false] {
                let cfg = cfg_of(kind, skip);
                assert_eq!(
                    Simulator::new(cfg).warm_key(),
                    snap.key(),
                    "{kind} (skip={skip}) must share {w}'s warm snapshot"
                );
                let forked = Simulator::new(cfg).resume(&snap);
                let scratch = Simulator::new(cfg).run(traces.clone());
                assert_eq!(
                    forked, scratch,
                    "{kind} on {w} (skip={skip}): forked run diverged from scratch"
                );
            }
        }
    }
}

#[test]
fn forking_matches_scratch_for_baseline_topologies() {
    // No-HBM and IDEAL exercise the single-sided and always-hit
    // adoption paths (IDEAL additionally adopts the DDR version table).
    let gen = GenConfig::tiny();
    for w in [Workload::Is, Workload::Hist, Workload::Ocn] {
        let traces: SharedTraces = w.generate(&gen).into();
        for kind in [PolicyKind::NoHbm, PolicyKind::Ideal] {
            let cfg = SimConfig::quick(kind);
            let snap = Simulator::new(cfg).warm(traces.clone());
            let forked = Simulator::new(cfg).resume(&snap);
            let scratch = Simulator::new(cfg).run(traces.clone());
            assert_eq!(forked, scratch, "{kind} on {w}");
        }
    }
}

#[test]
fn forking_matches_scratch_with_timing_audit_attached() {
    // The auditor observes every issued command; identical audit
    // payloads mean the forked run issued the same command stream at
    // the same cycles as the scratch run.
    let gen = GenConfig::tiny();
    let w = Workload::Is;
    let traces: SharedTraces = w.generate(&gen).into();
    for kind in [PolicyKind::Alloy, PolicyKind::Red(RedVariant::Full)] {
        let cfg = SimConfig::quick(kind)
            .to_builder()
            .audit_timing(true)
            .build()
            .expect("preset-derived config validates");
        let snap = Simulator::new(cfg).warm(traces.clone());
        let forked = Simulator::new(cfg).resume(&snap);
        let scratch = Simulator::new(cfg).run(traces.clone());
        assert_eq!(forked, scratch, "{kind} with audit");
        let audit = forked.ddr_audit.as_ref().expect("audit attached");
        assert!(audit.clean(), "timing violations in the forked run");
        assert!(audit.cmds_audited > 0);
    }
}

#[test]
fn forking_matches_scratch_with_epoch_recording_enabled() {
    // The recorder re-baselines at the fork point exactly as it does
    // at the in-run warmup boundary, so whole reports — *including*
    // the timeseries — must be bit-identical.
    let gen = GenConfig::tiny();
    for kind in [
        PolicyKind::Alloy,
        PolicyKind::Red(RedVariant::Full),
        PolicyKind::NoHbm,
    ] {
        for w in [Workload::Ft, Workload::Is, Workload::Hist] {
            let traces: SharedTraces = w.generate(&gen).into();
            let cfg = SimConfig::quick(kind)
                .to_builder()
                .epoch_cycles(Some(25_000))
                .build()
                .expect("preset-derived config validates");
            let snap = Simulator::new(cfg).warm(traces.clone());
            let forked = Simulator::new(cfg).resume(&snap);
            let scratch = Simulator::new(cfg).run(traces.clone());
            assert_eq!(
                forked, scratch,
                "{kind} on {w}: recording-enabled fork diverged from scratch"
            );
            let ts = forked.timeseries.as_ref().expect("recording was on");
            assert!(!ts.epochs.is_empty());
        }
    }
}

#[test]
fn policy_knob_overrides_share_the_exemplar_snapshot() {
    // The warm key must be blind to the RedCache α/γ/RCU knobs: a
    // parameter sweep is exactly the workload for which warm forking
    // exists. Every override forks from the α=default snapshot and
    // still matches its own scratch run.
    let gen = GenConfig::tiny();
    let w = Workload::Lreg;
    let traces: SharedTraces = w.generate(&gen).into();
    let base = SimConfig::quick(PolicyKind::Red(RedVariant::Full));
    let snap = Simulator::new(base).warm(traces.clone());
    for alpha_initial in [2u32, 4, 8] {
        let mut red = RedConfig::for_variant(RedVariant::Full);
        red.alpha.initial = alpha_initial;
        red.alpha.min = red.alpha.min.min(alpha_initial);
        red.alpha.max = red.alpha.max.max(alpha_initial);
        let mut cfg = base;
        cfg.policy.red_override = Some(red);
        assert_eq!(Simulator::new(cfg).warm_key(), snap.key());
        let forked = Simulator::new(cfg).resume(&snap);
        let scratch = Simulator::new(cfg).run(traces.clone());
        assert_eq!(forked, scratch, "alpha initial={alpha_initial}");
    }
}

#[test]
fn fbr_knob_overrides_share_the_exemplar_snapshot() {
    // Same contract for the FBR knobs: `fbr_override` is a pure policy
    // parameter, so a threshold/associativity sweep forks from one
    // snapshot — warmed under a *different* policy — and every point
    // still matches its own scratch run bit-exactly.
    let gen = GenConfig::tiny();
    let w = Workload::Lreg;
    let traces: SharedTraces = w.generate(&gen).into();
    let snap = Simulator::new(SimConfig::quick(PolicyKind::Alloy)).warm(traces.clone());
    for (ways, threshold) in [(1usize, 0u32), (4, 2), (8, 4)] {
        let mut cfg = SimConfig::quick(PolicyKind::Fbr);
        cfg.policy.fbr_override = Some(FbrConfig {
            ways,
            threshold,
            ..FbrConfig::default()
        });
        assert_eq!(
            Simulator::new(cfg).warm_key(),
            snap.key(),
            "fbr ways={ways} threshold={threshold} must be warm-key-blind"
        );
        let forked = Simulator::new(cfg).resume(&snap);
        let scratch = Simulator::new(cfg).run(traces.clone());
        assert_eq!(forked, scratch, "fbr ways={ways} threshold={threshold}");
    }
}
