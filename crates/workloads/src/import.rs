//! External trace import: the RCTI envelope and its text front-end
//! (DESIGN.md §3.15).
//!
//! Imported traces feed the exact same `SharedTraces` → RCTR cache →
//! warm-fork pipeline as generated workloads; the only difference is
//! provenance, so the import format carries an integrity checksum the
//! generator formats do not need (a damaged generated entry can always
//! be regenerated; a damaged *imported* entry can only be healed from
//! its source text, or rejected):
//!
//! ```text
//! magic "RCTI" | version u32 | fnv1a u64 over the payload
//! payload: threads u32
//!   per thread: len u64, then len records of
//!     op u8 (0 = load, 1 = store) | addr u64 | gap u32
//! ```
//!
//! The text front-end accepts one access per line, `addr,rw[,tid]`:
//! `addr` decimal or `0x…` hex, `rw` one of `r`/`l` (load) or `w`/`s`
//! (store), `tid` an optional decimal thread id (default 0). Blank
//! lines and `#` comments are skipped.

use crate::common::ThreadTraces;
use redcache_cpu::Access;
use redcache_types::{MemOp, PhysAddr};
use std::io::{self, BufRead, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"RCTI";
const VERSION: u32 = 1;
/// Imported thread-count ceiling (same sanity bound as RCTR).
const MAX_THREADS: usize = 4096;

// The envelope checksum (and the content key naming import-cache
// entries) is the workspace-wide FNV-1a from the wire codec.
use redcache_types::wire::fnv1a;

fn encode_payload(traces: &ThreadTraces) -> Vec<u8> {
    let records: usize = traces.iter().map(Vec::len).sum();
    let mut p = Vec::with_capacity(4 + traces.len() * 8 + records * 13);
    p.extend_from_slice(&(traces.len() as u32).to_le_bytes());
    for t in traces {
        p.extend_from_slice(&(t.len() as u64).to_le_bytes());
        for a in t {
            p.push(a.op.is_store() as u8);
            p.extend_from_slice(&a.addr.raw().to_le_bytes());
            p.extend_from_slice(&a.gap.to_le_bytes());
        }
    }
    p
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn decode_payload(p: &[u8]) -> io::Result<ThreadTraces> {
    let mut pos = 0usize;
    let mut take = |n: usize| -> io::Result<&[u8]> {
        let s = p
            .get(pos..pos + n)
            .ok_or_else(|| bad("truncated RCTI payload"))?;
        pos += n;
        Ok(s)
    };
    let threads = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
    if threads > MAX_THREADS {
        return Err(bad("implausible thread count"));
    }
    let mut traces = Vec::with_capacity(threads);
    for _ in 0..threads {
        let len = u64::from_le_bytes(take(8)?.try_into().unwrap()) as usize;
        let mut t = Vec::with_capacity(len.min(1 << 24));
        for _ in 0..len {
            let op = take(1)?[0];
            let addr = u64::from_le_bytes(take(8)?.try_into().unwrap());
            let gap = u32::from_le_bytes(take(4)?.try_into().unwrap());
            t.push(Access {
                op: if op == 1 { MemOp::Store } else { MemOp::Load },
                addr: PhysAddr::new(addr),
                gap,
            });
        }
        traces.push(t);
    }
    if pos != p.len() {
        return Err(bad("trailing bytes after RCTI payload"));
    }
    Ok(traces)
}

/// Writes `traces` as an RCTI envelope.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_rcti<W: Write>(mut w: W, traces: &ThreadTraces) -> io::Result<()> {
    let payload = encode_payload(traces);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&fnv1a(&payload).to_le_bytes())?;
    w.write_all(&payload)
}

/// Reads an RCTI envelope, verifying magic, version and checksum.
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic/version, a checksum mismatch,
/// or a truncated/overlong payload; propagates reader I/O errors.
pub fn read_rcti<R: Read>(mut r: R) -> io::Result<ThreadTraces> {
    let mut head = [0u8; 16];
    r.read_exact(&mut head)?;
    if &head[..4] != MAGIC {
        return Err(bad("not an RCTI trace file"));
    }
    if u32::from_le_bytes(head[4..8].try_into().unwrap()) != VERSION {
        return Err(bad("unsupported RCTI version"));
    }
    let sum = u64::from_le_bytes(head[8..16].try_into().unwrap());
    let mut payload = Vec::new();
    r.read_to_end(&mut payload)?;
    if fnv1a(&payload) != sum {
        return Err(bad("RCTI checksum mismatch"));
    }
    decode_payload(&payload)
}

/// Convenience: writes an RCTI envelope to `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_rcti(path: &Path, traces: &ThreadTraces) -> io::Result<()> {
    write_rcti(io::BufWriter::new(std::fs::File::create(path)?), traces)
}

/// Convenience: reads an RCTI envelope from `path`.
///
/// # Errors
///
/// Propagates filesystem and format errors.
pub fn load_rcti(path: &Path) -> io::Result<ThreadTraces> {
    read_rcti(io::BufReader::new(std::fs::File::open(path)?))
}

/// Parses the `addr,rw[,tid]` text format into per-thread traces. The
/// thread count is `max(tid) + 1`; threads with no lines get empty
/// streams (they pad to idle cores, like short generated traces).
///
/// # Errors
///
/// Returns `InvalidData` naming the first malformed line; propagates
/// reader I/O errors.
pub fn parse_text<R: BufRead>(r: R) -> io::Result<ThreadTraces> {
    let mut traces: ThreadTraces = Vec::new();
    for (no, line) in r.lines().enumerate() {
        let line = line?;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut fields = body.split(',').map(str::trim);
        let err = |what: &str| bad(&format!("line {}: {what}: {body:?}", no + 1));
        let addr_s = fields.next().ok_or_else(|| err("missing address"))?;
        let addr = match addr_s.strip_prefix("0x").or_else(|| addr_s.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => addr_s.parse(),
        }
        .map_err(|_| err("bad address"))?;
        let op = match fields.next().ok_or_else(|| err("missing r/w flag"))? {
            "r" | "R" | "l" | "L" => MemOp::Load,
            "w" | "W" | "s" | "S" => MemOp::Store,
            _ => return Err(err("bad r/w flag")),
        };
        let tid: usize = match fields.next() {
            Some(t) => t.parse().map_err(|_| err("bad thread id"))?,
            None => 0,
        };
        if fields.next().is_some() {
            return Err(err("trailing fields"));
        }
        if tid >= MAX_THREADS {
            return Err(err("implausible thread id"));
        }
        if tid >= traces.len() {
            traces.resize_with(tid + 1, Vec::new);
        }
        traces[tid].push(Access {
            op,
            addr: PhysAddr::new(addr),
            gap: 1,
        });
    }
    if traces.is_empty() {
        return Err(bad("empty trace: no access lines found"));
    }
    Ok(traces)
}

/// Parses a text trace file; see [`parse_text`].
///
/// # Errors
///
/// Propagates filesystem and format errors.
pub fn parse_text_file(path: &Path) -> io::Result<ThreadTraces> {
    parse_text(io::BufReader::new(std::fs::File::open(path)?))
}

/// The import-cache file name for a text source: keyed by the source
/// *content* (FNV-1a over its bytes), so an edited source never serves
/// a stale import.
pub fn cache_file_name(text: &[u8]) -> String {
    format!("import-{:016x}.rcti", fnv1a(text))
}

/// Imports `text_path` through an optional RCTI cache rooted at `dir` —
/// the import twin of `trace_io::generate_cached_in`, with the same
/// damage-is-a-miss healing: a corrupt or truncated cache entry is
/// re-imported from the source text and rewritten. Unlike generated
/// workloads there is no generator to fall back on, so a missing or
/// unparsable *source* is a hard error (regeneration-or-reject).
///
/// # Errors
///
/// Propagates source filesystem/format errors. Cache damage alone never
/// fails the import.
pub fn import_cached_in(text_path: &Path, dir: Option<&Path>) -> io::Result<ThreadTraces> {
    let text = std::fs::read(text_path)?;
    let Some(dir) = dir else {
        return parse_text(&text[..]);
    };
    let path = dir.join(cache_file_name(&text));
    if let Ok(traces) = load_rcti(&path) {
        return Ok(traces);
    }
    let traces = parse_text(&text[..])?;
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = save_rcti(&path, &traces);
    }
    Ok(traces)
}

/// Loads a trace from any supported on-disk form, by extension:
/// `.rcti` envelopes, `.rctr` cache entries, anything else as text.
///
/// # Errors
///
/// Propagates filesystem and format errors.
pub fn load_any(path: &Path) -> io::Result<ThreadTraces> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("rcti") => load_rcti(path),
        Some("rctr") => crate::trace_io::load(path),
        _ => parse_text_file(path),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "# a tiny imported trace\n\
        0x1000,r\n\
        0x1040,w,1\n\
        4096,R,0\n\
        0x2000,s\n\
        \n\
        0x3000,l,3 # trailing comment\n";

    fn sample_traces() -> ThreadTraces {
        parse_text(SAMPLE.as_bytes()).unwrap()
    }

    #[test]
    fn text_parses_hex_decimal_flags_and_tids() {
        let t = sample_traces();
        assert_eq!(t.len(), 4, "threads = max tid + 1");
        assert_eq!(t[0].len(), 3);
        assert_eq!(t[1].len(), 1);
        assert!(t[2].is_empty());
        assert_eq!(t[3].len(), 1);
        assert_eq!(t[0][0].addr.raw(), 0x1000);
        assert_eq!(t[0][1].addr.raw(), 4096);
        assert!(t[1][0].op.is_store());
        assert!(!t[3][0].op.is_store());
    }

    #[test]
    fn text_rejects_malformed_lines() {
        for bad_line in [
            "xyz,r",
            "0x10",
            "0x10,q",
            "0x10,r,notatid",
            "0x10,r,0,extra",
            "0x10,r,9999999",
            "",
            "# only comments\n",
        ] {
            assert!(parse_text(bad_line.as_bytes()).is_err(), "{bad_line:?}");
        }
    }

    #[test]
    fn rcti_round_trips() {
        let t = sample_traces();
        let mut buf = Vec::new();
        write_rcti(&mut buf, &t).unwrap();
        assert_eq!(read_rcti(&buf[..]).unwrap(), t);
    }

    #[test]
    fn rcti_rejects_damage() {
        let t = sample_traces();
        let mut buf = Vec::new();
        write_rcti(&mut buf, &t).unwrap();
        // Bad magic.
        assert!(read_rcti(&b"NOPE"[..]).is_err());
        // Bad version.
        let mut v = buf.clone();
        v[4] = 9;
        assert!(read_rcti(&v[..]).is_err());
        // Payload bit flip: caught by the checksum.
        let mut flip = buf.clone();
        let last = flip.len() - 1;
        flip[last] ^= 0x40;
        assert!(read_rcti(&flip[..]).is_err());
        // Truncation: caught by the checksum before the decoder runs.
        let mut trunc = buf.clone();
        trunc.truncate(trunc.len() - 3);
        assert!(read_rcti(&trunc[..]).is_err());
        // Trailing garbage: checksum again.
        let mut extra = buf;
        extra.push(0);
        assert!(read_rcti(&extra[..]).is_err());
    }

    #[test]
    fn import_cache_heals_from_source_or_rejects() {
        let dir = std::env::temp_dir().join(format!("redcache_import_{:x}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("trace.txt");
        std::fs::write(&src, SAMPLE).unwrap();

        let first = import_cached_in(&src, Some(&dir)).unwrap();
        let entry = dir.join(cache_file_name(SAMPLE.as_bytes()));
        assert!(entry.is_file(), "import cache entry missing");
        let pristine = std::fs::read(&entry).unwrap();

        // Truncate the cache entry: the import re-parses the source and
        // heals the entry byte-for-byte.
        std::fs::write(&entry, &pristine[..pristine.len() / 2]).unwrap();
        let second = import_cached_in(&src, Some(&dir)).unwrap();
        assert_eq!(first, second);
        assert_eq!(std::fs::read(&entry).unwrap(), pristine, "not healed");

        // Outright garbage heals the same way.
        std::fs::write(&entry, b"junk").unwrap();
        assert_eq!(import_cached_in(&src, Some(&dir)).unwrap(), first);
        assert_eq!(std::fs::read(&entry).unwrap(), pristine);

        // With the entry damaged *and* the source unparsable, the
        // import is rejected — never silently served from damage.
        std::fs::write(&entry, b"junk").unwrap();
        std::fs::write(&src, "not,a,trace,line").unwrap();
        assert!(import_cached_in(&src, Some(&dir)).is_err());

        // A missing source is a hard error too (nothing to heal from).
        std::fs::remove_file(&src).unwrap();
        assert!(import_cached_in(&src, Some(&dir)).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_any_dispatches_on_extension() {
        let dir = std::env::temp_dir().join(format!("redcache_loadany_{:x}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let t = sample_traces();

        let txt = dir.join("a.trace");
        std::fs::write(&txt, SAMPLE).unwrap();
        assert_eq!(load_any(&txt).unwrap(), t);

        let rcti = dir.join("a.rcti");
        save_rcti(&rcti, &t).unwrap();
        assert_eq!(load_any(&rcti).unwrap(), t);

        let rctr = dir.join("a.rctr");
        crate::trace_io::save(&rctr, &t).unwrap();
        assert_eq!(load_any(&rctr).unwrap(), t);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
