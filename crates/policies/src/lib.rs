//! DRAM-cache controllers for the RedCache reproduction.
//!
//! This crate implements the paper's primary contribution — the
//! **RedCache** adaptive controller family (§III) — together with every
//! architecture it is evaluated against:
//!
//! * [`NoHbmController`] — no DRAM cache; all traffic to DDR4 (Fig. 1a);
//! * [`IdealController`] — a perfect HBM cache with 100 % hit rate that
//!   still pays tag-check transfers (Fig. 1b);
//! * [`AlloyController`] — the Alloy direct-mapped TAD cache
//!   [Qureshi & Loh, MICRO'12], with a region-based memory-access
//!   predictor standing in for MAP-I;
//! * [`BearController`] — BEAR [Chou et al., ISCA'15]: Alloy plus
//!   bandwidth-aware fill bypass and presence-based probe elision;
//! * [`RedCacheController`] — α/γ adaptive reduced caching with the RCU
//!   update manager, in all five paper variants
//!   ([`RedVariant::Alpha`], [`RedVariant::Gamma`], [`RedVariant::Basic`],
//!   [`RedVariant::InSitu`], [`RedVariant::Full`]);
//! * [`FbrController`] — Banshee-style frequency-based replacement
//!   [Yu et al., MICRO'17] on the pluggable replacement-policy API:
//!   sampled frequency counters, thresholded admission, and
//!   bandwidth-aware fill throttling.
//!
//! The [`registry`] module is the single source of truth tying these
//! together: CLI spellings, display names, figure columns, and
//! constructors all come from one table, so adding a policy is one
//! entry there plus its module.
//!
//! Every controller owns its DRAM back ends (a WideIO/HBM
//! [`redcache_dram::DramSystem`] and a DDR4 one), drives them cycle by
//! cycle, and tracks *functional* line versions so the simulator's
//! shadow checker can prove no policy ever serves stale data.

#![warn(missing_docs)]

mod alloy;
mod bear;
pub mod controller;
mod engine;
mod fbr;
mod fill;
mod ideal;
mod nohbm;
mod predictor;
pub mod redcache;
pub mod registry;
mod tagstore;

pub use alloy::AlloyController;
pub use bear::BearController;
pub use controller::{
    CompletedReq, ControllerGauges, ControllerStats, DramCacheController, MemorySides,
    PolicyConfig, PolicyKind, WarmMemoryState,
};
pub use fbr::{FbrConfig, FbrController};
pub use fill::FillController;
pub use ideal::IdealController;
pub use nohbm::NoHbmController;
pub use redcache::{RedCacheController, RedConfig, RedVariant};
pub use tagstore::{classify, BlockClass};

/// Builds the controller selected by `cfg.kind` (dispatching through
/// the [`registry`]).
pub fn build_controller(cfg: &PolicyConfig) -> Box<dyn DramCacheController> {
    (registry::entry(cfg.kind).build)(cfg)
}

/// Frozen oracles for the lockstep suites (`tests/tagstore_lockstep.rs`).
/// Not a supported API.
#[doc(hidden)]
pub mod testing {
    pub use crate::tagstore::{ReferenceTagStore, TagStore};

    /// The paper controllers' direct-mapped organisation.
    pub type DefaultTagStore = TagStore;
}
