//! Workload trace generators for the RedCache reproduction.
//!
//! The paper evaluates eleven data-intensive parallel applications
//! (Table II): FT, IS, MG from NAS; Cholesky, Radix, Ocean, FFT, LU,
//! Barnes from SPLASH-2; Histogram and Linear Regression from Phoenix.
//!
//! Per DESIGN.md §1, each generator **runs the actual kernel** of its
//! benchmark at a scaled problem size and records the memory reference
//! stream of each of the 16 worker threads. This preserves the property
//! RedCache exploits — the per-application block-reuse/bandwidth-cost
//! distribution (Fig. 3/4) — while keeping simulation tractable:
//! streaming inputs stay zero-reuse (L-type), hot working sets stay
//! high-reuse (H-type), and phase-terminated data keeps its
//! "last access is a write" signature (§II.C).
//!
//! # Example
//!
//! ```
//! use redcache_workloads::{GenConfig, Workload};
//!
//! let traces = Workload::Hist.generate(&GenConfig::tiny());
//! assert_eq!(traces.len(), GenConfig::tiny().threads);
//! assert!(traces.iter().all(|t| !t.is_empty()));
//! ```

#![warn(missing_docs)]

mod barnes;
mod cholesky;
mod common;
mod fft;
mod ft;
mod hist;
mod is;
mod lreg;
mod lu;
mod mg;
mod ocean;
mod radix;
pub mod suite;
pub mod synthetic;
pub mod trace_io;

pub use common::{GenConfig, Layout, SharedTraces, ThreadTraces};
pub use suite::{generation_count, Workload, WorkloadInfo};
