//! The r-count update (RCU) manager (§III.C, Fig. 8).
//!
//! On every read hit the controller holds back the TAD write that would
//! refresh the block's r-count, parking a copy of the block in a
//! 32-entry CAM (indices) + RAM (blocks) queue. An entry drains when
//!
//! 1. the command scheduler issues a *write to the same
//!    channel/rank/bank/row* — the queued update then follows at tCCD
//!    cost with no bus turnaround (the CAM match),
//! 2. the transaction queues go empty — the update is free, or
//! 3. the queue overflows — the oldest entry is forced out at full cost.
//!
//! The queue doubles as a 2.5 KB block cache: recently read blocks can
//! be served from it without touching HBM at all.

use redcache_dram::DramLoc;
use redcache_types::{Cycle, PhysAddr};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A parked r-count update: the block's identity and refreshed TAD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcuEntry {
    /// Cache block index (for block-cache lookups).
    pub block: u64,
    /// HBM-internal address of the block's set.
    pub hbm_addr: PhysAddr,
    /// Decoded DRAM location (the CAM index: channel/rank/bank/row).
    pub loc: DramLoc,
    /// Sub-line payload versions carried by the parked TAD copy.
    pub versions: [u64; 4],
    /// Cycle the update was parked.
    pub queued_at: Cycle,
}

/// Drain statistics (§III.C claims >97 % of updates avoid the full
/// turnaround cost; `cheap_fraction` reports the measured figure).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RcuStats {
    /// Updates parked in the queue.
    pub enqueued: u64,
    /// Drains triggered by a same-row write (cost tCCD).
    pub piggyback_drains: u64,
    /// Drains into an empty transaction queue (free slot).
    pub idle_drains: u64,
    /// Forced drains on overflow (full turnaround cost).
    pub forced_drains: u64,
    /// Re-parks of a block already queued (update merged in place).
    pub merged: u64,
    /// Reads served from the queue's block cache.
    pub block_cache_hits: u64,
}

impl RcuStats {
    /// Fraction of drained updates that avoided the full cost.
    pub fn cheap_fraction(&self) -> f64 {
        let cheap = self.piggyback_drains + self.idle_drains;
        let total = cheap + self.forced_drains;
        if total == 0 {
            1.0
        } else {
            cheap as f64 / total as f64
        }
    }
}

/// The RCU queue.
#[derive(Debug)]
pub struct RcuQueue {
    entries: VecDeque<RcuEntry>,
    capacity: usize,
    stats: RcuStats,
}

impl RcuQueue {
    /// Creates a queue of `capacity` entries (32 in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RCU queue needs capacity");
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            stats: RcuStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> RcuStats {
        self.stats
    }

    /// Zeroes the statistics (warmup boundary); queued entries stay.
    pub fn reset_stats(&mut self) {
        self.stats = RcuStats::default();
    }

    /// Entries currently parked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parks an update. If the block is already queued the entry is
    /// refreshed in place; on overflow the oldest entry is returned for
    /// a forced drain.
    pub fn push(&mut self, entry: RcuEntry) -> Option<RcuEntry> {
        self.stats.enqueued += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.block == entry.block) {
            *e = entry;
            self.stats.merged += 1;
            return None;
        }
        let evicted = if self.entries.len() >= self.capacity {
            self.stats.forced_drains += 1;
            self.entries.pop_front()
        } else {
            None
        };
        self.entries.push_back(entry);
        evicted
    }

    /// CAM match: drains the first entry sharing `loc`'s row (condition
    /// 1 — a scheduled write opened that row).
    pub fn match_write(&mut self, loc: &DramLoc) -> Option<RcuEntry> {
        let pos = self.entries.iter().position(|e| e.loc.same_row(loc))?;
        self.stats.piggyback_drains += 1;
        self.entries.remove(pos)
    }

    /// Drains the oldest entry into an idle memory system (condition 2).
    pub fn pop_idle(&mut self) -> Option<RcuEntry> {
        let e = self.entries.pop_front()?;
        self.stats.idle_drains += 1;
        Some(e)
    }

    /// Drains the oldest entry whose target *channel* has an empty
    /// transaction queue (condition 2, evaluated per channel: the
    /// update delays no queued cache request).
    pub fn pop_idle_on_channel(&mut self, channel: usize) -> Option<RcuEntry> {
        let pos = self.entries.iter().position(|e| e.loc.channel == channel)?;
        self.stats.idle_drains += 1;
        self.entries.remove(pos)
    }

    /// Drains the oldest entry for `channel` to join an in-progress
    /// write batch (condition 1's write-clustering form: the bus is
    /// already in write direction, so the update costs one tCCD slot).
    pub fn pop_cluster_on_channel(&mut self, channel: usize) -> Option<RcuEntry> {
        let pos = self.entries.iter().position(|e| e.loc.channel == channel)?;
        self.stats.piggyback_drains += 1;
        self.entries.remove(pos)
    }

    /// True when some parked entry targets `channel` (used by the
    /// event-driven skip logic to decide whether a drain condition on
    /// that channel could actually fire).
    pub fn has_entry_on_channel(&self, channel: usize) -> bool {
        self.entries.iter().any(|e| e.loc.channel == channel)
    }

    /// Block-cache lookup: a parked TAD copy can serve a read.
    pub fn lookup_block(&self, block: u64) -> Option<&RcuEntry> {
        let e = self.entries.iter().find(|e| e.block == block)?;
        Some(e)
    }

    /// Records a block-cache hit (kept separate from `lookup_block` so
    /// peeking does not distort statistics).
    pub fn note_cache_hit(&mut self) {
        self.stats.block_cache_hits += 1;
    }

    /// Removes a parked entry for `block` (the block was overwritten or
    /// invalidated; its parked update is obsolete).
    pub fn remove_block(&mut self, block: u64) -> Option<RcuEntry> {
        let pos = self.entries.iter().position(|e| e.block == block)?;
        self.entries.remove(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(block: u64, row: u64) -> RcuEntry {
        RcuEntry {
            block,
            hbm_addr: PhysAddr::new(block * 64),
            loc: DramLoc {
                channel: 0,
                rank: 0,
                bank: 0,
                row,
                col: 0,
            },
            versions: [0; 4],
            queued_at: 0,
        }
    }

    #[test]
    fn push_and_cam_match() {
        let mut q = RcuQueue::new(4);
        q.push(entry(1, 10));
        q.push(entry(2, 20));
        let hit = q.match_write(&DramLoc {
            channel: 0,
            rank: 0,
            bank: 0,
            row: 20,
            col: 3,
        });
        assert_eq!(hit.unwrap().block, 2);
        assert_eq!(q.len(), 1);
        assert!(
            q.match_write(&DramLoc {
                channel: 0,
                rank: 0,
                bank: 1,
                row: 10,
                col: 0
            })
            .is_none(),
            "different bank must not match"
        );
        assert_eq!(q.stats().piggyback_drains, 1);
    }

    #[test]
    fn overflow_forces_oldest_out() {
        let mut q = RcuQueue::new(2);
        q.push(entry(1, 1));
        q.push(entry(2, 2));
        let forced = q.push(entry(3, 3)).expect("forced drain");
        assert_eq!(forced.block, 1);
        assert_eq!(q.stats().forced_drains, 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn repeated_block_merges_in_place() {
        let mut q = RcuQueue::new(2);
        q.push(entry(1, 1));
        let mut e = entry(1, 1);
        e.versions[0] = 9;
        assert!(q.push(e).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.stats().merged, 1);
        assert_eq!(q.lookup_block(1).unwrap().versions[0], 9);
    }

    #[test]
    fn idle_pop_and_cache_ops() {
        let mut q = RcuQueue::new(4);
        q.push(entry(5, 50));
        assert!(q.lookup_block(5).is_some());
        q.note_cache_hit();
        assert!(q.remove_block(5).is_some());
        assert!(q.pop_idle().is_none());
        q.push(entry(6, 60));
        assert_eq!(q.pop_idle().unwrap().block, 6);
        let s = q.stats();
        assert_eq!(s.block_cache_hits, 1);
        assert_eq!(s.idle_drains, 1);
    }

    #[test]
    fn cheap_fraction_counts_only_drains() {
        let mut q = RcuQueue::new(1);
        assert_eq!(q.stats().cheap_fraction(), 1.0);
        q.push(entry(1, 1));
        q.push(entry(2, 2)); // forces 1 out
        q.pop_idle(); // drains 2
        assert!((q.stats().cheap_fraction() - 0.5).abs() < 1e-12);
    }
}
