//! Verifies the matrix harness's warm-once contract with the
//! process-wide warm counter.
//!
//! Kept as a single `#[test]` in its own integration-test binary: the
//! counter is process-global, so sibling tests warming simulators in
//! parallel would make the delta ambiguous.

use redcache::{warm_count, PolicyKind, RedVariant, SimConfig};
use redcache_bench::{run_matrix_timed_opts, RunSpec};
use redcache_workloads::{GenConfig, Workload};

#[test]
fn forked_matrix_warms_each_workload_exactly_once() {
    let gen = GenConfig::tiny();
    let policies = [
        PolicyKind::NoHbm,
        PolicyKind::Ideal,
        PolicyKind::Alloy,
        PolicyKind::Bear,
        PolicyKind::Red(RedVariant::Full),
    ];
    let workloads = [Workload::Lreg, Workload::Hist, Workload::Is];
    let mut specs = Vec::new();
    for &w in &workloads {
        for &p in &policies {
            specs.push(RunSpec {
                workload: w,
                policy: p,
                cfg: SimConfig::quick(p),
            });
        }
    }

    // Forked: 15 simulations, 3 distinct workloads (all sharing one
    // warm key per workload) — exactly 3 warmups.
    let before = warm_count();
    let forked = run_matrix_timed_opts(&specs, &gen, true);
    assert_eq!(
        warm_count() - before,
        workloads.len() as u64,
        "forked matrix re-warmed per spec instead of per workload"
    );

    // Scratch: every spec pays its own warmup.
    let before = warm_count();
    let scratch = run_matrix_timed_opts(&specs, &gen, false);
    assert_eq!(
        warm_count() - before,
        specs.len() as u64,
        "scratch matrix must warm per spec"
    );

    // Same results either way, in spec order; forked runs carry the
    // shared warm time, scratch runs report none.
    assert_eq!(forked.len(), specs.len());
    for ((spec, f), s) in specs.iter().zip(&forked).zip(&scratch) {
        assert_eq!(
            f.report, s.report,
            "{} on {}: forked matrix diverged from scratch",
            spec.policy, spec.workload
        );
        assert!(f.warm_s > 0.0, "forked runs record their group's warm time");
        assert_eq!(s.warm_s, 0.0, "scratch runs have no shared warm time");
    }
}
