//! Event and bandwidth statistics for one DRAM system.

use redcache_types::Cycle;
use serde::{Deserialize, Serialize};

/// Raw DRAM command-event counts, the inputs to the energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramEnergyEvents {
    /// Row activations.
    pub acts: u64,
    /// Precharges (explicit; refresh-forced closes are counted too).
    pub pres: u64,
    /// Read bursts (one tBL data transfer each).
    pub rd_bursts: u64,
    /// Write bursts.
    pub wr_bursts: u64,
    /// Per-rank refresh operations.
    pub refreshes: u64,
}

impl DramEnergyEvents {
    /// Element-wise accumulation.
    pub fn add(&mut self, other: &DramEnergyEvents) {
        self.acts += other.acts;
        self.pres += other.pres;
        self.rd_bursts += other.rd_bursts;
        self.wr_bursts += other.wr_bursts;
        self.refreshes += other.refreshes;
    }

    /// Element-wise difference `self - prev`, for deriving per-epoch
    /// event counts from two snapshots of one monotonically growing
    /// counter set. Saturating, so a snapshot pair straddling a stats
    /// reset degrades to the post-reset value instead of wrapping.
    pub fn delta(&self, prev: &DramEnergyEvents) -> DramEnergyEvents {
        DramEnergyEvents {
            acts: self.acts.saturating_sub(prev.acts),
            pres: self.pres.saturating_sub(prev.pres),
            rd_bursts: self.rd_bursts.saturating_sub(prev.rd_bursts),
            wr_bursts: self.wr_bursts.saturating_sub(prev.wr_bursts),
            refreshes: self.refreshes.saturating_sub(prev.refreshes),
        }
    }
}

/// Aggregate statistics for one DRAM system over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DramStats {
    /// Energy-relevant event counts.
    pub energy: DramEnergyEvents,
    /// Bytes moved from DRAM to the controller.
    pub bytes_read: u64,
    /// Bytes moved from the controller to DRAM.
    pub bytes_written: u64,
    /// Cycles during which any channel's data bus carried data
    /// (summed over channels — the paper's "aggregate bandwidth").
    pub bus_busy_cycles: u64,
    /// Transactions completed.
    pub txns_completed: u64,
    /// Sum of enqueue-to-data-completion latencies.
    pub latency_sum: Cycle,
    /// Transactions enqueued.
    pub txns_enqueued: u64,
    /// Samples of "all channel queues empty" taken per command slot.
    pub empty_slot_samples: u64,
    /// Total command-slot samples.
    pub slot_samples: u64,
    /// Column (RD/WR) commands issued.
    pub col_cmds: u64,
    /// Demand activates (each one is a row miss for some transaction).
    pub demand_acts: u64,
    /// Timing-audit violations observed so far. Always 0 when the
    /// runtime audit is disabled; see [`crate::TimingAuditor`] and
    /// [`crate::AuditStats`] for the full per-rule breakdown.
    #[serde(default)]
    pub audit_violations: u64,
    /// Sum over command slots of the scheduler-window occupancy
    /// (`min(queue length, window)`, summed over channels). Together
    /// with `slot_samples` this gives the mean number of transactions
    /// the scheduler kernel had to consider per slot. Skipped slots are
    /// back-filled by [`crate::DramSystem::sync_to`] with the frozen
    /// queue state, so the value is identical in event-driven and
    /// cycle-accurate walks.
    #[serde(default)]
    pub window_occupancy_sum: u64,
}

impl DramStats {
    /// Field-wise difference `self - prev`: what happened between two
    /// snapshots of one system's counters. Every field of [`DramStats`]
    /// is a monotonically growing sum, so the difference of two
    /// snapshots is itself a valid `DramStats` covering the interval —
    /// this is what makes per-epoch series free: the epoch recorder
    /// snapshots the counters that already exist instead of adding any
    /// hot-path instrumentation.
    pub fn delta(&self, prev: &DramStats) -> DramStats {
        DramStats {
            energy: self.energy.delta(&prev.energy),
            bytes_read: self.bytes_read.saturating_sub(prev.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(prev.bytes_written),
            bus_busy_cycles: self.bus_busy_cycles.saturating_sub(prev.bus_busy_cycles),
            txns_completed: self.txns_completed.saturating_sub(prev.txns_completed),
            latency_sum: self.latency_sum.saturating_sub(prev.latency_sum),
            txns_enqueued: self.txns_enqueued.saturating_sub(prev.txns_enqueued),
            empty_slot_samples: self
                .empty_slot_samples
                .saturating_sub(prev.empty_slot_samples),
            slot_samples: self.slot_samples.saturating_sub(prev.slot_samples),
            col_cmds: self.col_cmds.saturating_sub(prev.col_cmds),
            demand_acts: self.demand_acts.saturating_sub(prev.demand_acts),
            audit_violations: self.audit_violations.saturating_sub(prev.audit_violations),
            window_occupancy_sum: self
                .window_occupancy_sum
                .saturating_sub(prev.window_occupancy_sum),
        }
    }

    /// Element-wise accumulation, the inverse of [`DramStats::delta`]:
    /// summing an epoch series re-forms the aggregate it was sliced
    /// from (the epoch-invariant test pins this identity).
    pub fn add(&mut self, other: &DramStats) {
        self.energy.add(&other.energy);
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.bus_busy_cycles += other.bus_busy_cycles;
        self.txns_completed += other.txns_completed;
        self.latency_sum += other.latency_sum;
        self.txns_enqueued += other.txns_enqueued;
        self.empty_slot_samples += other.empty_slot_samples;
        self.slot_samples += other.slot_samples;
        self.col_cmds += other.col_cmds;
        self.demand_acts += other.demand_acts;
        self.audit_violations += other.audit_violations;
        self.window_occupancy_sum += other.window_occupancy_sum;
    }

    /// Total bytes moved in either direction.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Mean transaction latency in cycles, or 0.0 when nothing completed.
    pub fn mean_latency(&self) -> f64 {
        if self.txns_completed == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.txns_completed as f64
        }
    }

    /// Mean scheduler-window occupancy per command slot (transactions
    /// the kernel had to consider, summed over channels).
    pub fn mean_window_occupancy(&self) -> f64 {
        if self.slot_samples == 0 {
            0.0
        } else {
            self.window_occupancy_sum as f64 / self.slot_samples as f64
        }
    }

    /// Fraction of command slots at which every queue was empty.
    pub fn empty_queue_fraction(&self) -> f64 {
        if self.slot_samples == 0 {
            0.0
        } else {
            self.empty_slot_samples as f64 / self.slot_samples as f64
        }
    }

    /// Row-buffer hit rate: the fraction of column commands that did not
    /// require a fresh activate.
    pub fn row_hit_rate(&self) -> f64 {
        if self.col_cmds == 0 {
            0.0
        } else {
            1.0 - (self.demand_acts.min(self.col_cmds) as f64 / self.col_cmds as f64)
        }
    }

    /// Data-bus utilisation over `channels` channels and `cycles` time.
    pub fn bus_utilization(&self, channels: usize, cycles: u64) -> f64 {
        if cycles == 0 || channels == 0 {
            0.0
        } else {
            self.bus_busy_cycles as f64 / (channels as u64 * cycles) as f64
        }
    }
}

redcache_types::wire_struct!(DramEnergyEvents {
    acts,
    pres,
    rd_bursts,
    wr_bursts,
    refreshes,
});
redcache_types::wire_struct!(DramStats {
    energy,
    bytes_read,
    bytes_written,
    bus_busy_cycles,
    txns_completed,
    latency_sum,
    txns_enqueued,
    empty_slot_samples,
    slot_samples,
    col_cmds,
    demand_acts,
    audit_violations,
    window_occupancy_sum,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_accumulate() {
        let mut a = DramEnergyEvents {
            acts: 1,
            pres: 2,
            rd_bursts: 3,
            wr_bursts: 4,
            refreshes: 5,
        };
        let b = a;
        a.add(&b);
        assert_eq!(a.acts, 2);
        assert_eq!(a.refreshes, 10);
    }

    #[test]
    fn mean_latency_handles_empty() {
        let mut s = DramStats::default();
        assert_eq!(s.mean_latency(), 0.0);
        s.txns_completed = 2;
        s.latency_sum = 100;
        assert_eq!(s.mean_latency(), 50.0);
    }

    #[test]
    fn delta_subtracts_every_field_and_recomposes() {
        let prev = DramStats {
            energy: DramEnergyEvents {
                acts: 3,
                ..Default::default()
            },
            bytes_read: 100,
            txns_completed: 4,
            slot_samples: 50,
            window_occupancy_sum: 25,
            ..Default::default()
        };
        let cur = DramStats {
            energy: DramEnergyEvents {
                acts: 10,
                ..Default::default()
            },
            bytes_read: 164,
            txns_completed: 9,
            slot_samples: 80,
            window_occupancy_sum: 40,
            ..Default::default()
        };
        let d = cur.delta(&prev);
        assert_eq!(d.energy.acts, 7);
        assert_eq!(d.bytes_read, 64);
        assert_eq!(d.txns_completed, 5);
        assert_eq!(d.slot_samples, 30);
        assert_eq!(d.window_occupancy_sum, 15);
        // delta(x, x) is zero, and prev + delta = cur on every field.
        assert_eq!(cur.delta(&cur), DramStats::default());
        let mut recomposed = prev;
        recomposed.energy.add(&d.energy);
        recomposed.bytes_read += d.bytes_read;
        assert_eq!(recomposed.bytes_read, cur.bytes_read);
        assert_eq!(recomposed.energy.acts, cur.energy.acts);
    }

    #[test]
    fn byte_totals_sum_directions() {
        let s = DramStats {
            bytes_read: 10,
            bytes_written: 5,
            ..Default::default()
        };
        assert_eq!(s.bytes_total(), 15);
    }

    #[test]
    fn row_hit_rate_derives_from_cols_and_acts() {
        let s = DramStats {
            col_cmds: 10,
            demand_acts: 3,
            ..Default::default()
        };
        assert!((s.row_hit_rate() - 0.7).abs() < 1e-12);
        assert_eq!(DramStats::default().row_hit_rate(), 0.0);
        // More ACTs than columns (multi-burst corner) clamps to 0.
        let s = DramStats {
            col_cmds: 2,
            demand_acts: 5,
            ..Default::default()
        };
        assert_eq!(s.row_hit_rate(), 0.0);
    }

    #[test]
    fn bus_utilization_normalises_by_channels_and_time() {
        let s = DramStats {
            bus_busy_cycles: 500,
            ..Default::default()
        };
        assert!((s.bus_utilization(2, 1000) - 0.25).abs() < 1e-12);
        assert_eq!(s.bus_utilization(0, 1000), 0.0);
        assert_eq!(s.bus_utilization(2, 0), 0.0);
    }
}
