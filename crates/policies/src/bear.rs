//! The **BEAR** cache [Chou, Jaleel & Qureshi, ISCA'15]: Alloy plus
//! three bandwidth-bloat mitigations.
//!
//! * **BAB** — bandwidth-aware bypass: most miss fills are bypassed;
//!   two sampler set groups (always-fill vs never-fill) estimate the
//!   hit-rate cost of bypassing, and bypass is disabled for an epoch
//!   when that cost grows too large.
//! * **DCP** — DRAM-cache presence tracking lets the controller elide
//!   the probe read on accesses to absent blocks (they go straight to
//!   DDR) and the tag-check read on writeback hits.
//! * Writeback misses go directly to main memory — no
//!   writeback-allocate bloat.

use crate::controller::{
    CompletedReq, ControllerGauges, ControllerStats, DramCacheController, MemorySides,
    PolicyConfig, PolicyKind,
};
use crate::engine::{legs, Engine, LegSpec};
use crate::tagstore::TagStore;
use redcache_dram::{AuditStats, DramStats, TxnKind};
use redcache_types::{AccessKind, Cycle, LineAddr, MemRequest};

/// Epoch length (requests) for the bypass gain estimator.
const EPOCH: u64 = 8192;
/// Sampler group stride: sets ≡ 0 always fill, sets ≡ 1 never fill.
const SAMPLER_STRIDE: usize = 32;
/// Fill probability (percent) for follower sets while bypass is active
/// (BEAR keeps ~10 % of fills).
const FILL_PCT: u64 = 10;
/// Hit-rate advantage of the always-fill samplers above which bypass is
/// suspended for the next epoch.
const BYPASS_COST_THRESHOLD: f64 = 0.15;

#[derive(Debug, Default)]
struct SamplerStats {
    fill_hits: u64,
    fill_accesses: u64,
    bypass_hits: u64,
    bypass_accesses: u64,
}

/// The BEAR controller.
#[derive(Debug)]
pub struct BearController {
    sides: MemorySides,
    engine: Engine,
    tags: TagStore,
    stats: ControllerStats,
    sampler: SamplerStats,
    bypass_enabled: bool,
    epoch_reqs: u64,
    block_bytes: usize,
    bursts: u32,
    rng_state: u64,
    epochs_bypassing: u64,
    epochs_total: u64,
    compl_buf: Vec<redcache_dram::Completion>,
}

impl BearController {
    /// Builds the controller.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: &PolicyConfig) -> Self {
        cfg.validate().expect("invalid policy config");
        let sets = (cfg.hbm.topology.capacity_bytes() / cfg.cache_block_bytes as u64) as usize;
        Self {
            sides: MemorySides::new(cfg),
            engine: Engine::new(),
            tags: TagStore::new(sets, cfg.lines_per_block()),
            stats: ControllerStats::default(),
            sampler: SamplerStats::default(),
            bypass_enabled: true,
            epoch_reqs: 0,
            block_bytes: cfg.cache_block_bytes,
            bursts: (cfg.cache_block_bytes / 64) as u32,
            rng_state: 0x2EA7_5EED,
            epochs_bypassing: 0,
            epochs_total: 0,
            compl_buf: Vec::new(),
        }
    }

    fn rand_pct(&mut self) -> u64 {
        // xorshift64*; deterministic and cheap.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D) % 100
    }

    fn sampler_group(&self, line: LineAddr) -> Option<bool> {
        // Some(true) = always-fill sampler, Some(false) = never-fill.
        match self.tags.set_of(line) % SAMPLER_STRIDE {
            0 => Some(true),
            1 => Some(false),
            _ => None,
        }
    }

    /// BAB fill decision for a read miss on `line`.
    fn should_fill(&mut self, line: LineAddr) -> bool {
        match self.sampler_group(line) {
            Some(true) => true,
            Some(false) => false,
            None => {
                if !self.bypass_enabled {
                    true
                } else {
                    self.rand_pct() < FILL_PCT
                }
            }
        }
    }

    fn note_epoch_boundary(&mut self) {
        self.epoch_reqs += 1;
        if self.epoch_reqs < EPOCH {
            return;
        }
        self.epoch_reqs = 0;
        let s = &self.sampler;
        let fill_rate = if s.fill_accesses == 0 {
            0.0
        } else {
            s.fill_hits as f64 / s.fill_accesses as f64
        };
        let bypass_rate = if s.bypass_accesses == 0 {
            0.0
        } else {
            s.bypass_hits as f64 / s.bypass_accesses as f64
        };
        self.bypass_enabled = fill_rate - bypass_rate < BYPASS_COST_THRESHOLD;
        self.epochs_total += 1;
        self.epochs_bypassing += self.bypass_enabled as u64;
        self.sampler = SamplerStats::default();
    }

    fn train_sampler(&mut self, line: LineAddr, hit: bool) {
        match self.sampler_group(line) {
            Some(true) => {
                self.sampler.fill_accesses += 1;
                self.sampler.fill_hits += hit as u64;
            }
            Some(false) => {
                self.sampler.bypass_accesses += 1;
                self.sampler.bypass_hits += hit as u64;
            }
            None => {}
        }
    }

    fn block_versions_from_ddr(&self, line: LineAddr) -> [u64; 4] {
        let mut v = [0u64; 4];
        let first = self.tags.block_first_line(self.tags.block_of(line));
        for (i, slot) in v
            .iter_mut()
            .enumerate()
            .take(self.tags.lines_per_block() as usize)
        {
            *slot = self
                .sides
                .ddr_version(LineAddr::new(first.raw() + i as u64));
        }
        v
    }

    fn retire_victim(
        &mut self,
        victim: Option<crate::tagstore::TagEntry>,
        leg: u8,
    ) -> Option<LegSpec> {
        let victim = victim?;
        if !victim.dirty {
            return None;
        }
        self.stats.victim_writebacks += 1;
        self.stats.ddr_writes += 1;
        let first = self.tags.block_first_line(victim.block);
        for i in 0..self.tags.lines_per_block() {
            let l = LineAddr::new(first.raw() + i);
            self.sides.ddr_store(l, victim.versions[i as usize]);
        }
        Some(LegSpec {
            leg,
            hbm: false,
            kind: TxnKind::Write,
            addr: self.sides.ddr_addr(first),
            bursts: self.bursts,
            gates_data: false,
            deferred: false,
        })
    }

    fn submit_read(&mut self, req: MemRequest, now: Cycle, done: &mut Vec<CompletedReq>) {
        let line = req.line;
        self.stats.table_lookups += 1; // presence lookup
        let hit = self.tags.contains(line);
        self.train_sampler(line, hit);
        self.note_epoch_boundary();
        if hit {
            self.stats.hbm_probes += 1;
            self.stats.hbm_hits += 1;
            let sub = self.tags.subline_of(line);
            let e = self.tags.entry_mut(line).expect("hit entry");
            e.r_count.inc();
            let version = e.versions[sub];
            let probe = LegSpec {
                leg: legs::PROBE,
                hbm: true,
                kind: TxnKind::Read,
                addr: self.tags.hbm_addr(line, self.block_bytes),
                bursts: self.bursts,
                gates_data: true,
                deferred: false,
            };
            self.engine
                .start(req, version, &[probe], &mut self.sides, now, done);
            return;
        }
        // Presence says absent: no probe at all (miss-probe elision).
        self.stats.hbm_misses += 1;
        self.stats.hbm_bypasses += 1;
        self.stats.ddr_reads += 1;
        let version = self.sides.ddr_version(line);
        let mut legspecs = vec![LegSpec {
            leg: legs::DDR_READ,
            hbm: false,
            kind: TxnKind::Read,
            addr: self.sides.ddr_addr(line),
            bursts: self.bursts,
            gates_data: true,
            deferred: false,
        }];
        if self.should_fill(line) {
            self.stats.fills += 1;
            self.stats.hbm_writes += 1;
            let fill_versions = self.block_versions_from_ddr(line);
            let victim = self.tags.install(line, fill_versions, false);
            legspecs.push(LegSpec {
                leg: legs::HBM_WRITE,
                hbm: true,
                kind: TxnKind::Write,
                addr: self.tags.hbm_addr(line, self.block_bytes),
                bursts: self.bursts,
                gates_data: false,
                deferred: false,
            });
            if let Some(wb) = self.retire_victim(victim, legs::DDR_WRITE) {
                legspecs.push(wb);
            }
        } else {
            self.stats.fill_bypasses += 1;
        }
        self.engine
            .start(req, version, &legspecs, &mut self.sides, now, done);
    }

    fn submit_writeback(&mut self, req: MemRequest, now: Cycle, done: &mut Vec<CompletedReq>) {
        let line = req.line;
        self.stats.table_lookups += 1;
        let hit = self.tags.contains(line);
        self.note_epoch_boundary();
        if hit {
            // DCP: presence is known — write directly, no tag-check read.
            self.stats.hbm_hits += 1;
            self.stats.hbm_writes += 1;
            let sub = self.tags.subline_of(line);
            let e = self.tags.entry_mut(line).expect("hit entry");
            e.dirty = true;
            e.versions[sub] = req.data_version;
            e.r_count.inc();
            let write = LegSpec {
                leg: legs::HBM_WRITE,
                hbm: true,
                kind: TxnKind::Write,
                addr: self.tags.hbm_addr(line, self.block_bytes),
                bursts: self.bursts,
                gates_data: true,
                deferred: false,
            };
            self.engine
                .start(req, 0, &[write], &mut self.sides, now, done);
            return;
        }
        // Writeback miss: straight to DDR (no allocate, no probe).
        self.stats.hbm_misses += 1;
        self.stats.hbm_bypasses += 1;
        self.stats.ddr_writes += 1;
        self.sides.ddr_store(line, req.data_version);
        let write = LegSpec {
            leg: legs::DDR_WRITE,
            hbm: false,
            kind: TxnKind::Write,
            addr: self.sides.ddr_addr(line),
            bursts: 1,
            gates_data: true,
            deferred: false,
        };
        self.engine
            .start(req, 0, &[write], &mut self.sides, now, done);
    }
}

impl DramCacheController for BearController {
    fn submit(&mut self, req: MemRequest, now: Cycle) {
        self.sides.sync_to(now);
        self.stats.submitted += 1;
        let mut done = Vec::new();
        match req.kind {
            AccessKind::Read => self.submit_read(req, now, &mut done),
            AccessKind::Writeback => self.submit_writeback(req, now, &mut done),
        }
        debug_assert!(done.is_empty());
    }

    fn tick(&mut self, now: Cycle, done: &mut Vec<CompletedReq>) {
        self.sides.hbm.tick(now);
        self.sides.ddr.tick(now);
        let before = done.len();
        let mut buf = std::mem::take(&mut self.compl_buf);
        self.sides.hbm.drain_completions_into(&mut buf);
        for c in &buf {
            self.engine
                .on_completion(c.meta, c.done_at, &mut self.sides, done);
        }
        buf.clear();
        self.sides.ddr.drain_completions_into(&mut buf);
        for c in &buf {
            self.engine
                .on_completion(c.meta, c.done_at, &mut self.sides, done);
        }
        buf.clear();
        self.compl_buf = buf;
        let _ = self.engine.take_events();
        for d in &done[before..] {
            self.stats.completed += 1;
            if d.kind == AccessKind::Read {
                self.stats.reads_completed += 1;
                self.stats.read_latency_sum += d.latency();
            }
        }
    }

    fn next_event(&self, now: Cycle) -> Cycle {
        self.sides
            .hbm
            .sys
            .next_event(now)
            .min(self.sides.ddr.sys.next_event(now))
    }

    fn pending(&self) -> usize {
        self.engine.pending()
    }

    fn stats(&self) -> ControllerStats {
        self.stats
    }

    fn hbm_stats(&self) -> Option<DramStats> {
        Some(*self.sides.hbm.sys.stats())
    }

    fn ddr_stats(&self) -> DramStats {
        *self.sides.ddr.sys.stats()
    }

    fn hbm_audit(&self) -> Option<AuditStats> {
        self.sides.hbm_audit()
    }

    fn ddr_audit(&self) -> Option<AuditStats> {
        self.sides.ddr_audit()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Bear
    }

    fn preload(&mut self, line: LineAddr, version: u64) {
        self.sides.ddr_store(line, version);
    }

    fn gauges(&self) -> ControllerGauges {
        self.sides.dram_gauges()
    }

    fn reset_stats(&mut self) {
        self.stats = ControllerStats::default();
        self.sides.hbm.sys.reset_stats();
        self.sides.ddr.sys.reset_stats();
        self.epochs_bypassing = 0;
        self.epochs_total = 0;
    }

    fn adopt_warm(&mut self, warm: &crate::WarmMemoryState) {
        self.sides.restore_warm(warm);
    }

    fn supports_warm_fork(&self) -> bool {
        true
    }

    fn extras(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("bear_bypass_on", self.bypass_enabled as u8 as f64),
            ("bear_bypass_epoch_fraction", {
                if self.epochs_total == 0 {
                    1.0
                } else {
                    self.epochs_bypassing as f64 / self.epochs_total as f64
                }
            }),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_types::{CoreId, ReqId};

    fn drive(c: &mut BearController, from: Cycle) -> (Vec<CompletedReq>, Cycle) {
        let mut done = Vec::new();
        let mut now = from;
        while c.pending() > 0 {
            c.tick(now, &mut done);
            now += 1;
            assert!(now < 5_000_000);
        }
        (done, now)
    }

    fn ctl() -> BearController {
        BearController::new(&PolicyConfig::scaled(PolicyKind::Bear))
    }

    #[test]
    fn read_miss_skips_probe() {
        let mut c = ctl();
        c.preload(LineAddr::new(5), 50);
        c.submit(
            MemRequest::read(ReqId(1), LineAddr::new(5), CoreId(0), 0),
            0,
        );
        let (done, _) = drive(&mut c, 0);
        assert_eq!(done[0].data_version, 50);
        // Absent block: zero probe reads; WideIO only sees a fill (if any).
        assert_eq!(c.stats().hbm_probes, 0);
        assert_eq!(c.stats().hbm_bypasses, 1);
    }

    #[test]
    fn most_fills_are_bypassed() {
        let mut c = ctl();
        for i in 0..2000u64 {
            // Avoid the sampler groups to observe follower behaviour.
            c.submit(
                MemRequest::read(ReqId(i), LineAddr::new(i * 7 + 2), CoreId(0), 0),
                0,
            );
        }
        drive(&mut c, 0);
        let s = c.stats();
        assert!(
            s.fill_bypasses > s.fills * 3,
            "fills {} bypasses {}",
            s.fills,
            s.fill_bypasses
        );
    }

    #[test]
    fn writeback_miss_goes_straight_to_ddr() {
        let mut c = ctl();
        c.submit(
            MemRequest::writeback(ReqId(1), LineAddr::new(9), CoreId(0), 0, 7),
            0,
        );
        let (_, t) = drive(&mut c, 0);
        assert_eq!(
            c.hbm_stats().unwrap().bytes_total(),
            0,
            "no WideIO traffic for absent writeback"
        );
        assert_eq!(c.ddr_stats().bytes_written, 64);
        // And the data is readable afterwards.
        c.submit(
            MemRequest::read(ReqId(2), LineAddr::new(9), CoreId(0), t),
            t,
        );
        let (done, _) = drive(&mut c, t);
        assert_eq!(done[0].data_version, 7);
    }

    #[test]
    fn writeback_hit_is_single_hbm_access() {
        let mut c = ctl();
        // Force a fill via the always-fill sampler group (set 0):
        // line 0 maps to set 0.
        c.submit(
            MemRequest::read(ReqId(1), LineAddr::new(0), CoreId(0), 0),
            0,
        );
        let (_, t) = drive(&mut c, 0);
        assert_eq!(c.stats().fills, 1);
        let rd_before = c.hbm_stats().unwrap().energy.rd_bursts;
        c.submit(
            MemRequest::writeback(ReqId(2), LineAddr::new(0), CoreId(0), t, 9),
            t,
        );
        let (_, t2) = drive(&mut c, t);
        assert_eq!(
            c.hbm_stats().unwrap().energy.rd_bursts,
            rd_before,
            "DCP write hit must not read tags"
        );
        c.submit(
            MemRequest::read(ReqId(3), LineAddr::new(0), CoreId(0), t2),
            t2,
        );
        let (done, _) = drive(&mut c, t2);
        assert_eq!(done[0].data_version, 9);
    }

    #[test]
    fn bypass_estimator_disables_bypass_for_hot_reuse() {
        let mut c = ctl();
        // Hammer a small follower-set working set: always-fill samplers
        // will show a big hit-rate advantage, disabling bypass.
        let mut now = 0;
        for round in 0..6u64 {
            for i in 0..(EPOCH / 4) {
                let line = LineAddr::new((i % 512) * 7 + 2);
                c.submit(
                    MemRequest::read(ReqId(round * 100_000 + i), line, CoreId(0), now),
                    now,
                );
                let (_, t) = drive(&mut c, now);
                now = t;
            }
        }
        assert!(!c.bypass_enabled, "estimator should have disabled bypass");
    }
}
