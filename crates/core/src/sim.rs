//! The full-system simulator: cores × hierarchy × controller × DRAM.
//!
//! Cycle loop per CPU cycle: each core may commit one memory access
//! into the hierarchy; L3 misses and dirty evictions become controller
//! requests; the controller drives both DRAM systems and hands back
//! completions, which fill the hierarchy and wake stalled loads. A
//! shadow memory checks every read's payload version against the last
//! writeback, end to end.
//!
//! # Warm forking (DESIGN.md §3.13)
//!
//! Every built-in run is two phases: [`Simulator::warm`] executes the
//! §IV.A warmup fraction under the policy-independent
//! [`redcache_policies::FillController`], drains the memory system to
//! quiescence, and captures a [`WarmSnapshot`] of the complete machine;
//! [`Simulator::resume`] builds the measured policy's controller fresh,
//! adopts the snapshot, and runs the remainder. [`Simulator::run`] is
//! exactly `warm` + `resume`, so forking one snapshot into N policy
//! runs is bit-identical to N scratch runs — the fork-vs-scratch golden
//! suite pins this. Custom controllers that do not opt into
//! [`redcache_policies::DramCacheController::supports_warm_fork`] take
//! the legacy single-pass loop with the in-loop statistics reset.

use crate::checker::ShadowMemory;
use crate::config::SimConfig;
use crate::epoch::EpochRecorder;
use crate::metrics::RunReport;
use redcache_cache::Hierarchy;
use redcache_cpu::{Core, LoadToken, Poll};
use redcache_energy::{CpuActivity, EnergyModel};
use redcache_policies::{
    build_controller, CompletedReq, DramCacheController, FillController, MemorySides,
    WarmMemoryState,
};
use redcache_types::{
    tenancy::tenant_of_addr, AccessKind, CoreId, Cycle, LineAddr, MemRequest, ReqId, Restorable,
    Snapshot, TenantStats, BLOCK_BYTES,
};
use redcache_workloads::SharedTraces;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// Re-exported for documentation purposes only.
#[allow(unused_imports)]
use redcache_policies::PolicyKind;

/// Warmup phases executed by this process, across all simulations. The
/// matrix-forking bench asserts on deltas of this counter: warming W
/// workloads into P policy runs each must add exactly W, not W × P.
static WARM_RUNS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of warmup phases executed so far (monotonic).
pub fn warm_count() -> u64 {
    WARM_RUNS.load(Ordering::Relaxed)
}

#[derive(Debug, Clone, Copy)]
struct WaiterInfo {
    core: usize,
    load_token: Option<LoadToken>,
    store_version: Option<u64>,
}

/// Slab of in-flight waiters keyed by slot index. Replaces the previous
/// `HashMap<u64, WaiterInfo>`: ids are recycled through a free list, so
/// long runs stop hashing and never grow the table past the peak number
/// of simultaneous misses.
#[derive(Debug, Clone, Default)]
struct WaiterSlab {
    slots: Vec<Option<WaiterInfo>>,
    free: Vec<usize>,
}

impl WaiterSlab {
    /// The id `insert` will hand out next. The simulator passes this to
    /// the hierarchy *before* knowing whether the access misses; on a
    /// hit or an MSHR-full retry nothing is inserted and the id is
    /// simply re-offered next time.
    fn peek_id(&self) -> u64 {
        self.free.last().copied().unwrap_or(self.slots.len()) as u64
    }

    fn insert(&mut self, info: WaiterInfo) -> u64 {
        match self.free.pop() {
            Some(i) => {
                debug_assert!(self.slots[i].is_none());
                self.slots[i] = Some(info);
                i as u64
            }
            None => {
                self.slots.push(Some(info));
                (self.slots.len() - 1) as u64
            }
        }
    }

    fn remove(&mut self, id: u64) -> Option<WaiterInfo> {
        let info = self.slots.get_mut(id as usize)?.take();
        if info.is_some() {
            self.free.push(id as usize);
        }
        info
    }
}

// At a fork point the slab is drained (every slot `None`), but the free
// list's *order* decides which ids `peek_id` re-offers, and those ids
// flow into MSHR waiter lists — so the slab is carried verbatim.
redcache_types::wire_struct!(WaiterInfo {
    core,
    load_token,
    store_version,
});
redcache_types::wire_struct!(WaiterSlab { slots, free });

/// Submits dirty L3 evictions to the controller as writeback requests.
/// A plain function (not a per-run closure) so the hot completion path
/// borrows only what it needs.
fn submit_writebacks(
    evicted: &[redcache_cache::Evicted],
    controller: &mut dyn DramCacheController,
    shadow: &mut ShadowMemory,
    next_req: &mut u64,
    mem_writebacks: &mut u64,
    tenants: &mut [TenantStats],
    now: Cycle,
) {
    for ev in evicted {
        debug_assert!(ev.dirty);
        let id = ReqId(*next_req);
        *next_req += 1;
        shadow.on_writeback(ev.line, ev.version);
        controller.submit(
            MemRequest::writeback(id, ev.line, CoreId(0), now, ev.version),
            now,
        );
        *mem_writebacks += 1;
        if !tenants.is_empty() {
            // The evicted line's region names its owner (DESIGN.md
            // §3.15) — no side-band metadata survives the hierarchy,
            // the address does.
            let t = tenant_of_addr(ev.line.base(BLOCK_BYTES).raw()).min(tenants.len() - 1);
            tenants[t].mem_writebacks += 1;
        }
    }
}

/// What the main loop is executing (DESIGN.md §3.13).
#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Legacy single-pass run: warmup and measurement under one
    /// controller, statistics reset in-loop at the §IV.A boundary.
    Full { warmup_target: u64 },
    /// Policy-independent warmup: run until `target` accesses have
    /// committed, then drain the memory system to quiescence and stop
    /// at the fork point.
    Warm { target: u64 },
    /// Measured continuation from a warm snapshot (statistics were
    /// reset at the fork).
    Measure,
}

/// The complete mutable state of one simulation, separated from the
/// loop so warm snapshots can capture and re-install it wholesale.
struct Machine {
    cores: Vec<Core>,
    hierarchy: Hierarchy,
    shadow: ShadowMemory,
    waiters: WaiterSlab,
    next_req: u64,
    next_version: u64,
    mem_reads: u64,
    mem_writebacks: u64,
    /// Per-tenant attribution counters, sized by `SimConfig::tenancy`
    /// (empty for single-tenant runs — every attribution site is then a
    /// skipped branch). Reset with the other statistics at the §IV.A
    /// boundary; never carried in warm snapshots.
    tenants: Vec<TenantStats>,
    finish: Vec<Option<Cycle>>,
    done_buf: Vec<CompletedReq>,
    shadow_violations: u64,
    recorder: Option<EpochRecorder>,
    now: Cycle,
    committed: u64,
    warmed: bool,
    warmup_cycle: Cycle,
    warmup_instructions: u64,
}

impl Machine {
    fn new(cfg: &SimConfig, traces: SharedTraces) -> Self {
        let ncores = cfg.hierarchy.cores;
        assert!(
            traces.threads() <= ncores,
            "{} traces but only {ncores} cores",
            traces.threads()
        );
        let cores: Vec<Core> = traces
            .into_iter()
            .chain(std::iter::repeat_with(|| Arc::from(Vec::new())))
            .take(ncores)
            .map(|t| Core::new(cfg.core, t))
            .collect();
        Self {
            cores,
            hierarchy: Hierarchy::new(cfg.hierarchy),
            shadow: ShadowMemory::new(),
            waiters: WaiterSlab::default(),
            next_req: 0,
            next_version: 1,
            mem_reads: 0,
            mem_writebacks: 0,
            tenants: vec![
                TenantStats::default();
                cfg.tenancy.map_or(0, |s| s.tenants as usize)
            ],
            finish: vec![None; ncores],
            done_buf: Vec::new(),
            shadow_violations: 0,
            recorder: cfg.epoch_cycles.map(EpochRecorder::new),
            now: 0,
            committed: 0,
            warmed: false,
            warmup_cycle: 0,
            warmup_instructions: 0,
        }
    }

    /// Drives the machine until the phase's exit condition. `Full` and
    /// `Measure` run to completion (all cores finished, memory idle);
    /// `Warm` stops at the quiescent fork point.
    fn run(&mut self, cfg: &SimConfig, controller: &mut dyn DramCacheController, phase: Phase) {
        // Event-driven advance is exact (DESIGN.md §3.7); the runtime
        // escape hatch exists for A/B equivalence checks.
        let skip_enabled =
            cfg.time_skip && std::env::var_os("REDCACHE_NO_SKIP").is_none_or(|v| v != "1");
        let mut blocked_idle_streak = 0u32;
        let mut draining = matches!(phase, Phase::Warm { target: 0 });
        loop {
            // Fork-point crossing: the cycle that commits the target
            // access finishes its full poll round first, then the drain
            // begins — core polls stop, the memory system runs dry.
            if let Phase::Warm { target } = phase {
                if !draining && self.committed >= target {
                    draining = true;
                }
            }

            // 1. Core side: each active core may commit one access.
            let mut all_finished = true;
            let mut min_wake: Option<Cycle> = None;
            let mut any_blocked = false;
            let mut any_ready = false;
            if draining {
                // No polls while draining: in-flight fills may still
                // trigger writebacks, so quiescence is detected below,
                // not via core completion.
                all_finished = false;
            } else {
                for (ci, core) in self.cores.iter_mut().enumerate() {
                    if self.finish[ci].is_some() {
                        continue;
                    }
                    match core.poll(self.now) {
                        Poll::Finished(t) => {
                            self.finish[ci] = Some(t);
                            continue;
                        }
                        Poll::NotYet(t) => {
                            all_finished = false;
                            min_wake = Some(min_wake.map_or(t, |m: Cycle| m.min(t)));
                        }
                        Poll::WaitingMem => {
                            all_finished = false;
                            any_blocked = true;
                        }
                        Poll::Ready(access) => {
                            all_finished = false;
                            any_ready = true;
                            self.committed += 1;
                            let line = access.addr.line(BLOCK_BYTES);
                            let is_store = access.op.is_store();
                            let version = if is_store {
                                self.next_version += 1;
                                self.next_version
                            } else {
                                0
                            };
                            let wid = self.waiters.peek_id();
                            let out = self.hierarchy.access(
                                CoreId(ci as u16),
                                line,
                                access.op,
                                version,
                                wid,
                            );
                            let tenant = if self.tenants.is_empty() {
                                usize::MAX
                            } else {
                                let t = tenant_of_addr(access.addr.raw())
                                    .min(self.tenants.len() - 1);
                                let ts = &mut self.tenants[t];
                                ts.accesses += 1;
                                ts.stores += is_store as u64;
                                t
                            };
                            submit_writebacks(
                                &out.writebacks,
                                controller,
                                &mut self.shadow,
                                &mut self.next_req,
                                &mut self.mem_writebacks,
                                &mut self.tenants,
                                self.now,
                            );
                            if out.hit_level.is_some() {
                                if tenant != usize::MAX {
                                    self.tenants[tenant].hits += 1;
                                }
                                core.commit_hit(self.now, out.latency);
                            } else if out.must_retry() {
                                // MSHR full: retry next cycle.
                                any_blocked = true;
                            } else {
                                let info = if is_store {
                                    core.commit_store_miss(self.now);
                                    WaiterInfo {
                                        core: ci,
                                        load_token: None,
                                        store_version: Some(version),
                                    }
                                } else {
                                    let tok = core.commit_load_miss(self.now);
                                    WaiterInfo {
                                        core: ci,
                                        load_token: Some(tok),
                                        store_version: None,
                                    }
                                };
                                let assigned = self.waiters.insert(info);
                                debug_assert_eq!(assigned, wid);
                                if out.mem_read_needed() {
                                    let id = ReqId(self.next_req);
                                    self.next_req += 1;
                                    self.shadow.on_read_submit(id.0, line);
                                    controller.submit(
                                        MemRequest::read(id, line, CoreId(ci as u16), self.now),
                                        self.now,
                                    );
                                    self.mem_reads += 1;
                                    if tenant != usize::MAX {
                                        self.tenants[tenant].mem_reads += 1;
                                    }
                                }
                            }
                        }
                    }
                }
            }

            // 2. Memory side.
            controller.tick(self.now, &mut self.done_buf);
            // Completions wake cores whose earlier poll already answered
            // for this cycle — never skip past their re-poll.
            let delivered = !self.done_buf.is_empty();
            let mut done_buf = std::mem::take(&mut self.done_buf);
            for d in done_buf.drain(..) {
                match d.kind {
                    AccessKind::Read => {
                        if cfg.check_shadow && !self.shadow.on_read_complete(d.id.0, d.data_version)
                        {
                            self.shadow_violations += 1;
                        }
                        let fr = self.hierarchy.complete_fill(d.line, d.data_version);
                        submit_writebacks(
                            &fr.writebacks,
                            controller,
                            &mut self.shadow,
                            &mut self.next_req,
                            &mut self.mem_writebacks,
                            &mut self.tenants,
                            self.now,
                        );
                        for wid in fr.waiters {
                            let Some(info) = self.waiters.remove(wid) else {
                                continue;
                            };
                            let wbs = self.hierarchy.fill_waiter(
                                CoreId(info.core as u16),
                                d.line,
                                d.data_version,
                                info.store_version,
                            );
                            submit_writebacks(
                                &wbs,
                                controller,
                                &mut self.shadow,
                                &mut self.next_req,
                                &mut self.mem_writebacks,
                                &mut self.tenants,
                                self.now,
                            );
                            if let Some(tok) = info.load_token {
                                self.cores[info.core].complete_load(tok, d.done_at.max(self.now));
                            }
                        }
                    }
                    AccessKind::Writeback => {}
                }
            }
            self.done_buf = done_buf;

            // 3. Warmup boundary (legacy single-pass runs only): reset
            // statistics once the configured fraction of the trace has
            // committed (§IV.A). Functional and adaptive state carries
            // over; only counters reset.
            if let Phase::Full { warmup_target } = phase {
                if !self.warmed && self.committed >= warmup_target {
                    self.warmed = true;
                    self.warmup_cycle = self.now;
                    self.warmup_instructions =
                        self.cores.iter().map(|c| c.instructions_dispatched()).sum();
                    controller.reset_stats();
                    self.hierarchy.reset_stats();
                    self.tenants.fill(TenantStats::default());
                    if let Some(rec) = self.recorder.as_mut() {
                        rec.note_warmup_reset();
                    }
                }
            }

            // 3b. Epoch close: after the memory side has ticked cycle
            // `now`, so the epoch ending here has seen all of it.
            if let Some(rec) = self.recorder.as_mut() {
                if self.now >= rec.next_boundary() {
                    rec.sample(self.now, &*controller, self.hierarchy.stats(), &self.tenants);
                }
            }

            // 4. Termination and time advance.
            if draining && controller.pending() == 0 && self.hierarchy.mshr_len() == 0 {
                // Quiescent fork point: nothing in flight anywhere below
                // the cores (fills completed above may have queued new
                // writebacks — in that case pending() is nonzero and the
                // drain continues).
                break;
            }
            if all_finished && controller.pending() == 0 {
                break;
            }
            // A core can look blocked in the same cycle its last
            // completion arrives; only a *persistent* blocked-with-idle-
            // memory state is a real deadlock.
            if any_blocked && controller.pending() == 0 && self.hierarchy.mshr_len() == 0 {
                blocked_idle_streak += 1;
                if blocked_idle_streak > 8 {
                    let now = self.now;
                    let states: Vec<String> = self
                        .cores
                        .iter_mut()
                        .enumerate()
                        .map(|(i, c)| format!("core{i}: {:?}", c.poll(now)))
                        .collect();
                    panic!(
                        "deadlock at cycle {now}: cores blocked with idle memory\n{}",
                        states.join("\n")
                    );
                }
            } else {
                blocked_idle_streak = 0;
            }
            // Fast-forward across pure-compute stretches (active in both
            // modes; predates the event-driven advance below and jumps
            // even past DRAM-refresh edges when memory is fully idle).
            if controller.pending() == 0 && !any_blocked {
                if let Some(w) = min_wake {
                    if w > self.now + 1 {
                        self.now = w;
                        continue;
                    }
                }
            }
            // Event-driven advance: if no core committed this cycle, no
            // completion was delivered, and neither the cores nor the
            // memory system can act before `target`, every intermediate
            // cycle would have been a no-op — jump over it. Exactness
            // argument in DESIGN.md §3.7. While draining this becomes
            // the drain accelerator: with polls off the horizon is just
            // the controller's next event (and any epoch boundary).
            if skip_enabled
                && !any_ready
                && !delivered
                // When a core wakes next cycle anyway the jump target
                // cannot exceed `now + 1`; skip the horizon computation.
                && min_wake.is_none_or(|w| w > self.now + 1)
            {
                // An epoch boundary is an event horizon too: the skip
                // lands on it exactly, where ticking "early" is a no-op
                // by the `next_event` contract — so recording changes
                // nothing downstream. The compute fast-forward above is
                // deliberately NOT clamped: it is shared by both advance
                // modes, and boundaries it jumps close late as
                // zero-delta epochs, identically in both (§3.9).
                let horizon = match self.recorder.as_ref() {
                    Some(rec) => rec.next_boundary(),
                    None => Cycle::MAX,
                };
                let target = controller
                    .next_event(self.now)
                    .min(min_wake.unwrap_or(Cycle::MAX))
                    .min(horizon);
                if target != Cycle::MAX && target > self.now + 1 {
                    self.now = target;
                    assert!(self.now < cfg.max_cycles, "exceeded max_cycles bound");
                    continue;
                }
            }
            self.now += 1;
            assert!(self.now < cfg.max_cycles, "exceeded max_cycles bound");
        }
    }

    /// Assembles the run report from the finished machine.
    fn report(
        self,
        cfg: &SimConfig,
        energy_model: &EnergyModel,
        controller: &dyn DramCacheController,
    ) -> RunReport {
        let now = self.now;
        let end = self
            .finish
            .iter()
            .map(|f| f.unwrap_or(now))
            .max()
            .unwrap_or(now);
        let cycles = end.saturating_sub(self.warmup_cycle).max(1);
        let instructions: u64 = self
            .cores
            .iter()
            .map(|c| c.instructions_dispatched())
            .sum::<u64>()
            - self.warmup_instructions;
        let (l1, l2, l3) = self.hierarchy.stats();
        // Close the partial tail epoch at the loop-exit cycle (itself
        // identical in both advance modes).
        let timeseries = {
            let tenants = &self.tenants;
            self.recorder
                .map(|rec| rec.finish(now, controller, (l1, l2, l3), tenants))
        };
        let ctl = controller.stats();
        let hbm = controller.hbm_stats();
        let ddr = controller.ddr_stats();
        let act = CpuActivity {
            instructions,
            cycles,
            cores: cfg.hierarchy.cores,
            l1_accesses: l1.accesses,
            l2_accesses: l2.accesses,
            l3_accesses: l3.accesses,
        };
        let hbm_ranks = cfg.policy.hbm.topology.channels * cfg.policy.hbm.topology.ranks;
        let ddr_ranks = cfg.policy.ddr.topology.channels * cfg.policy.ddr.topology.ranks;
        let energy =
            energy_model.system_energy(&act, &ctl, hbm.as_ref(), hbm_ranks, &ddr, ddr_ranks);
        RunReport {
            policy: controller.kind(),
            workload: None,
            cycles,
            instructions,
            mem_reads: self.mem_reads,
            mem_writebacks: self.mem_writebacks,
            ctl,
            hbm,
            ddr,
            l1,
            l2,
            l3,
            energy,
            extras: {
                let mut extras: Vec<(String, f64)> = controller
                    .extras()
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect();
                // Per-tenant roll-up (DESIGN.md §3.15): the report
                // struct stays policy-shaped; tenancy rides the
                // open-ended extras channel.
                for (i, t) in self.tenants.iter().enumerate() {
                    extras.push((format!("tenant{i}_accesses"), t.accesses as f64));
                    extras.push((format!("tenant{i}_stores"), t.stores as f64));
                    extras.push((format!("tenant{i}_hits"), t.hits as f64));
                    extras.push((format!("tenant{i}_mem_reads"), t.mem_reads as f64));
                    extras.push((
                        format!("tenant{i}_mem_writebacks"),
                        t.mem_writebacks as f64,
                    ));
                }
                extras
            },
            shadow_violations: self.shadow_violations,
            hbm_audit: controller.hbm_audit(),
            ddr_audit: controller.ddr_audit(),
            timeseries,
        }
    }
}

/// The complete simulator state at a quiescent fork point: every core's
/// execution state and trace cursor, the SRAM hierarchy, the shadow
/// memory and waiter slab, the epoch recorder mid-series, both DRAM
/// systems and the functional memory image, plus the id/version
/// counters (DESIGN.md §3.13). Cheap to share: forking N policy runs
/// from one snapshot is N `Arc` clones of the handle; the snapshot
/// itself is immutable.
#[derive(Debug, Clone)]
pub struct WarmSnapshot {
    /// Fingerprint of the warm-relevant configuration
    /// ([`Simulator::warm_key`]); resuming under a different one panics.
    key: u64,
    /// Content identity of the traces this snapshot replays
    /// ([`SharedTraces::content_key`]).
    trace_key: u64,
    traces: SharedTraces,
    fork_cycle: Cycle,
    committed: u64,
    next_req: u64,
    next_version: u64,
    shadow_violations: u64,
    warmup_instructions: u64,
    finish: Vec<Option<Cycle>>,
    cores: Vec<redcache_cpu::CoreState>,
    hierarchy: Hierarchy,
    shadow: ShadowMemory,
    waiters: WaiterSlab,
    recorder: Option<EpochRecorder>,
    memory: WarmMemoryState,
}

impl WarmSnapshot {
    /// The configuration fingerprint this snapshot was warmed under.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The content identity of the traces this snapshot replays.
    pub fn trace_key(&self) -> u64 {
        self.trace_key
    }

    /// The cycle at which the warmup drained to quiescence.
    pub fn fork_cycle(&self) -> Cycle {
        self.fork_cycle
    }

    /// Accesses committed (attempted) during the warmup phase.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// The traces this snapshot replays.
    pub fn traces(&self) -> &SharedTraces {
        &self.traces
    }

    /// Serializes everything except the traces themselves (the on-disk
    /// format stores only [`WarmSnapshot::trace_key`]; the loader
    /// re-supplies traces and must match it).
    pub fn encode_payload(&self) -> Vec<u8> {
        use redcache_types::wire::Wire;
        let mut out = Vec::new();
        self.trace_key.put(&mut out);
        self.fork_cycle.put(&mut out);
        self.committed.put(&mut out);
        self.next_req.put(&mut out);
        self.next_version.put(&mut out);
        self.shadow_violations.put(&mut out);
        self.warmup_instructions.put(&mut out);
        self.finish.put(&mut out);
        self.cores.put(&mut out);
        self.hierarchy.put(&mut out);
        self.shadow.put(&mut out);
        self.waiters.put(&mut out);
        self.recorder.put(&mut out);
        self.memory.put(&mut out);
        out
    }

    /// Decodes a payload written by [`WarmSnapshot::encode_payload`],
    /// re-attaching `traces`.
    ///
    /// # Errors
    ///
    /// Fails closed on truncation, trailing bytes, or a trace-identity
    /// mismatch — a corrupt or mismatched file is a cache miss, never a
    /// wrong simulation.
    pub fn decode_payload(
        payload: &[u8],
        key: u64,
        traces: &SharedTraces,
    ) -> Result<Arc<Self>, redcache_types::wire::WireError> {
        use redcache_types::wire::{Reader, Wire, WireError};
        let mut r = Reader::new(payload);
        let trace_key = u64::get(&mut r)?;
        if trace_key != traces.content_key() {
            return Err(WireError("snapshot was warmed on different traces"));
        }
        let snap = WarmSnapshot {
            key,
            trace_key,
            traces: traces.clone(),
            fork_cycle: Wire::get(&mut r)?,
            committed: Wire::get(&mut r)?,
            next_req: Wire::get(&mut r)?,
            next_version: Wire::get(&mut r)?,
            shadow_violations: Wire::get(&mut r)?,
            warmup_instructions: Wire::get(&mut r)?,
            finish: Wire::get(&mut r)?,
            cores: Wire::get(&mut r)?,
            hierarchy: Wire::get(&mut r)?,
            shadow: Wire::get(&mut r)?,
            waiters: Wire::get(&mut r)?,
            recorder: Wire::get(&mut r)?,
            memory: Wire::get(&mut r)?,
        };
        if !r.is_empty() {
            return Err(WireError("trailing bytes after snapshot"));
        }
        Ok(Arc::new(snap))
    }
}

/// The assembled system, ready to execute one workload.
pub struct Simulator {
    cfg: SimConfig,
    energy_model: EnergyModel,
}

impl Simulator {
    /// Builds a simulator from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    pub fn new(cfg: SimConfig) -> Self {
        cfg.validate().expect("invalid simulation configuration");
        let mut cfg = cfg;
        if cfg.audit_timing {
            // Propagate the top-level switch into both DRAM systems so
            // [`Simulator::run`] builds them with auditors attached.
            // Callers of `run_with` own their controller's DRAM configs
            // and opt in through `DramConfig::audit` directly.
            cfg.policy.hbm.audit = true;
            cfg.policy.ddr.audit = true;
        }
        // Per-channel parallel stepping: the environment variable wins
        // over the config in either direction (`1` on, `0` off), read
        // once per simulator like REDCACHE_NO_SKIP. Propagated the same
        // way as the audit switch above.
        let channel_par = match std::env::var("REDCACHE_CHANNEL_PAR") {
            Ok(v) if v == "1" => true,
            Ok(v) if v == "0" => false,
            _ => cfg.channel_par,
        };
        cfg.channel_par = channel_par;
        cfg.policy.hbm.channel_par = channel_par;
        cfg.policy.ddr.channel_par = channel_par;
        Self {
            cfg,
            energy_model: EnergyModel::default(),
        }
    }

    /// Replaces the default energy constants.
    pub fn with_energy_model(mut self, model: EnergyModel) -> Self {
        self.energy_model = model;
        self
    }

    /// Fingerprint of everything the warmup phase depends on: hierarchy
    /// and core geometry, both DRAM configurations (with the bit-exact
    /// `channel_par` knob normalised out), the warmup fraction, shadow
    /// checking, epoch stride, and the tenant schedule (a mid-series
    /// recorder baseline is tenant-shaped). Deliberately **excludes** the policy
    /// kind, its RedCache/FBR overrides and the DRAM-cache block size — the
    /// warmup is policy-independent (DESIGN.md §3.13) — and the
    /// `time_skip` mode, which is exact (§3.7), so both advance modes
    /// share one snapshot. Two configurations with equal keys may fork
    /// from the same [`WarmSnapshot`].
    pub fn warm_key(&self) -> u64 {
        let mut hbm = self.cfg.policy.hbm;
        let mut ddr = self.cfg.policy.ddr;
        hbm.channel_par = false;
        ddr.channel_par = false;
        let fingerprint = format!(
            "{:?}|{:?}|{:?}|{:?}|{}|{}|{:?}|{:?}",
            self.cfg.hierarchy,
            self.cfg.core,
            hbm,
            ddr,
            self.cfg.warmup_fraction.to_bits(),
            self.cfg.check_shadow,
            self.cfg.epoch_cycles,
            self.cfg.tenancy,
        );
        redcache_types::wire::fnv1a(fingerprint.as_bytes())
    }

    /// Runs the §IV.A warmup phase once under the policy-independent
    /// [`FillController`], drains the memory system to quiescence, and
    /// captures the complete simulator state. The returned snapshot can
    /// be [`Simulator::resume`]d by any number of policy runs whose
    /// [`Simulator::warm_key`] matches.
    ///
    /// # Panics
    ///
    /// Panics if more traces than cores are supplied, on deadlock, or
    /// when the `max_cycles` bound is exceeded.
    pub fn warm(&self, traces: impl Into<SharedTraces>) -> Arc<WarmSnapshot> {
        let traces: SharedTraces = traces.into();
        let total_accesses = traces.total_accesses();
        let target = (self.cfg.warmup_fraction * total_accesses as f64) as u64;
        let mut fill = FillController::new(&self.cfg.policy);
        let mut m = Machine::new(&self.cfg, traces.clone());
        WARM_RUNS.fetch_add(1, Ordering::Relaxed);
        m.run(&self.cfg, &mut fill, Phase::Warm { target });
        debug_assert_eq!(fill.pending(), 0, "drain left requests in flight");
        debug_assert_eq!(m.hierarchy.mshr_len(), 0, "drain left MSHR entries");
        Arc::new(WarmSnapshot {
            key: self.warm_key(),
            trace_key: traces.content_key(),
            traces,
            fork_cycle: m.now,
            committed: m.committed,
            next_req: m.next_req,
            next_version: m.next_version,
            shadow_violations: m.shadow_violations,
            warmup_instructions: m.cores.iter().map(|c| c.instructions_dispatched()).sum(),
            finish: m.finish.clone(),
            cores: m.cores.iter().map(|c| c.snapshot()).collect(),
            hierarchy: m.hierarchy.snapshot(),
            shadow: m.shadow.clone(),
            waiters: m.waiters.clone(),
            recorder: m.recorder.clone(),
            memory: fill.capture_warm(),
        })
    }

    /// Builds the configured policy's controller and continues from
    /// `snapshot` to completion — the measured half of a run.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's key does not match this configuration's
    /// [`Simulator::warm_key`], plus the [`Simulator::run`] conditions.
    pub fn resume(self, snapshot: &WarmSnapshot) -> RunReport {
        let controller = build_controller(&self.cfg.policy);
        self.resume_with(snapshot, controller)
    }

    /// Like [`Simulator::resume`], with a caller-supplied controller
    /// (which must support warm forking).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Simulator::resume`], or a controller whose
    /// [`DramCacheController::supports_warm_fork`] is `false`.
    pub fn resume_with(
        self,
        snapshot: &WarmSnapshot,
        mut controller: Box<dyn DramCacheController>,
    ) -> RunReport {
        assert!(
            controller.supports_warm_fork(),
            "controller does not support warm forking; use Simulator::run_with"
        );
        assert_eq!(
            snapshot.key,
            self.warm_key(),
            "warm snapshot belongs to a different configuration"
        );
        let mut m = Machine::new(&self.cfg, snapshot.traces.clone());
        assert_eq!(m.cores.len(), snapshot.cores.len());
        for (core, st) in m.cores.iter_mut().zip(&snapshot.cores) {
            core.restore(st);
        }
        m.hierarchy.restore(&snapshot.hierarchy);
        m.shadow = snapshot.shadow.clone();
        m.waiters = snapshot.waiters.clone();
        m.recorder = snapshot.recorder.clone();
        m.finish = snapshot.finish.clone();
        m.next_req = snapshot.next_req;
        m.next_version = snapshot.next_version;
        m.committed = snapshot.committed;
        // Warmup-phase shadow violations stay visible in the report;
        // traffic counters and statistics restart at the fork, exactly
        // like the legacy in-loop reset.
        m.shadow_violations = snapshot.shadow_violations;
        m.now = snapshot.fork_cycle;
        m.warmed = true;
        m.warmup_cycle = snapshot.fork_cycle;
        m.warmup_instructions = snapshot.warmup_instructions;
        m.mem_reads = 0;
        m.mem_writebacks = 0;
        controller.adopt_warm(&snapshot.memory);
        controller.reset_stats();
        m.hierarchy.reset_stats();
        if let Some(rec) = m.recorder.as_mut() {
            rec.note_warmup_reset();
        }
        m.run(&self.cfg, &mut *controller, Phase::Measure);
        m.report(&self.cfg, &self.energy_model, &*controller)
    }

    /// Executes `traces` (one per thread; at most one per core) to
    /// completion and returns the run report. Accepts owned
    /// `ThreadTraces` or a [`SharedTraces`] handle — the latter lets
    /// many concurrent simulations read one generated trace set.
    ///
    /// Internally this is [`Simulator::warm`] + [`Simulator::resume`]:
    /// the warmup runs under the policy-independent fill controller, so
    /// a scratch run is bit-identical to forking a shared snapshot.
    ///
    /// # Panics
    ///
    /// Panics if more traces than cores are supplied, on deadlock, or
    /// when the `max_cycles` bound is exceeded.
    pub fn run(self, traces: impl Into<SharedTraces>) -> RunReport {
        let controller = build_controller(&self.cfg.policy);
        self.run_with(traces, controller)
    }

    /// Like [`Simulator::run`], but with a caller-supplied controller —
    /// the extension point for custom DRAM-cache policies (see the
    /// `custom_policy` example). Controllers that opt into
    /// [`DramCacheController::supports_warm_fork`] take the warm+resume
    /// path; others run the legacy single-pass loop with the in-loop
    /// §IV.A statistics reset.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_with(
        self,
        traces: impl Into<SharedTraces>,
        mut controller: Box<dyn DramCacheController>,
    ) -> RunReport {
        let traces: SharedTraces = traces.into();
        if controller.supports_warm_fork() {
            let snapshot = self.warm(traces);
            return self.resume_with(&snapshot, controller);
        }
        let total_accesses = traces.total_accesses();
        let warmup_target = (self.cfg.warmup_fraction * total_accesses as f64) as u64;
        let mut m = Machine::new(&self.cfg, traces);
        m.warmed = warmup_target == 0;
        m.run(&self.cfg, &mut *controller, Phase::Full { warmup_target });
        m.report(&self.cfg, &self.energy_model, &*controller)
    }
}

/// Convenience: runs `workload` under `cfg` with the given generator
/// configuration and labels the report.
pub fn run_workload(
    cfg: SimConfig,
    workload: redcache_workloads::Workload,
    gen: &redcache_workloads::GenConfig,
) -> RunReport {
    let traces = workload.generate(gen);
    let mut report = Simulator::new(cfg).run(traces);
    report.workload = Some(workload.info().label.to_string());
    report
}

// Referenced only to keep the doc link above honest.
#[allow(dead_code)]
fn _doc_anchor(_: &MemorySides, _: LineAddr) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use redcache_policies::PolicyKind;
    use redcache_workloads::{synthetic, GenConfig, ThreadTraces, Workload};

    fn tiny_traces() -> ThreadTraces {
        synthetic::generate(&synthetic::SyntheticSpec::mixed(), &GenConfig::tiny())
    }

    #[test]
    fn alloy_runs_clean_on_synthetic() {
        let r = Simulator::new(SimConfig::quick(PolicyKind::Alloy)).run(tiny_traces());
        assert!(r.cycles > 0);
        assert!(r.instructions > 0);
        assert_eq!(r.shadow_violations, 0);
        assert!(r.mem_reads > 0);
        assert!(r.hbm.is_some());
    }

    #[test]
    fn all_policies_run_clean_on_hist() {
        let traces = Workload::Hist.generate(&GenConfig::tiny());
        for kind in [
            PolicyKind::NoHbm,
            PolicyKind::Ideal,
            PolicyKind::Alloy,
            PolicyKind::Bear,
            PolicyKind::Fbr,
            PolicyKind::Red(crate::RedVariant::Full),
        ] {
            let r = Simulator::new(SimConfig::quick(kind)).run(traces.clone());
            assert_eq!(r.shadow_violations, 0, "{kind:?} served stale data");
            assert!(r.cycles > 0, "{kind:?}");
        }
    }

    #[test]
    fn ideal_is_fastest_nohbm_touches_no_wideio() {
        let traces = tiny_traces();
        let ideal = Simulator::new(SimConfig::quick(PolicyKind::Ideal)).run(traces.clone());
        let nohbm = Simulator::new(SimConfig::quick(PolicyKind::NoHbm)).run(traces.clone());
        let alloy = Simulator::new(SimConfig::quick(PolicyKind::Alloy)).run(traces);
        assert!(
            ideal.cycles <= nohbm.cycles,
            "IDEAL must not lose to No-HBM"
        );
        assert!(ideal.cycles <= alloy.cycles, "IDEAL must not lose to Alloy");
        assert_eq!(nohbm.hbm, None);
        assert_eq!(nohbm.transferred_bytes(), nohbm.ddr.bytes_total());
    }

    #[test]
    fn reports_are_deterministic() {
        let a = Simulator::new(SimConfig::quick(PolicyKind::Alloy)).run(tiny_traces());
        let b = Simulator::new(SimConfig::quick(PolicyKind::Alloy)).run(tiny_traces());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.mem_reads, b.mem_reads);
        assert_eq!(a.energy.total_j(), b.energy.total_j());
    }

    #[test]
    fn audit_timing_attaches_clean_auditors() {
        let mut cfg = SimConfig::quick(PolicyKind::Alloy);
        cfg.audit_timing = true;
        let r = Simulator::new(cfg).run(tiny_traces());
        let hbm = r.hbm_audit.as_ref().expect("HBM audit attached");
        let ddr = r.ddr_audit.as_ref().expect("DDR audit attached");
        assert!(hbm.cmds_audited > 0, "HBM auditor saw no commands");
        assert!(ddr.cmds_audited > 0, "DDR auditor saw no commands");
        assert!(
            hbm.clean(),
            "HBM violations: first {:?}",
            hbm.first_violation
        );
        assert!(
            ddr.clean(),
            "DDR violations: first {:?}",
            ddr.first_violation
        );

        // No-HBM only has a DDR side to audit.
        let mut cfg = SimConfig::quick(PolicyKind::NoHbm);
        cfg.audit_timing = true;
        let r = Simulator::new(cfg).run(tiny_traces());
        assert!(r.hbm_audit.is_none());
        assert!(r.ddr_audit.expect("DDR audit attached").clean());

        // Off by default: no audit payload in the report.
        let r = Simulator::new(SimConfig::quick(PolicyKind::Alloy)).run(tiny_traces());
        assert!(r.hbm_audit.is_none() && r.ddr_audit.is_none());
    }

    #[test]
    fn run_workload_labels_report() {
        let r = run_workload(
            SimConfig::quick(PolicyKind::Alloy),
            Workload::Lreg,
            &GenConfig::tiny(),
        );
        assert_eq!(r.workload.as_deref(), Some("LREG"));
    }

    #[test]
    fn forked_resume_matches_scratch_run() {
        let cfg = SimConfig::quick(PolicyKind::Alloy);
        let traces: SharedTraces = tiny_traces().into();
        let snap = Simulator::new(cfg).warm(traces.clone());
        let forked = Simulator::new(cfg).resume(&snap);
        let scratch = Simulator::new(cfg).run(traces);
        assert_eq!(forked, scratch);
    }

    #[test]
    fn one_snapshot_forks_into_every_policy() {
        let cfg = SimConfig::quick(PolicyKind::NoHbm);
        let traces: SharedTraces = tiny_traces().into();
        let snap = Simulator::new(cfg).warm(traces.clone());
        let before = warm_count();
        for kind in [
            PolicyKind::Ideal,
            PolicyKind::Alloy,
            PolicyKind::Bear,
            PolicyKind::Fbr,
        ] {
            let mut k = cfg;
            k.policy.kind = kind;
            let sim = Simulator::new(k);
            assert_eq!(sim.warm_key(), snap.key(), "{kind:?} key diverged");
            let forked = sim.resume(&snap);
            assert_eq!(forked.shadow_violations, 0, "{kind:?}");
            assert!(forked.cycles > 0);
        }
        // Forking spent zero additional warmups.
        assert_eq!(warm_count(), before);
    }

    #[test]
    fn snapshot_payload_round_trips() {
        let cfg = SimConfig::quick(PolicyKind::Alloy);
        let traces: SharedTraces = tiny_traces().into();
        let snap = Simulator::new(cfg).warm(traces.clone());
        let payload = snap.encode_payload();
        let back = WarmSnapshot::decode_payload(&payload, snap.key(), &traces).unwrap();
        assert_eq!(back.encode_payload(), payload, "re-encode is not stable");
        let forked = Simulator::new(cfg).resume(&back);
        let scratch = Simulator::new(cfg).run(traces.clone());
        assert_eq!(forked, scratch);

        // Different traces are rejected outright.
        let other: SharedTraces = Workload::Is.generate(&GenConfig::tiny()).into();
        assert!(WarmSnapshot::decode_payload(&payload, snap.key(), &other).is_err());
        // Truncation fails closed.
        assert!(
            WarmSnapshot::decode_payload(&payload[..payload.len() - 3], snap.key(), &traces)
                .is_err()
        );
    }

    #[test]
    fn mismatched_warm_key_panics() {
        let cfg = SimConfig::quick(PolicyKind::Alloy);
        let traces: SharedTraces = tiny_traces().into();
        let snap = Simulator::new(cfg).warm(traces);
        let mut other = cfg;
        other.warmup_fraction = 0.1;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Simulator::new(other).resume(&snap)
        }));
        assert!(result.is_err(), "resume accepted a foreign snapshot");
    }
}
