//! **Figure 3** — off-chip bandwidth cost versus number of block
//! reuses, for the four example applications the paper plots (LU, MG,
//! RDX, HIST) on the No-HBM system.
//!
//! The paper's observation: a large share of the bandwidth cost comes
//! from a subset of blocks in a narrow reuse band — the motivation for
//! the α/γ thresholds.

use redcache::profile::{MemLevelStream, ReuseProfile};
use redcache_bench::{experiment_gen_config, save_json};
use redcache_cache::HierarchyConfig;
use redcache_workloads::Workload;

fn spark(cost: &[f64], buckets: usize) -> String {
    // Collapse to `buckets` columns and render an ASCII profile.
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let chunk = cost.len().div_ceil(buckets);
    let sums: Vec<f64> = cost.chunks(chunk).map(|c| c.iter().sum()).collect();
    let max = sums.iter().cloned().fold(0.0, f64::max).max(1e-12);
    sums.iter()
        .map(|&s| glyphs[((s / max) * (glyphs.len() - 1) as f64).round() as usize])
        .collect()
}

fn main() {
    let gen = experiment_gen_config();
    let hier = HierarchyConfig::scaled(16);
    let mut out = Vec::new();
    println!("\n== Fig. 3: bandwidth cost vs number of block reuses (No-HBM) ==");
    println!("(rows: cost share per homo-reuse group; x-axis 0..150 reuses, 30 columns)\n");
    for w in [Workload::Lu, Workload::Mg, Workload::Rdx, Workload::Hist] {
        let traces = w.generate(&gen);
        let stream = MemLevelStream::extract(&traces, hier);
        let profile = ReuseProfile::from_stream(&stream, 150);
        println!(
            "{:>5} |{}| peak at reuse {}  cost in [0,5]: {:>5.1}%  in [5,150]: {:>5.1}%",
            w.info().label,
            spark(&profile.cost_by_reuse, 30),
            profile.peak_reuse(),
            100.0 * profile.cost_share(0, 5),
            100.0 * profile.cost_share(6, 150),
        );
        out.push((w.info().label.to_string(), profile));
    }
    save_json("fig3_reuse", &out);
    println!("\npaper:    each application concentrates its bandwidth cost in a narrow");
    println!("          reuse band (LU/MG/RDX low bands; HIST extreme low-reuse spike)");
}
