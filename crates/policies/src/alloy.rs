//! The **Alloy** cache [Qureshi & Loh, MICRO'12]: a direct-mapped DRAM
//! cache whose tag and data form one unit (TAD) streamed in a single
//! burst. Every request performs one TAD read; on a miss the off-chip
//! access is either serialized behind the probe or — when the
//! memory-access predictor is confident of a miss — launched in
//! parallel with it.

use crate::controller::{
    CompletedReq, ControllerGauges, ControllerStats, DramCacheController, MemorySides,
    PolicyConfig, PolicyKind,
};
use crate::engine::{legs, Engine, LegSpec};
use crate::predictor::RegionPredictor;
use crate::tagstore::TagStore;
use redcache_dram::{AuditStats, DramStats, TxnKind};
use redcache_types::{AccessKind, Cycle, LineAddr, MemRequest};

/// The Alloy controller.
#[derive(Debug)]
pub struct AlloyController {
    sides: MemorySides,
    engine: Engine,
    tags: TagStore,
    predictor: RegionPredictor,
    stats: ControllerStats,
    block_bytes: usize,
    bursts: u32,
    compl_buf: Vec<redcache_dram::Completion>,
}

impl AlloyController {
    /// Builds the controller.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: &PolicyConfig) -> Self {
        cfg.validate().expect("invalid policy config");
        let sets = (cfg.hbm.topology.capacity_bytes() / cfg.cache_block_bytes as u64) as usize;
        Self {
            sides: MemorySides::new(cfg),
            engine: Engine::new(),
            tags: TagStore::new(sets, cfg.lines_per_block()),
            predictor: RegionPredictor::new(4096),
            stats: ControllerStats::default(),
            block_bytes: cfg.cache_block_bytes,
            bursts: (cfg.cache_block_bytes / 64) as u32,
            compl_buf: Vec::new(),
        }
    }

    /// Gathers the functional versions of every 64 B line in the block
    /// containing `line`, as currently stored in main memory.
    fn block_versions_from_ddr(&self, line: LineAddr) -> [u64; 4] {
        let mut v = [0u64; 4];
        let first = self.tags.block_first_line(self.tags.block_of(line));
        for (i, slot) in v
            .iter_mut()
            .enumerate()
            .take(self.tags.lines_per_block() as usize)
        {
            *slot = self
                .sides
                .ddr_version(LineAddr::new(first.raw() + i as u64));
        }
        v
    }

    /// Writes a victim block's dirty contents back to the functional
    /// main memory and returns the DDR leg for its timing, if needed.
    fn retire_victim(
        &mut self,
        victim: Option<crate::tagstore::TagEntry>,
        leg: u8,
    ) -> Option<LegSpec> {
        let victim = victim?;
        if !victim.dirty {
            return None;
        }
        self.stats.victim_writebacks += 1;
        self.stats.ddr_writes += 1;
        let first = self.tags.block_first_line(victim.block);
        for i in 0..self.tags.lines_per_block() {
            let l = LineAddr::new(first.raw() + i);
            self.sides.ddr_store(l, victim.versions[i as usize]);
        }
        Some(LegSpec {
            leg,
            hbm: false,
            kind: TxnKind::Write,
            addr: self.sides.ddr_addr(first),
            bursts: self.bursts,
            gates_data: false,
            deferred: false,
        })
    }

    fn probe_leg(&self, line: LineAddr, gates_data: bool) -> LegSpec {
        LegSpec {
            leg: legs::PROBE,
            hbm: true,
            kind: TxnKind::Read,
            addr: self.tags.hbm_addr(line, self.block_bytes),
            bursts: self.bursts,
            gates_data,
            deferred: false,
        }
    }

    fn submit_read(&mut self, req: MemRequest, now: Cycle, done: &mut Vec<CompletedReq>) {
        let line = req.line;
        self.stats.hbm_probes += 1;
        self.stats.table_lookups += 1; // predictor consult
        let hit = self.tags.contains(line);
        let predicted_hit = self.predictor.predict_hit(line.base(64).page());
        self.predictor.train(line.base(64).page(), hit);
        if hit {
            self.stats.hbm_hits += 1;
            let sub = self.tags.subline_of(line);
            let e = self.tags.entry_mut(line).expect("hit entry");
            e.r_count.inc();
            let version = e.versions[sub];
            let probe = self.probe_leg(line, true);
            self.engine
                .start(req, version, &[probe], &mut self.sides, now, done);
            return;
        }
        // Miss: fetch from DDR (serialized unless predicted miss),
        // always fill, write back a dirty victim.
        self.stats.hbm_misses += 1;
        self.stats.ddr_reads += 1;
        self.stats.fills += 1;
        self.stats.hbm_writes += 1;
        let version = self.sides.ddr_version(line);
        let fill_versions = self.block_versions_from_ddr(line);
        let victim = self.tags.install(line, fill_versions, false);
        let mut legspecs = vec![
            self.probe_leg(line, true),
            LegSpec {
                leg: legs::DDR_READ,
                hbm: false,
                kind: TxnKind::Read,
                addr: self.sides.ddr_addr(line),
                bursts: self.bursts,
                gates_data: true,
                deferred: predicted_hit, // mispredicted hit ⇒ serialized
            },
            LegSpec {
                leg: legs::HBM_WRITE,
                hbm: true,
                kind: TxnKind::Write,
                addr: self.tags.hbm_addr(line, self.block_bytes),
                bursts: self.bursts,
                gates_data: false,
                deferred: true, // fill after the probe confirmed the miss
            },
        ];
        if let Some(wb) = self.retire_victim(victim, legs::DDR_WRITE) {
            legspecs.push(wb);
        }
        self.engine
            .start(req, version, &legspecs, &mut self.sides, now, done);
    }

    fn submit_writeback(&mut self, req: MemRequest, now: Cycle, done: &mut Vec<CompletedReq>) {
        let line = req.line;
        self.stats.hbm_probes += 1;
        let hit = self.tags.contains(line);
        let sub = self.tags.subline_of(line);
        if hit {
            self.stats.hbm_hits += 1;
            let e = self.tags.entry_mut(line).expect("hit entry");
            e.dirty = true;
            e.versions[sub] = req.data_version;
            e.r_count.inc();
            self.stats.hbm_writes += 1;
            let probe = self.probe_leg(line, false);
            let write = LegSpec {
                leg: legs::HBM_WRITE,
                hbm: true,
                kind: TxnKind::Write,
                addr: self.tags.hbm_addr(line, self.block_bytes),
                bursts: self.bursts,
                gates_data: true,
                deferred: true,
            };
            self.engine
                .start(req, 0, &[probe, write], &mut self.sides, now, done);
            return;
        }
        // Writeback miss: allocate (Alloy's writeback-allocate), which
        // needs the block's other sub-lines from DDR when blocks span
        // multiple CPU lines.
        self.stats.hbm_misses += 1;
        self.stats.fills += 1;
        self.stats.hbm_writes += 1;
        let mut fill_versions = self.block_versions_from_ddr(line);
        fill_versions[sub] = req.data_version;
        let victim = self.tags.install(line, fill_versions, true);
        let mut legspecs = vec![
            self.probe_leg(line, false),
            LegSpec {
                leg: legs::HBM_WRITE,
                hbm: true,
                kind: TxnKind::Write,
                addr: self.tags.hbm_addr(line, self.block_bytes),
                bursts: self.bursts,
                gates_data: true,
                deferred: true,
            },
        ];
        if self.tags.lines_per_block() > 1 {
            self.stats.ddr_reads += 1;
            legspecs.push(LegSpec {
                leg: legs::DDR_READ,
                hbm: false,
                kind: TxnKind::Read,
                addr: self.sides.ddr_addr(line),
                bursts: self.bursts,
                gates_data: false,
                deferred: false,
            });
        }
        if let Some(wb) = self.retire_victim(victim, legs::DDR_WRITE) {
            legspecs.push(wb);
        }
        self.engine
            .start(req, 0, &legspecs, &mut self.sides, now, done);
    }
}

impl DramCacheController for AlloyController {
    fn submit(&mut self, req: MemRequest, now: Cycle) {
        self.sides.sync_to(now);
        self.stats.submitted += 1;
        let mut done = Vec::new();
        match req.kind {
            AccessKind::Read => self.submit_read(req, now, &mut done),
            AccessKind::Writeback => self.submit_writeback(req, now, &mut done),
        }
        debug_assert!(done.is_empty());
    }

    fn tick(&mut self, now: Cycle, done: &mut Vec<CompletedReq>) {
        self.sides.hbm.tick(now);
        self.sides.ddr.tick(now);
        let before = done.len();
        let mut buf = std::mem::take(&mut self.compl_buf);
        self.sides.hbm.drain_completions_into(&mut buf);
        for c in &buf {
            self.engine
                .on_completion(c.meta, c.done_at, &mut self.sides, done);
        }
        buf.clear();
        self.sides.ddr.drain_completions_into(&mut buf);
        for c in &buf {
            self.engine
                .on_completion(c.meta, c.done_at, &mut self.sides, done);
        }
        buf.clear();
        self.compl_buf = buf;
        let _ = self.engine.take_events();
        for d in &done[before..] {
            self.stats.completed += 1;
            if d.kind == AccessKind::Read {
                self.stats.reads_completed += 1;
                self.stats.read_latency_sum += d.latency();
            }
        }
    }

    fn next_event(&self, now: Cycle) -> Cycle {
        self.sides
            .hbm
            .sys
            .next_event(now)
            .min(self.sides.ddr.sys.next_event(now))
    }

    fn pending(&self) -> usize {
        self.engine.pending()
    }

    fn stats(&self) -> ControllerStats {
        self.stats
    }

    fn hbm_stats(&self) -> Option<DramStats> {
        Some(*self.sides.hbm.sys.stats())
    }

    fn ddr_stats(&self) -> DramStats {
        *self.sides.ddr.sys.stats()
    }

    fn hbm_audit(&self) -> Option<AuditStats> {
        self.sides.hbm_audit()
    }

    fn ddr_audit(&self) -> Option<AuditStats> {
        self.sides.ddr_audit()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Alloy
    }

    fn preload(&mut self, line: LineAddr, version: u64) {
        self.sides.ddr_store(line, version);
    }

    fn gauges(&self) -> ControllerGauges {
        self.sides.dram_gauges()
    }

    fn reset_stats(&mut self) {
        self.stats = ControllerStats::default();
        self.sides.hbm.sys.reset_stats();
        self.sides.ddr.sys.reset_stats();
    }

    fn adopt_warm(&mut self, warm: &crate::WarmMemoryState) {
        self.sides.restore_warm(warm);
    }

    fn supports_warm_fork(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_types::{CoreId, ReqId};

    pub(crate) fn drive(
        c: &mut dyn DramCacheController,
        from: Cycle,
    ) -> (Vec<CompletedReq>, Cycle) {
        let mut done = Vec::new();
        let mut now = from;
        while c.pending() > 0 {
            c.tick(now, &mut done);
            now += 1;
            assert!(now < 5_000_000, "controller deadlock");
        }
        (done, now)
    }

    fn ctl() -> AlloyController {
        AlloyController::new(&PolicyConfig::scaled(PolicyKind::Alloy))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = ctl();
        c.preload(LineAddr::new(3), 40);
        c.submit(
            MemRequest::read(ReqId(1), LineAddr::new(3), CoreId(0), 0),
            0,
        );
        let (done, t) = drive(&mut c, 0);
        assert_eq!(done[0].data_version, 40);
        assert_eq!(c.stats().hbm_misses, 1);
        c.submit(
            MemRequest::read(ReqId(2), LineAddr::new(3), CoreId(0), t),
            t,
        );
        let (done2, _) = drive(&mut c, t);
        assert_eq!(done2[0].data_version, 40);
        assert_eq!(c.stats().hbm_hits, 1);
    }

    #[test]
    fn hits_are_faster_than_misses() {
        let mut c = ctl();
        c.submit(
            MemRequest::read(ReqId(1), LineAddr::new(3), CoreId(0), 0),
            0,
        );
        let (done, t) = drive(&mut c, 0);
        let miss_latency = done[0].latency();
        c.submit(
            MemRequest::read(ReqId(2), LineAddr::new(3), CoreId(0), t),
            t,
        );
        let (done2, _) = drive(&mut c, t);
        assert!(
            done2[0].latency() < miss_latency,
            "{} !< {}",
            done2[0].latency(),
            miss_latency
        );
    }

    #[test]
    fn conflict_eviction_preserves_dirty_data() {
        let mut c = ctl();
        let sets = c.tags.sets() as u64;
        let a = LineAddr::new(7);
        let b = LineAddr::new(7 + sets); // same set
                                         // Dirty A via writeback, then displace it with B, then read A.
        c.submit(MemRequest::writeback(ReqId(1), a, CoreId(0), 0, 91), 0);
        let (_, t1) = drive(&mut c, 0);
        c.submit(MemRequest::read(ReqId(2), b, CoreId(0), t1), t1);
        let (_, t2) = drive(&mut c, t1);
        assert!(c.stats().victim_writebacks >= 1);
        c.submit(MemRequest::read(ReqId(3), a, CoreId(0), t2), t2);
        let (done, _) = drive(&mut c, t2);
        assert_eq!(done[0].data_version, 91, "dirty victim lost");
    }

    #[test]
    fn every_request_probes() {
        let mut c = ctl();
        for i in 0..10u64 {
            c.submit(
                MemRequest::read(ReqId(i), LineAddr::new(i), CoreId(0), 0),
                0,
            );
        }
        drive(&mut c, 0);
        assert_eq!(c.stats().hbm_probes, 10);
        assert_eq!(c.hbm_stats().unwrap().energy.rd_bursts, 10);
    }

    #[test]
    fn granularity_moves_more_bytes() {
        let mut cfg = PolicyConfig::scaled(PolicyKind::Alloy);
        cfg.cache_block_bytes = 256;
        let mut c = AlloyController::new(&cfg);
        c.submit(
            MemRequest::read(ReqId(1), LineAddr::new(0), CoreId(0), 0),
            0,
        );
        drive(&mut c, 0);
        // Probe (256 B) + fill (256 B) on WideIO; 256 B from DDR.
        assert_eq!(c.hbm_stats().unwrap().bytes_total(), 512);
        assert_eq!(c.ddr_stats().bytes_read, 256);
        // Neighbouring line now hits.
        c.submit(
            MemRequest::read(ReqId(2), LineAddr::new(1), CoreId(0), 10_000),
            10_000,
        );
        drive(&mut c, 10_000);
        assert_eq!(c.stats().hbm_hits, 1);
    }
}
