//! α-counting (§III.A.1): per-4 KB-page access counters deciding when a
//! page's blocks become worth caching in HBM.
//!
//! The paper stores one 8-bit count per page beside the page table in
//! main memory and mirrors the hot subset in an on-controller buffer
//! with as many entries as the TLB, filled for free on TLB updates. We
//! model the full table functionally (it is architecturally backed by
//! main memory) and an LRU buffer for hit-rate statistics; buffer misses
//! ride the existing TLB-fill traffic and cost nothing extra (§III.A.1).
//!
//! **Adaptation** (inferred rule, see DESIGN.md §3.4): the paper states
//! α is tuned at run time from application behaviour but does not give
//! the rule. Each epoch we histogram per-page access counts weighted by
//! the page's access volume (a proxy for its DDR bandwidth cost,
//! cf. Fig. 4) and step α one unit toward a quarter of the reuse level
//! that concentrates 85 % of that cost. The step-wise move mirrors the
//! linear ascend/descend the paper prescribes for γ.

use redcache_types::stats::Bucketing;
use redcache_types::{Histogram, PageId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// α-counting configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlphaConfig {
    /// Starting threshold.
    pub initial: u32,
    /// Lower bound for adaptation.
    pub min: u32,
    /// Upper bound for adaptation.
    pub max: u32,
    /// On-controller buffer entries (mirrors the TLB size).
    pub buffer_entries: usize,
    /// Requests per adaptation epoch.
    pub epoch: u64,
    /// Enable run-time adaptation.
    pub adapt: bool,
    /// Blocks per α-count: 64 models the paper's one-count-per-4KB-page
    /// average (§III.A.1); 1 models an idealised per-block counter
    /// (exercised by the α-granularity ablation).
    pub avg_divisor: u32,
}

impl Default for AlphaConfig {
    fn default() -> Self {
        Self {
            initial: 2,
            min: 1,
            max: 8,
            buffer_entries: 512,
            epoch: 16_384,
            adapt: true,
            avg_divisor: 64,
        }
    }
}

/// Statistics exported by the α manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AlphaStats {
    /// Buffer hits (count available on-controller).
    pub buffer_hits: u64,
    /// Buffer misses (count fetched with the TLB fill, free ride).
    pub buffer_misses: u64,
    /// Adaptation epochs completed.
    pub epochs: u64,
    /// Times α moved.
    pub alpha_moves: u64,
}

/// The α-count manager.
#[derive(Debug)]
pub struct AlphaManager {
    cfg: AlphaConfig,
    alpha: u32,
    /// Page → accesses seen while not resident (saturating at 255,
    /// footnote 3). Counting *up* keeps the semantics stable while α
    /// adapts; with a fixed α it is equivalent to Fig. 7's down-counter.
    counts: HashMap<u64, u32>,
    /// LRU buffer of recently consulted pages (statistics only).
    buffer: Vec<u64>,
    /// Per-epoch page access counts for the adaptation histogram.
    epoch_counts: HashMap<u64, u32>,
    reqs: u64,
    stats: AlphaStats,
}

impl AlphaManager {
    /// Creates a manager with threshold `cfg.initial`.
    pub fn new(cfg: AlphaConfig) -> Self {
        Self {
            cfg,
            alpha: cfg.initial.clamp(cfg.min, cfg.max),
            counts: HashMap::new(),
            buffer: Vec::with_capacity(cfg.buffer_entries),
            epoch_counts: HashMap::new(),
            reqs: 0,
            stats: AlphaStats::default(),
        }
    }

    /// Current threshold.
    pub fn alpha(&self) -> u32 {
        self.alpha
    }

    /// Statistics so far.
    pub fn stats(&self) -> AlphaStats {
        self.stats
    }

    /// Zeroes the statistics (warmup boundary); counts and α persist.
    pub fn reset_stats(&mut self) {
        self.stats = AlphaStats::default();
    }

    fn touch_buffer(&mut self, page: u64) {
        if let Some(pos) = self.buffer.iter().position(|&p| p == page) {
            self.buffer.remove(pos);
            self.buffer.push(page);
            self.stats.buffer_hits += 1;
        } else {
            if self.buffer.len() >= self.cfg.buffer_entries {
                self.buffer.remove(0);
            }
            self.buffer.push(page);
            self.stats.buffer_misses += 1;
        }
    }

    /// Records one memory request to `page` and returns whether the
    /// page's *per-block average* access count has crossed α (its
    /// blocks are now HBM-eligible). The paper's single per-page
    /// counter "computes the average number of accesses to all the
    /// 64 B blocks within each 4 KB page" (§III.A.1), so eligibility
    /// compares `page_accesses / avg_divisor` with α.
    pub fn on_request(&mut self, page: PageId) -> bool {
        let p = page.raw();
        let div = self.cfg.avg_divisor.max(1);
        self.touch_buffer(p);
        let c = self.counts.entry(p).or_insert(0);
        // Saturate where the hardware's 8-bit average would.
        *c = c.saturating_add(1).min(255 * div);
        let eligible = *c >= self.alpha * div;
        if self.cfg.adapt {
            *self.epoch_counts.entry(p).or_insert(0) += 1;
            self.reqs += 1;
            if self.reqs >= self.cfg.epoch {
                self.adapt_epoch();
            }
        }
        eligible
    }

    fn adapt_epoch(&mut self) {
        self.reqs = 0;
        self.stats.epochs += 1;
        let mut hist = Histogram::new(Bucketing::Log2, 10);
        let div = self.cfg.avg_divisor.max(1);
        for &c in self.epoch_counts.values() {
            // Per-block average reuse of the page this epoch, weighted
            // by its access volume: the bandwidth cost of its
            // homo-reuse group (Fig. 4).
            let avg = (c / div).max(1) as u64;
            hist.add_weighted(avg, c as f64);
        }
        self.epoch_counts.clear();
        let heavy = hist.upper_mass_threshold(0.85);
        let target = ((heavy / 4).max(2) as u32).clamp(self.cfg.min, self.cfg.max);
        match target.cmp(&self.alpha) {
            std::cmp::Ordering::Greater => {
                self.alpha += 1;
                self.stats.alpha_moves += 1;
            }
            std::cmp::Ordering::Less => {
                self.alpha -= 1;
                self.stats.alpha_moves += 1;
            }
            std::cmp::Ordering::Equal => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr(initial: u32, adapt: bool) -> AlphaManager {
        AlphaManager::new(AlphaConfig {
            initial,
            adapt,
            epoch: 64,
            ..Default::default()
        })
    }

    #[test]
    fn page_qualifies_after_alpha_average_touches() {
        // α = 1 means an average of one touch per 64 B block, i.e. 64
        // page touches.
        let mut m = mgr(1, false);
        let p = PageId::new(9);
        for _ in 0..63 {
            assert!(!m.on_request(p));
        }
        assert!(m.on_request(p));
        assert!(m.on_request(p), "eligibility is sticky under fixed alpha");
    }

    #[test]
    fn distinct_pages_count_independently() {
        let mut m = mgr(1, false);
        for _ in 0..63 {
            assert!(!m.on_request(PageId::new(1)));
        }
        assert!(!m.on_request(PageId::new(2)), "page 2 has its own count");
        assert!(m.on_request(PageId::new(1)));
    }

    #[test]
    fn buffer_tracks_hits_and_misses() {
        let mut m = AlphaManager::new(AlphaConfig {
            buffer_entries: 2,
            adapt: false,
            ..Default::default()
        });
        m.on_request(PageId::new(1)); // miss
        m.on_request(PageId::new(1)); // hit
        m.on_request(PageId::new(2)); // miss
        m.on_request(PageId::new(3)); // miss, evicts 1
        m.on_request(PageId::new(1)); // miss again
        let s = m.stats();
        assert_eq!(s.buffer_hits, 1);
        assert_eq!(s.buffer_misses, 4);
    }

    #[test]
    fn streaming_pages_push_alpha_down_hot_pages_up() {
        // One page hammered 4096 times per epoch: per-block average 64,
        // so α walks up toward 64/4 = 16.
        let mut m = AlphaManager::new(AlphaConfig {
            initial: 4,
            adapt: true,
            epoch: 4096,
            ..Default::default()
        });
        for _ in 0..8 * 4096u64 {
            m.on_request(PageId::new(0));
        }
        let after_hot = m.alpha();
        assert!(
            after_hot > 4,
            "hot epochs should raise alpha, got {after_hot}"
        );
        // Pure streaming epochs (every page touched once) pull α back
        // toward its floor so streams are not penalised for long.
        for i in 0..16 * 4096u64 {
            m.on_request(PageId::new(1000 + i));
        }
        assert!(m.alpha() < after_hot, "stream epochs should lower alpha");
        assert!(m.stats().epochs >= 2);
        assert!(m.stats().alpha_moves >= 2);
    }

    #[test]
    fn counts_saturate_at_the_8bit_average() {
        let mut m = mgr(1, false);
        let p = PageId::new(5);
        for _ in 0..20_000 {
            m.on_request(p);
        }
        assert_eq!(*m.counts.get(&5).unwrap(), 255 * 64);
    }
}
