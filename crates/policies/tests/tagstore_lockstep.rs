//! Lockstep proof that the generic `TagStore<DirectMapped>` (the
//! default organisation every paper controller uses) is bit-exact with
//! the frozen pre-trait direct-mapped store (`ReferenceTagStore`,
//! kept verbatim in `tagstore.rs` as `#[doc(hidden)]`).
//!
//! Together with `redcache-cache/tests/replacement_lockstep.rs` (the
//! set-associative kernel vs its own frozen oracle) this pins the
//! DESIGN.md §3.14 refactor: extracting `ReplacementPolicy` must not
//! change a single observable of the existing policies.

use proptest::prelude::*;
use redcache_policies::controller::PolicyKind;
use redcache_types::LineAddr;

// The store types under test live behind #[doc(hidden)]; reach them
// through the crate's private-but-public test surface.
use redcache_policies::PolicyConfig;

#[derive(Debug, Clone)]
enum Op {
    Install(u64, [u64; 4], bool),
    Invalidate(u64),
    Contains(u64),
    Entry(u64),
    HbmAddr(u64),
}

fn op_strategy(addr_space: u64) -> impl Strategy<Value = Op> {
    let a = 0..addr_space;
    prop_oneof![
        (a.clone(), any::<[u64; 4]>(), any::<bool>()).prop_map(|(l, v, d)| Op::Install(l, v, d)),
        a.clone().prop_map(Op::Invalidate),
        a.clone().prop_map(Op::Contains),
        a.clone().prop_map(Op::Entry),
        a.prop_map(Op::HbmAddr),
    ]
}

/// Folds one op's full observable outcome into a comparable string.
fn step_new(
    t: &mut redcache_policies::testing::DefaultTagStore,
    op: &Op,
    block_bytes: usize,
) -> String {
    match *op {
        Op::Install(l, v, d) => format!("{:?}", t.install(LineAddr::new(l), v, d)),
        Op::Invalidate(l) => format!("{:?}", t.invalidate(LineAddr::new(l))),
        Op::Contains(l) => format!("{:?}", t.contains(LineAddr::new(l))),
        // The pre-trait `entry()` returned the *set occupant* whether or
        // not it held `line`'s block; the generic store splits that into
        // exact-match `entry()` plus `victim_entry()` (the would-be
        // victim of a full set). With `assoc = 1` their union is the
        // occupant, so the old observable maps onto the new API exactly.
        Op::Entry(l) => {
            let line = LineAddr::new(l);
            format!("{:?}", t.entry(line).or_else(|| t.victim_entry(line)))
        }
        Op::HbmAddr(l) => format!("{:?}", t.hbm_addr(LineAddr::new(l), block_bytes)),
    }
}

fn step_ref(
    t: &mut redcache_policies::testing::ReferenceTagStore,
    op: &Op,
    block_bytes: usize,
) -> String {
    match *op {
        Op::Install(l, v, d) => format!("{:?}", t.install(LineAddr::new(l), v, d)),
        Op::Invalidate(l) => format!("{:?}", t.invalidate(LineAddr::new(l))),
        Op::Contains(l) => format!("{:?}", t.contains(LineAddr::new(l))),
        Op::Entry(l) => format!("{:?}", t.entry(LineAddr::new(l))),
        Op::HbmAddr(l) => format!("{:?}", t.hbm_addr(LineAddr::new(l), block_bytes)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn direct_mapped_store_matches_the_pre_trait_store(
        sets in prop_oneof![Just(16usize), Just(64), Just(128)],
        lpb in prop_oneof![Just(1u64), Just(2), Just(4)],
        ops in prop::collection::vec(op_strategy(4096), 1..200),
    ) {
        let block_bytes = 64 * lpb as usize;
        let mut new = redcache_policies::testing::DefaultTagStore::new(sets, lpb);
        let mut old = redcache_policies::testing::ReferenceTagStore::new(sets, lpb);
        for (i, op) in ops.iter().enumerate() {
            let a = step_new(&mut new, op, block_bytes);
            let b = step_ref(&mut old, op, block_bytes);
            prop_assert_eq!(a, b, "diverged at op {} ({:?})", i, op);
            prop_assert_eq!(new.occupancy(), old.occupancy(), "occupancy after op {}", i);
        }
    }
}

/// Dense deterministic sweep — same lockstep comparison, but driven by
/// an inline xorshift stream instead of proptest so the op density does
/// not depend on the strategy shrinker: 9 geometries × 4000 ops each.
#[test]
fn dense_sweep_matches_the_pre_trait_store() {
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for sets in [16usize, 64, 128] {
        for lpb in [1u64, 2, 4] {
            let block_bytes = 64 * lpb as usize;
            let mut new = redcache_policies::testing::DefaultTagStore::new(sets, lpb);
            let mut old = redcache_policies::testing::ReferenceTagStore::new(sets, lpb);
            for i in 0..4000 {
                let l = next() % 4096;
                let op = match next() % 8 {
                    0 | 1 | 2 => Op::Install(l, [next(), next(), next(), next()], next() % 2 == 0),
                    3 => Op::Invalidate(l),
                    4 => Op::Contains(l),
                    5 | 6 => Op::Entry(l),
                    _ => Op::HbmAddr(l),
                };
                let a = step_new(&mut new, &op, block_bytes);
                let b = step_ref(&mut old, &op, block_bytes);
                assert_eq!(a, b, "sets={sets} lpb={lpb}: diverged at op {i} ({op:?})");
                assert_eq!(new.occupancy(), old.occupancy(), "occupancy after op {i}");
            }
        }
    }
}

#[test]
fn paper_controllers_still_build_direct_mapped() {
    // The refactor must not have changed the organisation any paper
    // controller runs with: all of them parse, build, and report their
    // own kind through the registry.
    for kind in ["nohbm", "ideal", "alloy", "bear", "redcache", "fbr"] {
        let k: PolicyKind = kind.parse().unwrap();
        let c = redcache_policies::build_controller(&PolicyConfig::scaled(k));
        assert_eq!(c.kind(), k, "{kind}");
    }
}
