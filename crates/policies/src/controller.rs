//! The controller trait, shared configuration, statistics, and the
//! DRAM-side plumbing every policy reuses.

use redcache_dram::{AuditStats, Completion, DramConfig, DramSystem, TxnKind};
use redcache_types::{AccessKind, Cycle, LineAddr, MemRequest, ReqId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which controller architecture to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// No DRAM cache (Fig. 1a).
    NoHbm,
    /// Perfect HBM cache (Fig. 1b).
    Ideal,
    /// Alloy cache [2].
    Alloy,
    /// BEAR cache [3].
    Bear,
    /// Banshee-style frequency-based replacement (FBR).
    Fbr,
    /// A RedCache variant (§IV.A).
    Red(crate::redcache::RedVariant),
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", crate::registry::entry(*self).display)
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    /// Parses the CLI/API spellings shared by `redcache-sim` and the
    /// `redcache-serve` daemon (case-insensitive). The accepted
    /// spellings are whatever the policy registry
    /// ([`crate::registry::entries`]) declares — adding a policy there
    /// makes it parseable everywhere at once.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        crate::registry::lookup(s).map(|e| e.kind).ok_or_else(|| {
            format!(
                "unknown policy {s:?} (known: {})",
                crate::registry::known_names().join(", ")
            )
        })
    }
}

/// Configuration shared by all controllers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Controller architecture.
    pub kind: PolicyKind,
    /// WideIO/HBM DRAM configuration (ignored by [`PolicyKind::NoHbm`]).
    pub hbm: DramConfig,
    /// Off-chip DDR4 configuration.
    pub ddr: DramConfig,
    /// DRAM-cache block size in bytes: 64, 128 or 256 (Fig. 2b sweep).
    /// The CPU-side line size stays 64 B.
    pub cache_block_bytes: usize,
    /// Optional RedCache parameter override (used by the ablation
    /// studies); `None` uses [`crate::RedConfig::for_variant`].
    pub red_override: Option<crate::redcache::RedConfig>,
    /// Optional FBR parameter override; `None` uses
    /// [`crate::FbrConfig::default`]. Like `red_override`, a pure
    /// policy knob: warm snapshots are shared across its values.
    #[serde(default)]
    pub fbr_override: Option<crate::fbr::FbrConfig>,
}

impl PolicyConfig {
    /// Table I configuration for `kind` (2 GB HBM, 32 GB DDR, 64 B).
    pub fn table1(kind: PolicyKind) -> Self {
        Self {
            kind,
            hbm: DramConfig::wideio_table1(),
            ddr: DramConfig::ddr4_table1(),
            cache_block_bytes: 64,
            red_override: None,
            fbr_override: None,
        }
    }

    /// Scaled evaluation configuration (8 MB HBM, 512 MB DDR): keeps the
    /// paper's HBM ≫ L3 ratio while leaving the scaled workloads enough
    /// footprint pressure to produce direct-mapped conflicts.
    pub fn scaled(kind: PolicyKind) -> Self {
        Self {
            kind,
            hbm: DramConfig::wideio_scaled(8 << 20),
            ddr: DramConfig::ddr4_scaled(512 << 20),
            cache_block_bytes: 64,
            red_override: None,
            fbr_override: None,
        }
    }

    /// The effective FBR parameters: the override when present, the
    /// defaults otherwise.
    pub fn fbr(&self) -> crate::fbr::FbrConfig {
        self.fbr_override.unwrap_or_default()
    }

    /// 64 B CPU lines per DRAM-cache block.
    pub fn lines_per_block(&self) -> u64 {
        (self.cache_block_bytes / 64) as u64
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message when the block size is not 64/128/256 or a DRAM
    /// configuration is invalid.
    pub fn validate(&self) -> Result<(), String> {
        if ![64, 128, 256].contains(&self.cache_block_bytes) {
            return Err(format!(
                "unsupported cache block size {}",
                self.cache_block_bytes
            ));
        }
        self.hbm.validate()?;
        self.ddr.validate()?;
        if let Some(f) = &self.fbr_override {
            f.validate()?;
        }
        Ok(())
    }
}

/// A finished memory request, handed back to the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletedReq {
    /// Id of the completed request.
    pub id: ReqId,
    /// Line addressed (for routing the fill back into the hierarchy).
    pub line: LineAddr,
    /// Read or writeback.
    pub kind: AccessKind,
    /// For reads: the payload version observed (checked against the
    /// shadow memory).
    pub data_version: u64,
    /// Cycle the request entered the memory subsystem.
    pub issued_at: Cycle,
    /// Completion cycle.
    pub done_at: Cycle,
}

impl CompletedReq {
    /// Issue-to-data latency.
    pub fn latency(&self) -> Cycle {
        self.done_at.saturating_sub(self.issued_at)
    }
}

/// Event counters shared by every controller (policies add their own on
/// top). These are the inputs to the controller-side energy model and
/// the figures' bandwidth accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ControllerStats {
    /// Requests accepted.
    pub submitted: u64,
    /// Requests completed.
    pub completed: u64,
    /// Read requests completed.
    pub reads_completed: u64,
    /// Sum of read latencies (issue → data).
    pub read_latency_sum: Cycle,
    /// HBM tag-and-data probe reads issued.
    pub hbm_probes: u64,
    /// Probes that hit.
    pub hbm_hits: u64,
    /// Probes that missed.
    pub hbm_misses: u64,
    /// HBM data writes (write hits, fills, r-count updates).
    pub hbm_writes: u64,
    /// Blocks filled into the HBM cache.
    pub fills: u64,
    /// Fills skipped by a bypass decision (BAB, α, refresh).
    pub fill_bypasses: u64,
    /// Requests routed directly to DDR without touching HBM.
    pub hbm_bypasses: u64,
    /// DDR reads issued.
    pub ddr_reads: u64,
    /// DDR writes issued (writebacks, routed last writes).
    pub ddr_writes: u64,
    /// Dirty victims written back to DDR.
    pub victim_writebacks: u64,
    /// Blocks invalidated by γ (last-write elision).
    pub gamma_invalidations: u64,
    /// Writes routed to DDR because γ classified them as last writes.
    pub last_writes_routed: u64,
    /// Bypasses taken because the target rank was refreshing.
    pub refresh_bypasses: u64,
    /// On-controller table lookups (α buffer, presence, predictor) —
    /// weighted by the CACTI-style energy constants.
    pub table_lookups: u64,
}

redcache_types::wire_struct!(ControllerStats {
    submitted,
    completed,
    reads_completed,
    read_latency_sum,
    hbm_probes,
    hbm_hits,
    hbm_misses,
    hbm_writes,
    fills,
    fill_bypasses,
    hbm_bypasses,
    ddr_reads,
    ddr_writes,
    victim_writebacks,
    gamma_invalidations,
    last_writes_routed,
    refresh_bypasses,
    table_lookups,
});

impl ControllerStats {
    /// Element-wise accumulation, the inverse of
    /// [`ControllerStats::delta`]: summing an epoch series re-forms the
    /// aggregate it was sliced from.
    pub fn add(&mut self, other: &ControllerStats) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.reads_completed += other.reads_completed;
        self.read_latency_sum += other.read_latency_sum;
        self.hbm_probes += other.hbm_probes;
        self.hbm_hits += other.hbm_hits;
        self.hbm_misses += other.hbm_misses;
        self.hbm_writes += other.hbm_writes;
        self.fills += other.fills;
        self.fill_bypasses += other.fill_bypasses;
        self.hbm_bypasses += other.hbm_bypasses;
        self.ddr_reads += other.ddr_reads;
        self.ddr_writes += other.ddr_writes;
        self.victim_writebacks += other.victim_writebacks;
        self.gamma_invalidations += other.gamma_invalidations;
        self.last_writes_routed += other.last_writes_routed;
        self.refresh_bypasses += other.refresh_bypasses;
        self.table_lookups += other.table_lookups;
    }

    /// Field-wise difference `self - prev`: the controller activity
    /// between two snapshots. Every field is a monotonically growing
    /// counter, so the difference is itself a valid `ControllerStats`
    /// covering the interval — per-epoch series are derived from the
    /// counters that already exist, with zero extra hot-path work.
    pub fn delta(&self, prev: &ControllerStats) -> ControllerStats {
        ControllerStats {
            submitted: self.submitted.saturating_sub(prev.submitted),
            completed: self.completed.saturating_sub(prev.completed),
            reads_completed: self.reads_completed.saturating_sub(prev.reads_completed),
            read_latency_sum: self.read_latency_sum.saturating_sub(prev.read_latency_sum),
            hbm_probes: self.hbm_probes.saturating_sub(prev.hbm_probes),
            hbm_hits: self.hbm_hits.saturating_sub(prev.hbm_hits),
            hbm_misses: self.hbm_misses.saturating_sub(prev.hbm_misses),
            hbm_writes: self.hbm_writes.saturating_sub(prev.hbm_writes),
            fills: self.fills.saturating_sub(prev.fills),
            fill_bypasses: self.fill_bypasses.saturating_sub(prev.fill_bypasses),
            hbm_bypasses: self.hbm_bypasses.saturating_sub(prev.hbm_bypasses),
            ddr_reads: self.ddr_reads.saturating_sub(prev.ddr_reads),
            ddr_writes: self.ddr_writes.saturating_sub(prev.ddr_writes),
            victim_writebacks: self
                .victim_writebacks
                .saturating_sub(prev.victim_writebacks),
            gamma_invalidations: self
                .gamma_invalidations
                .saturating_sub(prev.gamma_invalidations),
            last_writes_routed: self
                .last_writes_routed
                .saturating_sub(prev.last_writes_routed),
            refresh_bypasses: self.refresh_bypasses.saturating_sub(prev.refresh_bypasses),
            table_lookups: self.table_lookups.saturating_sub(prev.table_lookups),
        }
    }

    /// Mean read latency in cycles.
    pub fn mean_read_latency(&self) -> f64 {
        if self.reads_completed == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.reads_completed as f64
        }
    }

    /// HBM hit rate over all lookups (hits + misses — BEAR's presence
    /// checks count as lookups even when the probe read is elided).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hbm_hits + self.hbm_misses;
        if lookups == 0 {
            0.0
        } else {
            self.hbm_hits as f64 / lookups as f64
        }
    }
}

/// Live, point-in-time controller state — quantities that cannot be
/// reconstructed from counter deltas because they are levels, not sums.
/// Sampled at epoch boundaries by the epoch recorder; all fields
/// default to zero so architectures without a given mechanism (no α, no
/// RCU queue, no HBM side) report a flat zero trace for it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ControllerGauges {
    /// Current α threshold (RedCache admission gate), 0 when absent.
    pub alpha: f64,
    /// Current γ lifetime (RedCache last-write horizon), 0 when absent.
    pub gamma: f64,
    /// Entries parked in the RCU queue right now.
    pub rcu_depth: u64,
    /// Transactions inside the HBM schedulers' windows right now,
    /// summed over channels.
    pub hbm_window_occupancy: u64,
    /// Transactions inside the DDR schedulers' windows right now.
    pub ddr_window_occupancy: u64,
    /// Bitmask of HBM channels latched in write-drain mode (bit *i* ⇔
    /// channel *i*).
    pub hbm_write_drain_mask: u64,
    /// Bitmask of DDR channels latched in write-drain mode.
    pub ddr_write_drain_mask: u64,
    /// FBR's bandwidth-aware fill budget (whole fills' worth of credit
    /// available right now), 0 for other architectures.
    #[serde(default)]
    pub fbr_fill_credit: f64,
}

redcache_types::wire_struct!(ControllerGauges {
    alpha,
    gamma,
    rcu_depth,
    hbm_window_occupancy,
    ddr_window_occupancy,
    hbm_write_drain_mask,
    ddr_write_drain_mask,
    fbr_fill_credit,
});

/// The DRAM-cache controller interface driven by the simulator.
pub trait DramCacheController {
    /// Accepts a request. The controller may buffer internally without
    /// limit; the L3 MSHR file bounds what arrives.
    fn submit(&mut self, req: MemRequest, now: Cycle);

    /// Advances one CPU cycle: drives both DRAM systems and appends any
    /// finished requests to `done`.
    fn tick(&mut self, now: Cycle, done: &mut Vec<CompletedReq>);

    /// A lower bound on the next cycle strictly after `now` at which this
    /// controller could do observable work — issue a DRAM command, hand
    /// out a completion, or run deferred internal work (RCU drains). The
    /// simulator may fast-forward to `min(next_event, core wake-ups)`
    /// without ticking the skipped cycles; ticking earlier than the
    /// returned cycle must be a no-op. The default (`now + 1`) declares
    /// an event every cycle, which disables skipping and is always
    /// correct, so custom controllers stay exact without opting in.
    fn next_event(&self, now: Cycle) -> Cycle {
        now + 1
    }

    /// Requests accepted but not yet completed.
    fn pending(&self) -> usize;

    /// Controller event counters.
    fn stats(&self) -> ControllerStats;

    /// WideIO/HBM DRAM statistics, if this architecture has an HBM.
    fn hbm_stats(&self) -> Option<redcache_dram::DramStats>;

    /// DDR4 DRAM statistics.
    fn ddr_stats(&self) -> redcache_dram::DramStats;

    /// Timing-audit results for the WideIO side, when the runtime audit
    /// ([`redcache_dram::DramConfig::audit`]) is enabled and this
    /// architecture has an HBM. `None` by default, so custom controllers
    /// without audit support keep compiling.
    fn hbm_audit(&self) -> Option<AuditStats> {
        None
    }

    /// Timing-audit results for the DDR side, when the runtime audit is
    /// enabled. `None` by default.
    fn ddr_audit(&self) -> Option<AuditStats> {
        None
    }

    /// Architecture being simulated (for reports).
    fn kind(&self) -> PolicyKind;

    /// Pre-loads the functional image of main memory: `line -> version`.
    /// Called once before simulation so reads of never-written lines
    /// return a defined version.
    fn preload(&mut self, line: LineAddr, version: u64);

    /// Policy-specific scalar statistics (α/γ values, RCU drain mix, …)
    /// as key/value pairs for reports. Empty by default.
    fn extras(&self) -> Vec<(&'static str, f64)> {
        Vec::new()
    }

    /// Live gauges for epoch-resolved traces: adaptive thresholds,
    /// queue depths and per-channel scheduler state *right now*, as
    /// opposed to the cumulative counters in [`ControllerStats`].
    /// Purely observational — implementations must not mutate state —
    /// and only called at epoch boundaries, so it may walk per-channel
    /// structures. Defaults to all-zero so custom controllers keep
    /// compiling.
    fn gauges(&self) -> ControllerGauges {
        ControllerGauges::default()
    }

    /// Zeroes all statistics at the warmup boundary (§IV.A). Functional
    /// and adaptive state (cache contents, α, γ, queues) is preserved.
    fn reset_stats(&mut self);

    /// Adopts the memory state captured at a warm-fork point (DESIGN.md
    /// §3.13): both DRAM systems' timing/queue state and the functional
    /// content of main memory. Called on a **freshly built** controller
    /// before any request is submitted; the warm state is quiescent (no
    /// in-flight transactions), so no request-machine state transfers.
    /// The default is a no-op — see
    /// [`DramCacheController::supports_warm_fork`].
    fn adopt_warm(&mut self, _warm: &WarmMemoryState) {}

    /// Whether [`DramCacheController::adopt_warm`] actually installs the
    /// warm state. Controllers must opt in: the simulator falls back to
    /// the legacy warm-under-policy run for controllers that return
    /// `false` (the default), so a custom controller is never silently
    /// forked from state it ignored.
    fn supports_warm_fork(&self) -> bool {
        false
    }
}

/// The policy-independent memory state captured at the fork point of a
/// warmup run (DESIGN.md §3.13): the complete timing/queue state of both
/// DRAM systems plus the functional image of main memory. The HBM side
/// is captured *un-cached* (refresh counters and bank timing have
/// advanced, but no fills ever landed), so any policy can adopt it.
#[derive(Debug, Clone)]
pub struct WarmMemoryState {
    /// WideIO/HBM DRAM system state (refresh/bank timing; no contents).
    pub hbm: redcache_dram::DramSystemState,
    /// Off-chip DDR4 DRAM system state.
    pub ddr: redcache_dram::DramSystemState,
    /// Functional content of main memory: line → version.
    pub ddr_versions: HashMap<u64, u64>,
}

redcache_types::wire_struct!(WarmMemoryState {
    hbm,
    ddr,
    ddr_versions,
});

/// One DRAM side (HBM or DDR) plus its functional version store and the
/// meta-tag bookkeeping to route completions back to request state
/// machines.
#[derive(Debug)]
pub struct MemorySide {
    /// The cycle-level DRAM model.
    pub sys: DramSystem,
}

impl MemorySide {
    /// Wraps a DRAM system.
    pub fn new(cfg: DramConfig) -> Self {
        Self {
            sys: DramSystem::new(cfg),
        }
    }

    /// Enqueues a transaction tagged with `meta`.
    pub fn issue(
        &mut self,
        addr: redcache_types::PhysAddr,
        kind: TxnKind,
        meta: u64,
        bursts: u32,
        now: Cycle,
    ) {
        self.sys.enqueue(addr, kind, meta, bursts, now);
    }

    /// Advances the DRAM clock. Completions stay buffered inside the
    /// system until the controller drains them into its reusable buffer
    /// with [`MemorySide::drain_completions_into`] — the old
    /// `take_completions` round trip allocated two fresh `Vec`s per tick.
    pub fn tick(&mut self, now: Cycle) {
        self.sys.tick(now);
    }

    /// Appends all completions gathered since the last drain to `out`.
    pub fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        self.sys.drain_completions_into(out);
    }
}

/// Both memory sides, as owned by HBM-bearing controllers.
#[derive(Debug)]
pub struct MemorySides {
    /// The in-package WideIO cache DRAM.
    pub hbm: MemorySide,
    /// The off-chip DDR4 main memory.
    pub ddr: MemorySide,
    /// Functional content of main memory: line → version.
    pub ddr_versions: HashMap<u64, u64>,
}

impl MemorySides {
    /// Builds both sides from the policy configuration.
    pub fn new(cfg: &PolicyConfig) -> Self {
        Self {
            hbm: MemorySide::new(cfg.hbm),
            ddr: MemorySide::new(cfg.ddr),
            ddr_versions: HashMap::new(),
        }
    }

    /// Version currently stored in main memory for `line` (0 if never
    /// written).
    pub fn ddr_version(&self, line: LineAddr) -> u64 {
        self.ddr_versions.get(&line.raw()).copied().unwrap_or(0)
    }

    /// Records a write of `version` to main memory.
    pub fn ddr_store(&mut self, line: LineAddr, version: u64) {
        self.ddr_versions.insert(line.raw(), version);
    }

    /// Wraps a DDR line address (64 B) into the DDR address space so the
    /// scaled configuration never decodes out of range.
    pub fn ddr_addr(&self, line: LineAddr) -> redcache_types::PhysAddr {
        let cap = self.ddr.sys.config().topology.capacity_bytes();
        redcache_types::PhysAddr::new(line.base(64).raw() % cap)
    }

    /// Back-fills skipped-slot accounting on both DRAM systems up to
    /// `now`. Controllers call this at the top of `submit` so that any
    /// command-clock slots the simulator skipped over are sampled with
    /// their pre-enqueue queue state before new transactions land.
    pub fn sync_to(&mut self, now: Cycle) {
        self.hbm.sys.sync_to(now);
        self.ddr.sys.sync_to(now);
    }

    /// The DRAM-side gauge fields (window occupancy and write-drain
    /// masks for both systems) — the shared base every controller's
    /// [`DramCacheController::gauges`] builds on before adding its
    /// policy-specific levels (α, γ, RCU depth).
    pub fn dram_gauges(&self) -> ControllerGauges {
        ControllerGauges {
            hbm_window_occupancy: self.hbm.sys.window_occupancy() as u64,
            ddr_window_occupancy: self.ddr.sys.window_occupancy() as u64,
            hbm_write_drain_mask: self.hbm.sys.write_drain_mask(),
            ddr_write_drain_mask: self.ddr.sys.write_drain_mask(),
            ..ControllerGauges::default()
        }
    }

    /// Snapshot of the HBM side's timing audit (when enabled) — the
    /// shared implementation behind [`DramCacheController::hbm_audit`].
    pub fn hbm_audit(&self) -> Option<AuditStats> {
        self.hbm.sys.audit_stats().cloned()
    }

    /// Snapshot of the DDR side's timing audit (when enabled).
    pub fn ddr_audit(&self) -> Option<AuditStats> {
        self.ddr.sys.audit_stats().cloned()
    }

    /// Captures the policy-independent warm state of both DRAM systems
    /// and the functional memory image (DESIGN.md §3.13). Meaningful
    /// only when both systems are quiescent (no pending transactions).
    pub fn capture_warm(&self) -> WarmMemoryState {
        use redcache_types::Snapshot as _;
        WarmMemoryState {
            hbm: self.hbm.sys.snapshot(),
            ddr: self.ddr.sys.snapshot(),
            ddr_versions: self.ddr_versions.clone(),
        }
    }

    /// Installs a previously captured warm state into sides built from
    /// the same DRAM configurations — the inverse of
    /// [`MemorySides::capture_warm`], shared by every controller's
    /// [`DramCacheController::adopt_warm`].
    pub fn restore_warm(&mut self, warm: &WarmMemoryState) {
        use redcache_types::Restorable as _;
        self.hbm.sys.restore(&warm.hbm);
        self.ddr.sys.restore(&warm.ddr);
        self.ddr_versions = warm.ddr_versions.clone();
    }
}

/// Helper: encode (op id, leg) into a transaction meta tag.
pub(crate) fn meta(op: u64, leg: u8) -> u64 {
    (op << 3) | leg as u64
}

/// Helper: decode a transaction meta tag into (op id, leg).
pub(crate) fn unmeta(m: u64) -> (u64, u8) {
    (m >> 3, (m & 7) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_round_trips() {
        for op in [0u64, 1, 77, 1 << 40] {
            for leg in 0..8u8 {
                assert_eq!(unmeta(meta(op, leg)), (op, leg));
            }
        }
    }

    #[test]
    fn policy_config_validates_block_sizes() {
        let mut c = PolicyConfig::scaled(PolicyKind::Alloy);
        c.validate().unwrap();
        c.cache_block_bytes = 128;
        c.validate().unwrap();
        c.cache_block_bytes = 96;
        assert!(c.validate().is_err());
    }

    #[test]
    fn stats_derived_metrics() {
        let s = ControllerStats {
            reads_completed: 4,
            read_latency_sum: 400,
            hbm_probes: 10,
            hbm_hits: 7,
            hbm_misses: 3,
            ..Default::default()
        };
        assert_eq!(s.mean_read_latency(), 100.0);
        assert!((s.hit_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn ddr_versions_default_zero() {
        let sides = MemorySides::new(&PolicyConfig::scaled(PolicyKind::Alloy));
        assert_eq!(sides.ddr_version(LineAddr::new(42)), 0);
    }

    #[test]
    fn ddr_addr_wraps_into_capacity() {
        let sides = MemorySides::new(&PolicyConfig::scaled(PolicyKind::Alloy));
        let cap = sides.ddr.sys.config().topology.capacity_bytes();
        let a = sides.ddr_addr(LineAddr::new(u64::MAX / 128));
        assert!(a.raw() < cap);
    }

    #[test]
    fn kind_display() {
        assert_eq!(PolicyKind::NoHbm.to_string(), "No-HBM");
        assert_eq!(PolicyKind::Alloy.to_string(), "Alloy");
    }

    #[test]
    fn kind_parses_cli_spellings() {
        use crate::redcache::RedVariant;
        for (s, k) in [
            ("nohbm", PolicyKind::NoHbm),
            ("No-HBM", PolicyKind::NoHbm),
            ("IDEAL", PolicyKind::Ideal),
            ("alloy", PolicyKind::Alloy),
            ("bear", PolicyKind::Bear),
            ("red-alpha", PolicyKind::Red(RedVariant::Alpha)),
            ("red-gamma", PolicyKind::Red(RedVariant::Gamma)),
            ("red-basic", PolicyKind::Red(RedVariant::Basic)),
            ("red-insitu", PolicyKind::Red(RedVariant::InSitu)),
            ("redcache", PolicyKind::Red(RedVariant::Full)),
            ("red", PolicyKind::Red(RedVariant::Full)),
        ] {
            assert_eq!(s.parse::<PolicyKind>().unwrap(), k, "{s}");
        }
        assert!("alchemy".parse::<PolicyKind>().is_err());
    }
}
