//! Invariants of the epoch recorder (DESIGN.md §3.9).
//!
//! 1. *Conservation*: the post-warmup epoch deltas sum **exactly** to
//!    the end-of-run aggregates — the series is a lossless slicing of
//!    the counters the report already carries, across all 14 suite
//!    workloads under a baseline and a RedCache architecture.
//! 2. *Non-perturbation*: a run with recording enabled produces the
//!    same `RunReport` (timeseries aside) as a run without it.

use redcache::prelude::*;
use redcache_cache::CacheStats;
use redcache_dram::DramStats;
use redcache_policies::ControllerStats;

const EPOCH: Cycle = 20_000;

fn run(kind: PolicyKind, w: Workload, gen: &GenConfig, epoch: Option<Cycle>) -> RunReport {
    let cfg = SimConfig::quick(kind)
        .to_builder()
        .epoch_cycles(epoch)
        .build()
        .expect("preset-derived config validates");
    run_workload(cfg, w, gen)
}

fn policies() -> [PolicyKind; 2] {
    [PolicyKind::Alloy, PolicyKind::Red(RedVariant::Full)]
}

#[test]
fn epoch_deltas_sum_to_aggregates_across_the_suite() {
    let gen = GenConfig::tiny();
    for w in Workload::ALL {
        for kind in policies() {
            let r = run(kind, w, &gen, Some(EPOCH));
            let ts = r.timeseries.as_ref().expect("recording was on");
            assert_eq!(ts.epoch_cycles, EPOCH);
            assert!(!ts.epochs.is_empty(), "{kind} on {w}: no epochs closed");
            // Epochs tile the timeline with no gaps or overlaps.
            for pair in ts.epochs.windows(2) {
                assert_eq!(
                    pair[1].start,
                    pair[0].end + 1,
                    "{kind} on {w}: epochs must tile the timeline"
                );
            }
            // Only the post-warmup epochs count toward the aggregates:
            // the warmup reset zeroes both the counters and the
            // recorder's baselines.
            let start = ts.warmup_epoch.expect("quick preset has a warmup phase") as usize;
            let mut ctl = ControllerStats::default();
            let mut hbm = DramStats::default();
            let mut ddr = DramStats::default();
            let mut l1 = CacheStats::default();
            let mut l2 = CacheStats::default();
            let mut l3 = CacheStats::default();
            for e in &ts.epochs[start..] {
                ctl.add(&e.ctl);
                if let Some(h) = &e.hbm {
                    hbm.add(h);
                }
                ddr.add(&e.ddr);
                l1.add(&e.l1);
                l2.add(&e.l2);
                l3.add(&e.l3);
            }
            let ctx = format!("{kind} on {w}");
            assert_eq!(ctl, r.ctl, "{ctx}: controller deltas must sum exactly");
            assert_eq!(Some(hbm), r.hbm, "{ctx}: HBM deltas must sum exactly");
            assert_eq!(ddr, r.ddr, "{ctx}: DDR deltas must sum exactly");
            assert_eq!(l1, r.l1, "{ctx}: L1 deltas must sum exactly");
            assert_eq!(l2, r.l2, "{ctx}: L2 deltas must sum exactly");
            assert_eq!(l3, r.l3, "{ctx}: L3 deltas must sum exactly");
        }
    }
}

#[test]
fn recording_never_perturbs_the_run() {
    let gen = GenConfig::tiny();
    for w in [Workload::Ft, Workload::Is, Workload::Hist] {
        for kind in policies() {
            let mut on = run(kind, w, &gen, Some(EPOCH));
            let off = run(kind, w, &gen, None);
            assert!(on.timeseries.is_some() && off.timeseries.is_none());
            on.timeseries = None;
            assert_eq!(on, off, "{kind} on {w}: recording must be observational");
        }
    }
}

#[test]
fn epochs_are_stride_sized_and_cover_from_cycle_zero() {
    let gen = GenConfig::tiny();
    let r = run(
        PolicyKind::Red(RedVariant::Full),
        Workload::Ft,
        &gen,
        Some(EPOCH),
    );
    let ts = r.timeseries.expect("recording was on");
    assert_eq!(ts.epochs[0].start, 0, "series must start at cycle 0");
    for (i, e) in ts.epochs.iter().enumerate() {
        assert_eq!(e.index, i as u64, "indices must be sequential");
        if i + 1 < ts.epochs.len() {
            assert_eq!(e.cycles(), EPOCH, "interior epochs are one full stride");
        } else {
            // The partial tail closes at the loop-exit cycle; the skip
            // clamp guarantees no boundary is ever jumped, so the tail
            // can never exceed a stride.
            assert!(e.cycles() <= EPOCH, "tail epoch longer than a stride");
        }
    }
}
