//! **Ablation** — RCU queue depth (the paper fixes it at 32 entries):
//! how the drain mix and performance respond to 8/16/32/64 entries.

use redcache::{PolicyKind, RedConfig, RedVariant, SimConfig};
use redcache_bench::{
    assert_clean, experiment_gen_config, print_table, run_matrix, save_json, RunSpec,
};
use redcache_workloads::Workload;

fn main() {
    let gen = experiment_gen_config();
    let depths = [8usize, 16, 32, 64];
    let workloads = [Workload::Ocn, Workload::Fft, Workload::Mg];

    let mut specs = Vec::new();
    for &w in &workloads {
        for &d in &depths {
            let kind = PolicyKind::Red(RedVariant::Full);
            let mut cfg = SimConfig::scaled(kind);
            let mut rc = RedConfig::for_variant(RedVariant::Full);
            rc.rcu_capacity = d;
            cfg.policy.red_override = Some(rc);
            specs.push(RunSpec {
                workload: w,
                policy: kind,
                cfg,
            });
        }
    }
    let reports = run_matrix(&specs, &gen);
    assert_clean(&reports);

    let cols: Vec<String> = workloads
        .iter()
        .map(|w| w.info().label.to_string())
        .collect();
    let mut time_rows = Vec::new();
    let mut cheap_rows = Vec::new();
    for (di, &d) in depths.iter().enumerate() {
        let mut times = Vec::new();
        let mut cheaps = Vec::new();
        for (wi, _) in workloads.iter().enumerate() {
            let base = &reports[wi * depths.len()]; // depth 8 as reference
            let r = &reports[wi * depths.len() + di];
            times.push(r.time_normalized_to(base));
            cheaps.push(
                r.extras
                    .iter()
                    .find(|(k, _)| k == "rcu_cheap_fraction")
                    .map(|(_, v)| *v)
                    .unwrap_or(0.0),
            );
        }
        time_rows.push((format!("{d} entries"), times));
        cheap_rows.push((format!("{d} entries"), cheaps));
    }
    print_table(
        "Ablation: RCU depth — execution time (normalised to 8 entries)",
        "depth",
        &cols,
        &time_rows,
    );
    print_table(
        "Ablation: RCU depth — cheap-drain fraction",
        "depth",
        &cols,
        &cheap_rows,
    );
    save_json("ablation_rcu_depth", &(time_rows, cheap_rows));
}
