//! Per-channel state: indexed transaction queue, bank/rank arrays,
//! data bus (DESIGN.md §3.8).

use crate::bank::{Bank, Rank};
use crate::queue::{TxnCold, TxnQueue};
use crate::system::{TxnId, TxnKind};
use crate::topology::DramLoc;
use redcache_types::Cycle;

/// One DRAM channel: its queue, ranks/banks, and shared data bus.
#[derive(Debug)]
pub(crate) struct Channel {
    pub ranks: Vec<Rank>,
    /// `banks[rank][bank]`.
    pub banks: Vec<Vec<Bank>>,
    /// Pending transactions, indexed by arrival order and by bank.
    pub q: TxnQueue,
    /// Cycle at which the data bus becomes free.
    pub bus_free_at: Cycle,
    /// Issue time of the last column command (channel-level tCCD guard).
    pub last_col_cmd: Option<Cycle>,
    /// Kind of the last column command, for turnaround stats.
    pub last_col_kind: Option<TxnKind>,
    /// Write transactions still queued (for the write-drain watermark).
    pub pending_writes: usize,
    /// Currently batching writes (virtual-write-queue hysteresis).
    pub write_drain_mode: bool,
    /// Per-rank count of partially issued transactions (first burst
    /// done, more to go) — the refresh quiescence check in O(1). Only
    /// in-window transactions can issue bursts, and window membership
    /// is monotone, so this counter is exact for the whole queue.
    pub rank_inflight: Vec<u32>,
    /// Slab index of the transaction whose final burst issued this
    /// slot, if any — consumed by [`Channel::take_completed`]. At most
    /// one per slot (one column command per slot).
    pub completed: Option<u32>,
    /// Memoised scheduling horizon (raw, unaligned). The horizon is a
    /// pure function of this channel's device state, which only changes
    /// on enqueue, issued commands (incl. refresh) and write-drain
    /// latch flips — each of which clears the cell. `None` means dirty;
    /// a cached value is honoured only while strictly in the future.
    /// Living here (not in a `DramSystem` side table) keeps everything
    /// a parallel stepping lane touches inside its own `Channel`.
    pub horizon: std::cell::Cell<Option<Cycle>>,
}

/// Captured state of one channel (DESIGN.md §3.13): every field of
/// [`Channel`] except the `horizon` memo, which is a pure cache of the
/// rest (and a `Cell`, so it cannot live in a `Send + Sync` snapshot).
/// Restoring marks the horizon dirty; the next `next_event` query
/// recomputes it from the restored device state.
#[derive(Debug, Clone)]
pub(crate) struct ChannelState {
    ranks: Vec<Rank>,
    banks: Vec<Vec<Bank>>,
    q: TxnQueue,
    bus_free_at: Cycle,
    last_col_cmd: Option<Cycle>,
    last_col_kind: Option<TxnKind>,
    pending_writes: usize,
    write_drain_mode: bool,
    rank_inflight: Vec<u32>,
    completed: Option<u32>,
}

redcache_types::wire_struct!(ChannelState {
    ranks,
    banks,
    q,
    bus_free_at,
    last_col_cmd,
    last_col_kind,
    pending_writes,
    write_drain_mode,
    rank_inflight,
    completed,
});

impl Channel {
    /// Captures this channel's complete mutable state.
    pub(crate) fn capture(&self) -> ChannelState {
        ChannelState {
            ranks: self.ranks.clone(),
            banks: self.banks.clone(),
            q: self.q.clone(),
            bus_free_at: self.bus_free_at,
            last_col_cmd: self.last_col_cmd,
            last_col_kind: self.last_col_kind,
            pending_writes: self.pending_writes,
            write_drain_mode: self.write_drain_mode,
            rank_inflight: self.rank_inflight.clone(),
            completed: self.completed,
        }
    }

    /// Overwrites this channel's mutable state with a captured one
    /// (same topology; enforced by the caller's config fingerprint).
    pub(crate) fn restore(&mut self, s: &ChannelState) {
        self.ranks = s.ranks.clone();
        self.banks = s.banks.clone();
        self.q = s.q.clone();
        self.bus_free_at = s.bus_free_at;
        self.last_col_cmd = s.last_col_cmd;
        self.last_col_kind = s.last_col_kind;
        self.pending_writes = s.pending_writes;
        self.write_drain_mode = s.write_drain_mode;
        self.rank_inflight = s.rank_inflight.clone();
        self.completed = s.completed;
        self.horizon.set(None);
    }

    pub(crate) fn new(ranks: usize, banks: usize, first_refresh_stagger: Cycle) -> Self {
        Self {
            // Stagger initial refreshes across ranks so they do not all
            // fire in the same cycle (as real controllers do).
            ranks: (0..ranks)
                .map(|r| Rank::new(first_refresh_stagger * (r as Cycle + 1)))
                .collect(),
            banks: (0..ranks)
                .map(|_| (0..banks).map(|_| Bank::new()).collect())
                .collect(),
            q: TxnQueue::new(ranks, banks),
            bus_free_at: 0,
            last_col_cmd: None,
            last_col_kind: None,
            pending_writes: 0,
            write_drain_mode: false,
            rank_inflight: vec![0; ranks],
            completed: None,
            horizon: std::cell::Cell::new(None),
        }
    }

    pub(crate) fn bank(&self, loc: &DramLoc) -> &Bank {
        &self.banks[loc.rank][loc.bank]
    }

    pub(crate) fn bank_mut(&mut self, loc: &DramLoc) -> &mut Bank {
        &mut self.banks[loc.rank][loc.bank]
    }

    /// Enqueues a transaction, maintaining the write watermark and the
    /// target bank's hit counters.
    pub(crate) fn push(
        &mut self,
        id: TxnId,
        kind: TxnKind,
        loc: DramLoc,
        bursts: u32,
        meta: u64,
        now: Cycle,
    ) {
        if kind == TxnKind::Write {
            self.pending_writes += 1;
        }
        let open = self.banks[loc.rank][loc.bank].open_row;
        self.q.push(id, kind, loc, bursts, meta, now, open);
    }

    /// Retires the transaction finished by this slot's column command
    /// (if any) in O(1), promoting the oldest waiting transaction into
    /// the freed window slot.
    pub(crate) fn take_completed(&mut self) -> Option<(TxnKind, TxnCold)> {
        let idx = self.completed.take()?;
        let banks = &self.banks;
        let per_rank = banks.first().map_or(1, Vec::len);
        let (kind, cold) = self
            .q
            .retire(idx, |fb| banks[fb / per_rank][fb % per_rank].open_row);
        if kind == TxnKind::Write {
            self.pending_writes -= 1;
        }
        Some((kind, cold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A nonzero channel index: a `Channel` never inspects its own index,
    /// so location helpers must work for any attributed channel, not
    /// just 0.
    fn loc(rank: usize, bank: usize, row: u64) -> DramLoc {
        DramLoc {
            channel: 3,
            rank,
            bank,
            row,
            col: 0,
        }
    }

    #[test]
    fn refresh_staggering_differs_across_ranks() {
        let ch = Channel::new(4, 2, 100);
        assert_eq!(ch.ranks[0].next_refresh, 100);
        assert_eq!(ch.ranks[3].next_refresh, 400);
    }

    #[test]
    fn push_tracks_write_watermark_and_hit_counters() {
        let mut ch = Channel::new(1, 2, 1000);
        ch.banks[0][0].open_row = Some(5);
        ch.push(TxnId(1), TxnKind::Read, loc(0, 0, 5), 1, 0, 0);
        ch.push(TxnId(2), TxnKind::Write, loc(0, 0, 5), 1, 0, 0);
        ch.push(TxnId(3), TxnKind::Read, loc(0, 0, 9), 1, 0, 0); // conflict
        ch.push(TxnId(4), TxnKind::Read, loc(0, 1, 5), 1, 0, 0); // closed bank
        assert_eq!(ch.pending_writes, 1);
        let b0 = ch.q.flat(&loc(0, 0, 0));
        assert_eq!(ch.q.bank(b0).hit_reads, 1);
        assert_eq!(ch.q.bank(b0).hit_writes, 1);
        let b1 = ch.q.flat(&loc(0, 1, 0));
        assert_eq!(ch.q.bank(b1).hit_reads, 0);
        assert_eq!(ch.q.bank(b1).window_len, 1);
    }

    #[test]
    fn take_completed_retires_and_updates_watermark() {
        let mut ch = Channel::new(1, 1, 1000);
        ch.push(TxnId(7), TxnKind::Write, loc(0, 0, 1), 1, 42, 5);
        let idx = ch.q.iter_window().next().unwrap();
        let (left, _) = ch.q.record_burst(idx, 90);
        assert_eq!(left, 0);
        ch.completed = Some(idx);
        let (kind, cold) = ch.take_completed().unwrap();
        assert_eq!(kind, TxnKind::Write);
        assert_eq!(cold.id, TxnId(7));
        assert_eq!(cold.meta, 42);
        assert_eq!(cold.data_done_at, 90);
        assert_eq!(ch.pending_writes, 0);
        assert!(ch.q.is_empty());
        assert!(ch.take_completed().is_none());
    }
}
