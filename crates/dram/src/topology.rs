//! DRAM topology (channels/ranks/banks/rows) and physical address mapping.

use redcache_types::PhysAddr;
use serde::{Deserialize, Serialize};

/// Physical organisation of one DRAM system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Independent channels, each with its own command/data bus.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks: usize,
    /// Rows per bank.
    pub rows: usize,
    /// Bytes per row (row-buffer size).
    pub row_bytes: usize,
    /// Bytes delivered by one burst (one tBL occupancy) on this channel.
    pub bytes_per_burst: usize,
}

impl Topology {
    /// Builds a topology with the row count derived from a target
    /// capacity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not divisible into at least one row per
    /// bank, or if any dimension is zero or non-power-of-two where a
    /// power of two is required (`row_bytes`, `bytes_per_burst`).
    pub fn from_capacity(
        channels: usize,
        ranks: usize,
        banks: usize,
        row_bytes: usize,
        bytes_per_burst: usize,
        capacity_bytes: u64,
    ) -> Self {
        assert!(
            channels > 0 && ranks > 0 && banks > 0,
            "dimensions must be nonzero"
        );
        assert!(
            row_bytes.is_power_of_two(),
            "row_bytes must be a power of two"
        );
        assert!(
            bytes_per_burst.is_power_of_two(),
            "bytes_per_burst must be a power of two"
        );
        let denom = (channels * ranks * banks * row_bytes) as u64;
        let rows = capacity_bytes / denom;
        assert!(rows >= 1, "capacity too small for topology");
        Self {
            channels,
            ranks,
            banks,
            rows: rows as usize,
            row_bytes,
            bytes_per_burst,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        (self.channels * self.ranks * self.banks * self.rows) as u64 * self.row_bytes as u64
    }

    /// Total number of banks across the whole system.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks * self.banks
    }
}

/// How physical address bits map onto (channel, rank, bank, row, column).
///
/// Low-order block bits interleave across channels first, then banks,
/// then ranks — the standard layout for spreading sequential traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AddressMapping {
    /// row : rank : bank : column-high : channel : block-offset
    #[default]
    RowRankBankColChan,
    /// row : bank : rank : column-high : channel : block-offset
    RowBankRankColChan,
    /// Like [`AddressMapping::RowRankBankColChan`] but with the bank
    /// index XOR-folded with low row bits (permutation-based
    /// interleaving) — spreads row-conflicting strides across banks.
    XorBankHash,
}

/// A decoded DRAM location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramLoc {
    /// Channel index.
    pub channel: usize,
    /// Rank index within the channel.
    pub rank: usize,
    /// Bank index within the rank.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
    /// Column offset (in bursts) within the row.
    pub col: usize,
}

redcache_types::wire_struct!(DramLoc {
    channel,
    rank,
    bank,
    row,
    col,
});

impl DramLoc {
    /// True when two locations share the same bank (and therefore the
    /// same row buffer).
    pub fn same_bank(&self, other: &DramLoc) -> bool {
        self.channel == other.channel && self.rank == other.rank && self.bank == other.bank
    }

    /// True when two locations address the same open row of the same
    /// bank — the condition the RCU manager's CAM checks (§III.C).
    pub fn same_row(&self, other: &DramLoc) -> bool {
        self.same_bank(other) && self.row == other.row
    }
}

/// Decodes a physical address into a [`DramLoc`] under `mapping`.
pub fn decode(topology: &Topology, mapping: AddressMapping, addr: PhysAddr) -> DramLoc {
    let t = topology;
    let mut a = addr.raw() / t.bytes_per_burst as u64;
    let mut take = |n: usize| -> u64 {
        let v = a % n as u64;
        a /= n as u64;
        v
    };
    let channel = take(t.channels) as usize;
    let bursts_per_row = (t.row_bytes / t.bytes_per_burst).max(1);
    let col = take(bursts_per_row) as usize;
    let (rank, bank) = match mapping {
        AddressMapping::RowRankBankColChan | AddressMapping::XorBankHash => {
            let bank = take(t.banks) as usize;
            let rank = take(t.ranks) as usize;
            (rank, bank)
        }
        AddressMapping::RowBankRankColChan => {
            let rank = take(t.ranks) as usize;
            let bank = take(t.banks) as usize;
            (rank, bank)
        }
    };
    let row = a % t.rows as u64;
    let bank = if mapping == AddressMapping::XorBankHash && t.banks.is_power_of_two() {
        (bank ^ (row as usize & (t.banks - 1))) % t.banks
    } else {
        bank
    };
    DramLoc {
        channel,
        rank,
        bank,
        row,
        col,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Topology {
        Topology {
            channels: 2,
            ranks: 2,
            banks: 4,
            rows: 8,
            row_bytes: 1024,
            bytes_per_burst: 64,
        }
    }

    #[test]
    fn from_capacity_round_trips() {
        let t = Topology::from_capacity(4, 8, 16, 2048, 64, 2 << 30);
        assert_eq!(t.capacity_bytes(), 2 << 30);
        assert_eq!(t.rows, 2048);
    }

    #[test]
    #[should_panic(expected = "capacity too small")]
    fn from_capacity_rejects_tiny_capacity() {
        let _ = Topology::from_capacity(4, 8, 16, 2048, 64, 1024);
    }

    #[test]
    fn sequential_blocks_interleave_channels() {
        let t = small();
        let a = decode(&t, AddressMapping::default(), PhysAddr::new(0));
        let b = decode(&t, AddressMapping::default(), PhysAddr::new(64));
        assert_eq!(a.channel, 0);
        assert_eq!(b.channel, 1);
        assert_eq!(a.col, b.col);
    }

    #[test]
    fn same_row_requires_same_bank_and_row() {
        let t = small();
        let a = decode(&t, AddressMapping::default(), PhysAddr::new(0));
        let b = decode(&t, AddressMapping::default(), PhysAddr::new(128));
        // Same channel (stride 2 blocks), same row, adjacent column.
        assert!(a.same_row(&b));
        assert!(a.same_bank(&b));
    }

    #[test]
    fn xor_hash_spreads_same_bank_strides() {
        // A stride that always lands in bank 0 under the plain mapping
        // must touch several banks under the XOR hash.
        let t = small();
        let stride = (t.channels * t.banks) as u64 * 64; // bank-conflict stride
        let plain: std::collections::HashSet<usize> = (0..16)
            .map(|i| {
                decode(
                    &t,
                    AddressMapping::RowRankBankColChan,
                    PhysAddr::new(i * stride * 4),
                )
                .bank
            })
            .collect();
        let hashed: std::collections::HashSet<usize> = (0..16)
            .map(|i| {
                decode(
                    &t,
                    AddressMapping::XorBankHash,
                    PhysAddr::new(i * stride * 4),
                )
                .bank
            })
            .collect();
        assert!(
            hashed.len() >= plain.len(),
            "XOR hash must not reduce bank spread"
        );
        assert!(
            hashed.len() > 1,
            "XOR hash should break the single-bank stride"
        );
    }

    #[test]
    fn decode_stays_in_bounds_across_whole_space() {
        let t = small();
        for m in [
            AddressMapping::RowRankBankColChan,
            AddressMapping::RowBankRankColChan,
            AddressMapping::XorBankHash,
        ] {
            for step in 0..(t.capacity_bytes() / 64) {
                let loc = decode(&t, m, PhysAddr::new(step * 64));
                assert!(loc.channel < t.channels);
                assert!(loc.rank < t.ranks);
                assert!(loc.bank < t.banks);
                assert!((loc.row as usize) < t.rows);
                assert!(loc.col < t.row_bytes / t.bytes_per_burst);
            }
        }
    }

    #[test]
    fn decode_is_injective_within_capacity() {
        use std::collections::HashSet;
        let t = small();
        let mut seen = HashSet::new();
        for step in 0..(t.capacity_bytes() / 64) {
            let loc = decode(&t, AddressMapping::default(), PhysAddr::new(step * 64));
            assert!(seen.insert((loc.channel, loc.rank, loc.bank, loc.row, loc.col)));
        }
    }
}
