//! The on-disk warm-snapshot cache (`--snapshot-dir` /
//! `REDCACHE_SNAPSHOT_DIR`) must treat damage as a miss, never as
//! state: a truncated, garbage, or stale-keyed `.rcsn` file triggers a
//! fresh warmup whose result both heals the entry and simulates
//! identically to a never-cached run. Mirrors the trace cache's
//! corrupt-entry heal contract.
//!
//! Kept as a single `#[test]` in its own integration-test binary: the
//! warm counter is process-global, so sibling tests warming simulators
//! in parallel would make the exactly-one-warmup deltas ambiguous.

use redcache::{snapshot_io, warm_count, PolicyKind, SimConfig, Simulator};
use redcache_workloads::{GenConfig, SharedTraces, Workload};

#[test]
fn corrupt_snapshot_entries_rewarm_and_heal() {
    let cfg = SimConfig::quick(PolicyKind::Alloy);
    let gen = GenConfig::tiny();
    let traces: SharedTraces = Workload::Hist.generate(&gen).into();
    let dir = std::env::temp_dir().join(format!("redcache_snap_heal_{:x}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let scratch = Simulator::new(cfg).run(traces.clone());

    // Cold cache: exactly one warmup, and the entry is persisted.
    let before = warm_count();
    let snap = snapshot_io::warm_cached_in(&Simulator::new(cfg), "hist", &traces, Some(&dir));
    assert_eq!(warm_count() - before, 1);
    let path = dir.join(snapshot_io::snapshot_file_name(
        "hist",
        snap.trace_key(),
        snap.key(),
    ));
    assert!(path.is_file(), "snapshot was not persisted");
    assert_eq!(Simulator::new(cfg).resume(&snap), scratch);

    // Warm cache: loaded, not re-warmed.
    let before = warm_count();
    let loaded = snapshot_io::warm_cached_in(&Simulator::new(cfg), "hist", &traces, Some(&dir));
    assert_eq!(warm_count() - before, 0, "valid cache entry was re-warmed");
    assert_eq!(Simulator::new(cfg).resume(&loaded), scratch);

    // Corruption heals: truncation, then garbage, then an envelope
    // whose warm key matches but whose payload is damaged. Each damaged
    // entry costs one fresh warmup, produces the scratch-identical
    // report, and leaves a loadable file behind.
    let good = std::fs::read(&path).unwrap();
    let damaged: Vec<Vec<u8>> = vec![
        good[..good.len() / 3].to_vec(),
        b"this is not a snapshot".to_vec(),
        {
            let mut flipped = good.clone();
            let mid = flipped.len() / 2;
            flipped[mid] ^= 0xFF;
            flipped
        },
    ];
    for bytes in damaged {
        std::fs::write(&path, &bytes).unwrap();
        let before = warm_count();
        let healed = snapshot_io::warm_cached_in(&Simulator::new(cfg), "hist", &traces, Some(&dir));
        assert_eq!(warm_count() - before, 1, "damaged entry must re-warm");
        assert_eq!(Simulator::new(cfg).resume(&healed), scratch);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            good,
            "damaged entry was not healed back to the canonical bytes"
        );
    }

    // A snapshot warmed under a different warm-relevant config caches
    // under a different file name: both entries coexist.
    let other_cfg = SimConfig::quick(PolicyKind::Alloy)
        .to_builder()
        .warmup_fraction(0.1)
        .build()
        .expect("preset-derived config validates");
    let other =
        snapshot_io::warm_cached_in(&Simulator::new(other_cfg), "hist", &traces, Some(&dir));
    assert_ne!(other.key(), snap.key());
    assert_eq!(
        std::fs::read_dir(&dir).unwrap().count(),
        2,
        "distinct warm keys must not collide in the cache directory"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
