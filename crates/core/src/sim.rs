//! The full-system simulator: cores × hierarchy × controller × DRAM.
//!
//! Cycle loop per CPU cycle: each core may commit one memory access
//! into the hierarchy; L3 misses and dirty evictions become controller
//! requests; the controller drives both DRAM systems and hands back
//! completions, which fill the hierarchy and wake stalled loads. A
//! shadow memory checks every read's payload version against the last
//! writeback, end to end.

use crate::checker::ShadowMemory;
use crate::config::SimConfig;
use crate::epoch::EpochRecorder;
use crate::metrics::RunReport;
use redcache_cache::Hierarchy;
use redcache_cpu::{Core, LoadToken, Poll};
use redcache_energy::{CpuActivity, EnergyModel};
use redcache_policies::{build_controller, CompletedReq, DramCacheController, MemorySides};
use redcache_types::{AccessKind, CoreId, Cycle, LineAddr, MemRequest, ReqId, BLOCK_BYTES};
use redcache_workloads::SharedTraces;
use std::sync::Arc;

// Re-exported for documentation purposes only.
#[allow(unused_imports)]
use redcache_policies::PolicyKind;

#[derive(Debug, Clone, Copy)]
struct WaiterInfo {
    core: usize,
    load_token: Option<LoadToken>,
    store_version: Option<u64>,
}

/// Slab of in-flight waiters keyed by slot index. Replaces the previous
/// `HashMap<u64, WaiterInfo>`: ids are recycled through a free list, so
/// long runs stop hashing and never grow the table past the peak number
/// of simultaneous misses.
#[derive(Debug, Default)]
struct WaiterSlab {
    slots: Vec<Option<WaiterInfo>>,
    free: Vec<usize>,
}

impl WaiterSlab {
    /// The id `insert` will hand out next. The simulator passes this to
    /// the hierarchy *before* knowing whether the access misses; on a
    /// hit or an MSHR-full retry nothing is inserted and the id is
    /// simply re-offered next time.
    fn peek_id(&self) -> u64 {
        self.free.last().copied().unwrap_or(self.slots.len()) as u64
    }

    fn insert(&mut self, info: WaiterInfo) -> u64 {
        match self.free.pop() {
            Some(i) => {
                debug_assert!(self.slots[i].is_none());
                self.slots[i] = Some(info);
                i as u64
            }
            None => {
                self.slots.push(Some(info));
                (self.slots.len() - 1) as u64
            }
        }
    }

    fn remove(&mut self, id: u64) -> Option<WaiterInfo> {
        let info = self.slots.get_mut(id as usize)?.take();
        if info.is_some() {
            self.free.push(id as usize);
        }
        info
    }
}

/// Submits dirty L3 evictions to the controller as writeback requests.
/// A plain function (not a per-run closure) so the hot completion path
/// borrows only what it needs.
fn submit_writebacks(
    evicted: &[redcache_cache::Evicted],
    controller: &mut dyn DramCacheController,
    shadow: &mut ShadowMemory,
    next_req: &mut u64,
    mem_writebacks: &mut u64,
    now: Cycle,
) {
    for ev in evicted {
        debug_assert!(ev.dirty);
        let id = ReqId(*next_req);
        *next_req += 1;
        shadow.on_writeback(ev.line, ev.version);
        controller.submit(
            MemRequest::writeback(id, ev.line, CoreId(0), now, ev.version),
            now,
        );
        *mem_writebacks += 1;
    }
}

/// The assembled system, ready to execute one workload.
pub struct Simulator {
    cfg: SimConfig,
    energy_model: EnergyModel,
}

impl Simulator {
    /// Builds a simulator from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    pub fn new(cfg: SimConfig) -> Self {
        cfg.validate().expect("invalid simulation configuration");
        let mut cfg = cfg;
        if cfg.audit_timing {
            // Propagate the top-level switch into both DRAM systems so
            // [`Simulator::run`] builds them with auditors attached.
            // Callers of `run_with` own their controller's DRAM configs
            // and opt in through `DramConfig::audit` directly.
            cfg.policy.hbm.audit = true;
            cfg.policy.ddr.audit = true;
        }
        // Per-channel parallel stepping: the environment variable wins
        // over the config in either direction (`1` on, `0` off), read
        // once per simulator like REDCACHE_NO_SKIP. Propagated the same
        // way as the audit switch above.
        let channel_par = match std::env::var("REDCACHE_CHANNEL_PAR") {
            Ok(v) if v == "1" => true,
            Ok(v) if v == "0" => false,
            _ => cfg.channel_par,
        };
        cfg.channel_par = channel_par;
        cfg.policy.hbm.channel_par = channel_par;
        cfg.policy.ddr.channel_par = channel_par;
        Self {
            cfg,
            energy_model: EnergyModel::default(),
        }
    }

    /// Replaces the default energy constants.
    pub fn with_energy_model(mut self, model: EnergyModel) -> Self {
        self.energy_model = model;
        self
    }

    /// Executes `traces` (one per thread; at most one per core) to
    /// completion and returns the run report. Accepts owned
    /// `ThreadTraces` or a [`SharedTraces`] handle — the latter lets
    /// many concurrent simulations read one generated trace set.
    ///
    /// # Panics
    ///
    /// Panics if more traces than cores are supplied, on deadlock, or
    /// when the `max_cycles` bound is exceeded.
    pub fn run(self, traces: impl Into<SharedTraces>) -> RunReport {
        let controller = build_controller(&self.cfg.policy);
        self.run_with(traces, controller)
    }

    /// Like [`Simulator::run`], but with a caller-supplied controller —
    /// the extension point for custom DRAM-cache policies (see the
    /// `custom_policy` example).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_with(
        self,
        traces: impl Into<SharedTraces>,
        mut controller: Box<dyn DramCacheController>,
    ) -> RunReport {
        let traces: SharedTraces = traces.into();
        let ncores = self.cfg.hierarchy.cores;
        assert!(
            traces.threads() <= ncores,
            "{} traces but only {ncores} cores",
            traces.threads()
        );
        let total_accesses: u64 = traces.total_accesses();
        let warmup_target = (self.cfg.warmup_fraction * total_accesses as f64) as u64;
        let mut cores: Vec<Core> = traces
            .into_iter()
            .chain(std::iter::repeat_with(|| Arc::from(Vec::new())))
            .take(ncores)
            .map(|t| Core::new(self.cfg.core, t))
            .collect();
        let mut hierarchy = Hierarchy::new(self.cfg.hierarchy);
        let mut shadow = ShadowMemory::new();

        let mut waiters = WaiterSlab::default();
        let mut next_req: u64 = 0;
        let mut next_version: u64 = 1;
        let mut mem_reads: u64 = 0;
        let mut mem_writebacks: u64 = 0;
        let mut finish: Vec<Option<Cycle>> = vec![None; ncores];
        let mut done_buf: Vec<CompletedReq> = Vec::new();
        let mut shadow_violations = 0u64;

        // Event-driven advance is exact (DESIGN.md §3.7); the runtime
        // escape hatch exists for A/B equivalence checks.
        let skip_enabled =
            self.cfg.time_skip && std::env::var_os("REDCACHE_NO_SKIP").is_none_or(|v| v != "1");
        // Epoch recorder: purely observational, exact in both advance
        // modes (DESIGN.md §3.9). `None` costs one untaken branch per
        // loop iteration.
        let mut recorder = self.cfg.epoch_cycles.map(EpochRecorder::new);

        let mut now: Cycle = 0;
        let mut blocked_idle_streak = 0u32;
        let mut committed: u64 = 0;
        let mut warmed = warmup_target == 0;
        let mut warmup_cycle: Cycle = 0;
        let mut warmup_instructions: u64 = 0;
        loop {
            // 1. Core side: each active core may commit one access.
            let mut all_finished = true;
            let mut min_wake: Option<Cycle> = None;
            let mut any_blocked = false;
            let mut any_ready = false;
            for (ci, core) in cores.iter_mut().enumerate() {
                if finish[ci].is_some() {
                    continue;
                }
                match core.poll(now) {
                    Poll::Finished(t) => {
                        finish[ci] = Some(t);
                        continue;
                    }
                    Poll::NotYet(t) => {
                        all_finished = false;
                        min_wake = Some(min_wake.map_or(t, |m: Cycle| m.min(t)));
                    }
                    Poll::WaitingMem => {
                        all_finished = false;
                        any_blocked = true;
                    }
                    Poll::Ready(access) => {
                        all_finished = false;
                        any_ready = true;
                        committed += 1;
                        let line = access.addr.line(BLOCK_BYTES);
                        let is_store = access.op.is_store();
                        let version = if is_store {
                            next_version += 1;
                            next_version
                        } else {
                            0
                        };
                        let wid = waiters.peek_id();
                        let out =
                            hierarchy.access(CoreId(ci as u16), line, access.op, version, wid);
                        submit_writebacks(
                            &out.writebacks,
                            &mut *controller,
                            &mut shadow,
                            &mut next_req,
                            &mut mem_writebacks,
                            now,
                        );
                        if out.hit_level.is_some() {
                            core.commit_hit(now, out.latency);
                        } else if out.must_retry() {
                            // MSHR full: retry next cycle.
                            any_blocked = true;
                        } else {
                            let info = if is_store {
                                core.commit_store_miss(now);
                                WaiterInfo {
                                    core: ci,
                                    load_token: None,
                                    store_version: Some(version),
                                }
                            } else {
                                let tok = core.commit_load_miss(now);
                                WaiterInfo {
                                    core: ci,
                                    load_token: Some(tok),
                                    store_version: None,
                                }
                            };
                            let assigned = waiters.insert(info);
                            debug_assert_eq!(assigned, wid);
                            if out.mem_read_needed() {
                                let id = ReqId(next_req);
                                next_req += 1;
                                shadow.on_read_submit(id.0, line);
                                controller.submit(
                                    MemRequest::read(id, line, CoreId(ci as u16), now),
                                    now,
                                );
                                mem_reads += 1;
                            }
                        }
                    }
                }
            }

            // 2. Memory side.
            controller.tick(now, &mut done_buf);
            // Completions wake cores whose earlier poll already answered
            // for this cycle — never skip past their re-poll.
            let delivered = !done_buf.is_empty();
            for d in done_buf.drain(..) {
                match d.kind {
                    AccessKind::Read => {
                        if self.cfg.check_shadow && !shadow.on_read_complete(d.id.0, d.data_version)
                        {
                            shadow_violations += 1;
                        }
                        let fr = hierarchy.complete_fill(d.line, d.data_version);
                        submit_writebacks(
                            &fr.writebacks,
                            &mut *controller,
                            &mut shadow,
                            &mut next_req,
                            &mut mem_writebacks,
                            now,
                        );
                        for wid in fr.waiters {
                            let Some(info) = waiters.remove(wid) else {
                                continue;
                            };
                            let wbs = hierarchy.fill_waiter(
                                CoreId(info.core as u16),
                                d.line,
                                d.data_version,
                                info.store_version,
                            );
                            submit_writebacks(
                                &wbs,
                                &mut *controller,
                                &mut shadow,
                                &mut next_req,
                                &mut mem_writebacks,
                                now,
                            );
                            if let Some(tok) = info.load_token {
                                cores[info.core].complete_load(tok, d.done_at.max(now));
                            }
                        }
                    }
                    AccessKind::Writeback => {}
                }
            }

            // 3. Warmup boundary: reset statistics once the configured
            // fraction of the trace has committed (§IV.A). Functional
            // and adaptive state carries over; only counters reset.
            if !warmed && committed >= warmup_target {
                warmed = true;
                warmup_cycle = now;
                warmup_instructions = cores.iter().map(|c| c.instructions_dispatched()).sum();
                controller.reset_stats();
                hierarchy.reset_stats();
                if let Some(rec) = recorder.as_mut() {
                    rec.note_warmup_reset();
                }
            }

            // 3b. Epoch close: after the memory side has ticked cycle
            // `now`, so the epoch ending here has seen all of it.
            if let Some(rec) = recorder.as_mut() {
                if now >= rec.next_boundary() {
                    rec.sample(now, &*controller, hierarchy.stats());
                }
            }

            // 4. Termination and time advance.
            if all_finished && controller.pending() == 0 {
                break;
            }
            // A core can look blocked in the same cycle its last
            // completion arrives; only a *persistent* blocked-with-idle-
            // memory state is a real deadlock.
            if any_blocked && controller.pending() == 0 && hierarchy.mshr_len() == 0 {
                blocked_idle_streak += 1;
                if blocked_idle_streak > 8 {
                    let states: Vec<String> = cores
                        .iter_mut()
                        .enumerate()
                        .map(|(i, c)| format!("core{i}: {:?}", c.poll(now)))
                        .collect();
                    panic!(
                        "deadlock at cycle {now}: cores blocked with idle memory\n{}",
                        states.join("\n")
                    );
                }
            } else {
                blocked_idle_streak = 0;
            }
            // Fast-forward across pure-compute stretches (active in both
            // modes; predates the event-driven advance below and jumps
            // even past DRAM-refresh edges when memory is fully idle).
            if controller.pending() == 0 && !any_blocked {
                if let Some(w) = min_wake {
                    if w > now + 1 {
                        now = w;
                        continue;
                    }
                }
            }
            // Event-driven advance: if no core committed this cycle, no
            // completion was delivered, and neither the cores nor the
            // memory system can act before `target`, every intermediate
            // cycle would have been a no-op — jump over it. Exactness
            // argument in DESIGN.md §3.7.
            if skip_enabled
                && !any_ready
                && !delivered
                // When a core wakes next cycle anyway the jump target
                // cannot exceed `now + 1`; skip the horizon computation.
                && min_wake.is_none_or(|w| w > now + 1)
            {
                // An epoch boundary is an event horizon too: the skip
                // lands on it exactly, where ticking "early" is a no-op
                // by the `next_event` contract — so recording changes
                // nothing downstream. The compute fast-forward above is
                // deliberately NOT clamped: it is shared by both advance
                // modes, and boundaries it jumps close late as
                // zero-delta epochs, identically in both (§3.9).
                let horizon = match recorder.as_ref() {
                    Some(rec) => rec.next_boundary(),
                    None => Cycle::MAX,
                };
                let target = controller
                    .next_event(now)
                    .min(min_wake.unwrap_or(Cycle::MAX))
                    .min(horizon);
                if target != Cycle::MAX && target > now + 1 {
                    now = target;
                    assert!(now < self.cfg.max_cycles, "exceeded max_cycles bound");
                    continue;
                }
            }
            now += 1;
            assert!(now < self.cfg.max_cycles, "exceeded max_cycles bound");
        }

        let end = finish.iter().map(|f| f.unwrap_or(now)).max().unwrap_or(now);
        let cycles = end.saturating_sub(warmup_cycle).max(1);
        let instructions: u64 = cores
            .iter()
            .map(|c| c.instructions_dispatched())
            .sum::<u64>()
            - warmup_instructions;
        let (l1, l2, l3) = hierarchy.stats();
        // Close the partial tail epoch at the loop-exit cycle (itself
        // identical in both advance modes).
        let timeseries = recorder.map(|rec| rec.finish(now, &*controller, (l1, l2, l3)));
        let ctl = controller.stats();
        let hbm = controller.hbm_stats();
        let ddr = controller.ddr_stats();
        let act = CpuActivity {
            instructions,
            cycles,
            cores: ncores,
            l1_accesses: l1.accesses,
            l2_accesses: l2.accesses,
            l3_accesses: l3.accesses,
        };
        let hbm_ranks = self.cfg.policy.hbm.topology.channels * self.cfg.policy.hbm.topology.ranks;
        let ddr_ranks = self.cfg.policy.ddr.topology.channels * self.cfg.policy.ddr.topology.ranks;
        let energy =
            self.energy_model
                .system_energy(&act, &ctl, hbm.as_ref(), hbm_ranks, &ddr, ddr_ranks);
        RunReport {
            policy: controller.kind(),
            workload: None,
            cycles,
            instructions,
            mem_reads,
            mem_writebacks,
            ctl,
            hbm,
            ddr,
            l1,
            l2,
            l3,
            energy,
            extras: controller
                .extras()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            shadow_violations,
            hbm_audit: controller.hbm_audit(),
            ddr_audit: controller.ddr_audit(),
            timeseries,
        }
    }
}

/// Convenience: runs `workload` under `cfg` with the given generator
/// configuration and labels the report.
pub fn run_workload(
    cfg: SimConfig,
    workload: redcache_workloads::Workload,
    gen: &redcache_workloads::GenConfig,
) -> RunReport {
    let traces = workload.generate(gen);
    let mut report = Simulator::new(cfg).run(traces);
    report.workload = Some(workload.info().label.to_string());
    report
}

// Referenced only to keep the doc link above honest.
#[allow(dead_code)]
fn _doc_anchor(_: &MemorySides, _: LineAddr) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use redcache_policies::PolicyKind;
    use redcache_workloads::{synthetic, GenConfig, ThreadTraces, Workload};

    fn tiny_traces() -> ThreadTraces {
        synthetic::generate(&synthetic::SyntheticSpec::mixed(), &GenConfig::tiny())
    }

    #[test]
    fn alloy_runs_clean_on_synthetic() {
        let r = Simulator::new(SimConfig::quick(PolicyKind::Alloy)).run(tiny_traces());
        assert!(r.cycles > 0);
        assert!(r.instructions > 0);
        assert_eq!(r.shadow_violations, 0);
        assert!(r.mem_reads > 0);
        assert!(r.hbm.is_some());
    }

    #[test]
    fn all_policies_run_clean_on_hist() {
        let traces = Workload::Hist.generate(&GenConfig::tiny());
        for kind in [
            PolicyKind::NoHbm,
            PolicyKind::Ideal,
            PolicyKind::Alloy,
            PolicyKind::Bear,
            PolicyKind::Red(crate::RedVariant::Full),
        ] {
            let r = Simulator::new(SimConfig::quick(kind)).run(traces.clone());
            assert_eq!(r.shadow_violations, 0, "{kind:?} served stale data");
            assert!(r.cycles > 0, "{kind:?}");
        }
    }

    #[test]
    fn ideal_is_fastest_nohbm_touches_no_wideio() {
        let traces = tiny_traces();
        let ideal = Simulator::new(SimConfig::quick(PolicyKind::Ideal)).run(traces.clone());
        let nohbm = Simulator::new(SimConfig::quick(PolicyKind::NoHbm)).run(traces.clone());
        let alloy = Simulator::new(SimConfig::quick(PolicyKind::Alloy)).run(traces);
        assert!(
            ideal.cycles <= nohbm.cycles,
            "IDEAL must not lose to No-HBM"
        );
        assert!(ideal.cycles <= alloy.cycles, "IDEAL must not lose to Alloy");
        assert_eq!(nohbm.hbm, None);
        assert_eq!(nohbm.transferred_bytes(), nohbm.ddr.bytes_total());
    }

    #[test]
    fn reports_are_deterministic() {
        let a = Simulator::new(SimConfig::quick(PolicyKind::Alloy)).run(tiny_traces());
        let b = Simulator::new(SimConfig::quick(PolicyKind::Alloy)).run(tiny_traces());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.mem_reads, b.mem_reads);
        assert_eq!(a.energy.total_j(), b.energy.total_j());
    }

    #[test]
    fn audit_timing_attaches_clean_auditors() {
        let mut cfg = SimConfig::quick(PolicyKind::Alloy);
        cfg.audit_timing = true;
        let r = Simulator::new(cfg).run(tiny_traces());
        let hbm = r.hbm_audit.as_ref().expect("HBM audit attached");
        let ddr = r.ddr_audit.as_ref().expect("DDR audit attached");
        assert!(hbm.cmds_audited > 0, "HBM auditor saw no commands");
        assert!(ddr.cmds_audited > 0, "DDR auditor saw no commands");
        assert!(
            hbm.clean(),
            "HBM violations: first {:?}",
            hbm.first_violation
        );
        assert!(
            ddr.clean(),
            "DDR violations: first {:?}",
            ddr.first_violation
        );

        // No-HBM only has a DDR side to audit.
        let mut cfg = SimConfig::quick(PolicyKind::NoHbm);
        cfg.audit_timing = true;
        let r = Simulator::new(cfg).run(tiny_traces());
        assert!(r.hbm_audit.is_none());
        assert!(r.ddr_audit.expect("DDR audit attached").clean());

        // Off by default: no audit payload in the report.
        let r = Simulator::new(SimConfig::quick(PolicyKind::Alloy)).run(tiny_traces());
        assert!(r.hbm_audit.is_none() && r.ddr_audit.is_none());
    }

    #[test]
    fn run_workload_labels_report() {
        let r = run_workload(
            SimConfig::quick(PolicyKind::Alloy),
            Workload::Lreg,
            &GenConfig::tiny(),
        );
        assert_eq!(r.workload.as_deref(), Some("LREG"));
    }
}
