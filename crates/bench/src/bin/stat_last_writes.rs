//! **§II.C statistic** — "more than 82 % of the last accesses to cache
//! blocks in HBM cache are writebacks from the CPU".
//!
//! Measured over the below-L3 request stream of each workload: among
//! blocks with enough accesses to plausibly live in the HBM cache, the
//! fraction whose final access is a writeback.

use redcache::profile::{last_access_writeback_fraction, MemLevelStream};
use redcache_bench::{experiment_gen_config, save_json};
use redcache_cache::HierarchyConfig;
use redcache_workloads::registry::paper_workloads;

fn main() {
    let gen = experiment_gen_config();
    let hier = HierarchyConfig::scaled(16);
    println!("\n== §II.C: fraction of HBM blocks whose last access is a writeback ==\n");
    let mut out = Vec::new();
    let mut weighted = (0.0f64, 0.0f64);
    // The paper subset: the weighted mean is quoted against §II.C.
    for w in paper_workloads() {
        let traces = w.generate(&gen);
        let stream = MemLevelStream::extract(&traces, hier);
        // Blocks with >= 2 accesses are the cacheable population.
        let f = last_access_writeback_fraction(&stream, 2);
        let n = stream.events.len() as f64;
        weighted.0 += f * n;
        weighted.1 += n;
        println!("{:>5}  {:>5.1}%", w.info().label, f * 100.0);
        out.push((w.info().label.to_string(), f));
    }
    let avg = weighted.0 / weighted.1.max(1.0);
    println!("\nweighted mean: {:.1}%", avg * 100.0);
    println!("paper:         >82% of last accesses to HBM blocks are writebacks");
    save_json("stat_last_writes", &out);
}
