//! Reference set-associative kernel with hard-wired true-LRU.
//!
//! This module preserves the original `SetAssocCache` — a global
//! `tick` incremented on **every** access and fill (hits and misses
//! alike), an `lru` stamp stored inline in each way, and victim
//! selection via `min_by_key` over the stamps — exactly as it behaved
//! before victim selection moved behind the `ReplacementPolicy` trait
//! (DESIGN.md §3.14). It exists for one purpose: **differential
//! testing**. The lockstep proptest in `tests/replacement_lockstep.rs`
//! drives random access/fill/invalidate streams through both kernels
//! and asserts identical hits, versions, evictions and statistics at
//! every step.
//!
//! The implementation is deliberately frozen; do not use it for
//! experiments. It is `#[doc(hidden)]` because it is a test oracle,
//! not part of the supported API surface.

#![doc(hidden)]

use crate::geometry::CacheGeometry;
use crate::set_assoc::{AccessResult, CacheStats, Evicted};
use redcache_types::LineAddr;

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    valid: bool,
    line: LineAddr,
    dirty: bool,
    version: u64,
    lru: u64,
}

/// The pre-trait cache kernel, verbatim.
#[derive(Debug, Clone)]
pub struct ReferenceCache {
    geometry: CacheGeometry,
    ways: Vec<Way>, // sets * ways, row-major by set
    tick: u64,
    stats: CacheStats,
}

impl ReferenceCache {
    /// Creates an empty cache of the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        Self {
            geometry,
            ways: vec![Way::default(); geometry.sets() * geometry.ways],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let s = self.geometry.set_of(line.raw());
        let w = self.geometry.ways;
        s * w..(s + 1) * w
    }

    /// Looks up `line`; on a hit, refreshes LRU, optionally marks dirty
    /// and overwrites the stored version (for stores).
    pub fn access(&mut self, line: LineAddr, write: Option<u64>) -> AccessResult {
        self.tick += 1;
        self.stats.accesses += 1;
        let range = self.set_range(line);
        for w in &mut self.ways[range] {
            if w.valid && w.line == line {
                w.lru = self.tick;
                if let Some(v) = write {
                    w.dirty = true;
                    w.version = v;
                }
                self.stats.hits += 1;
                return AccessResult {
                    hit: true,
                    version: w.version,
                };
            }
        }
        AccessResult {
            hit: false,
            version: 0,
        }
    }

    /// Checks presence without disturbing LRU or stats.
    pub fn probe(&self, line: LineAddr) -> Option<u64> {
        let range = self.set_range(line);
        self.ways[range.clone()]
            .iter()
            .find(|w| w.valid && w.line == line)
            .map(|w| w.version)
    }

    /// Inserts `line` (after a miss), evicting the LRU way if the set is
    /// full. `dirty` marks the fill as modified (writeback-allocate).
    pub fn fill(&mut self, line: LineAddr, version: u64, dirty: bool) -> Option<Evicted> {
        self.tick += 1;
        self.stats.fills += 1;
        let range = self.set_range(line);
        // Already present: update in place.
        if let Some(w) = self.ways[range.clone()]
            .iter_mut()
            .find(|w| w.valid && w.line == line)
        {
            w.lru = self.tick;
            w.version = version;
            w.dirty = w.dirty || dirty;
            return None;
        }
        // Free way?
        let tick = self.tick;
        if let Some(w) = self.ways[range.clone()].iter_mut().find(|w| !w.valid) {
            *w = Way {
                valid: true,
                line,
                dirty,
                version,
                lru: tick,
            };
            return None;
        }
        // Evict LRU.
        let victim_idx = {
            let base = range.start;
            let rel = self.ways[range]
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru)
                .map(|(i, _)| i)
                .expect("nonzero associativity");
            base + rel
        };
        let v = self.ways[victim_idx];
        self.ways[victim_idx] = Way {
            valid: true,
            line,
            dirty,
            version,
            lru: tick,
        };
        self.stats.evictions += 1;
        if v.dirty {
            self.stats.dirty_evictions += 1;
        }
        Some(Evicted {
            line: v.line,
            dirty: v.dirty,
            version: v.version,
        })
    }

    /// Removes `line` if present, returning its eviction record.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Evicted> {
        let range = self.set_range(line);
        for w in &mut self.ways[range] {
            if w.valid && w.line == line {
                w.valid = false;
                return Some(Evicted {
                    line: w.line,
                    dirty: w.dirty,
                    version: w.version,
                });
            }
        }
        None
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }
}
