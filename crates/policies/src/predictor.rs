//! Region-based memory-access (hit/miss) predictor.
//!
//! Alloy couples its serialized probe with MAP-I, an instruction-pointer
//! indexed hit/miss predictor; traces carry no program counters, so this
//! reproduction substitutes a 4 KB-region-indexed table of saturating
//! counters (DESIGN.md §1) providing the same function: on a confident
//! *miss* prediction the DDR access is started in parallel with the
//! probe instead of after it.

use redcache_types::{PageId, SatCounter};

/// A tagless table of 2-bit hit/miss counters indexed by page hash.
#[derive(Debug)]
pub struct RegionPredictor {
    table: Vec<SatCounter>,
    correct: u64,
    wrong: u64,
}

impl RegionPredictor {
    /// Creates a predictor with `entries` counters (rounded up to a
    /// power of two), initialised weakly toward "hit".
    pub fn new(entries: usize) -> Self {
        let n = entries.next_power_of_two().max(16);
        Self {
            table: vec![SatCounter::new(2, 3); n],
            correct: 0,
            wrong: 0,
        }
    }

    fn slot(&self, page: PageId) -> usize {
        let mut x = page.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 29;
        (x as usize) & (self.table.len() - 1)
    }

    /// Predicts whether an access to `page` will hit in the HBM cache.
    pub fn predict_hit(&self, page: PageId) -> bool {
        self.table[self.slot(page)].get() >= 2
    }

    /// Trains the predictor with the observed outcome.
    pub fn train(&mut self, page: PageId, hit: bool) {
        let predicted = self.predict_hit(page);
        if predicted == hit {
            self.correct += 1;
        } else {
            self.wrong += 1;
        }
        let s = self.slot(page);
        if hit {
            self.table[s].inc();
        } else {
            self.table[s].dec();
        }
    }

    /// Prediction accuracy so far (1.0 when untrained).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn accuracy(&self) -> f64 {
        let total = self.correct + self.wrong;
        if total == 0 {
            1.0
        } else {
            self.correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_predicting_hit() {
        let p = RegionPredictor::new(64);
        assert!(p.predict_hit(PageId::new(1)));
    }

    #[test]
    fn learns_miss_regions() {
        let mut p = RegionPredictor::new(64);
        let page = PageId::new(42);
        for _ in 0..3 {
            p.train(page, false);
        }
        assert!(!p.predict_hit(page));
        // And relearns hits.
        for _ in 0..3 {
            p.train(page, true);
        }
        assert!(p.predict_hit(page));
    }

    #[test]
    fn accuracy_tracks_outcomes() {
        let mut p = RegionPredictor::new(64);
        let page = PageId::new(7);
        p.train(page, true); // predicted hit, was hit: correct
        p.train(page, false); // predicted hit, was miss: wrong
        assert!((p.accuracy() - 0.5).abs() < 1e-12);
    }
}
