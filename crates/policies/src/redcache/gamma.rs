//! γ-counting (§III.A.2): the adaptive expected lifetime of HBM blocks.
//!
//! Every cached block carries an 8-bit r-count (zeroed on fill,
//! incremented on every hit). On each hit the controller compares the
//! block's r-count with γ and moves γ one step toward it — the paper's
//! "linearly ascending/descending" update that averages out abrupt
//! differences. A *write* hit whose r-count has reached γ is treated as
//! the block's last write: the block is invalidated and the write goes
//! straight to main memory (§II.C), with no extra DRAM-cache access.

use serde::{Deserialize, Serialize};

/// γ-counting configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GammaConfig {
    /// Starting lifetime.
    pub initial: u32,
    /// Lower bound (never invalidate on the very first touches).
    pub min: u32,
    /// Upper bound (the 8-bit counter ceiling).
    pub max: u32,
    /// Enable the per-hit linear adaptation.
    pub adapt: bool,
}

impl Default for GammaConfig {
    fn default() -> Self {
        Self {
            initial: 16,
            min: 4,
            max: 255,
            adapt: true,
        }
    }
}

/// The γ manager.
#[derive(Debug)]
pub struct GammaManager {
    cfg: GammaConfig,
    gamma: u32,
    moves: u64,
}

impl GammaManager {
    /// Creates a manager with lifetime `cfg.initial`.
    pub fn new(cfg: GammaConfig) -> Self {
        Self {
            cfg,
            gamma: cfg.initial.clamp(cfg.min, cfg.max),
            moves: 0,
        }
    }

    /// Current expected lifetime.
    pub fn gamma(&self) -> u32 {
        self.gamma
    }

    /// Number of γ adjustments made.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Feeds the r-count of a block that just hit; a block outliving the
    /// expected lifetime raises γ one step (the paper's linear ascent,
    /// Fig. 6).
    ///
    /// Deviation from a literal reading (documented in DESIGN.md §3.4):
    /// hits with `r < γ` do **not** lower γ. A young block hitting says
    /// nothing about where lifetimes *end*; descending on every such hit
    /// couples γ to the age of recently refilled blocks and collapses it
    /// to the floor (blocks get invalidated early → refill → small
    /// r-counts → γ stays small). γ descends on completed lifetimes
    /// instead ([`GammaManager::on_lifetime_end`]).
    pub fn on_hit(&mut self, r_count: u32) {
        if !self.cfg.adapt {
            return;
        }
        if r_count > self.gamma && self.gamma < self.cfg.max {
            self.gamma += 1;
            self.moves += 1;
        }
    }

    /// Feeds the final r-count of a block whose residency ended (victim
    /// eviction): a lifetime completing below γ lowers it one step (the
    /// linear descent).
    pub fn on_lifetime_end(&mut self, r_count: u32) {
        if !self.cfg.adapt {
            return;
        }
        if r_count < self.gamma && self.gamma > self.cfg.min {
            self.gamma -= 1;
            self.moves += 1;
        }
    }

    /// True when a block with this r-count is a candidate for
    /// invalidation on its next write (r-count ≥ γ, §III.A.2). A
    /// saturated 8-bit counter carries no lifetime information and never
    /// triggers invalidation.
    pub fn should_invalidate(&self, r_count: u32) -> bool {
        r_count >= self.gamma && r_count < 255
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_ascends_on_long_lived_hits() {
        let mut g = GammaManager::new(GammaConfig {
            initial: 16,
            ..Default::default()
        });
        for _ in 0..40 {
            g.on_hit(30);
        }
        assert_eq!(g.gamma(), 30, "γ must climb to the observed lifetime");
        // Hits below γ do not pull it down…
        for _ in 0..40 {
            g.on_hit(8);
        }
        assert_eq!(g.gamma(), 30);
        // …but completed lifetimes below γ do.
        for _ in 0..40 {
            g.on_lifetime_end(8);
        }
        assert_eq!(g.gamma(), 8);
    }

    #[test]
    fn gamma_respects_bounds() {
        let mut g = GammaManager::new(GammaConfig {
            initial: 3,
            min: 2,
            max: 10,
            adapt: true,
        });
        for _ in 0..100 {
            g.on_lifetime_end(0);
        }
        assert_eq!(g.gamma(), 2);
        for _ in 0..100 {
            g.on_hit(200);
        }
        assert_eq!(g.gamma(), 10);
    }

    #[test]
    fn invalidation_threshold() {
        let g = GammaManager::new(GammaConfig {
            initial: 5,
            adapt: false,
            ..Default::default()
        });
        assert!(!g.should_invalidate(4));
        assert!(g.should_invalidate(5));
        assert!(g.should_invalidate(6));
        assert!(
            !g.should_invalidate(255),
            "saturated counters carry no information"
        );
    }

    #[test]
    fn adaptation_can_be_disabled() {
        let mut g = GammaManager::new(GammaConfig {
            initial: 7,
            adapt: false,
            ..Default::default()
        });
        for _ in 0..10 {
            g.on_hit(100);
        }
        assert_eq!(g.gamma(), 7);
        assert_eq!(g.moves(), 0);
    }
}
