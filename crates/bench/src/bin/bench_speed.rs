//! Wall-clock speed benchmark for the event-driven time advance and the
//! indexed FR-FCFS scheduler kernel.
//!
//! Runs the quick-config evaluation matrix (all 11 workloads under the
//! 7 figure architectures) twice — once with event-driven time advance
//! (the default) and once cycle-by-cycle (`time_skip = false`, the
//! behaviour of `REDCACHE_NO_SKIP=1`) — and reports wall-clock,
//! simulations/second and simulated cycles/second per policy, plus the
//! overall speedup. As a side effect it asserts that both walks produce
//! bit-identical reports, so every benchmark run is also an
//! equivalence check.
//!
//! Each workload's traces are generated **once** and shared (via
//! [`SharedTraces`]) across every policy, mode, and repeat — generation
//! time is reported separately and never pollutes the simulation
//! timings.
//!
//! Scheduler-kernel metrics ride along: command-clock slots processed,
//! and the mean scheduler-window occupancy per slot (both summed over
//! the HBM and DDR systems), so kernel-level regressions show up next
//! to the end-to-end numbers.
//!
//! Results are written to `BENCH_speed.json` at the repository root.
//! The JSON is emitted by hand (no serde), keeping this binary
//! dependency-free beyond the simulator itself.
//!
//! `REDCACHE_BUDGET` overrides the per-thread access budget (default:
//! the tiny preset's 3 000) for longer, steadier measurements.

use redcache::{PolicyKind, RedVariant, RunReport, SimConfig, Simulator};
use redcache_workloads::{GenConfig, SharedTraces, Workload};
use std::fmt::Write as _;
use std::time::Instant;

/// The seven figure architectures, in the paper's legend order.
fn policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Alloy,
        PolicyKind::Bear,
        PolicyKind::Red(RedVariant::Alpha),
        PolicyKind::Red(RedVariant::Gamma),
        PolicyKind::Red(RedVariant::Basic),
        PolicyKind::Red(RedVariant::InSitu),
        PolicyKind::Red(RedVariant::Full),
    ]
}

struct PolicyRow {
    policy: String,
    sims: usize,
    /// Simulated cycles summed over the policy's runs (identical in
    /// both modes — asserted).
    cycles: u64,
    /// Command-clock slots the DRAM schedulers processed (HBM + DDR).
    slots: u64,
    /// Scheduler-window occupancy summed over those slots.
    occupancy_sum: u64,
    event_s: f64,
    cycle_s: f64,
}

/// Slots processed and window-occupancy sum across both DRAM systems.
fn kernel_counters(r: &RunReport) -> (u64, u64) {
    let hbm = r.hbm.as_ref();
    (
        r.ddr.slot_samples + hbm.map_or(0, |h| h.slot_samples),
        r.ddr.window_occupancy_sum + hbm.map_or(0, |h| h.window_occupancy_sum),
    )
}

/// Runs one (policy, workload) pair in one mode and returns the report
/// plus the *minimum* wall-clock over `REPEATS` runs. Min-of-N is the
/// standard defence against scheduler noise; both modes get the same
/// treatment, so the ratio is unbiased. The traces are shared — each
/// repeat costs `threads` atomic increments, not a regeneration.
fn run_timed(kind: PolicyKind, w: Workload, traces: &SharedTraces, skip: bool) -> (RunReport, f64) {
    const REPEATS: usize = 2;
    let mut best: Option<(RunReport, f64)> = None;
    for _ in 0..REPEATS {
        let mut cfg = SimConfig::quick(kind);
        cfg.time_skip = skip;
        let traces = traces.clone();
        let started = Instant::now();
        let report = Simulator::new(cfg).run(traces);
        let t = started.elapsed().as_secs_f64();
        match &best {
            Some((prev, pt)) => {
                assert_eq!(prev, &report, "{kind} on {w}: repeat run diverged");
                if t < *pt {
                    best = Some((report, t));
                }
            }
            None => best = Some((report, t)),
        }
    }
    best.expect("REPEATS >= 1")
}

fn main() {
    let mut gen = GenConfig::tiny();
    if let Ok(v) = std::env::var("REDCACHE_BUDGET") {
        if let Ok(b) = v.parse() {
            gen.budget_per_thread = b;
        }
    }
    if std::env::var_os("REDCACHE_NO_SKIP").is_some() {
        eprintln!(
            "warning: REDCACHE_NO_SKIP is set; unset it — bench_speed controls both modes itself"
        );
    }

    let workloads = Workload::ALL;
    let gen_started = Instant::now();
    let traces: Vec<SharedTraces> = workloads
        .iter()
        .map(|w| SharedTraces::from(w.generate(&gen)))
        .collect();
    let gen_s = gen_started.elapsed().as_secs_f64();
    eprintln!(
        "generated {} workload trace sets once in {gen_s:.3}s (shared across {} policies x 2 modes)",
        workloads.len(),
        policies().len()
    );

    let mut rows: Vec<PolicyRow> = Vec::new();
    let mut total_event = 0.0f64;
    let mut total_cycle = 0.0f64;
    for &kind in &policies() {
        let mut row = PolicyRow {
            policy: kind.to_string(),
            sims: 0,
            cycles: 0,
            slots: 0,
            occupancy_sum: 0,
            event_s: 0.0,
            cycle_s: 0.0,
        };
        for (&w, tr) in workloads.iter().zip(&traces) {
            let (fast, t_fast) = run_timed(kind, w, tr, true);
            let (slow, t_slow) = run_timed(kind, w, tr, false);
            assert_eq!(
                fast, slow,
                "{kind} on {w}: event-driven report diverged from cycle-accurate walk"
            );
            let (slots, occ) = kernel_counters(&fast);
            row.sims += 1;
            row.cycles += fast.cycles;
            row.slots += slots;
            row.occupancy_sum += occ;
            row.event_s += t_fast;
            row.cycle_s += t_slow;
        }
        eprintln!(
            "{:<12} {:>8.3}s event-driven  {:>8.3}s cycle-accurate  ({:.2}x)  occ {:.2}",
            row.policy,
            row.event_s,
            row.cycle_s,
            row.cycle_s / row.event_s.max(1e-12),
            row.occupancy_sum as f64 / row.slots.max(1) as f64,
        );
        total_event += row.event_s;
        total_cycle += row.cycle_s;
        rows.push(row);
    }

    let sims: usize = rows.iter().map(|r| r.sims).sum();
    let total_slots: u64 = rows.iter().map(|r| r.slots).sum();
    let total_occ: u64 = rows.iter().map(|r| r.occupancy_sum).sum();
    let speedup = total_cycle / total_event.max(1e-12);
    eprintln!(
        "\ntotal: {sims} sims  {total_event:.3}s event-driven vs {total_cycle:.3}s cycle-accurate  => {speedup:.2}x"
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"config\": \"quick\",");
    let _ = writeln!(json, "  \"budget_per_thread\": {},", gen.budget_per_thread);
    let _ = writeln!(json, "  \"workloads\": {},", workloads.len());
    let _ = writeln!(json, "  \"policies\": {},", rows.len());
    let _ = writeln!(json, "  \"trace_generation_s\": {gen_s:.6},");
    let _ = writeln!(json, "  \"total\": {{");
    let _ = writeln!(json, "    \"sims\": {sims},");
    let _ = writeln!(json, "    \"event_driven_s\": {total_event:.6},");
    let _ = writeln!(json, "    \"cycle_accurate_s\": {total_cycle:.6},");
    let _ = writeln!(json, "    \"speedup\": {speedup:.4},");
    let _ = writeln!(json, "    \"scheduler_slots\": {total_slots},");
    let _ = writeln!(
        json,
        "    \"mean_window_occupancy\": {:.4},",
        total_occ as f64 / total_slots.max(1) as f64
    );
    let _ = writeln!(
        json,
        "    \"sims_per_s_event_driven\": {:.4},",
        sims as f64 / total_event.max(1e-12)
    );
    let _ = writeln!(
        json,
        "    \"sims_per_s_cycle_accurate\": {:.4}",
        sims as f64 / total_cycle.max(1e-12)
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"per_policy\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"policy\": \"{}\", \"sims\": {}, \"simulated_cycles\": {}, \
             \"scheduler_slots\": {}, \"mean_window_occupancy\": {:.4}, \
             \"event_driven_s\": {:.6}, \"cycle_accurate_s\": {:.6}, \"speedup\": {:.4}, \
             \"cycles_per_s_event_driven\": {:.1}, \"cycles_per_s_cycle_accurate\": {:.1}}}{comma}",
            r.policy,
            r.sims,
            r.cycles,
            r.slots,
            r.occupancy_sum as f64 / r.slots.max(1) as f64,
            r.event_s,
            r.cycle_s,
            r.cycle_s / r.event_s.max(1e-12),
            r.cycles as f64 / r.event_s.max(1e-12),
            r.cycles as f64 / r.cycle_s.max(1e-12),
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    let path = "BENCH_speed.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("(saved {path})"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
