//! The workload registry: one table from which every dispatch site
//! derives (DESIGN.md §3.15), mirroring the policy registry of
//! `redcache-policies`.
//!
//! CLI parsing (`Workload::from_str`), the suite listing printed by
//! `redcache-sim --help`, figure-matrix membership, trace generation
//! dispatch, and the serve daemon's request validation all read this
//! table — a new scenario added here lands everywhere at once, exactly
//! like a new policy added to the policy registry.

use crate::common::{GenConfig, ThreadTraces};
use crate::suite::{Workload, WorkloadInfo};

/// One row of the registry.
pub struct WorkloadEntry {
    /// The enum variant this row describes.
    pub workload: Workload,
    /// Table II-style description (label, name, suite, input).
    pub info: WorkloadInfo,
    /// Accepted spellings besides the label (all case-insensitive).
    pub aliases: &'static [&'static str],
    /// True for the paper's Table II applications; false for the
    /// server-class scenarios that extend the evaluation.
    pub paper: bool,
    /// Membership in the figure matrix (`eval_matrix` rows).
    pub figure_column: bool,
    /// One-line description for listings.
    pub summary: &'static str,
    /// The trace generator behind [`Workload::generate`].
    pub generate: fn(&GenConfig) -> ThreadTraces,
}

/// The registry, in figure order: the eleven Table II applications,
/// then the server-class scenarios.
pub static REGISTRY: [WorkloadEntry; 14] = [
    WorkloadEntry {
        workload: Workload::Ft,
        info: Workload::Ft.info(),
        aliases: &[],
        paper: true,
        figure_column: true,
        summary: "NAS Fourier Transform, class-A-shaped",
        generate: crate::ft::generate,
    },
    WorkloadEntry {
        workload: Workload::Is,
        info: Workload::Is.info(),
        aliases: &[],
        paper: true,
        figure_column: true,
        summary: "NAS Integer Sort, class-A-shaped",
        generate: crate::is::generate,
    },
    WorkloadEntry {
        workload: Workload::Mg,
        info: Workload::Mg.info(),
        aliases: &[],
        paper: true,
        figure_column: true,
        summary: "NAS Multi-Grid, class-A-shaped",
        generate: crate::mg::generate,
    },
    WorkloadEntry {
        workload: Workload::Ch,
        info: Workload::Ch.info(),
        aliases: &["cholesky"],
        paper: true,
        figure_column: true,
        summary: "SPLASH-2 Cholesky factorisation",
        generate: crate::cholesky::generate,
    },
    WorkloadEntry {
        workload: Workload::Rdx,
        info: Workload::Rdx.info(),
        aliases: &["radix"],
        paper: true,
        figure_column: true,
        summary: "SPLASH-2 Radix sort",
        generate: crate::radix::generate,
    },
    WorkloadEntry {
        workload: Workload::Ocn,
        info: Workload::Ocn.info(),
        aliases: &["ocean"],
        paper: true,
        figure_column: true,
        summary: "SPLASH-2 Ocean simulation",
        generate: crate::ocean::generate,
    },
    WorkloadEntry {
        workload: Workload::Fft,
        info: Workload::Fft.info(),
        aliases: &[],
        paper: true,
        figure_column: true,
        summary: "SPLASH-2 FFT",
        generate: crate::fft::generate,
    },
    WorkloadEntry {
        workload: Workload::Lu,
        info: Workload::Lu.info(),
        aliases: &[],
        paper: true,
        figure_column: true,
        summary: "SPLASH-2 LU decomposition",
        generate: crate::lu::generate,
    },
    WorkloadEntry {
        workload: Workload::Brn,
        info: Workload::Brn.info(),
        aliases: &["barnes"],
        paper: true,
        figure_column: true,
        summary: "SPLASH-2 Barnes-Hut n-body",
        generate: crate::barnes::generate,
    },
    WorkloadEntry {
        workload: Workload::Hist,
        info: Workload::Hist.info(),
        aliases: &["histogram"],
        paper: true,
        figure_column: true,
        summary: "Phoenix histogram over a streamed bitmap",
        generate: crate::hist::generate,
    },
    WorkloadEntry {
        workload: Workload::Lreg,
        info: Workload::Lreg.info(),
        aliases: &["linear_regression"],
        paper: true,
        figure_column: true,
        summary: "Phoenix linear regression over a streamed key file",
        generate: crate::lreg::generate,
    },
    WorkloadEntry {
        workload: Workload::Kvz,
        info: Workload::Kvz.info(),
        aliases: &["kv", "zipf", "kv_zipf"],
        paper: false,
        figure_column: false,
        summary: "Zipfian key-value serving (θ=0.99, 5% writes)",
        generate: crate::kvzipf::generate,
    },
    WorkloadEntry {
        workload: Workload::Grph,
        info: Workload::Grph.info(),
        aliases: &["graph"],
        paper: false,
        figure_column: false,
        summary: "pointer-chasing walks over a power-law CSR graph",
        generate: crate::graph::generate,
    },
    WorkloadEntry {
        workload: Workload::Mli,
        info: Workload::Mli.info(),
        aliases: &["ml", "mlinf"],
        paper: false,
        figure_column: false,
        summary: "ML inference: layer-streamed weights, hot activations",
        generate: crate::mlinf::generate,
    },
];

/// All registry rows, in figure order.
pub fn entries() -> &'static [WorkloadEntry] {
    &REGISTRY
}

/// The registry row for `w`.
///
/// # Panics
///
/// Panics if `w` has no row — the registry tests pin that every
/// variant has exactly one.
pub fn entry(w: Workload) -> &'static WorkloadEntry {
    REGISTRY
        .iter()
        .find(|e| e.workload == w)
        .unwrap_or_else(|| panic!("workload {w:?} missing from registry"))
}

/// Case-insensitive lookup by figure label or alias — the single
/// parsing authority behind `Workload::from_str`.
pub fn lookup(name: &str) -> Option<&'static WorkloadEntry> {
    REGISTRY.iter().find(|e| {
        e.info.label.eq_ignore_ascii_case(name)
            || e.aliases.iter().any(|a| a.eq_ignore_ascii_case(name))
    })
}

/// Every accepted primary label, in registry order (for usage strings).
pub fn known_labels() -> Vec<&'static str> {
    REGISTRY.iter().map(|e| e.info.label).collect()
}

/// The figure-matrix workload rows, in figure order.
pub fn figure_workloads() -> Vec<Workload> {
    REGISTRY
        .iter()
        .filter(|e| e.figure_column)
        .map(|e| e.workload)
        .collect()
}

/// The paper's Table II applications only (paper-faithful reports).
pub fn paper_workloads() -> Vec<Workload> {
    REGISTRY
        .iter()
        .filter(|e| e.paper)
        .map(|e| e.workload)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_has_exactly_one_entry() {
        for w in Workload::ALL {
            assert_eq!(
                REGISTRY.iter().filter(|e| e.workload == w).count(),
                1,
                "{w:?}"
            );
        }
        assert_eq!(REGISTRY.len(), Workload::ALL.len());
        // Registry order is the figure order.
        let order: Vec<Workload> = REGISTRY.iter().map(|e| e.workload).collect();
        assert_eq!(order, Workload::ALL.to_vec());
    }

    #[test]
    fn lookup_is_case_insensitive_and_knows_aliases() {
        assert_eq!(lookup("kvz").unwrap().workload, Workload::Kvz);
        assert_eq!(lookup("ZIPF").unwrap().workload, Workload::Kvz);
        assert_eq!(lookup("Graph").unwrap().workload, Workload::Grph);
        assert_eq!(lookup("ml").unwrap().workload, Workload::Mli);
        assert_eq!(lookup("hist").unwrap().workload, Workload::Hist);
        assert!(lookup("quicksort").is_none());
    }

    #[test]
    fn paper_set_is_the_eleven_table_ii_rows() {
        assert_eq!(paper_workloads().len(), 11);
        assert!(!paper_workloads().contains(&Workload::Kvz));
        // The figure matrix stays the paper's rows, so figure means
        // remain comparable to the paper's; the server-class scenarios
        // are evaluated in their own EXPERIMENTS.md section instead.
        assert_eq!(figure_workloads(), paper_workloads());
    }

    #[test]
    fn generators_match_suite_dispatch() {
        let cfg = GenConfig::tiny();
        for e in entries().iter().take(3) {
            assert_eq!((e.generate)(&cfg), e.workload.generate(&cfg));
        }
        for e in entries().iter().rev().take(3) {
            assert_eq!((e.generate)(&cfg), e.workload.generate(&cfg));
        }
    }
}
