//! SPLASH-2 **RDX** — parallel radix sort.
//!
//! Each digit pass streams the source array to build per-thread
//! histograms (small, hot), then scatters elements into the destination
//! array at rank positions. Source and destination swap between passes.
//! Most of the footprint is touched with very low reuse — the profile
//! Fig. 3 shows for RDX — making RDX a prime beneficiary of α-bypass.

use crate::common::{elem, GenConfig, Layout, ThreadTraces, TraceBuilder};
use rand::Rng;

const RADIX: u64 = 1024;

pub(crate) fn generate(cfg: &GenConfig) -> ThreadTraces {
    let n = cfg.count(768 << 10) as u64;
    let mut layout = Layout::new();
    let src = layout.alloc(n * 4);
    let dst = layout.alloc(n * 4);
    let hists = layout.alloc(cfg.threads as u64 * RADIX * 4);
    let mut b = TraceBuilder::new(cfg);
    let threads = cfg.threads as u64;
    let chunk = n / threads;
    let seed: u64 = cfg.rng(0x0A01).gen();
    let digit = |pass: u64, i: u64| -> u64 {
        let mut x =
            seed ^ i.wrapping_mul(0xD6E8_FEB8_6659_FD93) ^ pass.wrapping_mul(0xA24B_AED4_963E_E407);
        x ^= x >> 31;
        x = x.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        x % RADIX
    };

    let (mut from, mut to) = (src, dst);
    for pass in 0..2u64 {
        // Histogram phase: stream + hot per-thread counters.
        for t in 0..threads {
            let (lo, hi) = (t * chunk, ((t + 1) * chunk).min(n));
            let hbase = elem(hists, t * RADIX, 4);
            for i in lo..hi {
                let tt = t as usize;
                let d = digit(pass, i);
                b.load(tt, elem(from, i, 4), 2);
                b.load(tt, elem(hbase, d, 4), 1);
                b.store(tt, elem(hbase, d, 4), 1);
                if !b.has_budget(tt) {
                    break;
                }
            }
        }
        // Permute phase: stream source, scatter into destination.
        for t in 0..threads {
            let (lo, hi) = (t * chunk, ((t + 1) * chunk).min(n));
            let hbase = elem(hists, t * RADIX, 4);
            for i in lo..hi {
                let tt = t as usize;
                let d = digit(pass, i);
                b.load(tt, elem(from, i, 4), 2);
                b.load(tt, elem(hbase, d, 4), 1);
                let pos = (d * n / RADIX + i % (n / RADIX).max(1)).min(n - 1);
                b.store(tt, elem(to, pos, 4), 1);
                if !b.has_budget(tt) {
                    break;
                }
            }
        }
        std::mem::swap(&mut from, &mut to);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_cpu::TraceStats;

    #[test]
    fn deterministic() {
        let cfg = GenConfig::tiny();
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn mostly_low_reuse_footprint() {
        let cfg = GenConfig::tiny();
        let flat: Vec<_> = generate(&cfg).into_iter().flatten().collect();
        let s = TraceStats::from_trace(&flat);
        let reuse = s.accesses as f64 / s.footprint_lines as f64;
        // Streams dominate; hot histograms lift reuse only mildly.
        assert!(
            reuse < 64.0,
            "radix should stay stream-dominated, reuse {reuse}"
        );
        assert!(s.store_fraction() > 0.2 && s.store_fraction() < 0.5);
    }
}
