//! Criterion macro-benchmark: full-system simulation throughput (cores,
//! hierarchy, controller, both DRAMs) on a small synthetic workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redcache::{PolicyKind, RedVariant, SimConfig, Simulator};
use redcache_workloads::{synthetic, GenConfig};
use std::time::Duration;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    let mut gen = GenConfig::tiny();
    gen.budget_per_thread = 8_000;
    let traces = synthetic::generate(&synthetic::SyntheticSpec::mixed(), &gen);
    for kind in [
        PolicyKind::Alloy,
        PolicyKind::Bear,
        PolicyKind::Red(RedVariant::Full),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.to_string()),
            &kind,
            |b, &k| {
                b.iter(|| {
                    let r = Simulator::new(SimConfig::quick(k)).run(traces.clone());
                    assert_eq!(r.shadow_violations, 0);
                    r.cycles
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
