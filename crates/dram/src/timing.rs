//! DRAM timing parameters (Table I), expressed in CPU cycles at 3.2 GHz.

use redcache_types::Cycle;
use serde::{Deserialize, Serialize};

/// The Table I timing constraint set. All values are CPU cycles.
///
/// `cmd_clock_divisor` is the ratio between the CPU clock and the DRAM
/// command clock: Table I uses 1600 MHz DRAM under a 3.2 GHz CPU, so
/// commands may issue only on every second CPU cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingParams {
    /// ACT to internal read/write delay (row to column).
    pub t_rcd: Cycle,
    /// Read command to first data beat (CAS latency).
    pub t_cas: Cycle,
    /// Column command to column command (same rank).
    pub t_ccd: Cycle,
    /// End of write data to a subsequent read command (same rank).
    pub t_wtr: Cycle,
    /// Write recovery: end of write data to precharge.
    pub t_wr: Cycle,
    /// Read to precharge.
    pub t_rtp: Cycle,
    /// Data burst duration on the bus (one block transfer).
    pub t_bl: Cycle,
    /// Write command to first data beat (CWD / write latency).
    pub t_cwd: Cycle,
    /// Precharge to activate.
    pub t_rp: Cycle,
    /// Activate to activate, different banks in the same rank.
    pub t_rrd: Cycle,
    /// Activate to precharge (minimum row open time).
    pub t_ras: Cycle,
    /// Activate to activate, same bank.
    pub t_rc: Cycle,
    /// Four-activate window per rank.
    pub t_faw: Cycle,
    /// Average refresh interval per rank (7.8 µs at 3.2 GHz).
    pub t_refi: Cycle,
    /// Refresh cycle time (rank blocked).
    pub t_rfc: Cycle,
    /// CPU cycles per DRAM command slot (2 for 1600 MHz under 3.2 GHz).
    pub cmd_clock_divisor: Cycle,
}

impl TimingParams {
    /// WideIO / HBM DRAM-cache timing from Table I.
    ///
    /// Note the short `t_ccd` (16): the 128-bit channel streams a full
    /// 64 B tag-and-data block back-to-back, which is the property the
    /// RCU piggyback drain exploits (§III.C).
    pub const fn wideio_table1() -> Self {
        Self {
            t_rcd: 44,
            t_cas: 44,
            t_ccd: 16,
            t_wtr: 31,
            t_wr: 4,
            t_rtp: 46,
            t_bl: 10,
            t_cwd: 61,
            t_rp: 44,
            t_rrd: 16,
            t_ras: 112,
            t_rc: 271,
            t_faw: 181,
            t_refi: 24_960, // 7.8 us at 3.2 GHz
            t_rfc: 1_120,   // 350 ns at 3.2 GHz
            cmd_clock_divisor: 2,
        }
    }

    /// Off-chip DDR4 timing from Table I (64-bit channels, long tCCD).
    pub const fn ddr4_table1() -> Self {
        Self {
            t_rcd: 44,
            t_cas: 44,
            t_ccd: 61,
            t_wtr: 31,
            t_wr: 4,
            t_rtp: 46,
            t_bl: 10,
            t_cwd: 44,
            t_rp: 44,
            t_rrd: 16,
            t_ras: 112,
            t_rc: 271,
            t_faw: 181,
            t_refi: 24_960,
            t_rfc: 1_120,
            cmd_clock_divisor: 2,
        }
    }

    /// Cost factor by which the RCU manager reduces the latency of a
    /// piggybacked r-count update relative to an isolated one (§III.C):
    /// `(tBurst + tCWD + tWTR) / tCCD`.
    pub fn rcu_latency_reduction(&self) -> f64 {
        (self.t_bl + self.t_cwd + self.t_wtr) as f64 / self.t_ccd as f64
    }

    /// Validates internal consistency of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated sanity condition
    /// (e.g. `t_rc < t_ras + t_rp`, or a zero clock divisor).
    pub fn validate(&self) -> Result<(), String> {
        if self.cmd_clock_divisor == 0 {
            return Err("cmd_clock_divisor must be nonzero".into());
        }
        if self.t_rc < self.t_ras + self.t_rp {
            return Err(format!(
                "t_rc ({}) must cover t_ras + t_rp ({})",
                self.t_rc,
                self.t_ras + self.t_rp
            ));
        }
        if self.t_faw < self.t_rrd {
            return Err("t_faw must be at least t_rrd".into());
        }
        if self.t_bl == 0 {
            return Err("t_bl must be nonzero".into());
        }
        if self.t_refi <= self.t_rfc {
            return Err("t_refi must exceed t_rfc".into());
        }
        Ok(())
    }
}

redcache_types::wire_struct!(TimingParams {
    t_rcd,
    t_cas,
    t_ccd,
    t_wtr,
    t_wr,
    t_rtp,
    t_bl,
    t_cwd,
    t_rp,
    t_rrd,
    t_ras,
    t_rc,
    t_faw,
    t_refi,
    t_rfc,
    cmd_clock_divisor,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_presets_are_valid() {
        TimingParams::wideio_table1().validate().unwrap();
        TimingParams::ddr4_table1().validate().unwrap();
    }

    #[test]
    fn rcu_reduction_matches_paper_factor() {
        // §III.C: tCCD / (tBurst + tCWD + tWTR) = 6.375 for the WideIO
        // parameters: (10 + 61 + 31) / 16 = 6.375.
        let f = TimingParams::wideio_table1().rcu_latency_reduction();
        assert!((f - 6.375).abs() < 1e-9, "got {f}");
    }

    #[test]
    fn ddr4_has_longer_ccd_than_wideio() {
        assert!(TimingParams::ddr4_table1().t_ccd > TimingParams::wideio_table1().t_ccd);
    }

    #[test]
    fn validate_rejects_inconsistent_rc() {
        let mut t = TimingParams::ddr4_table1();
        t.t_rc = 10;
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_divisor() {
        let mut t = TimingParams::ddr4_table1();
        t.cmd_clock_divisor = 0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_refresh_inversion() {
        let mut t = TimingParams::ddr4_table1();
        t.t_refi = t.t_rfc;
        assert!(t.validate().is_err());
    }
}
