//! State checkpointing: the `Snapshot` / `Restorable` trait family.
//!
//! Warm-fork checkpointing (DESIGN.md §3.13) needs every stateful
//! component of the simulator — DRAM channels, the SRAM hierarchy,
//! cores, the shadow checker, the epoch recorder — to be capturable at
//! a quiescent point and re-installable into a freshly built instance.
//! The contract is deliberately split in two:
//!
//! * [`Snapshot`] captures an owned, immutable, thread-shareable state
//!   value (`Arc`-clone it to fork one warm phase into many runs);
//! * [`Restorable`] installs a captured state into a component that was
//!   **built from the same configuration** as the snapshotted one.
//!
//! Restore does not transfer configuration: topology, timing parameters
//! and capacities are rebuilt from the config by the component's
//! constructor, and only mutable runtime state moves. Callers guard the
//! "same configuration" precondition with a config fingerprint (the
//! simulator's `warm_key`), not at this trait's level.

/// A component whose complete mutable state can be captured.
pub trait Snapshot {
    /// The captured state: owned, cheap to clone relative to re-running
    /// the history that produced it, and shareable across threads so
    /// one snapshot can seed many concurrent simulations.
    type State: Clone + Send + Sync + 'static;

    /// Captures the component's current mutable state.
    fn snapshot(&self) -> Self::State;
}

/// A [`Snapshot`] component that can also be restored.
///
/// `restore` must leave `self` observably identical to the component
/// the state was captured from: continuing both side by side from the
/// capture point must produce bit-identical behaviour. `self` must
/// have been built from the same configuration as the snapshotted
/// instance; restoring across configurations is a logic error (callers
/// enforce it with a config fingerprint).
pub trait Restorable: Snapshot {
    /// Installs `state` into `self`, overwriting all mutable state.
    fn restore(&mut self, state: &Self::State);
}
