//! Phoenix **HIST** — histogram of a 100 MB-shaped bitmap file.
//!
//! Threads stream disjoint chunks of the input and increment their
//! private 768-entry RGB histograms (which live comfortably in L1), then
//! thread 0 merges. The DRAM-visible traffic is almost purely the
//! zero-reuse input stream — the strongly L-type profile of Fig. 3's
//! HIST panel, where caching the stream is pure bandwidth waste.

use crate::common::{elem, GenConfig, Layout, ThreadTraces, TraceBuilder};
use rand::Rng;

const BUCKETS: u64 = 768; // 256 per RGB channel

pub(crate) fn generate(cfg: &GenConfig) -> ThreadTraces {
    let words = cfg.count(2 << 20) as u64; // 8-byte words of pixel data
    let mut layout = Layout::new();
    let input = layout.alloc(words * 8);
    let hists = layout.alloc(cfg.threads as u64 * BUCKETS * 4);
    let mut b = TraceBuilder::new(cfg);
    let threads = cfg.threads as u64;
    let chunk = words / threads;
    let seed: u64 = cfg.rng(0x417).gen();

    for t in 0..threads {
        let (lo, hi) = (t * chunk, ((t + 1) * chunk).min(words));
        let hbase = elem(hists, t * BUCKETS, 4);
        for i in lo..hi {
            let tt = t as usize;
            b.load(tt, elem(input, i, 8), 2);
            // Each word carries several pixels; one bucket update per
            // word keeps instruction mix realistic.
            let mut x = seed ^ i.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            x ^= x >> 33;
            let bucket = x % BUCKETS;
            b.load(tt, elem(hbase, bucket, 4), 1);
            b.store(tt, elem(hbase, bucket, 4), 1);
            if !b.has_budget(tt) {
                break;
            }
        }
    }
    // Merge phase on thread 0.
    for t in 0..threads {
        let hbase = elem(hists, t * BUCKETS, 4);
        for k in 0..BUCKETS {
            b.load(0, elem(hbase, k, 4), 1);
            b.store(0, elem(hists, k, 4), 1);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_cpu::TraceStats;

    #[test]
    fn deterministic() {
        let cfg = GenConfig::tiny();
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn stream_dominates_footprint() {
        let cfg = GenConfig::tiny();
        let flat: Vec<_> = generate(&cfg).into_iter().flatten().collect();
        let s = TraceStats::from_trace(&flat);
        // Every input line is read once; histogram lines are a rounding
        // error in footprint but absorb the stores.
        let reuse = s.accesses as f64 / s.footprint_lines as f64;
        assert!(reuse < 30.0, "stream-dominated: {reuse}");
    }
}
