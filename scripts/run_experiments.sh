#!/usr/bin/env bash
# Regenerates every figure/table/stat of the paper into results/ and
# experiment_logs/. Figures 9-11 share results/eval_matrix.json.
set -uo pipefail
cd "$(dirname "$0")/.."
mkdir -p experiment_logs
run() {
  local name="$1"; shift
  echo "=== $name ==="
  "$@" 2>&1 | tee "experiment_logs/$name.txt"
}
run fig9  ./target/release/fig9_exec_time
run fig10 ./target/release/fig10_hbm_energy
run fig11 ./target/release/fig11_system_energy
run table1 ./target/release/table1_config
run table2 ./target/release/table2_workloads
run fig3  ./target/release/fig3_reuse
run fig4  ./target/release/fig4_classes
run stat_last_writes ./target/release/stat_last_writes
run stat_rcu ./target/release/stat_rcu
# Topology/granularity and ablations at a reduced budget keep the whole
# sweep tractable on small machines; unset for full-budget runs.
export REDCACHE_BUDGET="${REDCACHE_BUDGET:-60000}"
run fig2a ./target/release/fig2_topology
run fig2b ./target/release/fig2_granularity
run ablation_alpha ./target/release/ablation_alpha
run ablation_rcu_depth ./target/release/ablation_rcu_depth
run ablation_refresh ./target/release/ablation_refresh
echo "all experiments done"
